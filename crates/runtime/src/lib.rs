//! # dlra-runtime — threaded message-passing execution substrate
//!
//! The sequential simulator in `dlra-comm` executes every "distributed"
//! protocol single-threaded on one core. This crate provides the real
//! concurrent substrate behind the same [`dlra_comm::Collectives`] surface:
//!
//! * [`ThreadedCluster`] — each of the `s` servers is a dedicated worker
//!   thread owning its local state, exchanging typed messages with the
//!   coordinator over `std::sync::mpsc` channels. Protocol outputs are
//!   bit-identical to the sequential [`dlra_comm::Cluster`] and the
//!   word-exact [`dlra_comm::Ledger`] totals match exactly (see
//!   `tests/runtime_equivalence.rs` at the workspace root).
//! * [`Runtime`] — a resident dataset plus an executor pool:
//!   [`Runtime::submit`] lets many Algorithm 1 queries (different `k`,
//!   `r`, sampler, seed, entrywise `f`) execute concurrently against one
//!   loaded cluster. The resident matrices are shared copy-on-write, so
//!   dispatch is O(s) handle clones — no per-query copy of the data — and
//!   a dead or shut-down pool surfaces as
//!   `CoreError::RuntimeUnavailable` through the handle, never a panic.
//! * [`PlanCache`] / [`Runtime::submit_batch`] — the query planner:
//!   unboosted Z-sampled queries sharing a [`PlanKey`] (`f`, sampler
//!   parameters, seed, residency epoch) run the expensive,
//!   `k`-independent `ZSampler::prepare` **once** and draw from the
//!   shared `Arc`-backed structure concurrently; `Runtime::reload_resident`
//!   bumps the epoch and invalidates every stale plan. Server workers pin
//!   kernel threading to 1 (`dlra_linalg::with_threads`), so the
//!   substrate's parallelism and the kernel pool never compose
//!   multiplicatively.
//! * [`threaded_model`] / [`threaded_gm_pooling`] — one-line constructors
//!   for a `PartitionModel` on the threaded substrate.
//!
//! ```
//! use dlra_core::prelude::*;
//! use dlra_linalg::Matrix;
//! use dlra_util::Rng;
//!
//! let mut rng = Rng::new(7);
//! let parts: Vec<Matrix> = (0..4).map(|_| Matrix::gaussian(120, 16, &mut rng)).collect();
//!
//! // Same call site as on the sequential substrate — only the model
//! // constructor differs.
//! let mut model = dlra_runtime::threaded_model(parts, EntryFunction::Identity).unwrap();
//! let cfg = Algorithm1Config { k: 3, r: 40, sampler: SamplerKind::Uniform, ..Default::default() };
//! let out = run_algorithm1(&mut model, &cfg).unwrap();
//! assert_eq!(out.projection.dim(), 16);
//! ```

pub mod planner;
pub mod runtime;
pub mod threaded;

use dlra_core::functions::EntryFunction;
use dlra_core::model::{MatrixServer, PartitionModel};
use dlra_core::Result;
use dlra_linalg::Matrix;

pub use planner::{PlanCache, PlanCacheStats, PlanKey};
pub use runtime::{
    PlanUse, QueryHandle, QueryOutcome, QueryRequest, Runtime, RuntimeConfig, Substrate,
};
pub use threaded::ThreadedCluster;

/// A partition model on the threaded substrate (the parallel counterpart
/// of `PartitionModel::new`).
pub fn threaded_model(
    locals: Vec<Matrix>,
    f: EntryFunction,
) -> Result<PartitionModel<ThreadedCluster<MatrixServer>>> {
    PartitionModel::with_substrate(locals, f, ThreadedCluster::new)
}

/// A GM-pooling model on the threaded substrate (the parallel counterpart
/// of `PartitionModel::gm_pooling`).
pub fn threaded_gm_pooling(
    raw: Vec<Matrix>,
    p: f64,
) -> Result<PartitionModel<ThreadedCluster<MatrixServer>>> {
    PartitionModel::gm_pooling_with(raw, p, ThreadedCluster::new)
}
