//! # dlra-runtime — threaded execution substrate + multi-dataset service façade
//!
//! The sequential simulator in `dlra-comm` executes every "distributed"
//! protocol single-threaded on one core. This crate provides the real
//! concurrent substrate behind the same [`dlra_comm::Collectives`] surface,
//! and the serving layers on top of it:
//!
//! * [`ThreadedCluster`] — each of the `s` servers is a dedicated worker
//!   thread owning its local state, exchanging typed messages with the
//!   coordinator over `std::sync::mpsc` channels. Protocol outputs are
//!   bit-identical to the sequential [`dlra_comm::Cluster`] and the
//!   word-exact [`dlra_comm::Ledger`] totals match exactly (see
//!   `tests/runtime_equivalence.rs` at the workspace root).
//! * [`Service`] — the **multi-dataset front door**: many named resident
//!   datasets share one executor pool, each with its own residency epoch
//!   and private plan-cache partition ([`Service::load`] /
//!   [`Service::reload`] / [`Service::evict`] — one tenant's reload never
//!   invalidates another's plans). Queries are built with the typed
//!   [`Query`] builder (validated at construction, [`QueryError`]) and
//!   submitted to a [`DatasetHandle`]; the returned [`Ticket`] supports
//!   [`Ticket::cancel`] (drop-before-execute), [`Ticket::deadline`]
//!   (expired queries resolve to [`ServiceError::Deadline`] without
//!   running), and [`Ticket::wait_timeout`]. Failures are unified in the
//!   [`ServiceError`] taxonomy ([`ServiceError::is_retryable`] /
//!   [`ServiceError::is_caller_error`] classify it for backoff loops).
//!   The service self-regulates under pressure: a configurable admission
//!   bound sheds over-limit submissions with a typed
//!   [`ServiceError::Overloaded`] in O(µs), and a resident-byte budget
//!   LRU-evicts idle tenants (never one with queries in flight) — see
//!   [`ServiceConfig::max_queue_depth`], [`ServiceConfig::memory_budget`],
//!   and [`Service::pressure`]. Executors budget kernel threads at
//!   `max(1, total/executors)` so coordinator-side SVDs never
//!   oversubscribe at high executor counts.
//! * [`Runtime`] — the single-dataset API, now a thin shim over a
//!   one-dataset [`Service`] with outputs and per-query ledgers unchanged
//!   bit for bit: [`Runtime::submit`] / [`Runtime::submit_batch`] for raw
//!   [`QueryRequest`]s, copy-on-write residency, graceful
//!   `CoreError::RuntimeUnavailable` on a dead pool.
//! * [`PlanCache`] — the query planner: unboosted Z-sampled queries
//!   sharing a [`PlanKey`] (dataset id, `f`, sampler parameters, seed,
//!   residency epoch) run the expensive, `k`-independent
//!   `ZSampler::prepare` **once** and draw from the shared `Arc`-backed
//!   structure concurrently. Server workers pin kernel threading to 1
//!   (`dlra_linalg::with_threads`), so the substrate's parallelism and the
//!   kernel pool never compose multiplicatively.
//! * [`threaded_model`] / [`threaded_gm_pooling`] — one-line constructors
//!   for a `PartitionModel` on the threaded substrate.
//!
//! ```
//! use dlra_core::prelude::*;
//! use dlra_runtime::{Query, Service, ServiceConfig};
//! use dlra_linalg::Matrix;
//! use dlra_util::Rng;
//!
//! let mut rng = Rng::new(7);
//! let parts: Vec<Matrix> = (0..4).map(|_| Matrix::gaussian(120, 16, &mut rng)).collect();
//!
//! let service = Service::new(ServiceConfig::default());
//! let dataset = service.load("demo", parts).unwrap();
//! let query = Query::rank(3)
//!     .samples(40)
//!     .sampler(SamplerKind::Uniform)
//!     .build()
//!     .unwrap();
//! let out = dataset.submit(&query).wait().unwrap();
//! assert_eq!(out.output.projection.dim(), 16);
//! ```

#![forbid(unsafe_code)]
pub mod netgate;
pub mod planner;
pub mod query;
pub mod runtime;
pub mod service;
pub mod threaded;

use dlra_core::functions::EntryFunction;
use dlra_core::model::{MatrixServer, PartitionModel};
use dlra_core::Result;
use dlra_linalg::Matrix;

pub use dlra_comm::Topology;
pub use planner::{PlanCache, PlanCacheStats, PlanKey};
pub use query::{Query, QueryBuilder, QueryError, QueryRequest};
pub use runtime::{QueryHandle, Runtime, RuntimeConfig};
pub use service::{
    DatasetHandle, PlanUse, QueryOutcome, Service, ServiceConfig, ServiceError, Substrate, Ticket,
};
pub use threaded::ThreadedCluster;

/// A partition model on the threaded substrate (the parallel counterpart
/// of `PartitionModel::new`).
pub fn threaded_model(
    locals: Vec<Matrix>,
    f: EntryFunction,
) -> Result<PartitionModel<ThreadedCluster<MatrixServer>>> {
    PartitionModel::with_substrate(locals, f, ThreadedCluster::new)
}

/// A GM-pooling model on the threaded substrate (the parallel counterpart
/// of `PartitionModel::gm_pooling`).
pub fn threaded_gm_pooling(
    raw: Vec<Matrix>,
    p: f64,
) -> Result<PartitionModel<ThreadedCluster<MatrixServer>>> {
    PartitionModel::gm_pooling_with(raw, p, ThreadedCluster::new)
}

/// A partition model on the networked substrate: the servers behind real
/// loopback TCP sockets (`dlra-net::SocketCluster`), bit- and
/// ledger-identical to [`threaded_model`] and `PartitionModel::new`.
pub fn socket_model(
    locals: Vec<Matrix>,
    f: EntryFunction,
) -> Result<PartitionModel<dlra_net::SocketCluster<MatrixServer>>> {
    PartitionModel::with_substrate(locals, f, dlra_net::SocketCluster::new)
}
