//! [`Runtime`]: a resident cluster serving many Algorithm 1 queries
//! concurrently, with a query planner amortizing sampler preparation.
//!
//! The runtime owns one resident dataset (the per-server local matrices)
//! and a pool of executor threads. [`Runtime::submit`] enqueues a
//! [`QueryRequest`] — target rank `k`, sample count `r`, boosting,
//! sampler, seed, and entrywise function `f` may all differ per query —
//! and returns a [`QueryHandle`] immediately; executors pop queries,
//! instantiate a partition model over the resident locals on the
//! configured substrate, run the full protocol, and deliver the result
//! through the handle. Many queries are in flight at once, which is the
//! first step toward serving real traffic against one loaded cluster.
//!
//! ## Query planning
//!
//! The expensive distributed phase of a Z-sampled query — two estimator
//! passes plus coordinate injection — is `k`-independent and deterministic
//! in `(resident data, f, sampler parameters, prepare seed)`. The runtime
//! therefore keeps a bounded LRU [`PlanCache`]: unboosted Z queries whose
//! [`PlanKey`]s collide share one `Arc`-backed prepared sampler, prepared
//! **exactly once** (concurrent executors block on the in-flight
//! preparation instead of redoing it). [`Runtime::submit_batch`] is the
//! batched entry point: B queries over the same `f` and seed pay one
//! preparation plus B draw/fetch phases.
//!
//! Per-query accounting stays exact: a planned query's reported
//! [`Algorithm1Output::comm`] is the preparation delta plus its own
//! draw/fetch delta — bit-identical to what an unplanned run would have
//! charged — while [`QueryOutcome::plan`] reports the shared preparation
//! cost and whether this query was the one that physically paid it, so
//! batch-level savings are measurable (see the `planner` bench).
//!
//! The cache is keyed by the **residency epoch**: [`Runtime::reload_resident`]
//! swaps the dataset, bumps the epoch, and drops every stale plan — a
//! plan can never outlive the data it summarizes.
//!
//! ## Copy-on-write residency
//!
//! The resident matrices are loaded **once**; query dispatch performs no
//! copy of their entry data. Each per-query model is built from O(1)
//! handle clones of the shared copy-on-write [`Matrix`] storage (per
//! server: one `Arc` bump), and the query-local state — the
//! injected-coordinate scratch and residual sampling views — lives in the
//! model's `MatrixServer` scratch half, so concurrent queries cannot
//! interfere. Submit cost is therefore O(s), flat in the dataset size
//! `n·d` (see the `runtime_dispatch_latency` bench and the shared-payload
//! assertions in `tests/runtime_equivalence.rs`).
//!
//! ## Failure paths
//!
//! [`Runtime::submit`] never panics: if the executor pool has died (every
//! executor panicked) or the runtime was [`Runtime::shutdown`], the
//! returned handle resolves to [`CoreError::RuntimeUnavailable`], which is
//! distinct from per-query errors like `InvalidConfig` — callers can tell
//! "my query was bad" apart from "the pool is gone, retry elsewhere".

use crate::planner::{PlanCache, PlanCacheStats, PlanKey};
use crate::threaded::ThreadedCluster;
use dlra_comm::LedgerSnapshot;
use dlra_core::algorithm1::{
    run_algorithm1, run_algorithm1_with_plan, Algorithm1Config, Algorithm1Output, SamplerKind,
};
use dlra_core::functions::EntryFunction;
use dlra_core::model::PartitionModel;
use dlra_core::{CoreError, Result};
use dlra_linalg::Matrix;
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;

/// Which execution substrate the pooled executors build per query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Substrate {
    /// The sequential in-process simulator (`dlra-comm::Cluster`).
    Sequential,
    /// The threaded message-passing cluster ([`ThreadedCluster`]).
    #[default]
    Threaded,
}

/// Configuration of a [`Runtime`].
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Number of executor threads, i.e. queries in flight concurrently.
    pub executors: usize,
    /// Substrate each query runs on.
    pub substrate: Substrate,
    /// Capacity of the plan cache (distinct prepared samplers held);
    /// `0` disables planning entirely — every query then prepares its own
    /// sampler, exactly as before the planner existed. The default is 16,
    /// overridable with the `DLRA_PLAN_CACHE` environment variable
    /// (`DLRA_PLAN_CACHE=0` disables, `DLRA_PLAN_CACHE=n` sets the
    /// capacity) — which is how CI proves the planned and unplanned paths
    /// stay bit- and ledger-identical.
    pub plan_cache: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        let executors = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(2)
            .clamp(1, 8);
        let plan_cache = std::env::var("DLRA_PLAN_CACHE")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(16);
        RuntimeConfig {
            executors,
            substrate: Substrate::default(),
            plan_cache,
        }
    }
}

/// One Algorithm 1 query against the resident dataset.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// The entrywise function `f` applied to the aggregated entries.
    /// Interpreted exactly as by `PartitionModel::new` (for `GmRoot`,
    /// submit locally pre-transformed locals).
    pub f: EntryFunction,
    /// Protocol configuration (`k`, `r`, boosting, sampler, seed).
    pub cfg: Algorithm1Config,
}

impl QueryRequest {
    /// A query with `f = Identity`.
    pub fn identity(cfg: Algorithm1Config) -> Self {
        QueryRequest {
            f: EntryFunction::Identity,
            cfg,
        }
    }

    /// Whether the planner may serve this query from a shared preparation:
    /// a Z-sampled, unboosted query (boosted repetitions re-prepare with
    /// per-repetition seeds on the unplanned path, so sharing one
    /// preparation would change their bits) with a valid-enough
    /// configuration that preparing before validation cannot mask a
    /// config error.
    fn plannable(&self, d: usize) -> bool {
        matches!(self.cfg.sampler, SamplerKind::Z(_))
            && self.cfg.boost == 1
            && self.cfg.k >= 1
            && self.cfg.k <= d
            && self.cfg.r >= 1
            && self.f.z_fn().is_some()
    }
}

/// How a delivered query interacted with the plan cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanUse {
    /// The preparation's one-time ledger cost. It is already folded into
    /// the output's `comm` (keeping per-query accounting identical to an
    /// unplanned run); subtract it to get the query's own draw/fetch
    /// delta, and charge it once per distinct plan when totalling a batch.
    pub prepare_comm: LedgerSnapshot,
    /// `true` when the preparation was served from the cache; `false` for
    /// the one query per plan that physically ran it.
    pub cache_hit: bool,
}

/// A delivered query result plus its planner provenance.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The protocol output (projection, per-query ledger delta, rows).
    pub output: Algorithm1Output,
    /// `Some` when the query executed from a shared plan; `None` on the
    /// unplanned path (cache disabled, non-Z sampler, or boosted query).
    pub plan: Option<PlanUse>,
}

enum Task {
    Query {
        request: QueryRequest,
        reply: Sender<Result<QueryOutcome>>,
    },
    /// Test-only: makes the executor that pops it panic, so tests can kill
    /// the pool and exercise the dead-runtime failure paths.
    #[cfg(test)]
    Poison,
}

/// The error a handle resolves to when the pool cannot (or can no longer)
/// run its query.
fn runtime_unavailable() -> CoreError {
    CoreError::RuntimeUnavailable(
        "executor pool is not running (all executors exited or the runtime shut down)".into(),
    )
}

/// Pending result of a submitted query.
pub struct QueryHandle {
    rx: Receiver<Result<QueryOutcome>>,
}

impl QueryHandle {
    /// Blocks until the query finishes. A query the runtime cannot deliver
    /// (executor panicked mid-run, pool dead or shut down) resolves to
    /// [`CoreError::RuntimeUnavailable`].
    pub fn wait(self) -> Result<Algorithm1Output> {
        self.wait_outcome().map(|o| o.output)
    }

    /// Like [`QueryHandle::wait`], also reporting how the query interacted
    /// with the plan cache.
    pub fn wait_outcome(self) -> Result<QueryOutcome> {
        match self.rx.recv() {
            Ok(result) => result,
            Err(_) => Err(runtime_unavailable()),
        }
    }

    /// Non-blocking poll; `None` while the query is still running. A dead
    /// query (executor panicked, pool shut down) yields
    /// `Some(Err(CoreError::RuntimeUnavailable))`, not `None`, so pollers
    /// cannot spin forever on it.
    pub fn try_wait(&self) -> Option<Result<Algorithm1Output>> {
        match self.rx.try_recv() {
            Ok(result) => Some(result.map(|o| o.output)),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(runtime_unavailable())),
        }
    }
}

/// The resident dataset plus its epoch (bumped on every reload; part of
/// every [`PlanKey`], so plans are pinned to the data they were prepared
/// against).
struct Resident {
    locals: Arc<Vec<Matrix>>,
    epoch: u64,
    shape: (usize, usize),
}

/// A resident cluster plus an executor pool answering Algorithm 1 queries.
///
/// ```
/// use dlra_core::prelude::*;
/// use dlra_runtime::{QueryRequest, Runtime, RuntimeConfig};
/// use dlra_linalg::Matrix;
/// use dlra_util::Rng;
///
/// let mut rng = Rng::new(3);
/// let locals: Vec<Matrix> = (0..3).map(|_| Matrix::gaussian(80, 12, &mut rng)).collect();
/// let runtime = Runtime::new(locals, RuntimeConfig::default()).unwrap();
///
/// // Two queries with different ranks, concurrently in flight.
/// let h1 = runtime.submit(QueryRequest::identity(
///     Algorithm1Config { k: 2, r: 25, sampler: SamplerKind::Uniform, ..Default::default() }));
/// let h2 = runtime.submit(QueryRequest::identity(
///     Algorithm1Config { k: 4, r: 40, sampler: SamplerKind::Uniform, ..Default::default() }));
/// assert_eq!(h1.wait().unwrap().projection.dim(), 12);
/// assert_eq!(h2.wait().unwrap().projection.dim(), 12);
/// ```
pub struct Runtime {
    queue: Option<Sender<Task>>,
    executors: Vec<JoinHandle<()>>,
    /// The resident per-server matrices. Executors read the current
    /// payload per query; per-query models are built from O(1) handle
    /// clones of the matrices inside, never from copies of their entry
    /// data.
    resident: Arc<RwLock<Resident>>,
    /// `Some` when planning is enabled (`RuntimeConfig::plan_cache > 0`).
    planner: Option<Arc<PlanCache>>,
}

impl Runtime {
    /// Loads the resident dataset (one local matrix per server) and starts
    /// the executor pool. Loading shares the caller's matrix storage
    /// copy-on-write — no entry data is copied here or at query dispatch.
    pub fn new(locals: Vec<Matrix>, config: RuntimeConfig) -> Result<Self> {
        let shape = validate_locals(&locals)?;
        let resident = Arc::new(RwLock::new(Resident {
            locals: Arc::new(locals),
            epoch: 0,
            shape,
        }));
        let planner = (config.plan_cache > 0).then(|| Arc::new(PlanCache::new(config.plan_cache)));
        let (queue, tasks) = mpsc::channel::<Task>();
        let tasks = Arc::new(Mutex::new(tasks));
        let executors = (0..config.executors.max(1))
            .map(|i| {
                let tasks = Arc::clone(&tasks);
                let resident = Arc::clone(&resident);
                let planner = planner.clone();
                let substrate = config.substrate;
                std::thread::Builder::new()
                    .name(format!("dlra-executor-{i}"))
                    .spawn(move || loop {
                        // Hold the queue lock only for the pop, not the run.
                        let popped = tasks.lock().expect("task queue poisoned").recv();
                        match popped {
                            Ok(Task::Query { request, reply }) => {
                                let result =
                                    execute(&resident, substrate, planner.as_deref(), &request);
                                // The caller may have dropped its handle;
                                // that's fine, the result is discarded.
                                let _ = reply.send(result);
                            }
                            #[cfg(test)]
                            Ok(Task::Poison) => panic!("poison task (test-only)"),
                            Err(_) => break,
                        }
                    })
                    .expect("spawn runtime executor thread")
            })
            .collect();
        Ok(Runtime {
            queue: Some(queue),
            executors,
            resident,
            planner,
        })
    }

    /// Enqueues a query; returns immediately with its pending handle.
    ///
    /// Never panics: if the executor pool is gone — every executor died, or
    /// [`Runtime::shutdown`] ran — the handle resolves to
    /// [`CoreError::RuntimeUnavailable`] instead.
    pub fn submit(&self, request: QueryRequest) -> QueryHandle {
        let (reply, rx) = mpsc::channel();
        match self.queue.as_ref() {
            Some(queue) => {
                if let Err(mpsc::SendError(task)) = queue.send(Task::Query { request, reply }) {
                    // Every executor has exited (the pop side of the queue
                    // is gone): deliver the failure through the handle.
                    match task {
                        Task::Query { reply, .. } => {
                            let _ = reply.send(Err(runtime_unavailable()));
                        }
                        #[cfg(test)]
                        Task::Poison => unreachable!("submit only sends queries"),
                    }
                }
            }
            // Shut down: the handle must still resolve.
            None => {
                let _ = reply.send(Err(runtime_unavailable()));
            }
        }
        QueryHandle { rx }
    }

    /// Submits a batch of queries; handles are returned in request order.
    ///
    /// With planning enabled, queries in the batch (and any concurrently
    /// submitted ones) that share a [`PlanKey`] — same `f`, same
    /// `ZSamplerParams`, same seed, unboosted — run `ZSampler::prepare`
    /// **at most once between them**: the first executor to reach a key
    /// not yet cached prepares, every other query blocks on that
    /// preparation and then draws from the shared structure concurrently.
    /// Per distinct key, at most one delivered [`QueryOutcome`] carries
    /// `plan.cache_hit == false` (the preparation's physical payer); on a
    /// cold cache there is exactly one per key, while a warm cache may
    /// serve the whole batch as hits with no payer at all — so total a
    /// batch's physical cost from the payers you actually observe plus
    /// the cached plans' already-paid `prepare_comm`, not from an assumed
    /// payer count.
    pub fn submit_batch(
        &self,
        requests: impl IntoIterator<Item = QueryRequest>,
    ) -> Vec<QueryHandle> {
        requests.into_iter().map(|r| self.submit(r)).collect()
    }

    /// Replaces the resident dataset and bumps the residency epoch:
    /// in-flight queries finish against the payload they dispatched with
    /// (their models hold handle clones), subsequent queries see the new
    /// data, and every cached plan from the previous epoch is dropped —
    /// the plan cache can never serve a preparation of data that is gone.
    pub fn reload_resident(&self, locals: Vec<Matrix>) -> Result<()> {
        let shape = validate_locals(&locals)?;
        let epoch = {
            let mut resident = self.resident.write().expect("resident state poisoned");
            resident.locals = Arc::new(locals);
            resident.epoch += 1;
            resident.shape = shape;
            resident.epoch
        };
        if let Some(planner) = &self.planner {
            planner.retain_epoch(epoch);
        }
        Ok(())
    }

    /// Stops the executor pool gracefully: already-queued and in-flight
    /// queries complete and deliver their results, then the executors are
    /// joined. Subsequent [`Runtime::submit`]s resolve to
    /// [`CoreError::RuntimeUnavailable`]. Idempotent; `Drop` runs the same
    /// path.
    pub fn shutdown(&mut self) {
        self.queue.take();
        for handle in self.executors.drain(..) {
            let _ = handle.join();
        }
    }

    /// Global data shape `(n, d)` of the resident dataset.
    pub fn shape(&self) -> (usize, usize) {
        self.resident.read().expect("resident state poisoned").shape
    }

    /// Number of servers holding the resident dataset.
    pub fn num_servers(&self) -> usize {
        self.resident
            .read()
            .expect("resident state poisoned")
            .locals
            .len()
    }

    /// The current residency epoch (0 at load, +1 per reload).
    pub fn resident_epoch(&self) -> u64 {
        self.resident.read().expect("resident state poisoned").epoch
    }

    /// The resident per-server matrices (evaluation and testing; queries
    /// run against shared clones of these, never against copies).
    pub fn resident(&self) -> Arc<Vec<Matrix>> {
        Arc::clone(
            &self
                .resident
                .read()
                .expect("resident state poisoned")
                .locals,
        )
    }

    /// Plan-cache counters, or `None` when planning is disabled.
    pub fn plan_cache_stats(&self) -> Option<PlanCacheStats> {
        self.planner.as_ref().map(|p| p.stats())
    }

    /// Number of currently cached plans (0 when planning is disabled).
    pub fn plan_cache_len(&self) -> usize {
        self.planner.as_ref().map_or(0, |p| p.len())
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn validate_locals(locals: &[Matrix]) -> Result<(usize, usize)> {
    if locals.is_empty() {
        return Err(CoreError::InvalidModel("no servers".into()));
    }
    let (n, d) = locals[0].shape();
    if n == 0 || d == 0 {
        return Err(CoreError::InvalidModel(format!("empty matrices {n}x{d}")));
    }
    if let Some((t, m)) = locals.iter().enumerate().find(|(_, m)| m.shape() != (n, d)) {
        return Err(CoreError::InvalidModel(format!(
            "server {t} has shape {:?}, expected ({n}, {d})",
            m.shape()
        )));
    }
    Ok((n, d))
}

/// Runs one query on its private model instance, consulting the planner
/// when the query is eligible.
fn execute(
    resident: &RwLock<Resident>,
    substrate: Substrate,
    planner: Option<&PlanCache>,
    request: &QueryRequest,
) -> Result<QueryOutcome> {
    // O(s) handle clones of the shared payload: each `Matrix` clone bumps a
    // refcount, no entry data moves. The model's query-local scratch
    // (injected coordinates, residual views) is freshly allocated per query.
    let (parts, epoch, d) = {
        let resident = resident.read().expect("resident state poisoned");
        let parts: Vec<Matrix> = resident.locals.iter().cloned().collect();
        (parts, resident.epoch, resident.shape.1)
    };
    let result = match substrate {
        Substrate::Sequential => {
            let mut model = PartitionModel::new(parts, request.f)?;
            execute_on(&mut model, planner, request, epoch, d)
        }
        Substrate::Threaded => {
            let mut model = PartitionModel::with_substrate(parts, request.f, ThreadedCluster::new)?;
            execute_on(&mut model, planner, request, epoch, d)
        }
    };
    // A reload may have landed between our epoch snapshot and any plan
    // this query inserted: its `retain_epoch` ran before the insertion,
    // so sweep again against the *current* epoch. The query's own result
    // is untouched (it correctly answered against the data it dispatched
    // with); this only stops a dead-epoch plan from squatting in an LRU
    // slot until capacity pressure evicts it.
    if let Some(cache) = planner {
        let now = resident.read().expect("resident state poisoned").epoch;
        if now != epoch {
            cache.retain_epoch(now);
        }
    }
    result
}

fn execute_on<C: dlra_comm::Collectives<dlra_core::model::MatrixServer>>(
    model: &mut PartitionModel<C>,
    planner: Option<&PlanCache>,
    request: &QueryRequest,
    epoch: u64,
    d: usize,
) -> Result<QueryOutcome> {
    if let (Some(cache), SamplerKind::Z(params)) = (planner, &request.cfg.sampler) {
        if request.plannable(d) {
            let key = PlanKey::new(&request.f, params, request.cfg.seed, epoch);
            let (plan, cache_hit) = cache.get_or_prepare(&key, || {
                dlra_core::algorithm1::prepare_z_plan(model, params, request.cfg.seed)
            })?;
            let mut output = run_algorithm1_with_plan(model, &request.cfg, &plan)?;
            // Per-query accounting stays identical to an unplanned run:
            // the preparation delta is deterministic, so prepare + execute
            // is exactly what this query would have charged alone.
            output.comm = plan.prepare_comm + output.comm;
            return Ok(QueryOutcome {
                output,
                plan: Some(PlanUse {
                    prepare_comm: plan.prepare_comm,
                    cache_hit,
                }),
            });
        }
    }
    Ok(QueryOutcome {
        output: run_algorithm1(model, &request.cfg)?,
        plan: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlra_sampler::ZSamplerParams;
    use dlra_util::Rng;

    fn locals(s: usize, n: usize, d: usize, seed: u64) -> Vec<Matrix> {
        let mut rng = Rng::new(seed);
        (0..s).map(|_| Matrix::gaussian(n, d, &mut rng)).collect()
    }

    fn cfg(k: usize, r: usize, seed: u64) -> Algorithm1Config {
        Algorithm1Config {
            k,
            r,
            sampler: SamplerKind::Uniform,
            seed,
            ..Default::default()
        }
    }

    fn config(executors: usize, substrate: Substrate, plan_cache: usize) -> RuntimeConfig {
        RuntimeConfig {
            executors,
            substrate,
            plan_cache,
        }
    }

    #[test]
    fn rejects_bad_residents() {
        assert!(Runtime::new(vec![], RuntimeConfig::default()).is_err());
        let mixed = vec![Matrix::zeros(3, 2), Matrix::zeros(2, 2)];
        assert!(Runtime::new(mixed, RuntimeConfig::default()).is_err());
    }

    #[test]
    fn concurrent_queries_match_direct_runs() {
        let parts = locals(3, 60, 8, 11);
        let runtime = Runtime::new(parts.clone(), config(4, Substrate::Threaded, 8)).unwrap();

        // Many concurrent queries with different (k, r, seed).
        let requests: Vec<QueryRequest> = (0..6)
            .map(|i| QueryRequest::identity(cfg(1 + i % 3, 20 + 5 * i, 100 + i as u64)))
            .collect();
        let handles: Vec<QueryHandle> =
            requests.iter().map(|q| runtime.submit(q.clone())).collect();

        for (request, handle) in requests.into_iter().zip(handles) {
            let got = handle.wait().unwrap();
            let mut direct = PartitionModel::new(parts.clone(), request.f).unwrap();
            let want = run_algorithm1(&mut direct, &request.cfg).unwrap();
            assert_eq!(
                got.projection.basis().as_slice(),
                want.projection.basis().as_slice()
            );
            assert_eq!(got.rows, want.rows);
            assert_eq!(got.comm, want.comm);
        }
    }

    #[test]
    fn planned_submits_match_unplanned_bit_for_bit() {
        // The same Z query through a cache-enabled and a cache-disabled
        // runtime: identical projection, rows, and per-query ledger.
        let parts = locals(3, 64, 8, 31);
        let request = QueryRequest::identity(Algorithm1Config {
            k: 2,
            r: 30,
            sampler: SamplerKind::Z(ZSamplerParams::default()),
            seed: 9,
            ..Default::default()
        });
        for substrate in [Substrate::Sequential, Substrate::Threaded] {
            let planned = Runtime::new(parts.clone(), config(2, substrate, 8)).unwrap();
            let unplanned = Runtime::new(parts.clone(), config(2, substrate, 0)).unwrap();
            let a = planned.submit(request.clone()).wait_outcome().unwrap();
            let b = unplanned.submit(request.clone()).wait_outcome().unwrap();
            assert!(a.plan.is_some(), "cache-enabled query must be planned");
            assert!(b.plan.is_none(), "cache-disabled query must not plan");
            assert_eq!(
                a.output.projection.basis().as_slice(),
                b.output.projection.basis().as_slice()
            );
            assert_eq!(a.output.rows, b.output.rows);
            assert_eq!(a.output.comm, b.output.comm, "{substrate:?}");
        }
    }

    #[test]
    fn boosted_and_non_z_queries_bypass_the_planner() {
        let parts = locals(2, 40, 6, 33);
        let runtime = Runtime::new(parts, config(1, Substrate::Sequential, 8)).unwrap();
        let boosted = QueryRequest::identity(Algorithm1Config {
            k: 2,
            r: 15,
            boost: 2,
            sampler: SamplerKind::Z(ZSamplerParams::default()),
            seed: 1,
        });
        assert!(runtime
            .submit(boosted)
            .wait_outcome()
            .unwrap()
            .plan
            .is_none());
        let uniform = QueryRequest::identity(cfg(2, 15, 2));
        assert!(runtime
            .submit(uniform)
            .wait_outcome()
            .unwrap()
            .plan
            .is_none());
        assert_eq!(runtime.plan_cache_len(), 0);
    }

    #[test]
    fn query_errors_are_delivered() {
        let runtime = Runtime::new(locals(2, 10, 4, 1), RuntimeConfig::default()).unwrap();
        let handle = runtime.submit(QueryRequest::identity(cfg(0, 10, 1)));
        // A bad query is a query error, not a runtime failure.
        assert!(matches!(handle.wait(), Err(CoreError::InvalidConfig(_)),));
    }

    #[test]
    fn submit_survives_total_executor_death() {
        let executors = 2;
        let mut runtime = Runtime::new(
            locals(2, 10, 4, 2),
            config(executors, Substrate::Sequential, 0),
        )
        .unwrap();
        // Kill the whole pool: one poison task per executor, then join so
        // the death is fully observable before the next submit.
        for _ in 0..executors {
            runtime.queue.as_ref().unwrap().send(Task::Poison).unwrap();
        }
        for handle in runtime.executors.drain(..) {
            assert!(handle.join().is_err(), "executor should have panicked");
        }
        // Regression: this used to panic on `expect("executor pool is
        // alive")`. Now the failure arrives through the handle, typed.
        let handle = runtime.submit(QueryRequest::identity(cfg(2, 10, 3)));
        assert!(matches!(
            handle.wait(),
            Err(CoreError::RuntimeUnavailable(_)),
        ));
    }

    #[test]
    fn submit_after_shutdown_reports_runtime_unavailable() {
        let mut runtime = Runtime::new(locals(2, 12, 4, 7), RuntimeConfig::default()).unwrap();
        // Shutdown lets queued work finish first.
        let queued = runtime.submit(QueryRequest::identity(cfg(2, 10, 4)));
        runtime.shutdown();
        assert!(queued.wait().is_ok());

        let late = runtime.submit(QueryRequest::identity(cfg(2, 10, 5)));
        // try_wait must observe the terminal state, not spin as "running".
        assert!(matches!(
            late.try_wait(),
            Some(Err(CoreError::RuntimeUnavailable(_))),
        ));
        // Shutdown is idempotent and Drop after shutdown is clean.
        runtime.shutdown();
    }

    #[test]
    fn dead_pool_error_is_distinguishable_from_query_errors() {
        let mut runtime = Runtime::new(locals(2, 10, 4, 8), RuntimeConfig::default()).unwrap();
        runtime.shutdown();
        let err = runtime
            .submit(QueryRequest::identity(cfg(2, 10, 6)))
            .wait()
            .unwrap_err();
        match err {
            CoreError::RuntimeUnavailable(msg) => {
                assert!(msg.contains("executor"), "unhelpful message: {msg}")
            }
            other => panic!("expected RuntimeUnavailable, got {other}"),
        }
    }

    #[test]
    fn dispatch_clones_handles_not_data() {
        let parts = locals(3, 50, 6, 21);
        for substrate in [Substrate::Sequential, Substrate::Threaded] {
            let runtime = Runtime::new(parts.clone(), config(2, substrate, 16)).unwrap();
            // Residency shares the caller's storage...
            for (mine, theirs) in parts.iter().zip(runtime.resident().iter()) {
                assert!(mine.shares_storage(theirs));
            }
            // ...and a completed query leaves exactly the caller + runtime
            // holding it (the query's shares were handles, released on
            // completion — never detached copies).
            runtime
                .submit(QueryRequest::identity(cfg(2, 20, 22)))
                .wait()
                .unwrap();
            drop(runtime);
            for mine in &parts {
                assert_eq!(mine.storage_refcount(), 1);
            }
        }
    }

    #[test]
    fn reload_resident_swaps_data_and_epoch() {
        let old = locals(2, 30, 6, 40);
        let new = locals(2, 24, 5, 41);
        let runtime = Runtime::new(old.clone(), config(2, Substrate::Sequential, 8)).unwrap();
        assert_eq!(runtime.resident_epoch(), 0);
        assert_eq!(runtime.shape(), (30, 6));

        runtime.reload_resident(new.clone()).unwrap();
        assert_eq!(runtime.resident_epoch(), 1);
        assert_eq!(runtime.shape(), (24, 5));
        for (mine, theirs) in new.iter().zip(runtime.resident().iter()) {
            assert!(mine.shares_storage(theirs), "reload copied matrix data");
        }
        // Old payload fully released by the runtime.
        for m in &old {
            assert_eq!(m.storage_refcount(), 1);
        }

        // Queries now answer against the new data.
        let got = runtime
            .submit(QueryRequest::identity(cfg(2, 12, 42)))
            .wait()
            .unwrap();
        let mut direct = PartitionModel::new(new, EntryFunction::Identity).unwrap();
        let want = run_algorithm1(&mut direct, &cfg(2, 12, 42)).unwrap();
        assert_eq!(
            got.projection.basis().as_slice(),
            want.projection.basis().as_slice()
        );

        // Bad reloads leave the runtime untouched.
        assert!(runtime.reload_resident(vec![]).is_err());
        assert_eq!(runtime.resident_epoch(), 1);
    }

    #[test]
    fn drop_completes_in_flight_queries() {
        let parts = locals(2, 40, 6, 5);
        let runtime = Runtime::new(parts, RuntimeConfig::default()).unwrap();
        let handle = runtime.submit(QueryRequest::identity(cfg(2, 15, 9)));
        drop(runtime);
        assert!(handle.wait().is_ok());
    }
}
