//! [`Runtime`]: a resident cluster serving many Algorithm 1 queries
//! concurrently.
//!
//! The runtime owns one resident dataset (the per-server local matrices)
//! and a pool of executor threads. [`Runtime::submit`] enqueues a
//! [`QueryRequest`] — target rank `k`, sample count `r`, boosting,
//! sampler, seed, and entrywise function `f` may all differ per query —
//! and returns a [`QueryHandle`] immediately; executors pop queries,
//! instantiate a partition model over the resident locals on the
//! configured substrate, run the full protocol, and deliver the result
//! through the handle. Many queries are in flight at once, which is the
//! first step toward serving real traffic against one loaded cluster.
//!
//! Each query runs against a private copy of the per-server states (the
//! injected-coordinate scratch and residual views are query-local by
//! design), so concurrent queries cannot interfere; sharing the matrix
//! payload copy-on-write across queries is a known follow-on (see
//! ROADMAP).

use crate::threaded::ThreadedCluster;
use dlra_core::algorithm1::{run_algorithm1, Algorithm1Config, Algorithm1Output};
use dlra_core::functions::EntryFunction;
use dlra_core::model::PartitionModel;
use dlra_core::{CoreError, Result};
use dlra_linalg::Matrix;
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Which execution substrate the pooled executors build per query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Substrate {
    /// The sequential in-process simulator (`dlra-comm::Cluster`).
    Sequential,
    /// The threaded message-passing cluster ([`ThreadedCluster`]).
    #[default]
    Threaded,
}

/// Configuration of a [`Runtime`].
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Number of executor threads, i.e. queries in flight concurrently.
    pub executors: usize,
    /// Substrate each query runs on.
    pub substrate: Substrate,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        let executors = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(2)
            .clamp(1, 8);
        RuntimeConfig {
            executors,
            substrate: Substrate::default(),
        }
    }
}

/// One Algorithm 1 query against the resident dataset.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// The entrywise function `f` applied to the aggregated entries.
    /// Interpreted exactly as by `PartitionModel::new` (for `GmRoot`,
    /// submit locally pre-transformed locals).
    pub f: EntryFunction,
    /// Protocol configuration (`k`, `r`, boosting, sampler, seed).
    pub cfg: Algorithm1Config,
}

impl QueryRequest {
    /// A query with `f = Identity`.
    pub fn identity(cfg: Algorithm1Config) -> Self {
        QueryRequest {
            f: EntryFunction::Identity,
            cfg,
        }
    }
}

struct Task {
    request: QueryRequest,
    reply: Sender<Result<Algorithm1Output>>,
}

/// Pending result of a submitted query.
pub struct QueryHandle {
    rx: Receiver<Result<Algorithm1Output>>,
}

impl QueryHandle {
    /// Blocks until the query finishes.
    pub fn wait(self) -> Result<Algorithm1Output> {
        match self.rx.recv() {
            Ok(result) => result,
            Err(_) => Err(CoreError::InvalidConfig(
                "runtime dropped the query (executor panicked or pool shut down)".into(),
            )),
        }
    }

    /// Non-blocking poll; `None` while the query is still running. A dead
    /// query (executor panicked, pool shut down) yields `Some(Err(..))`,
    /// not `None`, so pollers cannot spin forever on it.
    pub fn try_wait(&self) -> Option<Result<Algorithm1Output>> {
        match self.rx.try_recv() {
            Ok(result) => Some(result),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(CoreError::InvalidConfig(
                "runtime dropped the query (executor panicked or pool shut down)".into(),
            ))),
        }
    }
}

/// A resident cluster plus an executor pool answering Algorithm 1 queries.
///
/// ```
/// use dlra_core::prelude::*;
/// use dlra_runtime::{QueryRequest, Runtime, RuntimeConfig};
/// use dlra_linalg::Matrix;
/// use dlra_util::Rng;
///
/// let mut rng = Rng::new(3);
/// let locals: Vec<Matrix> = (0..3).map(|_| Matrix::gaussian(80, 12, &mut rng)).collect();
/// let runtime = Runtime::new(locals, RuntimeConfig::default()).unwrap();
///
/// // Two queries with different ranks, concurrently in flight.
/// let h1 = runtime.submit(QueryRequest::identity(
///     Algorithm1Config { k: 2, r: 25, sampler: SamplerKind::Uniform, ..Default::default() }));
/// let h2 = runtime.submit(QueryRequest::identity(
///     Algorithm1Config { k: 4, r: 40, sampler: SamplerKind::Uniform, ..Default::default() }));
/// assert_eq!(h1.wait().unwrap().projection.shape(), (12, 12));
/// assert_eq!(h2.wait().unwrap().projection.shape(), (12, 12));
/// ```
pub struct Runtime {
    queue: Option<Sender<Task>>,
    executors: Vec<JoinHandle<()>>,
    shape: (usize, usize),
    num_servers: usize,
}

impl Runtime {
    /// Loads the resident dataset (one local matrix per server) and starts
    /// the executor pool.
    pub fn new(locals: Vec<Matrix>, config: RuntimeConfig) -> Result<Self> {
        if locals.is_empty() {
            return Err(CoreError::InvalidModel("no servers".into()));
        }
        let (n, d) = locals[0].shape();
        if n == 0 || d == 0 {
            return Err(CoreError::InvalidModel(format!("empty matrices {n}x{d}")));
        }
        if let Some((t, m)) = locals.iter().enumerate().find(|(_, m)| m.shape() != (n, d)) {
            return Err(CoreError::InvalidModel(format!(
                "server {t} has shape {:?}, expected ({n}, {d})",
                m.shape()
            )));
        }
        let num_servers = locals.len();
        let resident = Arc::new(locals);
        let (queue, tasks) = mpsc::channel::<Task>();
        let tasks = Arc::new(Mutex::new(tasks));
        let executors = (0..config.executors.max(1))
            .map(|i| {
                let tasks = Arc::clone(&tasks);
                let resident = Arc::clone(&resident);
                let substrate = config.substrate;
                std::thread::Builder::new()
                    .name(format!("dlra-executor-{i}"))
                    .spawn(move || loop {
                        // Hold the queue lock only for the pop, not the run.
                        let popped = tasks.lock().expect("task queue poisoned").recv();
                        let Ok(task) = popped else { break };
                        let result = execute(&resident, substrate, &task.request);
                        // The caller may have dropped its handle; that's
                        // fine, the result is simply discarded.
                        let _ = task.reply.send(result);
                    })
                    .expect("spawn runtime executor thread")
            })
            .collect();
        Ok(Runtime {
            queue: Some(queue),
            executors,
            shape: (n, d),
            num_servers,
        })
    }

    /// Enqueues a query; returns immediately with its pending handle.
    pub fn submit(&self, request: QueryRequest) -> QueryHandle {
        let (reply, rx) = mpsc::channel();
        self.queue
            .as_ref()
            .expect("runtime is live until dropped")
            .send(Task { request, reply })
            .expect("executor pool is alive");
        QueryHandle { rx }
    }

    /// Global data shape `(n, d)` of the resident dataset.
    pub fn shape(&self) -> (usize, usize) {
        self.shape
    }

    /// Number of servers holding the resident dataset.
    pub fn num_servers(&self) -> usize {
        self.num_servers
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        // Closing the queue lets executors drain outstanding queries and
        // exit; in-flight handles still receive their results.
        self.queue.take();
        for handle in self.executors.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Runs one query on its private model instance.
fn execute(
    resident: &Arc<Vec<Matrix>>,
    substrate: Substrate,
    request: &QueryRequest,
) -> Result<Algorithm1Output> {
    let parts: Vec<Matrix> = resident.as_ref().clone();
    match substrate {
        Substrate::Sequential => {
            let mut model = PartitionModel::new(parts, request.f)?;
            run_algorithm1(&mut model, &request.cfg)
        }
        Substrate::Threaded => {
            let mut model = PartitionModel::with_substrate(parts, request.f, ThreadedCluster::new)?;
            run_algorithm1(&mut model, &request.cfg)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlra_core::algorithm1::SamplerKind;
    use dlra_util::Rng;

    fn locals(s: usize, n: usize, d: usize, seed: u64) -> Vec<Matrix> {
        let mut rng = Rng::new(seed);
        (0..s).map(|_| Matrix::gaussian(n, d, &mut rng)).collect()
    }

    fn cfg(k: usize, r: usize, seed: u64) -> Algorithm1Config {
        Algorithm1Config {
            k,
            r,
            sampler: SamplerKind::Uniform,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn rejects_bad_residents() {
        assert!(Runtime::new(vec![], RuntimeConfig::default()).is_err());
        let mixed = vec![Matrix::zeros(3, 2), Matrix::zeros(2, 2)];
        assert!(Runtime::new(mixed, RuntimeConfig::default()).is_err());
    }

    #[test]
    fn concurrent_queries_match_direct_runs() {
        let parts = locals(3, 60, 8, 11);
        let runtime = Runtime::new(
            parts.clone(),
            RuntimeConfig {
                executors: 4,
                substrate: Substrate::Threaded,
            },
        )
        .unwrap();

        // Many concurrent queries with different (k, r, seed).
        let requests: Vec<QueryRequest> = (0..6)
            .map(|i| QueryRequest::identity(cfg(1 + i % 3, 20 + 5 * i, 100 + i as u64)))
            .collect();
        let handles: Vec<QueryHandle> =
            requests.iter().map(|q| runtime.submit(q.clone())).collect();

        for (request, handle) in requests.into_iter().zip(handles) {
            let got = handle.wait().unwrap();
            let mut direct = PartitionModel::new(parts.clone(), request.f).unwrap();
            let want = run_algorithm1(&mut direct, &request.cfg).unwrap();
            assert_eq!(got.projection.as_slice(), want.projection.as_slice());
            assert_eq!(got.rows, want.rows);
            assert_eq!(got.comm, want.comm);
        }
    }

    #[test]
    fn query_errors_are_delivered() {
        let runtime = Runtime::new(locals(2, 10, 4, 1), RuntimeConfig::default()).unwrap();
        let handle = runtime.submit(QueryRequest::identity(cfg(0, 10, 1)));
        assert!(handle.wait().is_err());
    }

    #[test]
    fn drop_completes_in_flight_queries() {
        let parts = locals(2, 40, 6, 5);
        let runtime = Runtime::new(parts, RuntimeConfig::default()).unwrap();
        let handle = runtime.submit(QueryRequest::identity(cfg(2, 15, 9)));
        drop(runtime);
        assert!(handle.wait().is_ok());
    }
}
