//! [`Runtime`]: the single-dataset serving API, now a **thin shim over a
//! one-dataset [`Service`]**.
//!
//! `Runtime` predates the multi-dataset service façade: it owns exactly
//! one resident dataset and answers raw [`QueryRequest`]s. Everything it
//! does — executor pool, copy-on-write dispatch, the plan cache, the
//! failure paths — now lives in [`crate::service`]; `Runtime` keeps its
//! exact public surface (and its exact bits: outputs and per-query ledgers
//! are identical, which the pre-façade equivalence suite
//! `tests/runtime_equivalence.rs` proves by running unchanged through this
//! layer).
//!
//! ## Query planning
//!
//! The expensive distributed phase of a Z-sampled query — two estimator
//! passes plus coordinate injection — is `k`-independent and deterministic
//! in `(resident data, f, sampler parameters, prepare seed)`. The runtime
//! therefore keeps a bounded LRU [`PlanCache`](crate::planner::PlanCache):
//! unboosted Z queries whose [`PlanKey`](crate::planner::PlanKey)s collide
//! share one `Arc`-backed prepared sampler, prepared **exactly once**
//! (concurrent executors block on the in-flight preparation instead of
//! redoing it). [`Runtime::submit_batch`] is the batched entry point: B
//! queries over the same `f` and seed pay one preparation plus B
//! draw/fetch phases.
//!
//! Per-query accounting stays exact: a planned query's reported
//! [`Algorithm1Output::comm`] is the preparation delta plus its own
//! draw/fetch delta — bit-identical to what an unplanned run would have
//! charged — while [`QueryOutcome::plan`] reports the shared preparation
//! cost and whether this query was the one that physically paid it, so
//! batch-level savings are measurable (see the `planner` bench).
//!
//! The cache is keyed by the **residency epoch**: [`Runtime::reload_resident`]
//! swaps the dataset, bumps the epoch, and drops every stale plan — a
//! plan can never outlive the data it summarizes.
//!
//! ## Copy-on-write residency
//!
//! The resident matrices are loaded **once**; query dispatch performs no
//! copy of their entry data. Each per-query model is built from O(1)
//! handle clones of the shared copy-on-write [`Matrix`] storage (per
//! server: one `Arc` bump), and the query-local state — the
//! injected-coordinate scratch and residual sampling views — lives in the
//! model's `MatrixServer` scratch half, so concurrent queries cannot
//! interfere. Submit cost is therefore O(s), flat in the dataset size
//! `n·d` (see the `runtime_dispatch_latency` bench and the shared-payload
//! assertions in `tests/runtime_equivalence.rs`).
//!
//! ## Failure paths
//!
//! [`Runtime::submit`] and [`Runtime::submit_batch`] never panic: if the
//! executor pool has died (every executor panicked) or the runtime was
//! [`Runtime::shutdown`], every returned handle resolves to
//! [`CoreError::RuntimeUnavailable`], which is distinct from per-query
//! errors like `InvalidConfig` — callers can tell "my query was bad" apart
//! from "the pool is gone, retry elsewhere".

use crate::planner::PlanCacheStats;
use crate::query::{QueryError, QueryRequest};
use crate::service::{DatasetHandle, Service, ServiceConfig, ServiceError, Substrate, Ticket};
use dlra_comm::Topology;
use dlra_core::algorithm1::Algorithm1Output;
use dlra_core::{CoreError, Result};
use dlra_linalg::Matrix;
use std::sync::Arc;

pub use crate::service::{PlanUse, QueryOutcome};

/// The name the runtime's single dataset is resident under in its backing
/// [`Service`].
const RESIDENT_DATASET: &str = "resident";

/// Configuration of a [`Runtime`].
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Number of executor threads, i.e. queries in flight concurrently.
    pub executors: usize,
    /// Substrate each query runs on.
    pub substrate: Substrate,
    /// Capacity of the plan cache (distinct prepared samplers held);
    /// `0` disables planning entirely — every query then prepares its own
    /// sampler, exactly as before the planner existed. The default is 16,
    /// overridable with the `DLRA_PLAN_CACHE` environment variable
    /// (`DLRA_PLAN_CACHE=0` disables, `DLRA_PLAN_CACHE=n` sets the
    /// capacity) — which is how CI proves the planned and unplanned paths
    /// stay bit- and ledger-identical.
    pub plan_cache: usize,
    /// Whether the metrics registry is maintained (default `true`); see
    /// [`ServiceConfig::metrics`]. Never affects results either way.
    pub metrics: bool,
    /// Collective routing topology every query's cluster is built with;
    /// see [`ServiceConfig::topology`]. Results are bit-identical under
    /// every topology — only the message routing (and therefore the
    /// coordinator's inbox pressure) changes.
    pub topology: Topology,
    /// Admission bound on in-system queries; see
    /// [`ServiceConfig::max_queue_depth`]. `None` (the default, unless
    /// `DLRA_MAX_QUEUE` is set) keeps the legacy unbounded queue; a shed
    /// submission resolves to [`CoreError::RuntimeUnavailable`] through the
    /// runtime's error surface.
    pub max_queue_depth: Option<usize>,
    /// Resident-byte budget; see [`ServiceConfig::memory_budget`]. Mostly
    /// moot for a single-dataset runtime (the lone dataset is protected at
    /// load and pinned by traffic), but kept so `Runtime` and `Service`
    /// accept the same configuration.
    pub memory_budget: Option<u64>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        let ServiceConfig {
            executors,
            substrate,
            plan_cache,
            metrics,
            topology,
            max_queue_depth,
            memory_budget,
        } = ServiceConfig::default();
        RuntimeConfig {
            executors,
            substrate,
            plan_cache,
            metrics,
            topology,
            max_queue_depth,
            memory_budget,
        }
    }
}

impl From<RuntimeConfig> for ServiceConfig {
    fn from(config: RuntimeConfig) -> Self {
        ServiceConfig {
            executors: config.executors,
            substrate: config.substrate,
            plan_cache: config.plan_cache,
            metrics: config.metrics,
            topology: config.topology,
            max_queue_depth: config.max_queue_depth,
            memory_budget: config.memory_budget,
        }
    }
}

/// Maps a service-layer failure back onto the runtime's `CoreError`
/// surface, preserving the pre-façade error taxonomy exactly: protocol
/// rejections stay `InvalidConfig`, pool death stays `RuntimeUnavailable`.
fn service_to_core(err: ServiceError) -> CoreError {
    match err {
        ServiceError::InvalidQuery(QueryError::Rejected(m)) => CoreError::InvalidConfig(m),
        ServiceError::InvalidQuery(q) => CoreError::InvalidConfig(q.to_string()),
        ServiceError::RuntimeUnavailable(m) => CoreError::RuntimeUnavailable(m),
        ServiceError::InvalidDataset(m) => CoreError::InvalidModel(m),
        ServiceError::Execution(e) => e,
        // Unreachable through the Runtime surface (it never evicts, cancels,
        // or sets deadlines), but must still resolve to *something* typed.
        other => CoreError::RuntimeUnavailable(other.to_string()),
    }
}

/// Pending result of a submitted query.
pub struct QueryHandle {
    ticket: Ticket,
}

impl QueryHandle {
    /// Blocks until the query finishes. A query the runtime cannot deliver
    /// (executor panicked mid-run, pool dead or shut down) resolves to
    /// [`CoreError::RuntimeUnavailable`].
    pub fn wait(self) -> Result<Algorithm1Output> {
        self.wait_outcome().map(|o| o.output)
    }

    /// Like [`QueryHandle::wait`], also reporting how the query interacted
    /// with the plan cache.
    pub fn wait_outcome(self) -> Result<QueryOutcome> {
        self.ticket.wait().map_err(service_to_core)
    }

    /// Non-blocking poll; `None` while the query is still running. A dead
    /// query (executor panicked, pool shut down) yields
    /// `Some(Err(CoreError::RuntimeUnavailable))`, not `None`, so pollers
    /// cannot spin forever on it.
    pub fn try_wait(&self) -> Option<Result<Algorithm1Output>> {
        self.ticket
            .try_wait()
            .map(|r| r.map(|o| o.output).map_err(service_to_core))
    }
}

/// A resident cluster plus an executor pool answering Algorithm 1 queries
/// — a one-dataset shim over [`Service`].
///
/// ```
/// use dlra_core::prelude::*;
/// use dlra_runtime::{QueryRequest, Runtime, RuntimeConfig};
/// use dlra_linalg::Matrix;
/// use dlra_util::Rng;
///
/// let mut rng = Rng::new(3);
/// let locals: Vec<Matrix> = (0..3).map(|_| Matrix::gaussian(80, 12, &mut rng)).collect();
/// let runtime = Runtime::new(locals, RuntimeConfig::default()).unwrap();
///
/// // Two queries with different ranks, concurrently in flight.
/// let h1 = runtime.submit(QueryRequest::identity(
///     Algorithm1Config { k: 2, r: 25, sampler: SamplerKind::Uniform, ..Default::default() }));
/// let h2 = runtime.submit(QueryRequest::identity(
///     Algorithm1Config { k: 4, r: 40, sampler: SamplerKind::Uniform, ..Default::default() }));
/// assert_eq!(h1.wait().unwrap().projection.dim(), 12);
/// assert_eq!(h2.wait().unwrap().projection.dim(), 12);
/// ```
pub struct Runtime {
    service: Service,
    handle: DatasetHandle,
}

impl Runtime {
    /// Loads the resident dataset (one local matrix per server) and starts
    /// the executor pool. Loading shares the caller's matrix storage
    /// copy-on-write — no entry data is copied here or at query dispatch.
    pub fn new(locals: Vec<Matrix>, config: RuntimeConfig) -> Result<Self> {
        let service = Service::new(config.into());
        let handle = service
            .load(RESIDENT_DATASET, locals)
            .map_err(service_to_core)?;
        Ok(Runtime { service, handle })
    }

    /// Enqueues a query; returns immediately with its pending handle.
    ///
    /// Never panics: if the executor pool is gone — every executor died, or
    /// [`Runtime::shutdown`] ran — the handle resolves to
    /// [`CoreError::RuntimeUnavailable`] instead.
    pub fn submit(&self, request: QueryRequest) -> QueryHandle {
        QueryHandle {
            ticket: self.handle.submit_request(request),
        }
    }

    /// Submits a batch of queries; handles are returned in request order.
    ///
    /// With planning enabled, queries in the batch (and any concurrently
    /// submitted ones) that share a [`PlanKey`](crate::planner::PlanKey) —
    /// same `f`, same `ZSamplerParams`, same seed, unboosted — run
    /// `ZSampler::prepare` **at most once between them**: the first
    /// executor to reach a key not yet cached prepares, every other query
    /// blocks on that preparation and then draws from the shared structure
    /// concurrently. Per distinct key, at most one delivered
    /// [`QueryOutcome`] carries `plan.cache_hit == false` (the
    /// preparation's physical payer); on a cold cache there is exactly one
    /// per key, while a warm cache may serve the whole batch as hits with
    /// no payer at all — so total a batch's physical cost from the payers
    /// you actually observe plus the cached plans' already-paid
    /// `prepare_comm`, not from an assumed payer count.
    ///
    /// Like [`Runtime::submit`], this never panics on a dead or shut-down
    /// pool: every handle of the batch resolves to
    /// [`CoreError::RuntimeUnavailable`].
    pub fn submit_batch(
        &self,
        requests: impl IntoIterator<Item = QueryRequest>,
    ) -> Vec<QueryHandle> {
        requests.into_iter().map(|r| self.submit(r)).collect()
    }

    /// Replaces the resident dataset and bumps the residency epoch:
    /// in-flight queries finish against the payload they dispatched with
    /// (their models hold handle clones), subsequent queries see the new
    /// data, and every cached plan from the previous epoch is dropped —
    /// the plan cache can never serve a preparation of data that is gone.
    pub fn reload_resident(&self, locals: Vec<Matrix>) -> Result<()> {
        self.service
            .reload(RESIDENT_DATASET, locals)
            .map_err(service_to_core)
    }

    /// Stops the executor pool gracefully: already-queued and in-flight
    /// queries complete and deliver their results, then the executors are
    /// joined. Subsequent [`Runtime::submit`]s resolve to
    /// [`CoreError::RuntimeUnavailable`]. Idempotent; `Drop` runs the same
    /// path.
    pub fn shutdown(&mut self) {
        self.service.shutdown();
    }

    /// A point-in-time snapshot of the metrics registry, or `None` when
    /// [`RuntimeConfig::metrics`] is `false`. See [`Service::metrics`].
    pub fn metrics(&self) -> Option<dlra_obs::metrics::MetricsSnapshot> {
        self.service.metrics()
    }

    /// Global data shape `(n, d)` of the resident dataset.
    pub fn shape(&self) -> (usize, usize) {
        self.handle.shape()
    }

    /// Number of servers holding the resident dataset.
    pub fn num_servers(&self) -> usize {
        self.handle.num_servers()
    }

    /// The current residency epoch (0 at load, +1 per reload).
    pub fn resident_epoch(&self) -> u64 {
        self.handle.epoch()
    }

    /// The resident per-server matrices (evaluation and testing; queries
    /// run against shared clones of these, never against copies).
    pub fn resident(&self) -> Arc<Vec<Matrix>> {
        self.handle.resident()
    }

    /// Plan-cache counters, or `None` when planning is disabled.
    pub fn plan_cache_stats(&self) -> Option<PlanCacheStats> {
        self.handle.plan_stats()
    }

    /// Number of currently cached plans (0 when planning is disabled).
    pub fn plan_cache_len(&self) -> usize {
        self.handle.plan_cache_len()
    }

    /// The backing one-dataset [`Service`] (the runtime's dataset is
    /// resident under the name `"resident"`). Escape hatch for callers
    /// migrating to the multi-dataset façade.
    pub fn service(&self) -> &Service {
        &self.service
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlra_core::algorithm1::{run_algorithm1, Algorithm1Config, SamplerKind};
    use dlra_core::functions::EntryFunction;
    use dlra_core::model::PartitionModel;
    use dlra_sampler::ZSamplerParams;
    use dlra_util::Rng;

    fn locals(s: usize, n: usize, d: usize, seed: u64) -> Vec<Matrix> {
        let mut rng = Rng::new(seed);
        (0..s).map(|_| Matrix::gaussian(n, d, &mut rng)).collect()
    }

    fn cfg(k: usize, r: usize, seed: u64) -> Algorithm1Config {
        Algorithm1Config {
            k,
            r,
            sampler: SamplerKind::Uniform,
            seed,
            ..Default::default()
        }
    }

    fn config(executors: usize, substrate: Substrate, plan_cache: usize) -> RuntimeConfig {
        RuntimeConfig {
            executors,
            substrate,
            plan_cache,
            metrics: true,
            topology: Topology::Star,
            max_queue_depth: None,
            memory_budget: None,
        }
    }

    #[test]
    fn rejects_bad_residents() {
        assert!(Runtime::new(vec![], RuntimeConfig::default()).is_err());
        let mixed = vec![Matrix::zeros(3, 2), Matrix::zeros(2, 2)];
        assert!(Runtime::new(mixed, RuntimeConfig::default()).is_err());
    }

    #[test]
    fn concurrent_queries_match_direct_runs() {
        let parts = locals(3, 60, 8, 11);
        let runtime = Runtime::new(parts.clone(), config(4, Substrate::Threaded, 8)).unwrap();

        // Many concurrent queries with different (k, r, seed).
        let requests: Vec<QueryRequest> = (0..6)
            .map(|i| QueryRequest::identity(cfg(1 + i % 3, 20 + 5 * i, 100 + i as u64)))
            .collect();
        let handles: Vec<QueryHandle> =
            requests.iter().map(|q| runtime.submit(q.clone())).collect();

        for (request, handle) in requests.into_iter().zip(handles) {
            let got = handle.wait().unwrap();
            let mut direct = PartitionModel::new(parts.clone(), request.f).unwrap();
            let want = run_algorithm1(&mut direct, &request.cfg).unwrap();
            assert_eq!(
                got.projection.basis().as_slice(),
                want.projection.basis().as_slice()
            );
            assert_eq!(got.rows, want.rows);
            assert_eq!(got.comm, want.comm);
        }
    }

    #[test]
    fn planned_submits_match_unplanned_bit_for_bit() {
        // The same Z query through a cache-enabled and a cache-disabled
        // runtime: identical projection, rows, and per-query ledger.
        let parts = locals(3, 64, 8, 31);
        let request = QueryRequest::identity(Algorithm1Config {
            k: 2,
            r: 30,
            sampler: SamplerKind::Z(ZSamplerParams::default()),
            seed: 9,
            ..Default::default()
        });
        for substrate in [Substrate::Sequential, Substrate::Threaded] {
            let planned = Runtime::new(parts.clone(), config(2, substrate, 8)).unwrap();
            let unplanned = Runtime::new(parts.clone(), config(2, substrate, 0)).unwrap();
            let a = planned.submit(request.clone()).wait_outcome().unwrap();
            let b = unplanned.submit(request.clone()).wait_outcome().unwrap();
            assert!(a.plan.is_some(), "cache-enabled query must be planned");
            assert!(b.plan.is_none(), "cache-disabled query must not plan");
            assert_eq!(
                a.output.projection.basis().as_slice(),
                b.output.projection.basis().as_slice()
            );
            assert_eq!(a.output.rows, b.output.rows);
            assert_eq!(a.output.comm, b.output.comm, "{substrate:?}");
        }
    }

    #[test]
    fn boosted_and_non_z_queries_bypass_the_planner() {
        let parts = locals(2, 40, 6, 33);
        let runtime = Runtime::new(parts, config(1, Substrate::Sequential, 8)).unwrap();
        let boosted = QueryRequest::identity(Algorithm1Config {
            k: 2,
            r: 15,
            boost: 2,
            sampler: SamplerKind::Z(ZSamplerParams::default()),
            seed: 1,
        });
        assert!(runtime
            .submit(boosted)
            .wait_outcome()
            .unwrap()
            .plan
            .is_none());
        let uniform = QueryRequest::identity(cfg(2, 15, 2));
        assert!(runtime
            .submit(uniform)
            .wait_outcome()
            .unwrap()
            .plan
            .is_none());
        assert_eq!(runtime.plan_cache_len(), 0);
    }

    #[test]
    fn query_errors_are_delivered() {
        let runtime = Runtime::new(locals(2, 10, 4, 1), RuntimeConfig::default()).unwrap();
        let handle = runtime.submit(QueryRequest::identity(cfg(0, 10, 1)));
        // A bad query is a query error, not a runtime failure.
        assert!(matches!(handle.wait(), Err(CoreError::InvalidConfig(_)),));
    }

    #[test]
    fn submit_survives_total_executor_death() {
        let mut runtime =
            Runtime::new(locals(2, 10, 4, 2), config(2, Substrate::Sequential, 0)).unwrap();
        // Kill the whole pool: one poison task per executor, joined so the
        // death is fully observable before the next submit.
        runtime.service.poison_executors();
        // Regression: this used to panic on `expect("executor pool is
        // alive")`. Now the failure arrives through the handle, typed.
        let handle = runtime.submit(QueryRequest::identity(cfg(2, 10, 3)));
        assert!(matches!(
            handle.wait(),
            Err(CoreError::RuntimeUnavailable(_)),
        ));
    }

    #[test]
    fn submit_batch_survives_dead_pool() {
        // The batched path must degrade exactly like the single-submit
        // path: every handle of the batch resolves to RuntimeUnavailable,
        // in order, with no panic. (Until this test, only `submit` had a
        // dead-pool regression test.)
        let mut runtime =
            Runtime::new(locals(2, 10, 4, 6), config(2, Substrate::Sequential, 0)).unwrap();
        runtime.service.poison_executors();
        let handles =
            runtime.submit_batch((0..3).map(|i| QueryRequest::identity(cfg(2, 10, 10 + i))));
        assert_eq!(handles.len(), 3);
        for handle in handles {
            assert!(matches!(
                handle.wait(),
                Err(CoreError::RuntimeUnavailable(_)),
            ));
        }
        // And the same after a graceful shutdown.
        let mut runtime = Runtime::new(locals(2, 10, 4, 6), RuntimeConfig::default()).unwrap();
        runtime.shutdown();
        for handle in
            runtime.submit_batch((0..3).map(|i| QueryRequest::identity(cfg(2, 10, 20 + i))))
        {
            assert!(matches!(
                handle.wait(),
                Err(CoreError::RuntimeUnavailable(_)),
            ));
        }
    }

    #[test]
    fn submit_after_shutdown_reports_runtime_unavailable() {
        let mut runtime = Runtime::new(locals(2, 12, 4, 7), RuntimeConfig::default()).unwrap();
        // Shutdown lets queued work finish first.
        let queued = runtime.submit(QueryRequest::identity(cfg(2, 10, 4)));
        runtime.shutdown();
        assert!(queued.wait().is_ok());

        let late = runtime.submit(QueryRequest::identity(cfg(2, 10, 5)));
        // try_wait must observe the terminal state, not spin as "running".
        assert!(matches!(
            late.try_wait(),
            Some(Err(CoreError::RuntimeUnavailable(_))),
        ));
        // Shutdown is idempotent and Drop after shutdown is clean.
        runtime.shutdown();
    }

    #[test]
    fn dead_pool_error_is_distinguishable_from_query_errors() {
        let mut runtime = Runtime::new(locals(2, 10, 4, 8), RuntimeConfig::default()).unwrap();
        runtime.shutdown();
        let err = runtime
            .submit(QueryRequest::identity(cfg(2, 10, 6)))
            .wait()
            .unwrap_err();
        match err {
            CoreError::RuntimeUnavailable(msg) => {
                assert!(msg.contains("executor"), "unhelpful message: {msg}")
            }
            other => panic!("expected RuntimeUnavailable, got {other}"),
        }
    }

    #[test]
    fn dispatch_clones_handles_not_data() {
        let parts = locals(3, 50, 6, 21);
        for substrate in [Substrate::Sequential, Substrate::Threaded] {
            let runtime = Runtime::new(parts.clone(), config(2, substrate, 16)).unwrap();
            // Residency shares the caller's storage...
            for (mine, theirs) in parts.iter().zip(runtime.resident().iter()) {
                assert!(mine.shares_storage(theirs));
            }
            // ...and a completed query leaves exactly the caller + runtime
            // holding it (the query's shares were handles, released on
            // completion — never detached copies).
            runtime
                .submit(QueryRequest::identity(cfg(2, 20, 22)))
                .wait()
                .unwrap();
            drop(runtime);
            for mine in &parts {
                assert_eq!(mine.storage_refcount(), 1);
            }
        }
    }

    #[test]
    fn reload_resident_swaps_data_and_epoch() {
        let old = locals(2, 30, 6, 40);
        let new = locals(2, 24, 5, 41);
        let runtime = Runtime::new(old.clone(), config(2, Substrate::Sequential, 8)).unwrap();
        assert_eq!(runtime.resident_epoch(), 0);
        assert_eq!(runtime.shape(), (30, 6));

        runtime.reload_resident(new.clone()).unwrap();
        assert_eq!(runtime.resident_epoch(), 1);
        assert_eq!(runtime.shape(), (24, 5));
        for (mine, theirs) in new.iter().zip(runtime.resident().iter()) {
            assert!(mine.shares_storage(theirs), "reload copied matrix data");
        }
        // Old payload fully released by the runtime.
        for m in &old {
            assert_eq!(m.storage_refcount(), 1);
        }

        // Queries now answer against the new data.
        let got = runtime
            .submit(QueryRequest::identity(cfg(2, 12, 42)))
            .wait()
            .unwrap();
        let mut direct = PartitionModel::new(new, EntryFunction::Identity).unwrap();
        let want = run_algorithm1(&mut direct, &cfg(2, 12, 42)).unwrap();
        assert_eq!(
            got.projection.basis().as_slice(),
            want.projection.basis().as_slice()
        );

        // Bad reloads leave the runtime untouched.
        assert!(runtime.reload_resident(vec![]).is_err());
        assert_eq!(runtime.resident_epoch(), 1);
    }

    #[test]
    fn drop_completes_in_flight_queries() {
        let parts = locals(2, 40, 6, 5);
        let runtime = Runtime::new(parts, RuntimeConfig::default()).unwrap();
        let handle = runtime.submit(QueryRequest::identity(cfg(2, 15, 9)));
        drop(runtime);
        assert!(handle.wait().is_ok());
    }
}
