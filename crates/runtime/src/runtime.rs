//! [`Runtime`]: a resident cluster serving many Algorithm 1 queries
//! concurrently.
//!
//! The runtime owns one resident dataset (the per-server local matrices)
//! and a pool of executor threads. [`Runtime::submit`] enqueues a
//! [`QueryRequest`] — target rank `k`, sample count `r`, boosting,
//! sampler, seed, and entrywise function `f` may all differ per query —
//! and returns a [`QueryHandle`] immediately; executors pop queries,
//! instantiate a partition model over the resident locals on the
//! configured substrate, run the full protocol, and deliver the result
//! through the handle. Many queries are in flight at once, which is the
//! first step toward serving real traffic against one loaded cluster.
//!
//! ## Copy-on-write residency
//!
//! The resident matrices are loaded **once**; query dispatch performs no
//! copy of their entry data. Each per-query model is built from O(1)
//! handle clones of the shared copy-on-write [`Matrix`] storage (per
//! server: one `Arc` bump), and the query-local state — the
//! injected-coordinate scratch and residual sampling views — lives in the
//! model's `MatrixServer` scratch half, so concurrent queries cannot
//! interfere. Submit cost is therefore O(s), flat in the dataset size
//! `n·d` (see the `runtime_dispatch_latency` bench and the shared-payload
//! assertions in `tests/runtime_equivalence.rs`).
//!
//! ## Failure paths
//!
//! [`Runtime::submit`] never panics: if the executor pool has died (every
//! executor panicked) or the runtime was [`Runtime::shutdown`], the
//! returned handle resolves to [`CoreError::RuntimeUnavailable`], which is
//! distinct from per-query errors like `InvalidConfig` — callers can tell
//! "my query was bad" apart from "the pool is gone, retry elsewhere".

use crate::threaded::ThreadedCluster;
use dlra_core::algorithm1::{run_algorithm1, Algorithm1Config, Algorithm1Output};
use dlra_core::functions::EntryFunction;
use dlra_core::model::PartitionModel;
use dlra_core::{CoreError, Result};
use dlra_linalg::Matrix;
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Which execution substrate the pooled executors build per query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Substrate {
    /// The sequential in-process simulator (`dlra-comm::Cluster`).
    Sequential,
    /// The threaded message-passing cluster ([`ThreadedCluster`]).
    #[default]
    Threaded,
}

/// Configuration of a [`Runtime`].
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Number of executor threads, i.e. queries in flight concurrently.
    pub executors: usize,
    /// Substrate each query runs on.
    pub substrate: Substrate,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        let executors = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(2)
            .clamp(1, 8);
        RuntimeConfig {
            executors,
            substrate: Substrate::default(),
        }
    }
}

/// One Algorithm 1 query against the resident dataset.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// The entrywise function `f` applied to the aggregated entries.
    /// Interpreted exactly as by `PartitionModel::new` (for `GmRoot`,
    /// submit locally pre-transformed locals).
    pub f: EntryFunction,
    /// Protocol configuration (`k`, `r`, boosting, sampler, seed).
    pub cfg: Algorithm1Config,
}

impl QueryRequest {
    /// A query with `f = Identity`.
    pub fn identity(cfg: Algorithm1Config) -> Self {
        QueryRequest {
            f: EntryFunction::Identity,
            cfg,
        }
    }
}

enum Task {
    Query {
        request: QueryRequest,
        reply: Sender<Result<Algorithm1Output>>,
    },
    /// Test-only: makes the executor that pops it panic, so tests can kill
    /// the pool and exercise the dead-runtime failure paths.
    #[cfg(test)]
    Poison,
}

/// The error a handle resolves to when the pool cannot (or can no longer)
/// run its query.
fn runtime_unavailable() -> CoreError {
    CoreError::RuntimeUnavailable(
        "executor pool is not running (all executors exited or the runtime shut down)".into(),
    )
}

/// Pending result of a submitted query.
pub struct QueryHandle {
    rx: Receiver<Result<Algorithm1Output>>,
}

impl QueryHandle {
    /// Blocks until the query finishes. A query the runtime cannot deliver
    /// (executor panicked mid-run, pool dead or shut down) resolves to
    /// [`CoreError::RuntimeUnavailable`].
    pub fn wait(self) -> Result<Algorithm1Output> {
        match self.rx.recv() {
            Ok(result) => result,
            Err(_) => Err(runtime_unavailable()),
        }
    }

    /// Non-blocking poll; `None` while the query is still running. A dead
    /// query (executor panicked, pool shut down) yields
    /// `Some(Err(CoreError::RuntimeUnavailable))`, not `None`, so pollers
    /// cannot spin forever on it.
    pub fn try_wait(&self) -> Option<Result<Algorithm1Output>> {
        match self.rx.try_recv() {
            Ok(result) => Some(result),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(runtime_unavailable())),
        }
    }
}

/// A resident cluster plus an executor pool answering Algorithm 1 queries.
///
/// ```
/// use dlra_core::prelude::*;
/// use dlra_runtime::{QueryRequest, Runtime, RuntimeConfig};
/// use dlra_linalg::Matrix;
/// use dlra_util::Rng;
///
/// let mut rng = Rng::new(3);
/// let locals: Vec<Matrix> = (0..3).map(|_| Matrix::gaussian(80, 12, &mut rng)).collect();
/// let runtime = Runtime::new(locals, RuntimeConfig::default()).unwrap();
///
/// // Two queries with different ranks, concurrently in flight.
/// let h1 = runtime.submit(QueryRequest::identity(
///     Algorithm1Config { k: 2, r: 25, sampler: SamplerKind::Uniform, ..Default::default() }));
/// let h2 = runtime.submit(QueryRequest::identity(
///     Algorithm1Config { k: 4, r: 40, sampler: SamplerKind::Uniform, ..Default::default() }));
/// assert_eq!(h1.wait().unwrap().projection.dim(), 12);
/// assert_eq!(h2.wait().unwrap().projection.dim(), 12);
/// ```
pub struct Runtime {
    queue: Option<Sender<Task>>,
    executors: Vec<JoinHandle<()>>,
    /// The resident per-server matrices. Executors hold the same `Arc`;
    /// per-query models are built from O(1) handle clones of the matrices
    /// inside, never from copies of their entry data.
    resident: Arc<Vec<Matrix>>,
    shape: (usize, usize),
}

impl Runtime {
    /// Loads the resident dataset (one local matrix per server) and starts
    /// the executor pool. Loading shares the caller's matrix storage
    /// copy-on-write — no entry data is copied here or at query dispatch.
    pub fn new(locals: Vec<Matrix>, config: RuntimeConfig) -> Result<Self> {
        if locals.is_empty() {
            return Err(CoreError::InvalidModel("no servers".into()));
        }
        let (n, d) = locals[0].shape();
        if n == 0 || d == 0 {
            return Err(CoreError::InvalidModel(format!("empty matrices {n}x{d}")));
        }
        if let Some((t, m)) = locals.iter().enumerate().find(|(_, m)| m.shape() != (n, d)) {
            return Err(CoreError::InvalidModel(format!(
                "server {t} has shape {:?}, expected ({n}, {d})",
                m.shape()
            )));
        }
        let resident = Arc::new(locals);
        let (queue, tasks) = mpsc::channel::<Task>();
        let tasks = Arc::new(Mutex::new(tasks));
        let executors = (0..config.executors.max(1))
            .map(|i| {
                let tasks = Arc::clone(&tasks);
                let resident = Arc::clone(&resident);
                let substrate = config.substrate;
                std::thread::Builder::new()
                    .name(format!("dlra-executor-{i}"))
                    .spawn(move || loop {
                        // Hold the queue lock only for the pop, not the run.
                        let popped = tasks.lock().expect("task queue poisoned").recv();
                        match popped {
                            Ok(Task::Query { request, reply }) => {
                                let result = execute(&resident, substrate, &request);
                                // The caller may have dropped its handle;
                                // that's fine, the result is discarded.
                                let _ = reply.send(result);
                            }
                            #[cfg(test)]
                            Ok(Task::Poison) => panic!("poison task (test-only)"),
                            Err(_) => break,
                        }
                    })
                    .expect("spawn runtime executor thread")
            })
            .collect();
        Ok(Runtime {
            queue: Some(queue),
            executors,
            resident,
            shape: (n, d),
        })
    }

    /// Enqueues a query; returns immediately with its pending handle.
    ///
    /// Never panics: if the executor pool is gone — every executor died, or
    /// [`Runtime::shutdown`] ran — the handle resolves to
    /// [`CoreError::RuntimeUnavailable`] instead.
    pub fn submit(&self, request: QueryRequest) -> QueryHandle {
        let (reply, rx) = mpsc::channel();
        match self.queue.as_ref() {
            Some(queue) => {
                if let Err(mpsc::SendError(task)) = queue.send(Task::Query { request, reply }) {
                    // Every executor has exited (the pop side of the queue
                    // is gone): deliver the failure through the handle.
                    match task {
                        Task::Query { reply, .. } => {
                            let _ = reply.send(Err(runtime_unavailable()));
                        }
                        #[cfg(test)]
                        Task::Poison => unreachable!("submit only sends queries"),
                    }
                }
            }
            // Shut down: the handle must still resolve.
            None => {
                let _ = reply.send(Err(runtime_unavailable()));
            }
        }
        QueryHandle { rx }
    }

    /// Stops the executor pool gracefully: already-queued and in-flight
    /// queries complete and deliver their results, then the executors are
    /// joined. Subsequent [`Runtime::submit`]s resolve to
    /// [`CoreError::RuntimeUnavailable`]. Idempotent; `Drop` runs the same
    /// path.
    pub fn shutdown(&mut self) {
        self.queue.take();
        for handle in self.executors.drain(..) {
            let _ = handle.join();
        }
    }

    /// Global data shape `(n, d)` of the resident dataset.
    pub fn shape(&self) -> (usize, usize) {
        self.shape
    }

    /// Number of servers holding the resident dataset.
    pub fn num_servers(&self) -> usize {
        self.resident.len()
    }

    /// The resident per-server matrices (evaluation and testing; queries
    /// run against shared clones of these, never against copies).
    pub fn resident(&self) -> &[Matrix] {
        &self.resident
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Runs one query on its private model instance.
fn execute(
    resident: &Arc<Vec<Matrix>>,
    substrate: Substrate,
    request: &QueryRequest,
) -> Result<Algorithm1Output> {
    // O(s) handle clones of the shared payload: each `Matrix` clone bumps a
    // refcount, no entry data moves. The model's query-local scratch
    // (injected coordinates, residual views) is freshly allocated per query.
    let parts: Vec<Matrix> = resident.iter().cloned().collect();
    match substrate {
        Substrate::Sequential => {
            let mut model = PartitionModel::new(parts, request.f)?;
            run_algorithm1(&mut model, &request.cfg)
        }
        Substrate::Threaded => {
            let mut model = PartitionModel::with_substrate(parts, request.f, ThreadedCluster::new)?;
            run_algorithm1(&mut model, &request.cfg)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlra_core::algorithm1::SamplerKind;
    use dlra_util::Rng;

    fn locals(s: usize, n: usize, d: usize, seed: u64) -> Vec<Matrix> {
        let mut rng = Rng::new(seed);
        (0..s).map(|_| Matrix::gaussian(n, d, &mut rng)).collect()
    }

    fn cfg(k: usize, r: usize, seed: u64) -> Algorithm1Config {
        Algorithm1Config {
            k,
            r,
            sampler: SamplerKind::Uniform,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn rejects_bad_residents() {
        assert!(Runtime::new(vec![], RuntimeConfig::default()).is_err());
        let mixed = vec![Matrix::zeros(3, 2), Matrix::zeros(2, 2)];
        assert!(Runtime::new(mixed, RuntimeConfig::default()).is_err());
    }

    #[test]
    fn concurrent_queries_match_direct_runs() {
        let parts = locals(3, 60, 8, 11);
        let runtime = Runtime::new(
            parts.clone(),
            RuntimeConfig {
                executors: 4,
                substrate: Substrate::Threaded,
            },
        )
        .unwrap();

        // Many concurrent queries with different (k, r, seed).
        let requests: Vec<QueryRequest> = (0..6)
            .map(|i| QueryRequest::identity(cfg(1 + i % 3, 20 + 5 * i, 100 + i as u64)))
            .collect();
        let handles: Vec<QueryHandle> =
            requests.iter().map(|q| runtime.submit(q.clone())).collect();

        for (request, handle) in requests.into_iter().zip(handles) {
            let got = handle.wait().unwrap();
            let mut direct = PartitionModel::new(parts.clone(), request.f).unwrap();
            let want = run_algorithm1(&mut direct, &request.cfg).unwrap();
            assert_eq!(
                got.projection.basis().as_slice(),
                want.projection.basis().as_slice()
            );
            assert_eq!(got.rows, want.rows);
            assert_eq!(got.comm, want.comm);
        }
    }

    #[test]
    fn query_errors_are_delivered() {
        let runtime = Runtime::new(locals(2, 10, 4, 1), RuntimeConfig::default()).unwrap();
        let handle = runtime.submit(QueryRequest::identity(cfg(0, 10, 1)));
        // A bad query is a query error, not a runtime failure.
        assert!(matches!(handle.wait(), Err(CoreError::InvalidConfig(_)),));
    }

    #[test]
    fn submit_survives_total_executor_death() {
        let executors = 2;
        let mut runtime = Runtime::new(
            locals(2, 10, 4, 2),
            RuntimeConfig {
                executors,
                substrate: Substrate::Sequential,
            },
        )
        .unwrap();
        // Kill the whole pool: one poison task per executor, then join so
        // the death is fully observable before the next submit.
        for _ in 0..executors {
            runtime.queue.as_ref().unwrap().send(Task::Poison).unwrap();
        }
        for handle in runtime.executors.drain(..) {
            assert!(handle.join().is_err(), "executor should have panicked");
        }
        // Regression: this used to panic on `expect("executor pool is
        // alive")`. Now the failure arrives through the handle, typed.
        let handle = runtime.submit(QueryRequest::identity(cfg(2, 10, 3)));
        assert!(matches!(
            handle.wait(),
            Err(CoreError::RuntimeUnavailable(_)),
        ));
    }

    #[test]
    fn submit_after_shutdown_reports_runtime_unavailable() {
        let mut runtime = Runtime::new(locals(2, 12, 4, 7), RuntimeConfig::default()).unwrap();
        // Shutdown lets queued work finish first.
        let queued = runtime.submit(QueryRequest::identity(cfg(2, 10, 4)));
        runtime.shutdown();
        assert!(queued.wait().is_ok());

        let late = runtime.submit(QueryRequest::identity(cfg(2, 10, 5)));
        // try_wait must observe the terminal state, not spin as "running".
        assert!(matches!(
            late.try_wait(),
            Some(Err(CoreError::RuntimeUnavailable(_))),
        ));
        // Shutdown is idempotent and Drop after shutdown is clean.
        runtime.shutdown();
    }

    #[test]
    fn dead_pool_error_is_distinguishable_from_query_errors() {
        let mut runtime = Runtime::new(locals(2, 10, 4, 8), RuntimeConfig::default()).unwrap();
        runtime.shutdown();
        let err = runtime
            .submit(QueryRequest::identity(cfg(2, 10, 6)))
            .wait()
            .unwrap_err();
        match err {
            CoreError::RuntimeUnavailable(msg) => {
                assert!(msg.contains("executor"), "unhelpful message: {msg}")
            }
            other => panic!("expected RuntimeUnavailable, got {other}"),
        }
    }

    #[test]
    fn dispatch_clones_handles_not_data() {
        let parts = locals(3, 50, 6, 21);
        for substrate in [Substrate::Sequential, Substrate::Threaded] {
            let runtime = Runtime::new(
                parts.clone(),
                RuntimeConfig {
                    executors: 2,
                    substrate,
                },
            )
            .unwrap();
            // Residency shares the caller's storage...
            for (mine, theirs) in parts.iter().zip(runtime.resident()) {
                assert!(mine.shares_storage(theirs));
            }
            // ...and a completed query leaves exactly the caller + runtime
            // holding it (the query's shares were handles, released on
            // completion — never detached copies).
            runtime
                .submit(QueryRequest::identity(cfg(2, 20, 22)))
                .wait()
                .unwrap();
            drop(runtime);
            for mine in &parts {
                assert_eq!(mine.storage_refcount(), 1);
            }
        }
    }

    #[test]
    fn drop_completes_in_flight_queries() {
        let parts = locals(2, 40, 6, 5);
        let runtime = Runtime::new(parts, RuntimeConfig::default()).unwrap();
        let handle = runtime.submit(QueryRequest::identity(cfg(2, 15, 9)));
        drop(runtime);
        assert!(handle.wait().is_ok());
    }
}
