//! The query planner: a bounded, LRU [`PlanCache`] of prepared Z-sampler
//! plans keyed by [`PlanKey`].
//!
//! Algorithm 1's expensive distributed phase — building and merging the
//! per-server sketch bundles behind the Z-sampler — is `k`-independent and
//! deterministic in `(data, f, ZSamplerParams, prepare seed)`. The planner
//! exploits that: queries whose [`PlanKey`]s collide share one
//! `Arc`-backed [`PreparedZPlan`], so a batch of B queries over the same
//! `f` pays the preparation's communication and wall clock once instead of
//! B times.
//!
//! ## Keying and invalidation
//!
//! A key is the **dataset id** (the service layer partitions one cache
//! per dataset, but the id keys anyway — a plan can never cross datasets
//! even if partitions were ever merged), the exact bit pattern of the
//! entrywise `f` (discriminant plus parameter bits — `0.1 + 0.2 ≠ 0.3`
//! matters here, so no epsilon equality), the exact [`ZSamplerParams`],
//! the prepare seed, and the **residency epoch** of the dataset the plan
//! was prepared against. The epoch is bumped whenever that dataset's
//! resident matrices change (`Service::reload` / `Runtime::reload_resident`),
//! so stale plans can never be served: their keys simply stop matching,
//! and [`PlanCache::retain_epoch`] drops them eagerly.
//!
//! ## Concurrency
//!
//! [`PlanCache::get_or_prepare`] has once-per-key semantics: the first
//! thread to miss installs an in-progress slot and runs the (expensive)
//! `build`; concurrent requests for the same key block on the slot instead
//! of preparing redundantly. A failed build wakes the waiters, and one of
//! them takes over the attempt — errors are per-query, never cached.

use dlra_core::algorithm1::PreparedZPlan;
use dlra_core::functions::EntryFunction;
use dlra_core::Result;
use dlra_obs::trace;
use dlra_sampler::ZSamplerParams;
use dlra_util::sync::MutexExt;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// Identity of one preparation: two queries may share a prepared sampler
/// exactly when their keys are equal.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Service-unique id of the dataset the plan reads. Caches are already
    /// partitioned per dataset, but the id keys anyway — a plan can never
    /// cross datasets even if partitions were ever merged or shared.
    dataset: u64,
    /// Entrywise `f`: discriminant and parameter bit pattern.
    f: [u64; 2],
    /// Every `ZSamplerParams` knob, f64 knobs as bit patterns.
    params: [u64; 12],
    /// The prepare seed (both estimator passes derive from it).
    seed: u64,
    /// Residency epoch of the dataset the plan reads.
    epoch: u64,
}

impl PlanKey {
    /// Builds the key for a query's preparation against dataset `dataset`.
    pub fn new(
        dataset: u64,
        f: &EntryFunction,
        params: &ZSamplerParams,
        seed: u64,
        epoch: u64,
    ) -> Self {
        let f = match *f {
            EntryFunction::Identity => [0, 0],
            EntryFunction::GmRoot { p } => [1, p.to_bits()],
            EntryFunction::Huber { k } => [2, k.to_bits()],
            EntryFunction::L1L2 => [3, 0],
            EntryFunction::Fair { c } => [4, c.to_bits()],
            EntryFunction::Max => [5, 0],
        };
        PlanKey {
            dataset,
            f,
            params: [
                params.eps_class.to_bits(),
                params.hh_depth as u64,
                params.hh_width as u64,
                params.groups as u64,
                params.reps as u64,
                params.b_threshold.to_bits(),
                params.max_levels as u64,
                params.window_lo as u64,
                params.window_hi as u64,
                params.max_inject_per_class as u64,
                params.g_independence as u64,
                // max_draw_tries and max_candidates_per_level both shape
                // the prepared structure; fold them into one word to keep
                // the key compact.
                ((params.max_draw_tries as u64) << 32) | params.max_candidates_per_level as u64,
            ],
            seed,
            epoch,
        }
    }

    /// The residency epoch this key was built against.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The dataset id this key was built against.
    pub fn dataset(&self) -> u64 {
        self.dataset
    }
}

/// Cache observability: cumulative counters since construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanCacheStats {
    /// Requests served from an existing plan.
    pub hits: u64,
    /// Requests that ran a preparation.
    pub misses: u64,
    /// Plans evicted by the LRU bound.
    pub evictions: u64,
    /// Plans dropped by epoch invalidation.
    pub invalidations: u64,
}

impl PlanCacheStats {
    /// Hits over total lookups, `0.0` when the cache was never consulted.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl std::fmt::Display for PlanCacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({:.1}% hit), {} evicted, {} invalidated",
            self.hits,
            self.misses,
            self.hit_ratio() * 100.0,
            self.evictions,
            self.invalidations
        )
    }
}

enum SlotState {
    /// A thread is running the preparation; others wait.
    Preparing,
    /// The preparation finished; every waiter shares this plan.
    Ready(Arc<PreparedZPlan>),
    /// The preparation failed; one waiter takes over the attempt.
    Failed,
}

struct PlanSlot {
    // dlra-lock-order: plan.slot
    state: Mutex<SlotState>,
    turned: Condvar,
}

struct CacheEntry {
    slot: Arc<PlanSlot>,
    last_used: u64,
    /// Set by [`PlanCache::retain_epoch`] on in-preparation entries whose
    /// epoch is gone: the finished plan is delivered to its waiters but
    /// must not (re)occupy a cache slot — no future key can match it.
    stale: bool,
}

struct CacheInner {
    entries: HashMap<PlanKey, CacheEntry>,
    tick: u64,
}

/// A bounded LRU cache of shared [`PreparedZPlan`]s with once-per-key
/// preparation. See the module docs for keying, invalidation, and
/// concurrency semantics.
pub struct PlanCache {
    capacity: usize,
    // dlra-lock-order: plan.cache
    inner: Mutex<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl PlanCache {
    /// An empty cache holding at most `capacity ≥ 1` plans.
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity: capacity.max(1),
            inner: Mutex::new(CacheInner {
                entries: HashMap::new(),
                tick: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Maximum number of cached plans.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cached (or in-preparation) plans.
    pub fn len(&self) -> usize {
        self.inner.lock_recover().entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cumulative counters.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }

    /// Returns the plan for `key`, running `build` (and caching its
    /// result) if no thread has prepared it yet. The boolean is `true` for
    /// a cache hit — i.e. this call did **not** run the preparation.
    /// Concurrent calls with the same key run `build` exactly once: the
    /// losers block until the winner's preparation lands and then share
    /// its `Arc`. A failing `build` is not cached; the error goes to the
    /// caller and a waiter (or the next request) retries.
    pub fn get_or_prepare(
        &self,
        key: &PlanKey,
        build: impl FnOnce() -> Result<PreparedZPlan>,
    ) -> Result<(Arc<PreparedZPlan>, bool)> {
        let (slot, mine) = {
            let mut inner = self.inner.lock_recover();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.entries.get_mut(key) {
                entry.last_used = tick;
                (Arc::clone(&entry.slot), false)
            } else {
                let slot = Arc::new(PlanSlot {
                    state: Mutex::new(SlotState::Preparing),
                    turned: Condvar::new(),
                });
                inner.entries.insert(
                    key.clone(),
                    CacheEntry {
                        slot: Arc::clone(&slot),
                        last_used: tick,
                        stale: false,
                    },
                );
                self.evict_over_capacity(&mut inner, key);
                (slot, true)
            }
        };

        if !mine {
            let wait_span = trace::span("plan", "plan.wait");
            let mut state = slot.state.lock_recover();
            loop {
                match &*state {
                    SlotState::Preparing => {
                        state = slot
                            .turned
                            .wait(state)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                    SlotState::Ready(plan) => {
                        let plan = Arc::clone(plan);
                        drop(state);
                        drop(wait_span);
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return Ok((plan, true));
                    }
                    SlotState::Failed => {
                        // Take over the failed attempt.
                        *state = SlotState::Preparing;
                        drop(state);
                        drop(wait_span);
                        return self.prepare_into(key, &slot, build);
                    }
                }
            }
        }
        self.prepare_into(key, &slot, build)
    }

    /// Runs `build` for a key whose slot this thread owns (it observed or
    /// set `Preparing`), publishing the result to the slot, the map, and
    /// the counters.
    fn prepare_into(
        &self,
        key: &PlanKey,
        slot: &Arc<PlanSlot>,
        build: impl FnOnce() -> Result<PreparedZPlan>,
    ) -> Result<(Arc<PreparedZPlan>, bool)> {
        // If `build` unwinds (an executor panic is an expected failure
        // mode, see the runtime's poison tests), the guard marks the slot
        // Failed on the way out so waiters take over instead of parking
        // forever on a slot nobody will ever settle.
        struct AbandonOnUnwind<'a> {
            cache: &'a PlanCache,
            key: &'a PlanKey,
            slot: &'a Arc<PlanSlot>,
            armed: bool,
        }
        impl Drop for AbandonOnUnwind<'_> {
            fn drop(&mut self) {
                if self.armed {
                    self.cache.abandon(self.key, self.slot);
                }
            }
        }
        let mut guard = AbandonOnUnwind {
            cache: self,
            key,
            slot,
            armed: true,
        };
        let built = {
            let _span = trace::span("plan", "plan.prepare").arg("dataset", key.dataset);
            build()
        };
        guard.armed = false;
        drop(guard);

        match built {
            Ok(plan) => {
                let plan = Arc::new(plan);
                *slot.state.lock_recover() = SlotState::Ready(Arc::clone(&plan));
                slot.turned.notify_all();
                let mut inner = self.inner.lock_recover();
                inner.tick += 1;
                let tick = inner.tick;
                match inner.entries.get(key) {
                    // retain_epoch marked this preparation stale while it
                    // was in flight: deliver to the waiters (they hold the
                    // slot), but never let it occupy a cache slot — no
                    // future key can match an old epoch.
                    Some(entry) if entry.stale && Arc::ptr_eq(&entry.slot, slot) => {
                        inner.entries.remove(key);
                        self.invalidations.fetch_add(1, Ordering::Relaxed);
                    }
                    Some(_) => {}
                    // A failed first attempt removed the entry; the
                    // takeover re-inserts so its success is visible to
                    // future requests.
                    None => {
                        inner.entries.insert(
                            key.clone(),
                            CacheEntry {
                                slot: Arc::clone(slot),
                                last_used: tick,
                                stale: false,
                            },
                        );
                        self.evict_over_capacity(&mut inner, key);
                    }
                }
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                Ok((plan, false))
            }
            Err(err) => {
                self.abandon(key, slot);
                Err(err)
            }
        }
    }

    /// Abandons an in-flight preparation this thread owned: never cache
    /// the failure — drop the entry (if it is still ours) so later
    /// requests retry, and wake the waiters so one of them takes over.
    /// Runs on both the `Err` path and (via the unwind guard) a panicking
    /// `build`, so locks are recovered from poisoning rather than
    /// panicking again mid-unwind.
    fn abandon(&self, key: &PlanKey, slot: &Arc<PlanSlot>) {
        {
            let mut inner = self
                .inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if inner
                .entries
                .get(key)
                .is_some_and(|e| Arc::ptr_eq(&e.slot, slot))
            {
                inner.entries.remove(key);
            }
        }
        *slot
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = SlotState::Failed;
        slot.turned.notify_all();
    }

    /// Evicts least-recently-used *ready* plans until the bound holds
    /// (in-preparation slots are never evicted — a waiter may be parked on
    /// them).
    fn evict_over_capacity(&self, inner: &mut CacheInner, just_inserted: &PlanKey) {
        while inner.entries.len() > self.capacity {
            let victim = inner
                .entries
                .iter()
                .filter(|(key, entry)| {
                    *key != just_inserted
                        && matches!(*entry.slot.state.lock_recover(), SlotState::Ready(_))
                })
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(key, _)| key.clone());
            let Some(victim) = victim else { break };
            inner.entries.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drops every settled plan whose key is not from `epoch` (residency
    /// changed; the data those plans summarize is gone). In-preparation
    /// slots are kept — waiters are parked on them, and a stale key can
    /// never be looked up again anyway (the epoch is part of the key) —
    /// but marked stale, so the finished plan is delivered to its waiters
    /// and then purged instead of re-entering the cache.
    pub fn retain_epoch(&self, epoch: u64) {
        let mut inner = self.inner.lock_recover();
        let before = inner.entries.len();
        inner.entries.retain(|key, entry| {
            key.epoch == epoch || {
                let preparing = matches!(*entry.slot.state.lock_recover(), SlotState::Preparing);
                if preparing {
                    entry.stale = true;
                }
                preparing
            }
        });
        let dropped = (before - inner.entries.len()) as u64;
        self.invalidations.fetch_add(dropped, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlra_core::algorithm1::prepare_z_plan;
    use dlra_core::model::PartitionModel;
    use dlra_linalg::Matrix;
    use dlra_util::Rng;

    fn small_plan(seed: u64) -> PreparedZPlan {
        let mut rng = Rng::new(seed);
        let parts: Vec<Matrix> = (0..2).map(|_| Matrix::gaussian(24, 6, &mut rng)).collect();
        let mut model = PartitionModel::new(parts, EntryFunction::Identity).unwrap();
        prepare_z_plan(&mut model, &ZSamplerParams::default(), seed).unwrap()
    }

    fn key(seed: u64, epoch: u64) -> PlanKey {
        PlanKey::new(
            0,
            &EntryFunction::Identity,
            &ZSamplerParams::default(),
            seed,
            epoch,
        )
    }

    #[test]
    fn keys_distinguish_dataset_f_params_seed_epoch() {
        let base = key(1, 0);
        assert_eq!(base, key(1, 0));
        assert_ne!(base, key(2, 0), "seed must key");
        assert_ne!(base, key(1, 1), "epoch must key");
        assert_ne!(
            base,
            PlanKey::new(
                7,
                &EntryFunction::Identity,
                &ZSamplerParams::default(),
                1,
                0
            ),
            "dataset id must key"
        );
        let other_params = ZSamplerParams {
            hh_width: 64,
            ..ZSamplerParams::default()
        };
        assert_ne!(
            base,
            PlanKey::new(0, &EntryFunction::Identity, &other_params, 1, 0),
            "params must key"
        );
        assert_ne!(
            base,
            PlanKey::new(
                0,
                &EntryFunction::Huber { k: 1.0 },
                &ZSamplerParams::default(),
                1,
                0
            ),
            "f must key"
        );
        assert_ne!(
            PlanKey::new(
                0,
                &EntryFunction::Huber { k: 1.0 },
                &ZSamplerParams::default(),
                1,
                0
            ),
            PlanKey::new(
                0,
                &EntryFunction::Huber { k: 2.0 },
                &ZSamplerParams::default(),
                1,
                0
            ),
            "f parameters must key"
        );
        assert_eq!(base.dataset(), 0);
        assert_eq!(base.epoch(), 0);
    }

    #[test]
    fn hit_returns_the_same_arc() {
        let cache = PlanCache::new(4);
        let (first, hit1) = cache
            .get_or_prepare(&key(7, 0), || Ok(small_plan(7)))
            .unwrap();
        let (second, hit2) = cache
            .get_or_prepare(&key(7, 0), || panic!("must not rebuild"))
            .unwrap();
        assert!(!hit1);
        assert!(hit2);
        assert!(Arc::ptr_eq(&first, &second), "hit must share the Arc");
        assert_eq!(
            cache.stats(),
            PlanCacheStats {
                hits: 1,
                misses: 1,
                ..Default::default()
            }
        );
    }

    #[test]
    fn lru_bound_evicts_oldest_ready_plan() {
        let cache = PlanCache::new(2);
        for seed in 1..=2 {
            cache
                .get_or_prepare(&key(seed, 0), || Ok(small_plan(seed)))
                .unwrap();
        }
        // Touch seed 1 so seed 2 is the LRU victim.
        cache
            .get_or_prepare(&key(1, 0), || panic!("cached"))
            .unwrap();
        cache
            .get_or_prepare(&key(3, 0), || Ok(small_plan(3)))
            .unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // Seed 1 survived; seed 2 must rebuild.
        cache
            .get_or_prepare(&key(1, 0), || panic!("seed 1 was evicted"))
            .unwrap();
        let mut rebuilt = false;
        cache
            .get_or_prepare(&key(2, 0), || {
                rebuilt = true;
                Ok(small_plan(2))
            })
            .unwrap();
        assert!(rebuilt, "LRU victim was not seed 2");
    }

    #[test]
    fn epoch_retention_drops_stale_plans() {
        let cache = PlanCache::new(8);
        cache
            .get_or_prepare(&key(1, 0), || Ok(small_plan(1)))
            .unwrap();
        cache
            .get_or_prepare(&key(1, 1), || Ok(small_plan(1)))
            .unwrap();
        cache.retain_epoch(1);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().invalidations, 1);
        // The epoch-1 plan is still a hit; epoch-0 rebuilds.
        cache
            .get_or_prepare(&key(1, 1), || panic!("epoch 1 dropped"))
            .unwrap();
        let mut rebuilt = false;
        cache
            .get_or_prepare(&key(1, 0), || {
                rebuilt = true;
                Ok(small_plan(1))
            })
            .unwrap();
        assert!(rebuilt);
    }

    #[test]
    fn concurrent_same_key_prepares_once() {
        let cache = Arc::new(PlanCache::new(4));
        let builds = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let builds = Arc::clone(&builds);
                scope.spawn(move || {
                    let (plan, _) = cache
                        .get_or_prepare(&key(5, 0), || {
                            builds.fetch_add(1, Ordering::SeqCst);
                            // Widen the race window so waiters really park.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            Ok(small_plan(5))
                        })
                        .unwrap();
                    assert!(plan.prepare_comm.total_words() > 0);
                });
            }
        });
        assert_eq!(builds.load(Ordering::SeqCst), 1, "preparation ran twice");
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 7);
    }

    #[test]
    fn panicking_build_wakes_waiters_instead_of_stranding_them() {
        // A panic inside the preparation (executor death) must behave
        // like a failed build: the slot turns Failed, a waiter takes the
        // attempt over, and nobody parks forever.
        let cache = Arc::new(PlanCache::new(4));
        let takeovers = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            let panicker = {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let _ = cache.get_or_prepare(&key(13, 0), || {
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            panic!("executor died mid-prepare");
                        });
                    }));
                })
            };
            for _ in 0..3 {
                let cache = Arc::clone(&cache);
                let takeovers = Arc::clone(&takeovers);
                scope.spawn(move || {
                    // Ensure the panicker owns the slot first.
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    let (plan, _) = cache
                        .get_or_prepare(&key(13, 0), || {
                            takeovers.fetch_add(1, Ordering::SeqCst);
                            Ok(small_plan(13))
                        })
                        .unwrap();
                    assert!(plan.prepare_comm.total_words() > 0);
                });
            }
            panicker.join().unwrap();
        });
        // At least one waiter rebuilt (usually exactly one; a waiter that
        // arrives only after the failure settles may legitimately rebuild
        // for itself) — the essential property is that none was stranded.
        let rebuilt = takeovers.load(Ordering::SeqCst);
        assert!((1..=3).contains(&rebuilt), "takeovers = {rebuilt}");
    }

    #[test]
    fn reload_during_preparation_delivers_but_never_caches() {
        // retain_epoch racing an in-flight preparation: the waiting query
        // still gets its plan (it was submitted against the old data and
        // holds handle clones of it), but the finished plan must not
        // occupy a cache slot — no future key can ever match it.
        let cache = Arc::new(PlanCache::new(4));
        std::thread::scope(|scope| {
            let preparer = {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    let (plan, hit) = cache
                        .get_or_prepare(&key(17, 0), || {
                            std::thread::sleep(std::time::Duration::from_millis(30));
                            Ok(small_plan(17))
                        })
                        .unwrap();
                    assert!(!hit);
                    assert!(plan.prepare_comm.total_words() > 0);
                })
            };
            std::thread::sleep(std::time::Duration::from_millis(10));
            cache.retain_epoch(1); // epoch 0 is gone mid-preparation
            preparer.join().unwrap();
        });
        assert_eq!(cache.len(), 0, "stale plan re-entered the cache");
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn failed_builds_are_not_cached() {
        let cache = PlanCache::new(4);
        let err = cache.get_or_prepare(&key(9, 0), || Err(dlra_core::CoreError::SamplerExhausted));
        assert!(err.is_err());
        assert_eq!(cache.len(), 0, "failure must not occupy a slot");
        // The next request simply retries.
        let (_, hit) = cache
            .get_or_prepare(&key(9, 0), || Ok(small_plan(9)))
            .unwrap();
        assert!(!hit);
    }
}
