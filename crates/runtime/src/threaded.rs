//! [`ThreadedCluster`]: the threaded message-passing substrate.
//!
//! Each of the `s` servers is a dedicated worker thread owning its local
//! state; the coordinator (the thread driving the protocol) exchanges typed
//! messages with the workers over `std::sync::mpsc` channels. A collective
//! is one message fan-out plus one reply fan-in:
//!
//! ```text
//!            ┌── Job ──▶ worker 0 ── (0, reply) ──┐
//! coordinator├── Job ──▶ worker 1 ── (1, reply) ──┤──▶ ordered replies
//!            └── Job ──▶ worker s-1 ─ (s-1, …) ───┘
//! ```
//!
//! ## Determinism
//!
//! Per-server computations run concurrently, but each is a deterministic
//! function of that server's state, and the coordinator (a) places replies
//! by server index before using them and (b) charges the shared [`Ledger`]
//! in server-index order after the fan-in. Consequently protocol outputs
//! are **bit-identical** to the sequential [`dlra_comm::Cluster`] and
//! ledger totals (words / messages / rounds) match exactly; only the
//! interleaving of the optional per-event transcript may differ within a
//! round.
//!
//! ## Ownership
//!
//! A worker owns its state for the lifetime of the cluster; the
//! coordinator's only access outside collectives is the evaluation-oriented
//! [`Collectives::with_local`] / [`Collectives::with_local_mut`], which
//! synchronize on the same per-server lock the worker holds while it
//! executes a job — there is no unsynchronized sharing anywhere.

use dlra_comm::ledger::Direction;
use dlra_comm::{Collectives, Ledger, Payload, Topology, TopologyPlan};
use dlra_obs::trace;
use dlra_util::sync::MutexExt;
use std::collections::BTreeMap;
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// One unit of protocol work, shipped to a worker and run against its
/// local state (receives the server index and exclusive state access).
type Job<L> = Box<dyn FnOnce(usize, &mut L) + Send>;

/// A typed message from the coordinator to one worker.
enum WorkerMsg<L> {
    /// Execute one unit of protocol work against the local state.
    Job(Job<L>),
    /// Drain and exit the worker loop.
    Shutdown,
}

struct Worker<L> {
    inbox: Sender<WorkerMsg<L>>,
    /// The server-local state. The worker thread locks it per job; the
    /// coordinator locks it only in `with_local{,_mut}`.
    // dlra-lock-order: server.state
    state: Arc<Mutex<L>>,
    handle: Option<JoinHandle<()>>,
}

/// A cluster of `s` persistent worker threads implementing [`Collectives`].
///
/// ```
/// use dlra_comm::Collectives;
/// use dlra_runtime::ThreadedCluster;
/// let mut c = ThreadedCluster::new(vec![vec![1.0f64, 2.0], vec![3.0, 4.0]]);
/// let sums = c.gather("demo", |_t, local: &mut Vec<f64>| local.iter().sum::<f64>());
/// assert_eq!(sums, vec![3.0, 7.0]);
/// // One upstream message of one word (+1 frame) was charged, as on the
/// // sequential simulator.
/// assert_eq!(c.comm().upstream_words, 2);
/// ```
pub struct ThreadedCluster<L> {
    workers: Vec<Worker<L>>,
    ledger: Ledger,
    topology: Topology,
}

/// Accounting for one combining-tree hop, carried up the tree alongside the
/// block it describes so the driver can charge every edge in canonical
/// order after the fan-in (sender-side block size at send time).
struct HopRecord {
    round: usize,
    sender: usize,
    words: u64,
}

impl<L: Send + 'static> ThreadedCluster<L> {
    /// Spawns one worker thread per local state (server `0` doubles as the
    /// coordinator's own state, as in the paper's star model). Reductions
    /// route over the default [`Topology::Star`].
    pub fn new(locals: Vec<L>) -> Self {
        Self::with_ledger(locals, Ledger::new())
    }

    /// Like [`ThreadedCluster::new`] but routing reduction collectives over
    /// `topology`: under a tree, server workers combine partial results
    /// pairwise and forward them to their tree parent, so the coordinator's
    /// inbox shrinks from `s − 1` messages to one per tree level. Results
    /// stay bit-identical — the merge order is fixed by the server count.
    pub fn with_topology(locals: Vec<L>, topology: Topology) -> Self {
        let mut cluster = Self::with_ledger(locals, Ledger::new());
        cluster.topology = topology;
        cluster
    }

    /// Like [`ThreadedCluster::new`] but charging an existing ledger
    /// (e.g. one shared with an enclosing experiment harness).
    pub fn with_ledger(locals: Vec<L>, ledger: Ledger) -> Self {
        assert!(!locals.is_empty(), "cluster needs at least one server");
        let num_servers = locals.len();
        let workers = locals
            .into_iter()
            .enumerate()
            .map(|(t, local)| {
                let state = Arc::new(Mutex::new(local));
                let (inbox, work) = mpsc::channel::<WorkerMsg<L>>();
                let worker_state = Arc::clone(&state);
                let handle = std::thread::Builder::new()
                    .name(format!("dlra-server-{t}"))
                    .spawn(move || {
                        while let Ok(msg) = work.recv() {
                            match msg {
                                WorkerMsg::Job(job) => {
                                    // Server workers are themselves a
                                    // parallelism layer: divide the kernel
                                    // thread budget across the s workers
                                    // (floor, at least 1) so the two
                                    // layers compose additively — s × ⌊T/s⌋
                                    // ≤ T live kernel threads — instead of
                                    // multiplying to s × T. Resolved per
                                    // job, outside the scoped override, so
                                    // a set_threads after construction is
                                    // honored. Never changes results:
                                    // kernels are bit-identical across
                                    // thread counts.
                                    let share = (dlra_linalg::threads() / num_servers).max(1);
                                    dlra_linalg::with_threads(share, || {
                                        let mut guard = worker_state.lock_recover();
                                        job(t, &mut guard);
                                    });
                                }
                                WorkerMsg::Shutdown => break,
                            }
                        }
                    })
                    // dlra-allow(panic-policy): spawn fails only on OS
                    // thread exhaustion while constructing the cluster,
                    // before any query exists to resolve to a typed error.
                    .expect("spawn server worker thread");
                Worker {
                    inbox,
                    state,
                    handle: Some(handle),
                }
            })
            .collect();
        ThreadedCluster {
            workers,
            ledger,
            topology: Topology::Star,
        }
    }

    /// Sends one job to server `t`'s worker.
    fn dispatch(&self, t: usize, job: Job<L>) {
        self.workers[t]
            .inbox
            .send(WorkerMsg::Job(job))
            // dlra-allow(panic-policy): a dead worker mid-protocol is
            // unrecoverable for this query; the executor thread unwinds and
            // the ticket resolves to RuntimeUnavailable via its dead reply
            // channel.
            .expect("worker thread exited before the cluster was dropped");
    }

    /// Fans one job per worker out (built by `make_job`, which may move
    /// per-worker message clones into it) and fans the replies back in,
    /// ordered by server index. Blocks until all servers replied.
    fn fan_out_in<T>(&self, mut make_job: impl FnMut(mpsc::Sender<(usize, T)>) -> Job<L>) -> Vec<T>
    where
        T: Send + 'static,
    {
        let (reply_tx, reply_rx) = mpsc::channel::<(usize, T)>();
        for t in 0..self.workers.len() {
            self.dispatch(t, make_job(reply_tx.clone()));
        }
        drop(reply_tx);
        let mut slots: Vec<Option<T>> = (0..self.workers.len()).map(|_| None).collect();
        for _ in 0..self.workers.len() {
            let (t, reply) = reply_rx
                .recv()
                // dlra-allow(panic-policy): a server dying mid-collective
                // leaves partial replies; unwind the executor and let the
                // ticket resolve to RuntimeUnavailable.
                .expect("a server worker panicked during a collective");
            slots[t] = Some(reply);
        }
        slots
            .into_iter()
            // dlra-allow(panic-policy): the loop above received exactly
            // one reply per server, so every slot is filled.
            .map(|r| r.expect("every server replied"))
            .collect()
    }

    /// Fans one shared closure out to every worker; replies ordered by
    /// server index.
    fn run_on_all<T, F>(&self, compute: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(usize, &mut L) -> T + Send + Sync + 'static,
    {
        let compute = Arc::new(compute);
        self.fan_out_in(|reply_tx| {
            let compute = Arc::clone(&compute);
            Box::new(move |t, local| {
                let reply = compute(t, local);
                let _ = reply_tx.send((t, reply));
            })
        })
    }

    /// Runs one topology-routed reduction over the worker threads.
    ///
    /// The driver pre-builds one mpsc channel per plan hop and hands each
    /// worker its endpoints, so blocks flow worker → worker along tree
    /// edges without touching the coordinator until the root hop. Every
    /// worker replays the canonical merge steps of its receiving rounds,
    /// restricted to the blocks it holds — merges of disjoint block pairs
    /// commute, so the result is bit-identical to the sequential global
    /// replay. Each sender attaches a [`HopRecord`] with its block size at
    /// send time; the accumulated log reaches the root with the final
    /// block, and the driver charges every edge in canonical plan order —
    /// the exact transcript of the sequential reference implementation.
    fn tree_reduce<T, M>(
        &self,
        plan: TopologyPlan,
        label: &'static str,
        mut make_compute: impl FnMut() -> Box<dyn FnOnce(usize, &mut L) -> T + Send>,
        merge: Arc<M>,
        first_round_started: bool,
    ) -> T
    where
        T: Payload + Send + 'static,
        M: Fn(&mut T, T) + Send + Sync + 'static,
    {
        type Parcel<T> = (T, Vec<HopRecord>);
        let s = self.workers.len();
        let plan = Arc::new(plan);
        let mut inboxes: Vec<BTreeMap<usize, Vec<mpsc::Receiver<Parcel<T>>>>> =
            (0..s).map(|_| BTreeMap::new()).collect();
        let mut outboxes: Vec<Option<(usize, mpsc::Sender<Parcel<T>>)>> =
            (0..s).map(|_| None).collect();
        for (h, round) in plan.rounds().iter().enumerate() {
            for hop in &round.hops {
                let (tx, rx) = mpsc::channel::<Parcel<T>>();
                inboxes[hop.receiver].entry(h).or_default().push(rx);
                outboxes[hop.sender] = Some((h, tx));
            }
        }
        let (root_tx, root_rx) = mpsc::channel::<Parcel<T>>();
        for t in 0..s {
            let compute = make_compute();
            let plan = Arc::clone(&plan);
            let merge = Arc::clone(&merge);
            let mut inbox = std::mem::take(&mut inboxes[t]);
            let mut outbox = outboxes[t].take();
            let root_tx = (t == 0).then(|| root_tx.clone());
            self.dispatch(
                t,
                Box::new(move |t, local| {
                    let mut block = compute(t, local);
                    let mut log: Vec<HopRecord> = Vec::new();
                    for (h, round) in plan.rounds().iter().enumerate() {
                        if let Some(rxs) = inbox.remove(&h) {
                            // Receiving round: absorb each child's block,
                            // keyed by sender index, then replay the round's
                            // canonical merges restricted to held blocks.
                            let mut held: BTreeMap<usize, T> = BTreeMap::new();
                            held.insert(t, block);
                            let senders = round
                                .hops
                                .iter()
                                .filter(|hop| hop.receiver == t)
                                .map(|hop| hop.sender);
                            for (q, rx) in senders.zip(rxs) {
                                let (child_block, child_log) = rx
                                    .recv()
                                    // dlra-allow(panic-policy): a child server
                                    // dying mid-reduction loses its block;
                                    // unwind and let the driver's root recv
                                    // resolve the query to RuntimeUnavailable.
                                    .expect("a child server panicked during a reduction");
                                held.insert(q, child_block);
                                log.extend(child_log);
                            }
                            for step in &round.merges {
                                if held.contains_key(&step.dst) && held.contains_key(&step.src) {
                                    // dlra-allow(panic-policy): both keys were
                                    // just checked present.
                                    let src = held.remove(&step.src).expect("src block held");
                                    // dlra-allow(panic-policy): checked above.
                                    let dst = held.get_mut(&step.dst).expect("dst block held");
                                    merge(dst, src);
                                }
                            }
                            // dlra-allow(panic-policy): a receiver's own block
                            // is never a merge source in its receiving rounds,
                            // so it always survives the replay.
                            block = held.remove(&t).expect("receiver keeps its block");
                        }
                        if outbox.as_ref().map(|&(send_round, _)| send_round) == Some(h) {
                            // Sending round: forward the accumulated block
                            // (and hop log) to the tree parent; this worker's
                            // part in the reduction is done.
                            let Some((_, tx)) = outbox.take() else { return };
                            log.push(HopRecord {
                                round: h,
                                sender: t,
                                words: block.words(),
                            });
                            let _ = tx.send((block, log));
                            return;
                        }
                    }
                    // Only the coordinator's worker reaches the end of the
                    // plan; it hands the fully merged block and the complete
                    // hop log back to the driver.
                    if let Some(tx) = root_tx {
                        let _ = tx.send((block, log));
                    }
                }),
            );
        }
        drop(root_tx);
        let (result, log) = root_rx
            .recv()
            // dlra-allow(panic-policy): a server dying mid-reduction loses
            // the root block; unwind the executor and let the ticket resolve
            // to RuntimeUnavailable.
            .expect("a server worker panicked during a reduction");
        let mut hop_words: BTreeMap<(usize, usize), u64> = BTreeMap::new();
        for rec in log {
            hop_words.insert((rec.round, rec.sender), rec.words);
        }
        for (h, round) in plan.rounds().iter().enumerate() {
            if h > 0 || !first_round_started {
                self.ledger.next_round();
            }
            for hop in &round.hops {
                let words = *hop_words
                    .get(&(h, hop.sender))
                    // dlra-allow(panic-policy): every sender logs exactly one
                    // record per plan edge before sending; a missing record
                    // means a worker died and the root recv above would have
                    // panicked first.
                    .expect("hop record for every plan edge");
                self.ledger
                    .charge_hop(hop.sender, hop.receiver, Direction::Upstream, words, label);
            }
        }
        result
    }
}

impl<L: Send + 'static> Collectives<L> for ThreadedCluster<L> {
    fn num_servers(&self) -> usize {
        self.workers.len()
    }

    fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    fn topology(&self) -> Topology {
        self.topology
    }

    fn aggregate_topo<T, F, M>(&mut self, label: &'static str, compute: F, merge: M) -> T
    where
        T: Payload + Send + 'static,
        F: Fn(usize, &mut L) -> T + Send + Sync + 'static,
        M: Fn(&mut T, T) + Send + Sync + 'static,
    {
        let _span =
            trace::span("comm.aggregate_topo", label).arg("servers", self.workers.len() as u64);
        let plan = TopologyPlan::new(self.topology, self.workers.len());
        let compute = Arc::new(compute);
        let merge = Arc::new(merge);
        self.tree_reduce(
            plan,
            label,
            || {
                let compute = Arc::clone(&compute);
                Box::new(move |t, local| compute(t, local))
            },
            merge,
            false,
        )
    }

    fn query_aggregate<Q, T, F, M>(
        &mut self,
        request: &Q,
        label: &'static str,
        compute: F,
        merge: M,
    ) -> T
    where
        Q: Payload + Clone + Send + 'static,
        T: Payload + Send + 'static,
        F: Fn(usize, &mut L, &Q) -> T + Send + Sync + 'static,
        M: Fn(&mut T, T) + Send + Sync + 'static,
    {
        let _span =
            trace::span("comm.query_aggregate", label).arg("servers", self.workers.len() as u64);
        self.ledger.next_round();
        let request_words = request.words();
        for t in 1..self.workers.len() {
            self.ledger
                .charge(t, Direction::Downstream, request_words, label);
        }
        let plan = TopologyPlan::new(self.topology, self.workers.len());
        let compute = Arc::new(compute);
        let merge = Arc::new(merge);
        self.tree_reduce(
            plan,
            label,
            || {
                // Each worker receives its own copy of the request, exactly
                // as it would over a wire.
                let request = request.clone();
                let compute = Arc::clone(&compute);
                Box::new(move |t, local| compute(t, local, &request))
            },
            merge,
            true,
        )
    }

    fn with_local<R>(&self, t: usize, f: impl FnOnce(&L) -> R) -> R {
        let guard = self.workers[t].state.lock_recover();
        f(&guard)
    }

    fn with_local_mut<R>(&mut self, t: usize, f: impl FnOnce(&mut L) -> R) -> R {
        let mut guard = self.workers[t].state.lock_recover();
        f(&mut guard)
    }

    fn broadcast<T, F>(&mut self, msg: &T, label: &'static str, on_receive: F)
    where
        T: Payload + Clone + Send + 'static,
        F: Fn(usize, &mut L, &T) + Send + Sync + 'static,
    {
        let _span = trace::span("comm.broadcast", label).arg("servers", self.workers.len() as u64);
        self.ledger.next_round();
        let words = msg.words();
        for t in 1..self.workers.len() {
            self.ledger.charge(t, Direction::Downstream, words, label);
        }
        let on_receive = Arc::new(on_receive);
        let (ack_tx, ack_rx) = mpsc::channel::<usize>();
        for t in 0..self.workers.len() {
            // Each worker receives its own copy of the message, exactly as
            // it would over a wire.
            let message = msg.clone();
            let on_receive = Arc::clone(&on_receive);
            let ack_tx = ack_tx.clone();
            self.dispatch(
                t,
                Box::new(move |t, local| {
                    on_receive(t, local, &message);
                    let _ = ack_tx.send(t);
                }),
            );
        }
        drop(ack_tx);
        for _ in 0..self.workers.len() {
            ack_rx
                .recv()
                // dlra-allow(panic-policy): a server dying mid-broadcast
                // cannot be papered over; unwind the executor and let the
                // ticket resolve to RuntimeUnavailable.
                .expect("a server worker panicked during a broadcast");
        }
    }

    fn gather<T, F>(&mut self, label: &'static str, compute: F) -> Vec<T>
    where
        T: Payload + Send + 'static,
        F: Fn(usize, &mut L) -> T + Send + Sync + 'static,
    {
        let _span = trace::span("comm.gather", label).arg("servers", self.workers.len() as u64);
        self.ledger.next_round();
        let out = self.run_on_all(compute);
        for (t, reply) in out.iter().enumerate() {
            if t != 0 {
                self.ledger
                    .charge(t, Direction::Upstream, reply.words(), label);
            }
        }
        out
    }

    fn query_server<Q, T, F>(&mut self, t: usize, request: &Q, label: &'static str, compute: F) -> T
    where
        Q: Payload + Clone + Send + 'static,
        T: Payload + Send + 'static,
        F: FnOnce(&mut L, &Q) -> T + Send + 'static,
    {
        let _span = trace::span("comm.query_server", label).arg("server", t as u64);
        if t != 0 {
            self.ledger
                .charge(t, Direction::Downstream, request.words(), label);
        }
        let request = request.clone();
        let (reply_tx, reply_rx) = mpsc::channel::<T>();
        self.dispatch(
            t,
            Box::new(move |_t, local| {
                let _ = reply_tx.send(compute(local, &request));
            }),
        );
        let reply = reply_rx
            .recv()
            // dlra-allow(panic-policy): a server dying mid-query loses the
            // reply; unwind the executor and let the ticket resolve to
            // RuntimeUnavailable.
            .expect("a server worker panicked during a query");
        if t != 0 {
            self.ledger
                .charge(t, Direction::Upstream, reply.words(), label);
        }
        reply
    }

    fn query_all<Q, T, F>(&mut self, request: &Q, label: &'static str, compute: F) -> Vec<T>
    where
        Q: Payload + Clone + Send + 'static,
        T: Payload + Send + 'static,
        F: Fn(usize, &mut L, &Q) -> T + Send + Sync + 'static,
    {
        let _span = trace::span("comm.query_all", label).arg("servers", self.workers.len() as u64);
        self.ledger.next_round();
        let request_words = request.words();
        for t in 1..self.workers.len() {
            self.ledger
                .charge(t, Direction::Downstream, request_words, label);
        }
        let compute = Arc::new(compute);
        let out = self.fan_out_in(|reply_tx| {
            // Each worker receives its own copy of the request, exactly as
            // it would over a wire.
            let request = request.clone();
            let compute = Arc::clone(&compute);
            Box::new(move |t, local| {
                let reply = compute(t, local, &request);
                let _ = reply_tx.send((t, reply));
            })
        });
        for (t, reply) in out.iter().enumerate() {
            if t != 0 {
                self.ledger
                    .charge(t, Direction::Upstream, reply.words(), label);
            }
        }
        out
    }
}

impl<L> Drop for ThreadedCluster<L> {
    fn drop(&mut self) {
        for w in &self.workers {
            // The worker may already be gone (it panicked); shutdown is
            // best-effort and Drop must not panic.
            let _ = w.inbox.send(WorkerMsg::Shutdown);
        }
        for w in &mut self.workers {
            if let Some(handle) = w.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlra_comm::ledger::FRAME_WORDS;
    use dlra_comm::Cluster;

    fn locals(s: usize, len: usize) -> Vec<Vec<f64>> {
        (0..s).map(|t| vec![t as f64; len]).collect()
    }

    /// A protocol exercising every collective, written once against the
    /// trait and run on both substrates.
    fn protocol<C: Collectives<Vec<f64>>>(c: &mut C) -> Vec<f64> {
        c.broadcast(&1.5f64, "p.bcast", |_t, local, &m| {
            for x in local.iter_mut() {
                *x += m;
            }
        });
        let mut out = c.gather("p.gather", |t, local| local[0] * (t + 1) as f64);
        let total = c.aggregate(
            "p.agg",
            |_t, local| local.iter().sum::<f64>(),
            |acc, r| *acc += r,
        );
        out.push(total);
        let picked = c.query_all(&2usize, "p.qa", |t, local, &j| local[j] + t as f64);
        out.extend(picked);
        let target = 1 % c.num_servers();
        out.push(c.query_server(target, &0usize, "p.qs", |local, &j| local[j]));
        out.push(c.aggregate_topo(
            "p.at",
            |t, local| local[0] * (t as f64 + 0.25),
            |acc, r| *acc += r,
        ));
        out.push(c.query_aggregate(
            &1usize,
            "p.qat",
            |t, local, &j| local[j] + (t as f64).sqrt(),
            |acc, r| *acc += r,
        ));
        out
    }

    #[test]
    fn matches_sequential_cluster_bit_for_bit() {
        for s in [1usize, 2, 4, 8] {
            let mut seq = Cluster::new(locals(s, 4));
            let mut par = ThreadedCluster::new(locals(s, 4));
            let a = protocol(&mut seq);
            let b = protocol(&mut par);
            assert_eq!(a, b, "results diverge at s = {s}");
            assert_eq!(
                Collectives::comm(&seq),
                Collectives::comm(&par),
                "ledgers diverge at s = {s}"
            );
        }
    }

    #[test]
    fn tree_routing_matches_sequential_tree_bit_for_bit() {
        for s in [1usize, 2, 4, 8, 9, 13] {
            let topology = Topology::Tree { fanout: 2 };
            let mut seq = Cluster::with_topology(locals(s, 4), topology);
            let mut par = ThreadedCluster::with_topology(locals(s, 4), topology);
            let a = protocol(&mut seq);
            let b = protocol(&mut par);
            assert_eq!(a, b, "results diverge at s = {s}");
            assert_eq!(
                Collectives::comm(&seq),
                Collectives::comm(&par),
                "ledgers diverge at s = {s}"
            );
        }
    }

    #[test]
    fn tree_reduction_matches_star_values_with_smaller_root_inbox() {
        for s in [4usize, 8, 9] {
            let mut star = ThreadedCluster::new(locals(s, 2));
            let mut tree =
                ThreadedCluster::with_topology(locals(s, 2), Topology::Tree { fanout: 2 });
            let a = star.aggregate_topo("t", |t, l| l[0] + t as f64, |acc, r| *acc += r);
            let b = tree.aggregate_topo("t", |t, l| l[0] + t as f64, |acc, r| *acc += r);
            assert_eq!(a.to_bits(), b.to_bits(), "s = {s}");
            let sc = star.comm();
            let tc = tree.comm();
            assert_eq!(sc.total_words(), tc.total_words(), "s = {s}");
            assert_eq!(sc.messages, tc.messages, "s = {s}");
            assert!(
                tc.root_inbox_messages < sc.root_inbox_messages,
                "s = {s}: tree inbox {} vs star {}",
                tc.root_inbox_messages,
                sc.root_inbox_messages
            );
        }
    }

    #[test]
    fn gather_orders_and_charges_like_cluster() {
        let mut c = ThreadedCluster::new(locals(3, 1));
        let replies = c.gather("g", |t, local: &mut Vec<f64>| local[0] + t as f64);
        assert_eq!(replies, vec![0.0, 2.0, 4.0]);
        assert_eq!(c.comm().upstream_words, 2 * (1 + FRAME_WORDS));
        assert_eq!(c.comm().messages, 2);
        assert_eq!(c.comm().rounds, 1);
    }

    #[test]
    fn broadcast_reaches_every_worker() {
        let mut c = ThreadedCluster::new(locals(4, 2));
        c.broadcast(&7.5f64, "b", |_t, local, &m| local.push(m));
        for t in 0..4 {
            assert_eq!(c.with_local(t, |l| l.len()), 3);
            assert_eq!(c.with_local(t, |l| l[2]), 7.5);
        }
        assert_eq!(c.comm().downstream_words, 3 * (1 + FRAME_WORDS));
        assert_eq!(c.comm().upstream_words, 0);
    }

    #[test]
    fn with_local_mut_is_free() {
        let mut c = ThreadedCluster::new(locals(2, 1));
        c.with_local_mut(1, |l| l[0] = 42.0);
        assert_eq!(c.with_local(1, |l| l[0]), 42.0);
        assert_eq!(c.comm().total_words(), 0);
    }

    #[test]
    fn workers_run_concurrently() {
        // Each worker sleeps 40 ms; if execution were serialized the
        // collective would take ≥ 320 ms.
        let mut c = ThreadedCluster::new(locals(8, 1));
        let start = std::time::Instant::now();
        let replies = c.gather("sleep", |t, _local| {
            std::thread::sleep(std::time::Duration::from_millis(40));
            t as f64
        });
        let elapsed = start.elapsed();
        assert_eq!(replies.len(), 8);
        assert!(
            elapsed < std::time::Duration::from_millis(300),
            "collective did not parallelize: {elapsed:?}"
        );
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let c = ThreadedCluster::new(locals(4, 1));
        drop(c); // must not hang or panic
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_cluster_rejected() {
        let _ = ThreadedCluster::<Vec<f64>>::new(vec![]);
    }
}
