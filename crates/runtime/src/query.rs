//! Typed query construction for the service façade.
//!
//! [`Query::rank`] opens a builder over every protocol knob — sample
//! count, entrywise function, sampler, boosting, seed, deadline — and
//! [`QueryBuilder::build`] validates the combination **at construction
//! time**, returning a dedicated [`QueryError`] instead of deferring to a
//! mid-protocol `CoreError::InvalidConfig` after the query has already
//! been dispatched to an executor. The only checks that cannot happen here
//! are dataset-dependent (`k` against the resident column count); those
//! run at submission, against the addressed dataset, and resolve the
//! ticket eagerly.
//!
//! The raw [`QueryRequest`] remains the wire format between the façade and
//! the executors (and the compatibility surface of `Runtime::submit`,
//! which validates nothing up front — exactly as before the builder
//! existed).

use dlra_core::algorithm1::{Algorithm1Config, SamplerKind};
use dlra_core::functions::EntryFunction;
use std::time::Duration;

/// One Algorithm 1 query against a resident dataset.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// The entrywise function `f` applied to the aggregated entries.
    /// Interpreted exactly as by `PartitionModel::new` (for `GmRoot`,
    /// submit locally pre-transformed locals).
    pub f: EntryFunction,
    /// Protocol configuration (`k`, `r`, boosting, sampler, seed).
    pub cfg: Algorithm1Config,
}

impl QueryRequest {
    /// A query with `f = Identity`.
    pub fn identity(cfg: Algorithm1Config) -> Self {
        QueryRequest {
            f: EntryFunction::Identity,
            cfg,
        }
    }

    /// Whether the planner may serve this query from a shared preparation:
    /// a Z-sampled, unboosted query (boosted repetitions re-prepare with
    /// per-repetition seeds on the unplanned path, so sharing one
    /// preparation would change their bits) with a valid-enough
    /// configuration that preparing before validation cannot mask a
    /// config error.
    pub(crate) fn plannable(&self, d: usize) -> bool {
        matches!(self.cfg.sampler, SamplerKind::Z(_))
            && self.cfg.boost == 1
            && self.cfg.k >= 1
            && self.cfg.k <= d
            && self.cfg.r >= 1
            && self.f.z_fn().is_some()
    }
}

/// Why a query failed validation — at [`QueryBuilder::build`], at
/// submission (shape-dependent checks), or, for queries that bypassed the
/// builder, when the protocol itself rejected the configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// `rank(0)`: the target rank must be ≥ 1.
    ZeroRank,
    /// `samples(0)`: at least one row must be sampled.
    ZeroSamples,
    /// `boosted(0)`: at least one repetition must run.
    ZeroBoost,
    /// The target rank exceeds the addressed dataset's column count
    /// (checked at submission — the builder cannot know `d`).
    RankExceedsDimension {
        /// Requested target rank.
        k: usize,
        /// Column count of the addressed dataset.
        d: usize,
    },
    /// Z-sampling needs a property-P `z = f²`, and this `f` has none
    /// (`Max` — the paper's point: approximate it via `GmRoot` instead).
    UnsupportedFunction {
        /// `EntryFunction::name()` of the offending `f`.
        f: &'static str,
    },
    /// The protocol rejected the configuration at execution time (only
    /// reachable for raw `QueryRequest`s that bypassed the builder).
    Rejected(String),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::ZeroRank => write!(f, "rank k must be >= 1"),
            QueryError::ZeroSamples => write!(f, "sample count r must be >= 1"),
            QueryError::ZeroBoost => write!(f, "boost repetitions must be >= 1"),
            QueryError::RankExceedsDimension { k, d } => {
                write!(f, "rank k = {k} exceeds the dataset's column count d = {d}")
            }
            QueryError::UnsupportedFunction { f: name } => {
                write!(
                    f,
                    "Z-sampling needs a property-P z = f² and f = {name} has none \
                     (use GmRoot to approximate max)"
                )
            }
            QueryError::Rejected(m) => write!(f, "rejected by the protocol: {m}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// A validated, ready-to-submit query. Built through [`Query::rank`];
/// construction is the proof of validity (up to the dataset-dependent
/// `k ≤ d` check, which submission performs).
#[derive(Debug, Clone)]
pub struct Query {
    pub(crate) request: QueryRequest,
    pub(crate) deadline: Option<Duration>,
}

impl Query {
    /// Opens a builder for a query of target rank `k`. Every other knob
    /// starts from [`Algorithm1Config::default`]: `r = 50`, no boosting,
    /// the Z-sampler with default parameters, `f = Identity`.
    pub fn rank(k: usize) -> QueryBuilder {
        QueryBuilder {
            f: EntryFunction::Identity,
            cfg: Algorithm1Config {
                k,
                ..Algorithm1Config::default()
            },
            deadline: None,
        }
    }

    /// The underlying wire-format request.
    pub fn request(&self) -> &QueryRequest {
        &self.request
    }

    /// The deadline this query carries (measured from submission), if any.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }
}

/// Builder returned by [`Query::rank`]; finish with
/// [`QueryBuilder::build`].
#[derive(Debug, Clone)]
pub struct QueryBuilder {
    f: EntryFunction,
    cfg: Algorithm1Config,
    deadline: Option<Duration>,
}

impl QueryBuilder {
    /// Number of sampled rows `r = Θ(k²/ε²)`.
    pub fn samples(mut self, r: usize) -> Self {
        self.cfg.r = r;
        self
    }

    /// The entrywise function `f` applied to the aggregated entries.
    pub fn function(mut self, f: EntryFunction) -> Self {
        self.f = f;
        self
    }

    /// The row sampler driving line 4 of Algorithm 1.
    pub fn sampler(mut self, sampler: SamplerKind) -> Self {
        self.cfg.sampler = sampler;
        self
    }

    /// Boosting repetitions (keep the best `‖BP‖²_F`); `1` = no boosting.
    pub fn boosted(mut self, repetitions: usize) -> Self {
        self.cfg.boost = repetitions;
        self
    }

    /// Root seed for all protocol randomness.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// A deadline for the query, measured from the moment of submission:
    /// if it expires before an executor starts the query, the ticket
    /// resolves to `ServiceError::Deadline` without running anything. The
    /// ticket's own `deadline` method can tighten (never relax) this.
    pub fn deadline(mut self, after: Duration) -> Self {
        self.deadline = Some(match self.deadline {
            Some(cur) => cur.min(after),
            None => after,
        });
        self
    }

    /// Validates the combination and returns the immutable [`Query`].
    ///
    /// Checks everything that does not depend on the addressed dataset:
    /// `k ≥ 1`, `r ≥ 1`, `boost ≥ 1`, and that a Z-sampled query's `f`
    /// actually has a property-P `z = f²`. The remaining check (`k ≤ d`)
    /// runs at submission against the dataset's shape.
    pub fn build(self) -> Result<Query, QueryError> {
        if self.cfg.k == 0 {
            return Err(QueryError::ZeroRank);
        }
        if self.cfg.r == 0 {
            return Err(QueryError::ZeroSamples);
        }
        if self.cfg.boost == 0 {
            return Err(QueryError::ZeroBoost);
        }
        if matches!(self.cfg.sampler, SamplerKind::Z(_)) && self.f.z_fn().is_none() {
            return Err(QueryError::UnsupportedFunction { f: self.f.name() });
        }
        Ok(Query {
            request: QueryRequest {
                f: self.f,
                cfg: self.cfg,
            },
            deadline: self.deadline,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlra_sampler::ZSamplerParams;

    #[test]
    fn builder_validates_at_construction() {
        assert_eq!(Query::rank(0).build().unwrap_err(), QueryError::ZeroRank);
        assert_eq!(
            Query::rank(2).samples(0).build().unwrap_err(),
            QueryError::ZeroSamples
        );
        assert_eq!(
            Query::rank(2).boosted(0).build().unwrap_err(),
            QueryError::ZeroBoost
        );
        assert_eq!(
            Query::rank(2)
                .function(EntryFunction::Max)
                .sampler(SamplerKind::Z(ZSamplerParams::default()))
                .build()
                .unwrap_err(),
            QueryError::UnsupportedFunction { f: "max" }
        );
        // Max is fine under a sampler that needs no z.
        assert!(Query::rank(2)
            .function(EntryFunction::Max)
            .sampler(SamplerKind::Uniform)
            .build()
            .is_ok());
    }

    #[test]
    fn builder_sets_every_knob() {
        let q = Query::rank(3)
            .samples(40)
            .function(EntryFunction::Huber { k: 1.5 })
            .sampler(SamplerKind::Uniform)
            .boosted(2)
            .seed(99)
            .deadline(Duration::from_secs(5))
            .build()
            .unwrap();
        assert_eq!(q.request().cfg.k, 3);
        assert_eq!(q.request().cfg.r, 40);
        assert!(matches!(
            q.request().f,
            EntryFunction::Huber { k } if k == 1.5
        ));
        assert!(matches!(q.request().cfg.sampler, SamplerKind::Uniform));
        assert_eq!(q.request().cfg.boost, 2);
        assert_eq!(q.request().cfg.seed, 99);
        assert_eq!(q.deadline(), Some(Duration::from_secs(5)));
        // Repeated deadlines tighten, never relax.
        let q = Query::rank(1)
            .deadline(Duration::from_secs(5))
            .deadline(Duration::from_secs(9))
            .build()
            .unwrap();
        assert_eq!(q.deadline(), Some(Duration::from_secs(5)));
    }
}
