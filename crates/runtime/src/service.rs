//! The service façade: **many named resident datasets** behind one
//! executor pool, typed queries, and tickets with cancellation and
//! deadlines.
//!
//! A [`Service`] is the front door of the serving system. Where `Runtime`
//! owns exactly one dataset, a service hosts any number of them by name:
//! [`Service::load`] makes a dataset resident and returns a
//! [`DatasetHandle`], [`Service::reload`] swaps one tenant's data in place
//! (bumping only **that** dataset's residency epoch), and
//! [`Service::evict`] removes it. Every dataset owns a private plan-cache
//! partition, so one tenant's reload or eviction can never invalidate
//! another tenant's prepared plans or in-flight queries — the isolation is
//! stats-assertable per dataset through [`DatasetHandle::plan_stats`].
//!
//! Queries are built through the typed [`Query`](crate::query::Query)
//! builder (validated at construction, see [`crate::query`]) and submitted
//! to a handle; [`DatasetHandle::submit`] returns a [`Ticket`]:
//!
//! * [`Ticket::cancel`] — drop-before-execute: executors check the
//!   cancellation flag when they pop the query **and again between the
//!   (possibly shared) sampler preparation and the draw/fetch execution**;
//!   a cancelled query resolves to [`ServiceError::Cancelled`].
//! * [`Ticket::deadline`] — an expired deadline resolves the ticket to
//!   [`ServiceError::Deadline`] without running the protocol at all.
//! * [`Ticket::wait_timeout`] — bounded blocking; on timeout the caller
//!   gets the ticket back (typically to `cancel` it).
//!
//! Failures are unified into the [`ServiceError`] taxonomy: an invalid
//! query ([`ServiceError::InvalidQuery`]) is distinct from an evicted
//! dataset ([`ServiceError::DatasetEvicted`]), an expired deadline
//! ([`ServiceError::Deadline`]), a shed submission
//! ([`ServiceError::Overloaded`]), and a dead executor pool
//! ([`ServiceError::RuntimeUnavailable`]). [`ServiceError::is_retryable`]
//! and [`ServiceError::is_caller_error`] classify the variants for
//! retry/backoff loops.
//!
//! ## Self-regulation under pressure
//!
//! The service protects itself from overload with two mechanisms, both
//! off by default (the legacy unbounded behavior):
//!
//! * **Bounded admission** — [`ServiceConfig::max_queue_depth`] caps the
//!   number of admitted-but-unresolved queries (queued + executing) across
//!   all tenants. A submission over the cap resolves immediately to
//!   [`ServiceError::Overloaded`] in O(µs), without touching an executor;
//!   [`Ticket::shed`] reports it without consuming the result.
//! * **Memory quotas** — [`ServiceConfig::memory_budget`] bounds the total
//!   bytes of resident payload. `load`/`reload` that push the total over
//!   the budget evict the least-recently-dispatched *unpinned* dataset
//!   (LRU over a logical tick, never a clock) until the budget holds;
//!   datasets with queries admitted or executing are pinned and never
//!   evicted mid-query. Quota-evicted handles resolve to
//!   [`ServiceError::DatasetEvicted`], exactly like an explicit evict.
//!
//! Both decisions are deterministic given the operation interleaving:
//! admission reads one atomic gauge, the LRU victim is the minimum of a
//! strictly monotonic logical tick. [`Service::pressure`] exposes the
//! live state (always, even with metrics off).
//!
//! ## Executor-layer kernel budgeting
//!
//! Each executor wraps query execution in
//! `dlra_linalg::with_threads(max(1, total / executors))`, so
//! coordinator-side kernels (the SVD of `B`, gram products) share the
//! process kernel-thread budget across concurrent queries instead of each
//! claiming all of it — at high executor counts the two layers previously
//! oversubscribed multiplicatively (`tests/thread_composition.rs` bounds
//! the live-thread watermark). Thread counts never change results: kernels
//! are bit-identical across thread counts.
//!
//! ## Relation to `Runtime`
//!
//! The single-dataset [`Runtime`](crate::runtime::Runtime) is now a thin
//! shim over a one-dataset `Service`: same executors, same planner, same
//! copy-on-write dispatch, bit- and ledger-identical outputs (the whole
//! pre-façade equivalence suite runs through this layer).

use crate::planner::{PlanCache, PlanCacheStats, PlanKey};
use crate::query::{Query, QueryError, QueryRequest};
use crate::threaded::ThreadedCluster;
use dlra_comm::{LedgerSnapshot, Topology};
use dlra_core::algorithm1::{
    prepare_z_plan, run_algorithm1_interruptible, run_algorithm1_with_plan_interruptible,
    Algorithm1Output, SamplerKind,
};
use dlra_core::model::PartitionModel;
use dlra_core::{CoreError, InterruptReason};
use dlra_linalg::Matrix;
use dlra_obs::metrics::{
    DatasetMetrics, KernelPoolSnapshot, MetricsSnapshot, PlanCacheSnapshot, PressureSnapshot,
    ServicePressure,
};
use dlra_obs::trace;
use dlra_util::sync::{MutexExt, RwLockExt};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which execution substrate the pooled executors build per query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Substrate {
    /// The sequential in-process simulator (`dlra-comm::Cluster`).
    Sequential,
    /// The threaded message-passing cluster ([`ThreadedCluster`]).
    #[default]
    Threaded,
    /// The networked cluster (`dlra-net::SocketCluster`): servers behind
    /// real loopback TCP sockets, every payload crossing the bit-exact
    /// wire codec. Bit- and ledger-identical to the other substrates.
    Socket,
}

/// Parses `DLRA_SUBSTRATE` (`sequential`, `threaded`, or `socket`) into
/// the default execution substrate. Unset or unrecognized keeps the
/// built-in default ([`Substrate::Threaded`]), so existing deployments are
/// byte-for-byte unaffected. Like every knob, the env read happens here in
/// the runtime configuration layer only — `dlra-net` itself reads no
/// environment — and is how CI runs the whole equivalence and service
/// suites over real sockets without touching any test.
pub(crate) fn default_substrate() -> Substrate {
    match std::env::var("DLRA_SUBSTRATE").ok().as_deref() {
        Some("sequential") => Substrate::Sequential,
        Some("threaded") => Substrate::Threaded,
        Some("socket") => Substrate::Socket,
        _ => Substrate::default(),
    }
}

pub(crate) fn default_executors() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(2)
        .clamp(1, 8)
}

pub(crate) fn default_plan_cache() -> usize {
    std::env::var("DLRA_PLAN_CACHE")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(16)
}

/// Parses `DLRA_TOPOLOGY` (`star`, `tree`, or `tree:<fanout>`) into the
/// default collective routing topology. The env read happens here, in the
/// runtime configuration layer — never inside `dlra-comm`, which stays
/// deterministic in its inputs — and is how CI proves the star and tree
/// routings stay bit- and ledger-identical.
pub(crate) fn default_topology() -> Topology {
    match std::env::var("DLRA_TOPOLOGY").ok().as_deref() {
        Some("tree") => Topology::Tree { fanout: 2 },
        Some(spec) if spec.starts_with("tree:") => spec["tree:".len()..]
            .parse::<usize>()
            .map(|fanout| Topology::Tree {
                fanout: fanout.max(2),
            })
            .unwrap_or_default(),
        _ => Topology::Star,
    }
}

/// Parses `DLRA_MAX_QUEUE` (a positive integer) into the default admission
/// bound. Like every other knob, the env read happens here in the runtime
/// configuration layer only — which is how CI forces shedding onto the
/// whole service suite without touching any test.
pub(crate) fn default_max_queue() -> Option<usize> {
    std::env::var("DLRA_MAX_QUEUE")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// Parses `DLRA_MEMORY_BUDGET` (bytes, a positive integer) into the
/// default service-wide resident-byte budget.
pub(crate) fn default_memory_budget() -> Option<u64> {
    std::env::var("DLRA_MEMORY_BUDGET")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&n| n > 0)
}

/// Configuration of a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of executor threads, i.e. queries in flight concurrently
    /// (shared across every resident dataset).
    pub executors: usize,
    /// Substrate each query runs on.
    pub substrate: Substrate,
    /// Per-dataset plan-cache capacity (distinct prepared samplers held);
    /// `0` disables planning entirely. The default is 16, overridable with
    /// the `DLRA_PLAN_CACHE` environment variable — which is how CI proves
    /// the planned and unplanned paths stay bit- and ledger-identical.
    pub plan_cache: usize,
    /// Whether the per-dataset metrics registry is maintained (default
    /// `true`; the cost per query is a handful of relaxed atomic adds).
    /// When `false`, [`Service::metrics`] returns `None` and the query
    /// path records nothing. Never affects results either way.
    pub metrics: bool,
    /// How reduction collectives route partial results to the coordinator
    /// (star, or a combining tree that shrinks the coordinator's inbox to
    /// one message per tree level). Never affects results: the combining
    /// order is fixed by the server count alone. Defaults to the
    /// `DLRA_TOPOLOGY` environment variable (`star` | `tree` |
    /// `tree:<fanout>`), falling back to [`Topology::Star`].
    pub topology: Topology,
    /// Admission bound: the maximum number of queries admitted and not yet
    /// resolved (queued + executing) across every dataset. A submission
    /// over the bound is shed — its ticket resolves immediately to
    /// [`ServiceError::Overloaded`] without reaching an executor. `None`
    /// (the default) keeps the legacy unbounded queue. Defaults to the
    /// `DLRA_MAX_QUEUE` environment variable, which is how CI forces
    /// shedding onto the service suites.
    pub max_queue_depth: Option<usize>,
    /// Service-wide budget (bytes) for resident dataset payloads. When a
    /// `load`/`reload` pushes the total over the budget, the
    /// least-recently-dispatched dataset with no admitted queries is
    /// quota-evicted (its stale handles resolve to
    /// [`ServiceError::DatasetEvicted`]) until the budget holds — or until
    /// only pinned datasets remain, in which case the service stays over
    /// budget rather than evict under a live query. `None` (the default)
    /// disables quotas. Defaults to the `DLRA_MEMORY_BUDGET` environment
    /// variable.
    pub memory_budget: Option<u64>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            executors: default_executors(),
            substrate: default_substrate(),
            plan_cache: default_plan_cache(),
            metrics: true,
            topology: default_topology(),
            max_queue_depth: default_max_queue(),
            memory_budget: default_memory_budget(),
        }
    }
}

/// How a delivered query interacted with its dataset's plan cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanUse {
    /// The preparation's one-time ledger cost. It is already folded into
    /// the output's `comm` (keeping per-query accounting identical to an
    /// unplanned run); subtract it to get the query's own draw/fetch
    /// delta, and charge it once per distinct plan when totalling a batch.
    pub prepare_comm: LedgerSnapshot,
    /// `true` when the preparation was served from the cache; `false` for
    /// the one query per plan that physically ran it.
    pub cache_hit: bool,
}

/// A delivered query result plus its planner provenance.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The protocol output (projection, per-query ledger delta, rows).
    pub output: Algorithm1Output,
    /// `Some` when the query executed from a shared plan; `None` on the
    /// unplanned path (cache disabled, non-Z sampler, or boosted query).
    pub plan: Option<PlanUse>,
}

/// Operator-friendly one-liner: cache interaction plus the preparation's
/// word cost.
impl std::fmt::Display for PlanUse {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}, prepare cost {}",
            if self.cache_hit {
                "plan cache hit"
            } else {
                "plan prepared"
            },
            self.prepare_comm
        )
    }
}

/// Operator-friendly one-liner: projection shape, sample count, charged
/// communication, and planner provenance.
impl std::fmt::Display for QueryOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "projection dim={} rows={} captured={:.4} comm[{}]",
            self.output.projection.dim(),
            self.output.rows.len(),
            self.output.captured,
            self.output.comm
        )?;
        match &self.plan {
            Some(plan) => write!(f, " ({plan})"),
            None => write!(f, " (unplanned)"),
        }
    }
}

/// The unified error taxonomy of the service layer. Callers can tell "my
/// query was bad" ([`ServiceError::InvalidQuery`]) apart from "the data is
/// gone" ([`ServiceError::DatasetEvicted`]), "I ran out of time"
/// ([`ServiceError::Deadline`]), and "the pool is gone, retry elsewhere"
/// ([`ServiceError::RuntimeUnavailable`]).
#[derive(Debug)]
pub enum ServiceError {
    /// The query is invalid — rejected by the builder-equivalent checks,
    /// by the shape of the addressed dataset, or by the protocol itself.
    InvalidQuery(QueryError),
    /// The addressed dataset was evicted (the handle outlived its data).
    DatasetEvicted {
        /// Name the dataset was resident under.
        dataset: String,
    },
    /// No dataset with this name is resident ([`Service::reload`] /
    /// [`Service::evict`] addressing).
    UnknownDataset(String),
    /// [`Service::load`] would overwrite a resident dataset; use
    /// [`Service::reload`] to swap data under an existing name.
    DatasetExists(String),
    /// The dataset payload is malformed (no servers, mismatched shapes).
    InvalidDataset(String),
    /// The ticket's deadline expired before the query executed.
    Deadline,
    /// The ticket was cancelled before the query executed.
    Cancelled,
    /// Admission control shed the query: the service already has
    /// `queue_depth` queries admitted against a bound of `limit`. The shed
    /// is decided at submission in O(µs) — the query never touches an
    /// executor — so retrying after a backoff is cheap and safe.
    Overloaded {
        /// Admitted-but-unresolved queries observed at the shed decision.
        queue_depth: u64,
        /// The configured admission bound ([`ServiceConfig::max_queue_depth`]).
        limit: u64,
    },
    /// The executor pool is gone (shut down or every executor died). The
    /// query itself may be fine and can be retried against a live service.
    RuntimeUnavailable(String),
    /// The protocol failed mid-execution (sampler exhausted, numerical
    /// failure).
    Execution(CoreError),
}

impl ServiceError {
    /// Whether resubmitting the same query, unchanged, can reasonably
    /// succeed later: the service was too busy ([`ServiceError::Overloaded`]
    /// — back off and retry), the pool is gone
    /// ([`ServiceError::RuntimeUnavailable`] — retry against a live
    /// service), or time ran out ([`ServiceError::Deadline`] — retry with a
    /// looser deadline). Disjoint from [`ServiceError::is_caller_error`];
    /// [`ServiceError::Execution`] is neither (a mid-protocol failure may
    /// or may not be data-dependent — callers must look at the inner
    /// error).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ServiceError::Overloaded { .. }
                | ServiceError::RuntimeUnavailable(_)
                | ServiceError::Deadline
        )
    }

    /// Whether the failure is the caller's to fix — a malformed query, a
    /// wrong dataset name, a handle outliving its data, or the caller's
    /// own cancellation. Retrying without changing the request (or the
    /// addressed dataset) cannot succeed. Disjoint from
    /// [`ServiceError::is_retryable`].
    pub fn is_caller_error(&self) -> bool {
        matches!(
            self,
            ServiceError::InvalidQuery(_)
                | ServiceError::DatasetEvicted { .. }
                | ServiceError::UnknownDataset(_)
                | ServiceError::DatasetExists(_)
                | ServiceError::InvalidDataset(_)
                | ServiceError::Cancelled
        )
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::InvalidQuery(e) => write!(f, "invalid query: {e}"),
            ServiceError::DatasetEvicted { dataset } => {
                write!(f, "dataset '{dataset}' was evicted")
            }
            ServiceError::UnknownDataset(name) => {
                write!(f, "no dataset named '{name}' is resident")
            }
            ServiceError::DatasetExists(name) => {
                write!(f, "dataset '{name}' is already resident (use reload)")
            }
            ServiceError::InvalidDataset(m) => write!(f, "invalid dataset: {m}"),
            ServiceError::Deadline => write!(f, "deadline expired before the query executed"),
            ServiceError::Cancelled => write!(f, "query cancelled before execution"),
            ServiceError::Overloaded { queue_depth, limit } => write!(
                f,
                "service overloaded: {queue_depth} queries admitted against a bound of {limit}"
            ),
            ServiceError::RuntimeUnavailable(m) => write!(f, "runtime unavailable: {m}"),
            ServiceError::Execution(e) => write!(f, "execution failed: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<QueryError> for ServiceError {
    fn from(e: QueryError) -> Self {
        ServiceError::InvalidQuery(e)
    }
}

/// Maps a protocol-layer failure into the service taxonomy.
fn map_execution(err: CoreError) -> ServiceError {
    match err {
        CoreError::InvalidConfig(m) => ServiceError::InvalidQuery(QueryError::Rejected(m)),
        CoreError::RuntimeUnavailable(m) => ServiceError::RuntimeUnavailable(m),
        CoreError::Interrupted(InterruptReason::Deadline) => ServiceError::Deadline,
        CoreError::Interrupted(InterruptReason::Cancelled) => ServiceError::Cancelled,
        other => ServiceError::Execution(other),
    }
}

/// The error a ticket resolves to when the pool cannot (or can no longer)
/// run its query.
pub(crate) fn runtime_unavailable() -> ServiceError {
    ServiceError::RuntimeUnavailable(
        "executor pool is not running (all executors exited or the runtime shut down)".into(),
    )
}

/// The resident payload of one dataset plus its epoch (bumped on every
/// reload; part of every [`PlanKey`], so plans are pinned to the data they
/// were prepared against).
struct Resident {
    locals: Arc<Vec<Matrix>>,
    epoch: u64,
    shape: (usize, usize),
}

/// One named resident dataset: payload, residency epoch, and a private
/// plan-cache partition. Queries hold an `Arc` to the dataset they were
/// addressed to, so eviction never invalidates what is already executing.
struct Dataset {
    /// Service-unique id; part of every [`PlanKey`] this dataset mints, so
    /// plans can never cross datasets even if caches were ever shared.
    id: u64,
    name: String,
    // dlra-lock-order: dataset.resident
    resident: RwLock<Resident>,
    /// `Some` when planning is enabled (`ServiceConfig::plan_cache > 0`).
    /// Private to this dataset: another tenant's reload/evict cannot touch
    /// it.
    planner: Option<Arc<PlanCache>>,
    /// `Some` when the service maintains metrics
    /// (`ServiceConfig::metrics`). Private per dataset, like the planner.
    metrics: Option<Arc<DatasetMetrics>>,
    evicted: AtomicBool,
    /// Bytes of resident payload (Σ rows·cols·8 over servers); updated
    /// under the resident write lock at load/reload, read by the quota
    /// sweep.
    bytes: AtomicU64,
    /// Logical LRU tick of the last admission (or load/reload) touching
    /// this dataset — from the service's monotonic mint, never a clock, so
    /// quota-eviction victims are deterministic given the interleaving.
    last_used: AtomicU64,
    /// Queries admitted against this dataset and not yet resolved. A
    /// dataset with `pending > 0` is pinned: the quota sweep never evicts
    /// it, so plans being prepared and payloads being queried stay live.
    pending: AtomicU64,
}

/// Lifecycle of a submitted query, kept in **one** atomic word so that
/// [`Ticket::cancel`] and the executor's claim cannot race each other into
/// contradictory answers (two separate flags would allow "cancel returned
/// true" and "the query ran anyway" simultaneously).
mod ticket_state {
    /// Queued; nobody has claimed it.
    pub const PENDING: u8 = 0;
    /// An executor won the claim and is executing (or has delivered).
    pub const STARTED: u8 = 1;
    /// A cancel won the claim; the query will never execute.
    pub const CANCELLED: u8 = 2;
    /// Resolved without executing (submission-time failure, deadline,
    /// eviction) — cancellation can no longer change the outcome.
    pub const RESOLVED: u8 = 3;
}

/// Process-wide query id mint: every submitted query gets a unique id so
/// trace spans from different lifecycle stages (and threads) correlate.
static NEXT_QUERY_ID: AtomicU64 = AtomicU64::new(1);

/// Cancellation/deadline state shared between a [`Ticket`] and the
/// executor that will run (or skip) its query.
struct TicketShared {
    /// One of [`ticket_state`]'s values; every transition out of `PENDING`
    /// is a compare-exchange, so exactly one party claims the query.
    state: AtomicU8,
    /// Set by every `cancel` call, even too-late ones: the
    /// prepare→execute checkpoint honors it best-effort after execution
    /// has started.
    cancel_requested: AtomicBool,
    /// Set (before resolution) when admission control shed this query, so
    /// callers can detect shedding without consuming the one-shot result.
    shed: AtomicBool,
    submitted: Instant,
    // dlra-lock-order: ticket.deadline
    deadline: Mutex<Option<Instant>>,
    /// Process-unique id correlating this query's trace events.
    query_id: u64,
}

impl TicketShared {
    fn new(deadline: Option<Duration>) -> Self {
        let submitted = Instant::now();
        TicketShared {
            state: AtomicU8::new(ticket_state::PENDING),
            cancel_requested: AtomicBool::new(false),
            shed: AtomicBool::new(false),
            submitted,
            deadline: Mutex::new(deadline.and_then(|d| submitted.checked_add(d))),
            query_id: NEXT_QUERY_ID.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Tries to move `PENDING → to`; on failure returns the state that won
    /// instead.
    fn claim(&self, to: u8) -> Result<(), u8> {
        // The ticket state machine lives in this one atomic, and a CAS
        // already totally orders its transitions. AcqRel/Acquire makes a
        // successful claim publish (and a failed claim observe) everything
        // the transitioning thread wrote first; nothing here needs the
        // cross-variable total order SeqCst would add.
        self.state
            .compare_exchange(
                ticket_state::PENDING,
                to,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .map(|_| ())
    }

    fn deadline_expired(&self) -> bool {
        self.deadline
            .lock_recover()
            .is_some_and(|at| Instant::now() >= at)
    }
}

/// Pending result of a submitted query: resolves exactly once, to a
/// [`QueryOutcome`] or a [`ServiceError`].
pub struct Ticket {
    rx: Receiver<Result<QueryOutcome, ServiceError>>,
    shared: Arc<TicketShared>,
}

impl Ticket {
    /// Requests cancellation. Returns `true` exactly when the query will
    /// never execute: it was still pending and this call claimed it, so
    /// the ticket resolves to [`ServiceError::Cancelled`] (a repeated
    /// cancel of an already-cancelled ticket also reports `true`). Returns
    /// `false` when it is too late for that guarantee — execution has
    /// started (the request flag is still set, and an executor that has
    /// not yet passed the prepare→execute checkpoint may still honor it),
    /// or the ticket already resolved another way (submission-time
    /// failure, expired deadline, delivered result).
    pub fn cancel(&self) -> bool {
        // Release pairs with the Acquire load at the executor's
        // prepare→execute checkpoint; the flag is documented best-effort,
        // the hard guarantee rides on the `claim` CAS below.
        self.shared.cancel_requested.store(true, Ordering::Release);
        match self.shared.claim(ticket_state::CANCELLED) {
            Ok(()) => true,
            Err(won) => won == ticket_state::CANCELLED,
        }
    }

    /// Whether an executor has started executing this query.
    pub fn started(&self) -> bool {
        // Pure single-variable predicate: no data is read on the strength
        // of the answer, so the CAS's own coherence order is enough.
        self.shared.state.load(Ordering::Relaxed) == ticket_state::STARTED
    }

    /// Whether admission control shed this query — `true` exactly when the
    /// ticket resolved to [`ServiceError::Overloaded`] at submission. Does
    /// not consume the result (unlike [`Ticket::try_wait`]), so retry
    /// loops can test it, back off, and resubmit without touching the
    /// channel.
    pub fn shed(&self) -> bool {
        // The flag is written before the ticket is handed back from
        // submit, on the same thread; Relaxed is enough for every later
        // read.
        self.shared.shed.load(Ordering::Relaxed)
    }

    /// Sets (or tightens — a later, looser deadline never relaxes an
    /// earlier one) the query's deadline, measured from **submission**. A
    /// query whose deadline has expired by the time an executor reaches it
    /// resolves to [`ServiceError::Deadline`] without running.
    pub fn deadline(self, after: Duration) -> Self {
        if let Some(at) = self.shared.submitted.checked_add(after) {
            let mut slot = self.shared.deadline.lock_recover();
            *slot = Some(match *slot {
                Some(cur) => cur.min(at),
                None => at,
            });
        }
        self
    }

    /// The terminal error of a ticket whose reply channel died: a query
    /// this ticket successfully claimed as cancelled stays [`Cancelled`]
    /// even if the pool collapsed around it; anything else is the pool's
    /// fault.
    fn disconnected(&self) -> ServiceError {
        // Single-variable predicate on the state machine; the error value
        // it picks carries no data from the writer.
        if self.shared.state.load(Ordering::Relaxed) == ticket_state::CANCELLED {
            ServiceError::Cancelled
        } else {
            runtime_unavailable()
        }
    }

    /// Blocks until the query resolves. A query the service cannot deliver
    /// (executor panicked mid-run, pool dead or shut down) resolves to
    /// [`ServiceError::RuntimeUnavailable`].
    pub fn wait(self) -> Result<QueryOutcome, ServiceError> {
        match self.rx.recv() {
            Ok(result) => result,
            Err(_) => Err(self.disconnected()),
        }
    }

    /// Blocks for at most `timeout`. `Ok` carries the resolution; on
    /// timeout the ticket comes back as `Err(self)` so the caller can keep
    /// waiting — or [`Ticket::cancel`] it.
    pub fn wait_timeout(
        self,
        timeout: Duration,
    ) -> Result<Result<QueryOutcome, ServiceError>, Ticket> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => Ok(result),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(self),
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                let err = self.disconnected();
                Ok(Err(err))
            }
        }
    }

    /// Non-blocking poll; `None` while the query is still pending. A dead
    /// query (executor panicked, pool shut down) yields
    /// `Some(Err(ServiceError::RuntimeUnavailable))`, not `None`, so
    /// pollers cannot spin forever on it.
    pub fn try_wait(&self) -> Option<Result<QueryOutcome, ServiceError>> {
        match self.rx.try_recv() {
            Ok(result) => Some(result),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(self.disconnected())),
        }
    }

    /// A ticket already resolved to `result` (submission-time failures).
    /// The state moves to `RESOLVED`, so a later `cancel` truthfully
    /// reports it was too late to change the outcome. If a cancel already
    /// claimed the ticket, the cancel's drop-before-execute guarantee wins
    /// and the ticket resolves to [`ServiceError::Cancelled`] instead —
    /// `cancel() == true` always implies exactly that one terminal state.
    fn resolved(shared: Arc<TicketShared>, result: Result<QueryOutcome, ServiceError>) -> Ticket {
        let result = match shared.claim(ticket_state::RESOLVED) {
            Ok(()) => result,
            Err(won) if won == ticket_state::CANCELLED => Err(ServiceError::Cancelled),
            Err(_) => result,
        };
        let (reply, rx) = mpsc::channel();
        let _ = reply.send(result);
        Ticket { rx, shared }
    }
}

/// Resolves a ticket from outside the executor path (queue send failure,
/// post-shutdown submission), honoring a cancel that already claimed it:
/// `cancel() == true` must imply the ticket resolves to
/// [`ServiceError::Cancelled`] — a caller that timed out in
/// [`Ticket::wait_timeout`] and then cancelled must observe exactly one
/// terminal state, even when it races a collapsing pool.
fn deliver_terminal(
    ticket: &TicketShared,
    reply: &Sender<Result<QueryOutcome, ServiceError>>,
    err: ServiceError,
) {
    let result = match ticket.claim(ticket_state::RESOLVED) {
        Ok(()) => Err(err),
        Err(won) if won == ticket_state::CANCELLED => Err(ServiceError::Cancelled),
        Err(_) => Err(err),
    };
    let _ = reply.send(result);
}

enum Task {
    Query {
        dataset: Arc<Dataset>,
        /// Boxed so a queued task stays small next to the dataless
        /// test-only `Poison` variant.
        request: Box<QueryRequest>,
        ticket: Arc<TicketShared>,
        reply: Sender<Result<QueryOutcome, ServiceError>>,
        /// Held while the query is in the system (queued or executing);
        /// dropping it releases the admission gauge and unpins the dataset.
        admission: AdmissionGuard,
    },
    /// Test-only: makes the executor that pops it panic, so tests can kill
    /// the pool and exercise the dead-runtime failure paths.
    #[cfg(test)]
    Poison,
}

/// RAII token of one admitted query: constructed at admission (after
/// `ServicePressure::try_admit` succeeded and the dataset's `pending` pin
/// was taken), dropped at terminal resolution. Because it rides inside
/// [`Task::Query`], a task dropped without executing — a collapsing pool
/// tearing down its queue — still balances the gauge and the pin.
struct AdmissionGuard {
    shared: Arc<Shared>,
    dataset: Arc<Dataset>,
}

impl Drop for AdmissionGuard {
    fn drop(&mut self) {
        // Both are freestanding counters consumed by single-variable
        // predicates (the quota sweep's pin check, the admission bound);
        // RMW atomicity alone keeps them exact, so Relaxed suffices.
        self.dataset.pending.fetch_sub(1, Ordering::Relaxed);
        self.shared.pressure.release();
        self.shared.drained.fetch_add(1, Ordering::Relaxed);
    }
}

/// State shared between the [`Service`], its executors, and every
/// [`DatasetHandle`].
struct Shared {
    /// `None` after shutdown; handles then resolve submissions to
    /// [`ServiceError::RuntimeUnavailable`].
    // dlra-lock-order: service.queue
    queue: RwLock<Option<Sender<Task>>>,
    // dlra-lock-order: service.datasets
    datasets: RwLock<HashMap<String, Arc<Dataset>>>,
    next_dataset_id: AtomicU64,
    plan_cache: usize,
    /// Whether per-dataset metrics registries are maintained.
    metrics: bool,
    /// Live pressure state: the admission gauge, resident-byte total, and
    /// shed/quota-eviction counters. Always maintained (even with the
    /// metrics registry off) — admission control and the quota sweep read
    /// it to make decisions, not just to report.
    pressure: ServicePressure,
    /// Monotonic logical LRU clock: bumped at every admission and
    /// load/reload, never read from wall time, so ticks are unique and the
    /// quota sweep's minimum is a deterministic victim for a given
    /// operation interleaving.
    lru_tick: AtomicU64,
    /// Admission bound ([`ServiceConfig::max_queue_depth`]), widened for
    /// the gauge.
    max_queue_depth: Option<u64>,
    /// Resident-byte budget ([`ServiceConfig::memory_budget`]).
    memory_budget: Option<u64>,
    /// Admitted queries that reached a terminal resolution — the drain
    /// side of the admission gauge. Together with [`Shared::started`] it
    /// yields the service's observed drain rate, from which the network
    /// gate derives the retry-after hint it attaches to shed queries (see
    /// [`crate::netgate`]).
    drained: AtomicU64,
    /// When the service started; denominator of the drain rate.
    started: Instant,
}

impl Shared {
    /// Mean time between admitted-query resolutions so far, in
    /// microseconds. Before anything has drained there is no evidence, so
    /// the uptime itself is the (pessimistic) estimate.
    pub(crate) fn mean_drain_micros(&self) -> u64 {
        let elapsed = self.started.elapsed().as_micros() as u64;
        let drained = self.drained.load(Ordering::Relaxed);
        elapsed / drained.max(1)
    }
}

/// A multi-dataset serving front door: named copy-on-write resident
/// datasets, a shared executor pool, per-dataset plan caches, typed
/// queries, tickets with cancellation and deadlines.
///
/// ```
/// use dlra_core::prelude::*;
/// use dlra_runtime::{Query, Service, ServiceConfig};
/// use dlra_linalg::Matrix;
/// use dlra_util::Rng;
///
/// let mut rng = Rng::new(3);
/// let tenant_a: Vec<Matrix> = (0..3).map(|_| Matrix::gaussian(80, 12, &mut rng)).collect();
/// let tenant_b: Vec<Matrix> = (0..2).map(|_| Matrix::gaussian(60, 8, &mut rng)).collect();
///
/// let service = Service::new(ServiceConfig::default());
/// let a = service.load("tenant-a", tenant_a).unwrap();
/// let b = service.load("tenant-b", tenant_b).unwrap();
///
/// // Interleaved queries against both datasets, concurrently in flight.
/// let qa = Query::rank(2).samples(25).sampler(SamplerKind::Uniform).build().unwrap();
/// let qb = Query::rank(3).samples(30).sampler(SamplerKind::Uniform).build().unwrap();
/// let ta = a.submit(&qa);
/// let tb = b.submit(&qb);
/// assert_eq!(ta.wait().unwrap().output.projection.dim(), 12);
/// assert_eq!(tb.wait().unwrap().output.projection.dim(), 8);
/// ```
pub struct Service {
    shared: Arc<Shared>,
    substrate: Substrate,
    topology: Topology,
    executors: Vec<JoinHandle<()>>,
    started: Instant,
}

impl Service {
    /// Starts the executor pool. Datasets are loaded afterwards with
    /// [`Service::load`].
    pub fn new(config: ServiceConfig) -> Self {
        let shared = Arc::new(Shared {
            queue: RwLock::new(None),
            datasets: RwLock::new(HashMap::new()),
            next_dataset_id: AtomicU64::new(0),
            plan_cache: config.plan_cache,
            metrics: config.metrics,
            pressure: ServicePressure::new(),
            lru_tick: AtomicU64::new(0),
            max_queue_depth: config.max_queue_depth.map(|n| n as u64),
            memory_budget: config.memory_budget,
            drained: AtomicU64::new(0),
            started: Instant::now(),
        });
        if config.metrics {
            // Process-global (the kernel pool is process-global too): a
            // metrics-enabled service turns the pool profile on so its
            // snapshots carry busy/wall nanos and section counts. Cost
            // when on is two clock reads per pool section.
            dlra_linalg::set_pool_profiling(true);
        }
        let (queue, tasks) = mpsc::channel::<Task>();
        *shared.queue.write_recover() = Some(queue);
        let tasks = Arc::new(Mutex::new(tasks));
        let total = config.executors.max(1);
        let executors = (0..total)
            .map(|i| {
                let tasks = Arc::clone(&tasks);
                let substrate = config.substrate;
                let topology = config.topology;
                // dlra-allow(thread-discipline): the service executor pool
                // is itself a sanctioned long-lived pool — workers are
                // created once per Service and joined in shutdown().
                std::thread::Builder::new()
                    .name(format!("dlra-executor-{i}"))
                    .spawn(move || executor_loop(&tasks, substrate, topology, total))
                    // dlra-allow(panic-policy): spawn fails only on OS
                    // thread exhaustion at Service construction, before any
                    // query exists to resolve to a typed error.
                    .expect("spawn service executor thread")
            })
            .collect();
        Service {
            shared,
            substrate: config.substrate,
            topology: config.topology,
            executors,
            started: Instant::now(),
        }
    }

    /// Makes `locals` (one matrix per server) resident under `name` and
    /// returns its handle. Loading shares the caller's matrix storage
    /// copy-on-write — no entry data is copied here or at query dispatch.
    /// Fails with [`ServiceError::DatasetExists`] if the name is taken
    /// (use [`Service::reload`] to swap data under a live name).
    pub fn load(&self, name: &str, locals: Vec<Matrix>) -> Result<DatasetHandle, ServiceError> {
        let shape = validate_locals(&locals)?;
        let bytes = locals_bytes(&locals);
        let mut datasets = self.shared.datasets.write_recover();
        if datasets.contains_key(name) {
            return Err(ServiceError::DatasetExists(name.to_string()));
        }
        // Fresh tick: a just-loaded dataset is the most recently used, so a
        // budget sweep triggered by this very load prefers older tenants.
        // Tick mint: uniqueness + monotonicity come from RMW atomicity.
        let tick = self.shared.lru_tick.fetch_add(1, Ordering::Relaxed) + 1;
        let dataset = Arc::new(Dataset {
            // Id mint: uniqueness is all that matters, and RMW atomicity
            // alone provides it.
            id: self.shared.next_dataset_id.fetch_add(1, Ordering::Relaxed),
            name: name.to_string(),
            resident: RwLock::new(Resident {
                locals: Arc::new(locals),
                epoch: 0,
                shape,
            }),
            planner: (self.shared.plan_cache > 0)
                .then(|| Arc::new(PlanCache::new(self.shared.plan_cache))),
            metrics: self.shared.metrics.then(|| Arc::new(DatasetMetrics::new())),
            evicted: AtomicBool::new(false),
            bytes: AtomicU64::new(bytes),
            last_used: AtomicU64::new(tick),
            pending: AtomicU64::new(0),
        });
        if let Some(m) = dataset.metrics.as_deref() {
            m.set_resident_bytes(bytes);
        }
        self.shared.pressure.add_resident_bytes(bytes);
        datasets.insert(name.to_string(), Arc::clone(&dataset));
        // The newcomer is protected: a load larger than the whole budget
        // keeps the requested data resident (over budget) rather than
        // evict what the caller just asked for.
        enforce_budget(&self.shared, &mut datasets, Some(dataset.id));
        Ok(DatasetHandle {
            shared: Arc::clone(&self.shared),
            dataset,
        })
    }

    /// Replaces `name`'s resident payload and bumps **its** residency
    /// epoch: in-flight queries finish against the payload they dispatched
    /// with (their models hold handle clones), subsequent queries see the
    /// new data, and every cached plan from the dataset's previous epoch
    /// is dropped — from this dataset's cache partition only; every other
    /// dataset's plans stay live.
    pub fn reload(&self, name: &str, locals: Vec<Matrix>) -> Result<(), ServiceError> {
        let shape = validate_locals(&locals)?;
        let new_bytes = locals_bytes(&locals);
        // Write lock (was read): the byte-accounting swap and the budget
        // sweep below must be atomic with respect to concurrent
        // load/reload/evict, or two reloads could both pick the same
        // victim's bytes to reclaim.
        let mut datasets = self.shared.datasets.write_recover();
        let dataset = datasets
            .get(name)
            .cloned()
            .ok_or_else(|| ServiceError::UnknownDataset(name.to_string()))?;
        let epoch = {
            let mut resident = dataset.resident.write_recover();
            resident.locals = Arc::new(locals);
            resident.epoch += 1;
            resident.shape = shape;
            resident.epoch
        };
        if let Some(planner) = &dataset.planner {
            planner.retain_epoch(epoch);
        }
        // Byte accounting: `swap` claims the old payload's bytes exactly
        // once, so a racing evict can never double-subtract.
        let old_bytes = dataset.bytes.swap(new_bytes, Ordering::Relaxed);
        if let Some(m) = dataset.metrics.as_deref() {
            m.set_resident_bytes(new_bytes);
        }
        self.shared.pressure.sub_resident_bytes(old_bytes);
        self.shared.pressure.add_resident_bytes(new_bytes);
        // Tick mint: uniqueness + monotonicity come from RMW atomicity.
        let tick = self.shared.lru_tick.fetch_add(1, Ordering::Relaxed) + 1;
        dataset.last_used.store(tick, Ordering::Relaxed);
        enforce_budget(&self.shared, &mut datasets, Some(dataset.id));
        Ok(())
    }

    /// Evicts `name`: the dataset leaves the registry, queued-but-unstarted
    /// queries addressed to it resolve to [`ServiceError::DatasetEvicted`],
    /// queries already executing finish against the payload they hold, and
    /// its plan-cache partition is purged. Other datasets are untouched.
    /// The name becomes immediately available for a fresh [`Service::load`]
    /// (with a new dataset id — stale handles keep reporting eviction).
    pub fn evict(&self, name: &str) -> Result<(), ServiceError> {
        let dataset = self
            .shared
            .datasets
            .write_recover()
            .remove(name)
            .ok_or_else(|| ServiceError::UnknownDataset(name.to_string()))?;
        // Release pairs with the Acquire loads in dispatch/execute: a
        // thread that sees the flag also sees the map removal above.
        dataset.evicted.store(true, Ordering::Release);
        if let Some(planner) = &dataset.planner {
            // No key can ever carry this epoch (epochs count up from 0), so
            // this drops every settled plan of the evicted dataset.
            planner.retain_epoch(u64::MAX);
        }
        // `swap` claims the payload's bytes exactly once (a racing reload
        // claimed them first if it got there before us).
        let bytes = dataset.bytes.swap(0, Ordering::Relaxed);
        self.shared.pressure.sub_resident_bytes(bytes);
        if let Some(m) = dataset.metrics.as_deref() {
            m.set_resident_bytes(0);
        }
        Ok(())
    }

    /// The handle of a resident dataset, or `None`.
    pub fn dataset(&self, name: &str) -> Option<DatasetHandle> {
        self.shared
            .datasets
            .read_recover()
            .get(name)
            .map(|dataset| DatasetHandle {
                shared: Arc::clone(&self.shared),
                dataset: Arc::clone(dataset),
            })
    }

    /// Names of every resident dataset (unordered).
    pub fn dataset_names(&self) -> Vec<String> {
        self.shared
            .datasets
            .read_recover()
            .keys()
            .cloned()
            .collect()
    }

    /// The substrate queries run on.
    pub fn substrate(&self) -> Substrate {
        self.substrate
    }

    /// Mean time between admitted-query resolutions so far (µs): the
    /// observed drain rate of the admission gauge, used by
    /// [`crate::netgate`] to derive retry-after hints for shed queries.
    pub(crate) fn mean_drain_micros(&self) -> u64 {
        self.shared.mean_drain_micros()
    }

    /// The collective routing topology queries run with.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Number of executor threads.
    pub fn executors(&self) -> usize {
        self.executors.len()
    }

    /// Live pressure state: admitted-but-unresolved queries, resident
    /// payload bytes, shed and quota-eviction totals, plus the configured
    /// bounds. Always available — even with the metrics registry disabled,
    /// admission control and quota accounting run unconditionally.
    pub fn pressure(&self) -> PressureSnapshot {
        self.shared
            .pressure
            .snapshot(self.shared.max_queue_depth, self.shared.memory_budget)
    }

    /// A point-in-time metrics snapshot — one entry per resident dataset
    /// (in load order) with outcome counters, queue/in-flight gauges,
    /// latency and phase histograms, word-exact communication totals, and
    /// plan-cache counters — plus the kernel pool's thread count,
    /// parallelism watermark, and profiling accumulators. `None` when the
    /// registry is disabled (`ServiceConfig::metrics = false`).
    ///
    /// Export with [`MetricsSnapshot::to_json`],
    /// [`MetricsSnapshot::to_prometheus`], or `Display`.
    pub fn metrics(&self) -> Option<MetricsSnapshot> {
        if !self.shared.metrics {
            return None;
        }
        let mut residents: Vec<Arc<Dataset>> = self
            .shared
            .datasets
            .read_recover()
            .values()
            .cloned()
            .collect();
        // Dataset ids count up from 0 at load, so this is load order —
        // deterministic, unlike HashMap iteration.
        residents.sort_by_key(|dataset| dataset.id);
        let datasets = residents
            .iter()
            .filter_map(|dataset| {
                let registry = dataset.metrics.as_ref()?;
                let mut snap = registry.snapshot();
                snap.name = dataset.name.clone();
                snap.plan_cache = dataset.planner.as_ref().map(|planner| {
                    let stats = planner.stats();
                    PlanCacheSnapshot {
                        hits: stats.hits,
                        misses: stats.misses,
                        evictions: stats.evictions,
                        invalidations: stats.invalidations,
                    }
                });
                Some(snap)
            })
            .collect();
        let profile = dlra_linalg::pool_profile();
        Some(MetricsSnapshot {
            uptime_secs: self.started.elapsed().as_secs_f64(),
            executors: self.executors.len(),
            kernel: KernelPoolSnapshot {
                threads: dlra_linalg::threads(),
                watermark: dlra_linalg::parallelism_watermark(),
                parallel_sections: profile.parallel_sections,
                inline_sections: profile.inline_sections,
                busy_nanos: profile.busy_nanos,
                wall_nanos: profile.wall_nanos,
            },
            pressure: self.pressure(),
            datasets,
        })
    }

    /// Stops the executor pool gracefully: already-queued and in-flight
    /// queries complete and deliver their results, then the executors are
    /// joined. Subsequent submissions resolve to
    /// [`ServiceError::RuntimeUnavailable`]. Idempotent; `Drop` runs the
    /// same path.
    pub fn shutdown(&mut self) {
        self.shared.queue.write_recover().take();
        for handle in self.executors.drain(..) {
            let _ = handle.join();
        }
        // Queries can no longer record events; persist what they did.
        trace::flush();
    }

    /// Test-only: kills the whole executor pool (one poison task per
    /// executor, joined so the death is fully observable) to exercise the
    /// dead-pool failure paths.
    #[cfg(test)]
    pub(crate) fn poison_executors(&mut self) {
        let n = self.executors.len();
        if let Some(queue) = self.shared.queue.read_recover().as_ref() {
            for _ in 0..n {
                queue.send(Task::Poison).expect("pool already dead");
            }
        }
        for handle in self.executors.drain(..) {
            assert!(handle.join().is_err(), "executor should have panicked");
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A cheap, cloneable handle to one resident dataset of a [`Service`]. The
/// handle pins the dataset **identity** (not just the name): after an
/// evict-then-load under the same name, stale handles keep resolving to
/// [`ServiceError::DatasetEvicted`] instead of silently answering from a
/// stranger's data.
#[derive(Clone)]
pub struct DatasetHandle {
    shared: Arc<Shared>,
    dataset: Arc<Dataset>,
}

impl DatasetHandle {
    /// Submits a typed query; returns immediately with its [`Ticket`].
    ///
    /// Never panics and never blocks on execution: submission-time
    /// failures (evicted dataset, `k` exceeding the dataset's column
    /// count, dead pool) come back through the ticket, typed.
    pub fn submit(&self, query: &Query) -> Ticket {
        let shared = Arc::new(TicketShared::new(query.deadline));
        let d = self.dataset.resident.read_recover().shape.1;
        let k = query.request.cfg.k;
        if k > d {
            self.reject(&shared);
            return Ticket::resolved(
                shared,
                Err(ServiceError::InvalidQuery(
                    QueryError::RankExceedsDimension { k, d },
                )),
            );
        }
        self.dispatch(query.request.clone(), shared)
    }

    /// The compatibility path behind `Runtime::submit`: a raw, unvalidated
    /// [`QueryRequest`] with no deadline. Malformed configurations surface
    /// from the protocol itself, exactly as before the builder existed.
    pub(crate) fn submit_request(&self, request: QueryRequest) -> Ticket {
        self.dispatch(request, Arc::new(TicketShared::new(None)))
    }

    /// Records a submission-time rejection (metrics + trace).
    fn reject(&self, shared: &TicketShared) {
        if let Some(m) = self.dataset.metrics.as_deref() {
            m.query_rejected();
        }
        trace::instant(
            "query",
            "query.reject",
            &[("qid", shared.query_id), ("dataset", self.dataset.id)],
        );
    }

    fn dispatch(&self, request: QueryRequest, shared: Arc<TicketShared>) -> Ticket {
        // Acquire pairs with the Release store in `Service::evict`.
        if self.dataset.evicted.load(Ordering::Acquire) {
            self.reject(&shared);
            return Ticket::resolved(
                shared,
                Err(ServiceError::DatasetEvicted {
                    dataset: self.dataset.name.clone(),
                }),
            );
        }
        // Admission decision: one atomic bound-check-and-increment, no
        // locks, no clocks — a shed submission resolves here in O(µs)
        // without reaching the queue.
        if let Err(queue_depth) = self.shared.pressure.try_admit(self.shared.max_queue_depth) {
            // Written before the ticket is handed back, on this thread;
            // Relaxed is enough for every later `Ticket::shed` read.
            shared.shed.store(true, Ordering::Relaxed);
            if let Some(m) = self.dataset.metrics.as_deref() {
                m.query_rejected_overload();
            }
            trace::instant(
                "query",
                "query.shed",
                &[("qid", shared.query_id), ("dataset", self.dataset.id)],
            );
            // `try_admit` only fails when a bound is configured.
            let limit = self.shared.max_queue_depth.unwrap_or(0);
            return Ticket::resolved(shared, Err(ServiceError::Overloaded { queue_depth, limit }));
        }
        // Admitted: pin the dataset against quota eviction and mark it
        // most-recently-used before the guard exists, so the guard's drop
        // is the sole release path from here on.
        // Pin + tick are freestanding counters read by single-variable
        // predicates; Relaxed suffices.
        self.dataset.pending.fetch_add(1, Ordering::Relaxed);
        let tick = self.shared.lru_tick.fetch_add(1, Ordering::Relaxed) + 1;
        self.dataset.last_used.store(tick, Ordering::Relaxed);
        let admission = AdmissionGuard {
            shared: Arc::clone(&self.shared),
            dataset: Arc::clone(&self.dataset),
        };
        let (reply, rx) = mpsc::channel();
        let ticket = Ticket {
            rx,
            shared: Arc::clone(&shared),
        };
        match self.shared.queue.read_recover().as_ref() {
            Some(queue) => {
                let task = Task::Query {
                    dataset: Arc::clone(&self.dataset),
                    request: Box::new(request),
                    ticket: shared,
                    reply,
                    admission,
                };
                match queue.send(task) {
                    Ok(()) => {
                        // Counted only once actually enqueued: the matching
                        // `query_dequeued` runs when an executor pops it
                        // (shutdown drains the queue, so every enqueued
                        // task is eventually popped).
                        if let Some(m) = self.dataset.metrics.as_deref() {
                            m.query_submitted();
                        }
                        trace::instant(
                            "query",
                            "query.submit",
                            &[
                                ("qid", ticket.shared.query_id),
                                ("dataset", self.dataset.id),
                            ],
                        );
                    }
                    Err(mpsc::SendError(task)) => {
                        // Every executor has exited (the pop side of the
                        // queue is gone): deliver the failure through the
                        // ticket, honoring a cancel that already claimed
                        // it, and release the admission the query never
                        // got to use.
                        match task {
                            Task::Query {
                                reply,
                                ticket,
                                admission,
                                ..
                            } => {
                                self.reject(&ticket);
                                deliver_terminal(&ticket, &reply, runtime_unavailable());
                                drop(admission);
                            }
                            #[cfg(test)]
                            Task::Poison => unreachable!("dispatch only sends queries"),
                        }
                    }
                }
            }
            // Shut down: the ticket must still resolve, and the admission
            // must be released (the query never entered the system).
            None => {
                self.reject(&ticket.shared);
                deliver_terminal(&ticket.shared, &reply, runtime_unavailable());
                drop(admission);
            }
        }
        ticket
    }

    /// The name this dataset is resident under.
    pub fn name(&self) -> &str {
        &self.dataset.name
    }

    /// Global data shape `(n, d)`.
    pub fn shape(&self) -> (usize, usize) {
        self.dataset.resident.read_recover().shape
    }

    /// Number of servers holding this dataset.
    pub fn num_servers(&self) -> usize {
        self.dataset.resident.read_recover().locals.len()
    }

    /// The dataset's residency epoch (0 at load, +1 per reload).
    pub fn epoch(&self) -> u64 {
        self.dataset.resident.read_recover().epoch
    }

    /// Whether the dataset has been evicted.
    pub fn is_evicted(&self) -> bool {
        // Acquire pairs with the Release store in `Service::evict`.
        self.dataset.evicted.load(Ordering::Acquire)
    }

    /// The resident per-server matrices (evaluation and testing; queries
    /// run against shared clones of these, never against copies).
    pub fn resident(&self) -> Arc<Vec<Matrix>> {
        Arc::clone(&self.dataset.resident.read_recover().locals)
    }

    /// This dataset's plan-cache counters, or `None` when planning is
    /// disabled. Private per dataset: another tenant's reload or eviction
    /// never moves these numbers.
    pub fn plan_stats(&self) -> Option<PlanCacheStats> {
        self.dataset.planner.as_ref().map(|p| p.stats())
    }

    /// Number of plans currently cached for this dataset (0 when planning
    /// is disabled).
    pub fn plan_cache_len(&self) -> usize {
        self.dataset.planner.as_ref().map_or(0, |p| p.len())
    }
}

/// Bytes of payload a `locals` vector keeps resident: Σ rows·cols·8 over
/// servers. Matrices are Arc-backed `f64` storage, so this is the cost of
/// what the service keeps alive — copy-on-write query dispatch never
/// multiplies it.
fn locals_bytes(locals: &[Matrix]) -> u64 {
    locals
        .iter()
        .map(|m| {
            let (n, d) = m.shape();
            (n as u64) * (d as u64) * 8
        })
        .sum()
}

/// The quota sweep: while the resident total exceeds the budget, evict the
/// least-recently-dispatched dataset that is neither pinned (admitted
/// queries in flight — their plans and payloads must stay live) nor
/// `protect` (the dataset whose load/reload triggered the sweep). Runs
/// under the `datasets` write lock, so sweeps serialize and the victim —
/// the minimum over unique monotonic ticks — is deterministic for a given
/// operation interleaving. Best-effort: when every candidate is pinned or
/// protected the service stays over budget rather than evict under a live
/// query.
fn enforce_budget(
    shared: &Shared,
    datasets: &mut HashMap<String, Arc<Dataset>>,
    protect: Option<u64>,
) {
    let Some(budget) = shared.memory_budget else {
        return;
    };
    while shared.pressure.resident_bytes() > budget {
        let victim = datasets
            .values()
            .filter(|d| Some(d.id) != protect)
            // Pin check: `pending` is incremented at admission, before the
            // task enters the queue, and held until terminal resolution.
            // Single-variable predicate; Relaxed suffices.
            .filter(|d| d.pending.load(Ordering::Relaxed) == 0)
            // Ticks are unique (one mint), so min_by_key has no ties and
            // the choice never depends on HashMap iteration order.
            .min_by_key(|d| d.last_used.load(Ordering::Relaxed))
            .map(|d| d.name.clone());
        let Some(name) = victim else {
            break;
        };
        let Some(dataset) = datasets.remove(&name) else {
            break;
        };
        // Release pairs with the Acquire loads in dispatch/execute — the
        // same contract as `Service::evict`.
        dataset.evicted.store(true, Ordering::Release);
        if let Some(planner) = &dataset.planner {
            // No key can ever carry this epoch, so every settled plan of
            // the victim drops; a preparation still in flight delivers to
            // its waiters but is never re-cached (the executor's
            // post-execution sweep re-runs retain against the evicted
            // flag).
            planner.retain_epoch(u64::MAX);
        }
        // `swap` claims the bytes exactly once against racing evictors.
        let bytes = dataset.bytes.swap(0, Ordering::Relaxed);
        shared.pressure.sub_resident_bytes(bytes);
        shared.pressure.record_pressure_eviction();
        if let Some(m) = dataset.metrics.as_deref() {
            m.set_resident_bytes(0);
        }
        trace::instant("service", "dataset.quota_evict", &[("dataset", dataset.id)]);
    }
}

fn validate_locals(locals: &[Matrix]) -> Result<(usize, usize), ServiceError> {
    if locals.is_empty() {
        return Err(ServiceError::InvalidDataset("no servers".into()));
    }
    let (n, d) = locals[0].shape();
    if n == 0 || d == 0 {
        return Err(ServiceError::InvalidDataset(format!(
            "empty matrices {n}x{d}"
        )));
    }
    if let Some((t, m)) = locals.iter().enumerate().find(|(_, m)| m.shape() != (n, d)) {
        return Err(ServiceError::InvalidDataset(format!(
            "server {t} has shape {:?}, expected ({n}, {d})",
            m.shape()
        )));
    }
    Ok((n, d))
}

fn executor_loop(
    tasks: &Mutex<Receiver<Task>>,
    substrate: Substrate,
    topology: Topology,
    executors: usize,
) {
    loop {
        // Hold the queue lock only for the pop, not the run.
        let popped = tasks.lock_recover().recv();
        match popped {
            Ok(Task::Query {
                dataset,
                request,
                ticket,
                reply,
                admission,
            }) => {
                let result = run_query(&dataset, substrate, topology, executors, &request, &ticket);
                // Execution is over: release the admission (and the pin)
                // *before* delivering, so a caller returning from `wait`
                // observes the gauge already decremented — the channel's
                // own synchronization orders the release before the recv.
                drop(admission);
                // The caller may have dropped its ticket; that's fine, the
                // result is discarded.
                let _ = reply.send(result);
            }
            #[cfg(test)]
            Ok(Task::Poison) => panic!("poison task (test-only)"),
            Err(_) => break,
        }
    }
}

/// Observability envelope around [`run_query_inner`]: records the queue
/// wait, the run span, and classifies the terminal outcome into the
/// dataset's metric counters. Pure bookkeeping — the result passes
/// through untouched.
fn run_query(
    dataset: &Arc<Dataset>,
    substrate: Substrate,
    topology: Topology,
    executors: usize,
    request: &QueryRequest,
    ticket: &TicketShared,
) -> Result<QueryOutcome, ServiceError> {
    let metrics = dataset.metrics.as_deref();
    if let Some(m) = metrics {
        m.query_dequeued();
    }
    trace::complete_since(
        "query",
        "query.queue",
        ticket.submitted,
        &[("qid", ticket.query_id), ("dataset", dataset.id)],
    );
    let result = {
        let _span = trace::span("query", "query.run")
            .arg("qid", ticket.query_id)
            .arg("dataset", dataset.id);
        if let Some(m) = metrics {
            m.query_started();
        }
        let result = run_query_inner(dataset, substrate, topology, executors, request, ticket);
        if let Some(m) = metrics {
            m.query_finished();
        }
        result
    };
    let qid = [("qid", ticket.query_id)];
    match &result {
        Ok(outcome) => {
            if let Some(m) = metrics {
                let latency = ticket.submitted.elapsed().as_micros() as u64;
                m.query_completed(latency, &outcome.output.comm);
            }
            trace::instant("query", "query.complete", &qid);
        }
        Err(ServiceError::Cancelled) => {
            if let Some(m) = metrics {
                m.query_cancelled();
            }
            trace::instant("query", "query.cancelled", &qid);
        }
        Err(ServiceError::Deadline) => {
            if let Some(m) = metrics {
                m.query_expired();
            }
            trace::instant("query", "query.deadline", &qid);
        }
        Err(ServiceError::DatasetEvicted { .. }) => {
            if let Some(m) = metrics {
                m.query_rejected();
            }
            trace::instant("query", "query.evicted", &qid);
        }
        Err(_) => {
            if let Some(m) = metrics {
                m.query_failed();
            }
            trace::instant("query", "query.failed", &qid);
        }
    }
    result
}

/// Pre-execution gatekeeping plus the kernel-budgeted protocol run.
fn run_query_inner(
    dataset: &Arc<Dataset>,
    substrate: Substrate,
    topology: Topology,
    executors: usize,
    request: &QueryRequest,
    ticket: &TicketShared,
) -> Result<QueryOutcome, ServiceError> {
    // Terminal gates first: a deadline or eviction resolves the ticket
    // without ever claiming it as started. Each resolution is itself a
    // claim out of PENDING, so a concurrent `cancel` cannot be told "the
    // query was dropped" while a different outcome is delivered — whoever
    // wins the compare-exchange names the outcome.
    if ticket.deadline_expired() {
        return match ticket.claim(ticket_state::RESOLVED) {
            Ok(()) => Err(ServiceError::Deadline),
            Err(_) => Err(ServiceError::Cancelled),
        };
    }
    // Acquire pairs with the Release store in `Service::evict`.
    if dataset.evicted.load(Ordering::Acquire) {
        return match ticket.claim(ticket_state::RESOLVED) {
            Ok(()) => Err(ServiceError::DatasetEvicted {
                dataset: dataset.name.clone(),
            }),
            Err(_) => Err(ServiceError::Cancelled),
        };
    }
    // Claim the query for execution: if a cancel got there first, honor
    // it — `cancel()` returned true, so the query must never run.
    if ticket.claim(ticket_state::STARTED).is_err() {
        return Err(ServiceError::Cancelled);
    }
    // Executor-layer kernel budgeting: coordinator-side kernels (the SVD
    // of B, gram products) share the process kernel-thread budget across
    // executors instead of each claiming all of it. Thread counts never
    // change bits, so this is invisible to the equivalence suites. The
    // budget is read outside the override so `set_threads` changes are
    // picked up per query.
    let budget = (dlra_linalg::threads() / executors).max(1);
    dlra_linalg::with_threads(budget, || {
        execute(dataset, substrate, topology, request, ticket)
    })
}

/// Runs one query on its private model instance, consulting the dataset's
/// planner partition when the query is eligible.
fn execute(
    dataset: &Arc<Dataset>,
    substrate: Substrate,
    topology: Topology,
    request: &QueryRequest,
    ticket: &TicketShared,
) -> Result<QueryOutcome, ServiceError> {
    // O(s) handle clones of the shared payload: each `Matrix` clone bumps a
    // refcount, no entry data moves. The model's query-local scratch
    // (injected coordinates, residual views) is freshly allocated per query.
    let (parts, epoch, d) = {
        let resident = dataset.resident.read_recover();
        let parts: Vec<Matrix> = resident.locals.iter().cloned().collect();
        (parts, resident.epoch, resident.shape.1)
    };
    let result = match substrate {
        Substrate::Sequential => {
            let mut model = PartitionModel::with_substrate(parts, request.f, move |locals| {
                dlra_comm::Cluster::with_topology(locals, topology)
            })
            .map_err(map_execution)?;
            execute_on(&mut model, dataset, request, epoch, d, ticket)
        }
        Substrate::Threaded => {
            let mut model = PartitionModel::with_substrate(parts, request.f, move |locals| {
                ThreadedCluster::with_topology(locals, topology)
            })
            .map_err(map_execution)?;
            execute_on(&mut model, dataset, request, epoch, d, ticket)
        }
        Substrate::Socket => {
            let mut model = PartitionModel::with_substrate(parts, request.f, move |locals| {
                dlra_net::SocketCluster::with_topology(locals, topology)
            })
            .map_err(map_execution)?;
            execute_on(&mut model, dataset, request, epoch, d, ticket)
        }
    };
    // A reload (or eviction) may have landed between our epoch snapshot and
    // any plan this query inserted: its `retain_epoch` ran before the
    // insertion, so sweep again against the *current* state. The query's
    // own result is untouched (it correctly answered against the data it
    // dispatched with); this only stops a dead-epoch plan from squatting in
    // an LRU slot until capacity pressure evicts it.
    if let Some(cache) = dataset.planner.as_deref() {
        // Acquire pairs with the Release store in `Service::evict`.
        if dataset.evicted.load(Ordering::Acquire) {
            cache.retain_epoch(u64::MAX);
        } else {
            let now = dataset.resident.read_recover().epoch;
            if now != epoch {
                cache.retain_epoch(now);
            }
        }
    }
    result
}

/// The stop signal an executing query polls between protocol phases:
/// cancellation wins over an expired deadline (matching the checkpoint
/// order below), and `None` means "keep going". Acquire pairs with the
/// Release store in [`Ticket::cancel`].
fn interrupt_reason(ticket: &TicketShared) -> Option<InterruptReason> {
    if ticket.cancel_requested.load(Ordering::Acquire) {
        Some(InterruptReason::Cancelled)
    } else if ticket.deadline_expired() {
        Some(InterruptReason::Deadline)
    } else {
        None
    }
}

fn execute_on<C: dlra_comm::Collectives<dlra_core::model::MatrixServer>>(
    model: &mut PartitionModel<C>,
    dataset: &Dataset,
    request: &QueryRequest,
    epoch: u64,
    d: usize,
    ticket: &TicketShared,
) -> Result<QueryOutcome, ServiceError> {
    if let (Some(cache), SamplerKind::Z(params)) =
        (dataset.planner.as_deref(), &request.cfg.sampler)
    {
        if request.plannable(d) {
            let metrics = dataset.metrics.as_deref();
            let key = PlanKey::new(dataset.id, &request.f, params, request.cfg.seed, epoch);
            let prep_start = metrics.map(|_| Instant::now());
            let lookup_span = trace::span("plan", "plan.lookup").arg("qid", ticket.query_id);
            let (plan, cache_hit) = cache
                .get_or_prepare(&key, || prepare_z_plan(model, params, request.cfg.seed))
                .map_err(map_execution)?;
            drop(lookup_span.arg("hit", cache_hit as u64));
            if let (Some(m), Some(start)) = (metrics, prep_start) {
                m.plan_outcome(cache_hit);
                let micros = start.elapsed().as_micros() as u64;
                // Only a physically-paid preparation charges its ledger
                // delta to `prepare_comm`; a hit's share is already there.
                m.record_prepare(micros, (!cache_hit).then_some(&plan.prepare_comm));
            }
            // The drop-before-execute checkpoint: the (possibly shared)
            // preparation stays cached for other queries either way, but a
            // cancelled or expired query pays no draw/fetch phase.
            // Acquire pairs with the Release store in `Ticket::cancel`.
            if ticket.cancel_requested.load(Ordering::Acquire) {
                return Err(ServiceError::Cancelled);
            }
            if ticket.deadline_expired() {
                return Err(ServiceError::Deadline);
            }
            let exec_start = metrics.map(|_| Instant::now());
            let exec_span = trace::span("query", "query.execute").arg("qid", ticket.query_id);
            let mut output =
                run_algorithm1_with_plan_interruptible(model, &request.cfg, &plan, &|| {
                    interrupt_reason(ticket)
                })
                .map_err(map_execution)?;
            drop(exec_span);
            if let (Some(m), Some(start)) = (metrics, exec_start) {
                let micros = start.elapsed().as_micros() as u64;
                // Pre-fold delta: the draw/fetch phase only.
                m.record_execute(micros, &output.comm);
            }
            // Per-query accounting stays identical to an unplanned run:
            // the preparation delta is deterministic, so prepare + execute
            // is exactly what this query would have charged alone.
            output.comm = plan.prepare_comm + output.comm;
            return Ok(QueryOutcome {
                output,
                plan: Some(PlanUse {
                    prepare_comm: plan.prepare_comm,
                    cache_hit,
                }),
            });
        }
    }
    let metrics = dataset.metrics.as_deref();
    let exec_start = metrics.map(|_| Instant::now());
    let exec_span = trace::span("query", "query.execute").arg("qid", ticket.query_id);
    let result = run_algorithm1_interruptible(model, &request.cfg, &|| interrupt_reason(ticket))
        .map(|output| QueryOutcome { output, plan: None })
        .map_err(map_execution);
    drop(exec_span);
    if let (Some(m), Some(start), Ok(outcome)) = (metrics, exec_start, &result) {
        let micros = start.elapsed().as_micros() as u64;
        m.record_execute(micros, &outcome.output.comm);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlra_core::algorithm1::Algorithm1Config;
    use dlra_util::Rng;

    fn locals(s: usize, n: usize, d: usize, seed: u64) -> Vec<Matrix> {
        let mut rng = Rng::new(seed);
        (0..s).map(|_| Matrix::gaussian(n, d, &mut rng)).collect()
    }

    fn config(executors: usize, plan_cache: usize) -> ServiceConfig {
        ServiceConfig {
            executors,
            substrate: Substrate::Sequential,
            plan_cache,
            metrics: true,
            topology: Topology::Star,
            max_queue_depth: None,
            memory_budget: None,
        }
    }

    fn uniform_query(k: usize, r: usize, seed: u64) -> Query {
        Query::rank(k)
            .samples(r)
            .sampler(SamplerKind::Uniform)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn load_validates_and_rejects_duplicates() {
        let service = Service::new(config(1, 0));
        assert!(matches!(
            service.load("a", vec![]),
            Err(ServiceError::InvalidDataset(_))
        ));
        let mixed = vec![Matrix::zeros(3, 2), Matrix::zeros(2, 2)];
        assert!(matches!(
            service.load("a", mixed),
            Err(ServiceError::InvalidDataset(_))
        ));
        service.load("a", locals(2, 10, 4, 1)).unwrap();
        assert!(matches!(
            service.load("a", locals(2, 10, 4, 2)),
            Err(ServiceError::DatasetExists(_))
        ));
        assert!(matches!(
            service.reload("b", locals(2, 10, 4, 2)),
            Err(ServiceError::UnknownDataset(_))
        ));
        assert!(matches!(
            service.evict("b"),
            Err(ServiceError::UnknownDataset(_))
        ));
    }

    #[test]
    fn rank_exceeding_dimension_resolves_eagerly() {
        let service = Service::new(config(1, 0));
        let handle = service.load("a", locals(2, 10, 4, 1)).unwrap();
        let ticket = handle.submit(&uniform_query(5, 10, 1));
        assert!(matches!(
            ticket.wait(),
            Err(ServiceError::InvalidQuery(
                QueryError::RankExceedsDimension { k: 5, d: 4 }
            ))
        ));
    }

    #[test]
    fn evicted_handle_reports_eviction_even_after_name_reuse() {
        let service = Service::new(config(1, 0));
        let old = service.load("a", locals(2, 10, 4, 1)).unwrap();
        service.evict("a").unwrap();
        assert!(old.is_evicted());
        assert!(matches!(
            old.submit(&uniform_query(2, 5, 1)).wait(),
            Err(ServiceError::DatasetEvicted { dataset }) if dataset == "a"
        ));
        // The name is free again; the stale handle stays evicted.
        let fresh = service.load("a", locals(2, 12, 4, 2)).unwrap();
        assert!(!fresh.is_evicted());
        assert!(old.is_evicted());
        assert!(fresh.submit(&uniform_query(2, 5, 1)).wait().is_ok());
    }

    #[test]
    fn shutdown_resolves_tickets_as_runtime_unavailable() {
        let mut service = Service::new(config(2, 0));
        let handle = service.load("a", locals(2, 12, 4, 7)).unwrap();
        let queued = handle.submit(&uniform_query(2, 6, 1));
        service.shutdown();
        assert!(queued.wait().is_ok(), "shutdown must drain queued work");
        let late = handle.submit(&uniform_query(2, 6, 2));
        assert!(matches!(
            late.try_wait(),
            Some(Err(ServiceError::RuntimeUnavailable(_)))
        ));
        service.shutdown(); // idempotent
    }

    #[test]
    fn error_classification_covers_every_variant() {
        use dlra_core::CoreError;
        // (variant, is_retryable, is_caller_error) — all ten variants, so a
        // new one must be classified here before it compiles into clients.
        let cases: Vec<(ServiceError, bool, bool)> = vec![
            (
                ServiceError::InvalidQuery(QueryError::Rejected("bad".into())),
                false,
                true,
            ),
            (
                ServiceError::DatasetEvicted {
                    dataset: "a".into(),
                },
                false,
                true,
            ),
            (ServiceError::UnknownDataset("a".into()), false, true),
            (ServiceError::DatasetExists("a".into()), false, true),
            (ServiceError::InvalidDataset("empty".into()), false, true),
            (ServiceError::Deadline, true, false),
            (ServiceError::Cancelled, false, true),
            (
                ServiceError::Overloaded {
                    queue_depth: 9,
                    limit: 8,
                },
                true,
                false,
            ),
            (
                ServiceError::RuntimeUnavailable("pool gone".into()),
                true,
                false,
            ),
            (
                ServiceError::Execution(CoreError::InvalidConfig("mid-run".into())),
                false,
                false,
            ),
        ];
        for (err, retryable, caller) in &cases {
            assert_eq!(err.is_retryable(), *retryable, "{err}");
            assert_eq!(err.is_caller_error(), *caller, "{err}");
            // The sets are documented disjoint.
            assert!(
                !(err.is_retryable() && err.is_caller_error()),
                "classifications overlap for {err}"
            );
        }
    }

    #[test]
    fn overloaded_display_names_depth_and_limit() {
        let err = ServiceError::Overloaded {
            queue_depth: 9,
            limit: 8,
        };
        let text = err.to_string();
        assert!(text.contains('9') && text.contains('8'), "{text}");
    }

    #[test]
    fn raw_requests_defer_validation_to_the_protocol() {
        // The Runtime compatibility path: a malformed raw request surfaces
        // as a protocol rejection, not an eager builder error.
        let service = Service::new(config(1, 0));
        let handle = service.load("a", locals(2, 10, 4, 1)).unwrap();
        let bad = QueryRequest::identity(Algorithm1Config {
            k: 0,
            r: 10,
            sampler: SamplerKind::Uniform,
            ..Default::default()
        });
        assert!(matches!(
            handle.submit_request(bad).wait(),
            Err(ServiceError::InvalidQuery(QueryError::Rejected(_)))
        ));
    }
}
