//! The network gate: carrying service-level backpressure **over the
//! wire**.
//!
//! A service fronted by sockets must tell remote clients more than "no":
//! a shed query should come back, but not immediately. This module maps
//! [`ServiceError::Overloaded`] onto `dlra-net`'s `Overloaded` control
//! frame and back, attaching a **retry-after hint derived from the
//! service's observed drain rate** — mean time between admitted-query
//! resolutions since the service started, scaled by how far over the
//! admission bound the shed decision found the queue. A freshly started
//! service has no drain evidence and pessimistically quotes its uptime;
//! a warm service converges on its true per-query latency.
//!
//! The hint is advisory (clients may retry sooner; the service re-decides
//! admission on every submission) and clamped to a sane range so a clock
//! hiccup can never quote hours.

use crate::service::{Service, ServiceError};
use dlra_net::{Frame, MsgType, NetError, OverloadedFrame};

/// Hints below this are meaningless scheduling noise.
const MIN_RETRY_MICROS: u64 = 100;
/// Hints above this would outlive any client's patience; cap at 5 s.
const MAX_RETRY_MICROS: u64 = 5_000_000;

/// The retry-after hint for a shed observed at `queue_depth` against
/// `limit`: one drain interval per query that must resolve before a slot
/// frees (at the bound exactly, that is one), clamped to
/// [`MIN_RETRY_MICROS`, `MAX_RETRY_MICROS`].
pub fn retry_after_micros(service: &Service, queue_depth: u64, limit: u64) -> u64 {
    let backlog = queue_depth.saturating_sub(limit) + 1;
    service
        .mean_drain_micros()
        .saturating_mul(backlog)
        .clamp(MIN_RETRY_MICROS, MAX_RETRY_MICROS)
}

/// Maps a service error onto its wire frame, if it has one: only
/// [`ServiceError::Overloaded`] travels as a dedicated control frame (the
/// shed happens before any executor, so the whole exchange is
/// control-plane). Everything else returns `None` and is the caller's
/// problem to report (e.g. as a `dlra-net` error frame).
pub fn overloaded_to_frame(service: &Service, err: &ServiceError) -> Option<Frame> {
    match err {
        ServiceError::Overloaded { queue_depth, limit } => Some(
            OverloadedFrame {
                queue_depth: *queue_depth,
                limit: *limit,
                retry_after_micros: retry_after_micros(service, *queue_depth, *limit),
            }
            .to_frame(),
        ),
        _ => None,
    }
}

/// Decodes an `Overloaded` control frame back into the service error a
/// remote client should observe, preserving the shed's queue depth and
/// bound. Returns `None` for any other frame type; a malformed
/// `Overloaded` descriptor is a typed [`NetError`].
pub fn overloaded_from_frame(frame: &Frame) -> Result<Option<ServiceError>, NetError> {
    if frame.msg_type != MsgType::Overloaded {
        return Ok(None);
    }
    let decoded = OverloadedFrame::from_frame(frame)?;
    Ok(Some(ServiceError::Overloaded {
        queue_depth: decoded.queue_depth,
        limit: decoded.limit,
    }))
}

/// The client-side view of a decoded overload: the typed transport error
/// with the hint attached, for callers that work in `NetError` terms
/// (e.g. a remote submission loop deciding how long to back off).
pub fn overload_as_net_error(frame: &Frame) -> Result<Option<NetError>, NetError> {
    if frame.msg_type != MsgType::Overloaded {
        return Ok(None);
    }
    let decoded = OverloadedFrame::from_frame(frame)?;
    Ok(Some(NetError::Overloaded {
        queue_depth: decoded.queue_depth,
        limit: decoded.limit,
        retry_after_micros: decoded.retry_after_micros,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use dlra_core::algorithm1::{Algorithm1Config, SamplerKind};
    use dlra_linalg::Matrix;
    use dlra_util::Rng;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    fn small_service(max_queue_depth: Option<usize>) -> Service {
        Service::new(ServiceConfig {
            executors: 1,
            max_queue_depth,
            metrics: false,
            ..ServiceConfig::default()
        })
    }

    fn tiny_query() -> crate::query::QueryRequest {
        crate::query::QueryRequest::identity(Algorithm1Config {
            k: 2,
            r: 10,
            sampler: SamplerKind::Uniform,
            seed: 1,
            ..Default::default()
        })
    }

    #[test]
    fn shed_error_roundtrips_through_a_real_socket() {
        // Drive a real shed: bound 1, submit two queries back-to-back; with
        // one executor the second can be shed while the first holds the
        // admission slot. Retry until the race lands (the shed path is
        // deterministic once the gauge is full).
        let service = small_service(Some(1));
        let mut rng = Rng::new(5);
        let locals: Vec<Matrix> = (0..2).map(|_| Matrix::gaussian(40, 6, &mut rng)).collect();
        let handle = service.load("tenant", locals).unwrap();
        let shed = loop {
            let a = handle.submit_request(tiny_query());
            let b = handle.submit_request(tiny_query());
            let ra = a.wait();
            let rb = b.wait();
            let hit = [ra, rb]
                .into_iter()
                .find(|r| matches!(r, Err(ServiceError::Overloaded { .. })));
            if let Some(Err(err)) = hit {
                break err;
            }
        };

        // Encode at the service, carry over a real loopback socket, decode
        // at the "client".
        let frame = overloaded_to_frame(&service, &shed).expect("overload maps to a frame");
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let sender = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(&frame.to_bytes()).unwrap();
        });
        let (mut client, _) = listener.accept().unwrap();
        let received = Frame::read_from(&mut client).unwrap();
        sender.join().unwrap();

        let back = overloaded_from_frame(&received)
            .expect("well-formed frame")
            .expect("overloaded frame decodes to the service error");
        match (&shed, &back) {
            (
                ServiceError::Overloaded { queue_depth, limit },
                ServiceError::Overloaded {
                    queue_depth: qd,
                    limit: l,
                },
            ) => {
                assert_eq!(qd, queue_depth);
                assert_eq!(l, limit);
                assert_eq!(*l, 1);
            }
            other => panic!("expected Overloaded on both ends, got {other:?}"),
        }

        // The client-side transport view carries the hint.
        match overload_as_net_error(&received).unwrap() {
            Some(NetError::Overloaded {
                retry_after_micros, ..
            }) => {
                assert!((MIN_RETRY_MICROS..=MAX_RETRY_MICROS).contains(&retry_after_micros));
            }
            other => panic!("expected NetError::Overloaded, got {other:?}"),
        }
    }

    #[test]
    fn retry_hint_tracks_the_drain_rate() {
        let service = small_service(None);
        let mut rng = Rng::new(6);
        let locals: Vec<Matrix> = (0..2).map(|_| Matrix::gaussian(40, 6, &mut rng)).collect();
        let handle = service.load("tenant", locals).unwrap();

        // No drains yet: the hint is the (clamped) uptime — pessimistic but
        // bounded.
        let cold = retry_after_micros(&service, 1, 1);
        assert!((MIN_RETRY_MICROS..=MAX_RETRY_MICROS).contains(&cold));

        // Resolve a few queries; the mean drain interval now reflects real
        // work, and deeper overshoot quotes proportionally longer (until
        // the cap).
        for _ in 0..3 {
            handle.submit_request(tiny_query()).wait().unwrap();
        }
        let base = retry_after_micros(&service, 1, 1);
        let deep = retry_after_micros(&service, 4, 1);
        assert!((MIN_RETRY_MICROS..=MAX_RETRY_MICROS).contains(&base));
        assert!(deep >= base, "deeper overshoot must not quote shorter");

        // Non-overload errors have no frame.
        assert!(
            overloaded_to_frame(&service, &ServiceError::RuntimeUnavailable("gone".into()))
                .is_none()
        );
        // Non-overload frames decode to None.
        let unrelated = Frame::control(MsgType::Ack, 0, 0);
        assert!(overloaded_from_frame(&unrelated).unwrap().is_none());
        assert!(overload_as_net_error(&unrelated).unwrap().is_none());
    }
}
