//! The [`Collectives`] trait: the substrate-independent surface of the
//! star-topology collectives.
//!
//! Protocol code (`dlra-core::algorithm1`, `dlra-core::adaptive`, the
//! `dlra-sampler` Z-machinery) is written against this trait, so the same
//! call sites run unchanged on the sequential in-process simulator
//! ([`Cluster`]) and on the threaded message-passing runtime
//! (`dlra-runtime::ThreadedCluster`). Implementations must make ledger
//! totals substrate-independent: per collective, the same set of messages
//! is charged with the same word counts, and merges happen in server-index
//! order so floating-point results are bit-identical.
//!
//! The closure bounds are the union of what every substrate needs: a
//! threaded substrate executes per-server closures on persistent worker
//! threads, so they are `Fn + Send + Sync + 'static` and capture their
//! context by value (requests travel as cloned typed messages, exactly as
//! they would on a wire). The sequential [`Cluster`] additionally keeps its
//! historical inherent methods with looser `FnMut` bounds for local tests.

use crate::cluster::Cluster;
use crate::ledger::{Ledger, LedgerSnapshot};
use crate::payload::Payload;

/// Star-topology collective operations over per-server local state `L`.
///
/// Server `0` is the coordinator (the paper's "server 1"); traffic between
/// the coordinator and its own local state is free. All data movement
/// between servers must go through these methods so the [`Ledger`] stays a
/// faithful communication transcript.
pub trait Collectives<L> {
    /// Number of servers `s` (including the coordinator).
    fn num_servers(&self) -> usize;

    /// The shared communication ledger.
    fn ledger(&self) -> &Ledger;

    /// Snapshot of the current communication totals.
    fn comm(&self) -> LedgerSnapshot {
        self.ledger().snapshot()
    }

    /// Runs `f` against one server's local state, read-only. For
    /// *evaluation and orchestration only* (e.g. materializing the global
    /// matrix to measure true errors, or reading a dimension the protocol
    /// already knows); never a data channel between servers.
    fn with_local<R>(&self, t: usize, f: impl FnOnce(&L) -> R) -> R;

    /// Runs `f` against one server's local state, mutably, for
    /// *zero-communication local operations* (each server mutating its own
    /// scratch, e.g. clearing injected coordinates after a sampling pass).
    /// Must not be used to move data between servers — that would bypass
    /// the ledger.
    fn with_local_mut<R>(&mut self, t: usize, f: impl FnOnce(&mut L) -> R) -> R;

    /// Coordinator → all servers: sends `msg` to each of the `s − 1`
    /// non-coordinator servers, charging each message, then lets every
    /// server (including the coordinator's own state) observe it. Returns
    /// after every server has processed the message.
    fn broadcast<T, F>(&mut self, msg: &T, label: &'static str, on_receive: F)
    where
        T: Payload + Clone + Send + 'static,
        F: Fn(usize, &mut L, &T) + Send + Sync + 'static;

    /// All servers → coordinator: each server computes a reply from its
    /// local state; replies from servers `1..s` are charged upstream.
    /// Returns the replies indexed by server.
    fn gather<T, F>(&mut self, label: &'static str, compute: F) -> Vec<T>
    where
        T: Payload + Send + 'static,
        F: Fn(usize, &mut L) -> T + Send + Sync + 'static;

    /// Gather + fold: each server's reply is merged into an accumulator at
    /// the coordinator, in server-index order (so results are bit-identical
    /// across substrates). `merge` runs coordinator-side and may capture
    /// freely.
    fn aggregate<T, F, M>(&mut self, label: &'static str, compute: F, mut merge: M) -> T
    where
        T: Payload + Send + 'static,
        F: Fn(usize, &mut L) -> T + Send + Sync + 'static,
        M: FnMut(&mut T, T),
    {
        let replies = self.gather(label, compute);
        let mut it = replies.into_iter();
        // dlra-allow(panic-policy): clusters are constructed with >= 1
        // server (enforced at build time), so gather always yields a reply.
        let mut acc = it.next().expect("at least one server");
        for r in it {
            merge(&mut acc, r);
        }
        acc
    }

    /// Coordinator ↔ one server round trip: sends `request` down, gets a
    /// reply up. Used for Algorithm 3 line 6/11 ("server 1 asks for aⱼ").
    fn query_server<Q, T, F>(
        &mut self,
        t: usize,
        request: &Q,
        label: &'static str,
        compute: F,
    ) -> T
    where
        Q: Payload + Clone + Send + 'static,
        T: Payload + Send + 'static,
        F: FnOnce(&mut L, &Q) -> T + Send + 'static;

    /// Coordinator → every server down-query followed by an up-reply in the
    /// same round (e.g. "send me your part of rows i₁..iᵣ").
    fn query_all<Q, T, F>(&mut self, request: &Q, label: &'static str, compute: F) -> Vec<T>
    where
        Q: Payload + Clone + Send + 'static,
        T: Payload + Send + 'static,
        F: Fn(usize, &mut L, &Q) -> T + Send + Sync + 'static;
}

/// The sequential simulator is the reference implementation: collectives
/// delegate to the inherent methods, which execute server closures inline
/// in server order.
impl<L> Collectives<L> for Cluster<L> {
    fn num_servers(&self) -> usize {
        Cluster::num_servers(self)
    }

    fn ledger(&self) -> &Ledger {
        Cluster::ledger(self)
    }

    fn with_local<R>(&self, t: usize, f: impl FnOnce(&L) -> R) -> R {
        f(self.local(t))
    }

    fn with_local_mut<R>(&mut self, t: usize, f: impl FnOnce(&mut L) -> R) -> R {
        f(self.local_mut_for_cleanup(t))
    }

    fn broadcast<T, F>(&mut self, msg: &T, label: &'static str, on_receive: F)
    where
        T: Payload + Clone + Send + 'static,
        F: Fn(usize, &mut L, &T) + Send + Sync + 'static,
    {
        Cluster::broadcast(self, msg, label, on_receive);
    }

    fn gather<T, F>(&mut self, label: &'static str, compute: F) -> Vec<T>
    where
        T: Payload + Send + 'static,
        F: Fn(usize, &mut L) -> T + Send + Sync + 'static,
    {
        Cluster::gather(self, label, compute)
    }

    fn query_server<Q, T, F>(&mut self, t: usize, request: &Q, label: &'static str, compute: F) -> T
    where
        Q: Payload + Clone + Send + 'static,
        T: Payload + Send + 'static,
        F: FnOnce(&mut L, &Q) -> T + Send + 'static,
    {
        Cluster::query_server(self, t, request, label, compute)
    }

    fn query_all<Q, T, F>(&mut self, request: &Q, label: &'static str, compute: F) -> Vec<T>
    where
        Q: Payload + Clone + Send + 'static,
        T: Payload + Send + 'static,
        F: Fn(usize, &mut L, &Q) -> T + Send + Sync + 'static,
    {
        Cluster::query_all(self, request, label, compute)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exercises every trait method through a generic function, proving the
    /// bounds are satisfiable by realistic protocol code.
    fn drive<C: Collectives<Vec<f64>>>(c: &mut C) -> (Vec<f64>, f64, Vec<f64>, f64) {
        c.broadcast(&2.0f64, "b", |_t, local, &m| {
            for x in local.iter_mut() {
                *x += m;
            }
        });
        let gathered = c.gather("g", |t, local| local[0] + t as f64);
        let agg = c.aggregate(
            "a",
            |_t, local| local.iter().sum::<f64>(),
            |acc, r| *acc += r,
        );
        let queried = c.query_all(&1usize, "qa", |_t, local, &j| local[j]);
        let point = c.query_server(1, &0usize, "qs", |local, &j| local[j]);
        (gathered, agg, queried, point)
    }

    #[test]
    fn cluster_implements_collectives() {
        let mut c = Cluster::new(vec![vec![0.0f64, 1.0], vec![10.0, 11.0]]);
        let (gathered, agg, queried, point) = drive(&mut c);
        assert_eq!(gathered, vec![2.0, 13.0]);
        assert_eq!(agg, 2.0 + 3.0 + 12.0 + 13.0);
        assert_eq!(queried, vec![3.0, 13.0]);
        assert_eq!(point, 12.0);
        assert!(Collectives::comm(&c).total_words() > 0);
        assert_eq!(Collectives::num_servers(&c), 2);
        Collectives::with_local_mut(&mut c, 0, |l| l[0] = 99.0);
        assert_eq!(Collectives::with_local(&c, 0, |l| l[0]), 99.0);
    }
}
