//! The [`Collectives`] trait: the substrate-independent surface of the
//! star-topology collectives.
//!
//! Protocol code (`dlra-core::algorithm1`, `dlra-core::adaptive`, the
//! `dlra-sampler` Z-machinery) is written against this trait, so the same
//! call sites run unchanged on the sequential in-process simulator
//! ([`Cluster`]) and on the threaded message-passing runtime
//! (`dlra-runtime::ThreadedCluster`). Implementations must make ledger
//! totals substrate-independent: per collective, the same set of messages
//! is charged with the same word counts, and merges happen in server-index
//! order so floating-point results are bit-identical.
//!
//! The closure and payload bounds are the union of what every substrate
//! needs: a threaded substrate executes per-server closures on persistent
//! worker threads, so they are `Fn + Send + Sync + 'static` and capture
//! their context by value (requests travel as cloned typed messages,
//! exactly as they would on a wire); a socket substrate (`dlra-net`)
//! additionally serializes every payload, so payload types are [`Wire`]
//! (word-sized *and* byte-codable). The sequential [`Cluster`] keeps its
//! historical inherent methods with looser `FnMut` bounds for local tests.

use crate::cluster::Cluster;
use crate::ledger::{Direction, Ledger, LedgerSnapshot};
use crate::payload::Payload;
use crate::topology::{Topology, TopologyPlan};
use crate::wire::Wire;

/// Star-topology collective operations over per-server local state `L`.
///
/// Server `0` is the coordinator (the paper's "server 1"); traffic between
/// the coordinator and its own local state is free. All data movement
/// between servers must go through these methods so the [`Ledger`] stays a
/// faithful communication transcript.
pub trait Collectives<L> {
    /// Number of servers `s` (including the coordinator).
    fn num_servers(&self) -> usize;

    /// The shared communication ledger.
    fn ledger(&self) -> &Ledger;

    /// Snapshot of the current communication totals.
    fn comm(&self) -> LedgerSnapshot {
        self.ledger().snapshot()
    }

    /// How this substrate routes reduction collectives
    /// ([`Self::aggregate_topo`] / [`Self::query_aggregate`]). The routing
    /// never changes results — only which edges carry blocks and how many
    /// rounds the reduction takes.
    fn topology(&self) -> Topology {
        Topology::Star
    }

    /// Runs `f` against one server's local state, read-only. For
    /// *evaluation and orchestration only* (e.g. materializing the global
    /// matrix to measure true errors, or reading a dimension the protocol
    /// already knows); never a data channel between servers.
    fn with_local<R>(&self, t: usize, f: impl FnOnce(&L) -> R) -> R;

    /// Runs `f` against one server's local state, mutably, for
    /// *zero-communication local operations* (each server mutating its own
    /// scratch, e.g. clearing injected coordinates after a sampling pass).
    /// Must not be used to move data between servers — that would bypass
    /// the ledger.
    fn with_local_mut<R>(&mut self, t: usize, f: impl FnOnce(&mut L) -> R) -> R;

    /// Coordinator → all servers: sends `msg` to each of the `s − 1`
    /// non-coordinator servers, charging each message, then lets every
    /// server (including the coordinator's own state) observe it. Returns
    /// after every server has processed the message.
    fn broadcast<T, F>(&mut self, msg: &T, label: &'static str, on_receive: F)
    where
        T: Wire + Clone + Send + 'static,
        F: Fn(usize, &mut L, &T) + Send + Sync + 'static;

    /// All servers → coordinator: each server computes a reply from its
    /// local state; replies from servers `1..s` are charged upstream.
    /// Returns the replies indexed by server.
    fn gather<T, F>(&mut self, label: &'static str, compute: F) -> Vec<T>
    where
        T: Wire + Send + 'static,
        F: Fn(usize, &mut L) -> T + Send + Sync + 'static;

    /// Gather + fold: each server's reply is merged into an accumulator at
    /// the coordinator, in server-index order (so results are bit-identical
    /// across substrates). `merge` runs coordinator-side and may capture
    /// freely.
    fn aggregate<T, F, M>(&mut self, label: &'static str, compute: F, mut merge: M) -> T
    where
        T: Wire + Send + 'static,
        F: Fn(usize, &mut L) -> T + Send + Sync + 'static,
        M: FnMut(&mut T, T),
    {
        let replies = self.gather(label, compute);
        let mut it = replies.into_iter();
        // dlra-allow(panic-policy): clusters are constructed with >= 1
        // server (enforced at build time), so gather always yields a reply.
        let mut acc = it.next().expect("at least one server");
        for r in it {
            merge(&mut acc, r);
        }
        acc
    }

    /// Topology-routed reduction: every server computes a block, the blocks
    /// combine up the configured [`Topology`] (star or combining tree), and
    /// the fully merged block lands at the coordinator.
    ///
    /// The association order is the canonical binary-halving schedule of
    /// [`TopologyPlan`], fixed by `s` alone, so every topology — and every
    /// substrate — produces **bit-identical** results even for
    /// non-associative floating-point merges. `merge` must be pure
    /// (`Fn`, shareable across worker threads): it may run on any server
    /// along the routing path, not just the coordinator. Each hop is
    /// charged on the edge that carried it via [`Ledger::charge_hop`].
    ///
    /// The default implementation walks the plan sequentially and is the
    /// reference semantics; message-passing substrates must match its
    /// ledger totals and per-edge transcript exactly.
    fn aggregate_topo<T, F, M>(&mut self, label: &'static str, compute: F, merge: M) -> T
    where
        T: Wire + Send + 'static,
        F: Fn(usize, &mut L) -> T + Send + Sync + 'static,
        M: Fn(&mut T, T) + Send + Sync + 'static,
    {
        let s = self.num_servers();
        let plan = TopologyPlan::new(self.topology(), s);
        let mut blocks: Vec<Option<T>> = Vec::with_capacity(s);
        for t in 0..s {
            let block = self.with_local_mut(t, |local| compute(t, local));
            blocks.push(Some(block));
        }
        reduce_blocks(self.ledger(), &plan, blocks, &merge, label, false)
    }

    /// [`Self::query_all`] fused with a topology-routed reduction: the
    /// request is broadcast down the star (every server must see it), each
    /// server computes a reply block, and the blocks combine up the
    /// configured [`Topology`] instead of all landing in the coordinator's
    /// inbox. Under [`Topology::Star`] this charges exactly what
    /// [`Self::query_all`] followed by a coordinator-side fold would — one
    /// round, same words — so it is a drop-in for "query everyone and sum".
    fn query_aggregate<Q, T, F, M>(
        &mut self,
        request: &Q,
        label: &'static str,
        compute: F,
        merge: M,
    ) -> T
    where
        Q: Wire + Clone + Send + 'static,
        T: Wire + Send + 'static,
        F: Fn(usize, &mut L, &Q) -> T + Send + Sync + 'static,
        M: Fn(&mut T, T) + Send + Sync + 'static,
    {
        let s = self.num_servers();
        let plan = TopologyPlan::new(self.topology(), s);
        self.ledger().next_round();
        let request_words = request.words();
        for t in 1..s {
            self.ledger()
                .charge(t, Direction::Downstream, request_words, label);
        }
        let mut blocks: Vec<Option<T>> = Vec::with_capacity(s);
        for t in 0..s {
            let block = self.with_local_mut(t, |local| compute(t, local, request));
            blocks.push(Some(block));
        }
        reduce_blocks(self.ledger(), &plan, blocks, &merge, label, true)
    }

    /// Coordinator ↔ one server round trip: sends `request` down, gets a
    /// reply up. Used for Algorithm 3 line 6/11 ("server 1 asks for aⱼ").
    fn query_server<Q, T, F>(
        &mut self,
        t: usize,
        request: &Q,
        label: &'static str,
        compute: F,
    ) -> T
    where
        Q: Wire + Clone + Send + 'static,
        T: Wire + Send + 'static,
        F: FnOnce(&mut L, &Q) -> T + Send + 'static;

    /// Coordinator → every server down-query followed by an up-reply in the
    /// same round (e.g. "send me your part of rows i₁..iᵣ").
    fn query_all<Q, T, F>(&mut self, request: &Q, label: &'static str, compute: F) -> Vec<T>
    where
        Q: Wire + Clone + Send + 'static,
        T: Wire + Send + 'static,
        F: Fn(usize, &mut L, &Q) -> T + Send + Sync + 'static;
}

/// Sequential reference reduction: walk the plan round by round, charging
/// every hop with the sender's block size *before* the round's merges (the
/// size the block has when it leaves the sender), then replaying the
/// canonical merge steps. Message-passing substrates must reproduce this
/// transcript exactly.
fn reduce_blocks<T: Payload>(
    ledger: &Ledger,
    plan: &TopologyPlan,
    mut blocks: Vec<Option<T>>,
    merge: &impl Fn(&mut T, T),
    label: &'static str,
    first_round_started: bool,
) -> T {
    for (h, round) in plan.rounds().iter().enumerate() {
        if h > 0 || !first_round_started {
            ledger.next_round();
        }
        for hop in &round.hops {
            let words = blocks[hop.sender].as_ref().map_or(0, Payload::words);
            ledger.charge_hop(hop.sender, hop.receiver, Direction::Upstream, words, label);
        }
        for step in &round.merges {
            let src = blocks[step.src].take();
            if let (Some(dst), Some(src)) = (blocks[step.dst].as_mut(), src) {
                merge(dst, src);
            }
        }
    }
    let root = blocks.into_iter().next().flatten();
    // dlra-allow(panic-policy): clusters are constructed with >= 1 server
    // (enforced at build time), so the root block always exists.
    root.expect("at least one server")
}

/// The sequential simulator is the reference implementation: collectives
/// delegate to the inherent methods, which execute server closures inline
/// in server order.
impl<L> Collectives<L> for Cluster<L> {
    fn num_servers(&self) -> usize {
        Cluster::num_servers(self)
    }

    fn ledger(&self) -> &Ledger {
        Cluster::ledger(self)
    }

    fn topology(&self) -> Topology {
        Cluster::topology(self)
    }

    fn with_local<R>(&self, t: usize, f: impl FnOnce(&L) -> R) -> R {
        f(self.local(t))
    }

    fn with_local_mut<R>(&mut self, t: usize, f: impl FnOnce(&mut L) -> R) -> R {
        f(self.local_mut_for_cleanup(t))
    }

    fn broadcast<T, F>(&mut self, msg: &T, label: &'static str, on_receive: F)
    where
        T: Wire + Clone + Send + 'static,
        F: Fn(usize, &mut L, &T) + Send + Sync + 'static,
    {
        Cluster::broadcast(self, msg, label, on_receive);
    }

    fn gather<T, F>(&mut self, label: &'static str, compute: F) -> Vec<T>
    where
        T: Wire + Send + 'static,
        F: Fn(usize, &mut L) -> T + Send + Sync + 'static,
    {
        Cluster::gather(self, label, compute)
    }

    fn query_server<Q, T, F>(&mut self, t: usize, request: &Q, label: &'static str, compute: F) -> T
    where
        Q: Wire + Clone + Send + 'static,
        T: Wire + Send + 'static,
        F: FnOnce(&mut L, &Q) -> T + Send + 'static,
    {
        Cluster::query_server(self, t, request, label, compute)
    }

    fn query_all<Q, T, F>(&mut self, request: &Q, label: &'static str, compute: F) -> Vec<T>
    where
        Q: Wire + Clone + Send + 'static,
        T: Wire + Send + 'static,
        F: Fn(usize, &mut L, &Q) -> T + Send + Sync + 'static,
    {
        Cluster::query_all(self, request, label, compute)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exercises every trait method through a generic function, proving the
    /// bounds are satisfiable by realistic protocol code.
    fn drive<C: Collectives<Vec<f64>>>(c: &mut C) -> (Vec<f64>, f64, Vec<f64>, f64) {
        c.broadcast(&2.0f64, "b", |_t, local, &m| {
            for x in local.iter_mut() {
                *x += m;
            }
        });
        let gathered = c.gather("g", |t, local| local[0] + t as f64);
        let agg = c.aggregate(
            "a",
            |_t, local| local.iter().sum::<f64>(),
            |acc, r| *acc += r,
        );
        let queried = c.query_all(&1usize, "qa", |_t, local, &j| local[j]);
        let point = c.query_server(1, &0usize, "qs", |local, &j| local[j]);
        let routed = c.aggregate_topo(
            "at",
            |_t, local| local.iter().sum::<f64>(),
            |acc, r| *acc += r,
        );
        assert_eq!(routed, agg, "routed reduction must match the star fold");
        let qrouted = c.query_aggregate(
            &1usize,
            "qat",
            |_t, local, &j| local[j],
            |acc, r| {
                *acc += r;
            },
        );
        assert_eq!(qrouted, queried.iter().sum::<f64>());
        (gathered, agg, queried, point)
    }

    #[test]
    fn cluster_implements_collectives() {
        let mut c = Cluster::new(vec![vec![0.0f64, 1.0], vec![10.0, 11.0]]);
        let (gathered, agg, queried, point) = drive(&mut c);
        assert_eq!(gathered, vec![2.0, 13.0]);
        assert_eq!(agg, 2.0 + 3.0 + 12.0 + 13.0);
        assert_eq!(queried, vec![3.0, 13.0]);
        assert_eq!(point, 12.0);
        assert!(Collectives::comm(&c).total_words() > 0);
        assert_eq!(Collectives::num_servers(&c), 2);
        Collectives::with_local_mut(&mut c, 0, |l| l[0] = 99.0);
        assert_eq!(Collectives::with_local(&c, 0, |l| l[0]), 99.0);
    }

    /// Local state for topology parity tests: each server holds one value.
    fn locals(s: usize) -> Vec<Vec<f64>> {
        (0..s)
            .map(|t| vec![(t as f64 + 0.3).powi(5) * if t % 2 == 0 { 1e-8 } else { 1e8 }])
            .collect()
    }

    #[test]
    fn tree_and_star_reductions_are_bit_identical() {
        for s in [1usize, 2, 4, 8, 9, 13] {
            let mut star = Cluster::new(locals(s));
            let mut tree = Cluster::with_topology(locals(s), Topology::Tree { fanout: 2 });
            let a = star.aggregate_topo("t", |_t, l| l[0], |acc, r| *acc += r);
            let b = tree.aggregate_topo("t", |_t, l| l[0], |acc, r| *acc += r);
            assert_eq!(a.to_bits(), b.to_bits(), "s = {s}");
            let qa = star.query_aggregate(&0usize, "q", |_t, l, &j| l[j], |acc, r| *acc += r);
            let qb = tree.query_aggregate(&0usize, "q", |_t, l, &j| l[j], |acc, r| *acc += r);
            assert_eq!(qa.to_bits(), qb.to_bits(), "s = {s}");
        }
    }

    #[test]
    fn tree_words_match_star_words_with_smaller_root_inbox() {
        for s in [2usize, 4, 8, 9, 16] {
            let mut star = Cluster::new(locals(s));
            let mut tree = Cluster::with_topology(locals(s), Topology::Tree { fanout: 2 });
            star.aggregate_topo("t", |_t, l| l[0], |acc, r| *acc += r);
            tree.aggregate_topo("t", |_t, l| l[0], |acc, r| *acc += r);
            let sc = Collectives::comm(&star);
            let tc = Collectives::comm(&tree);
            // Constant-size blocks: the tree moves exactly the star's words
            // (s − 1 messages either way), just over different edges.
            assert_eq!(tc.total_words(), sc.total_words(), "s = {s}");
            assert_eq!(tc.messages, sc.messages, "s = {s}");
            assert!(tc.root_inbox_messages <= sc.root_inbox_messages, "s = {s}");
            if s > 2 {
                assert!(tc.root_inbox_messages < sc.root_inbox_messages, "s = {s}");
            }
        }
    }

    #[test]
    fn star_routed_reduction_charges_like_legacy_aggregate() {
        let s = 5;
        let mut legacy = Cluster::new(locals(s));
        let mut routed = Cluster::new(locals(s));
        legacy.ledger().set_record_events(true);
        routed.ledger().set_record_events(true);
        legacy.aggregate("t", |_t, l| l[0], |acc, r| *acc += r);
        routed.aggregate_topo("t", |_t, l| l[0], |acc, r| *acc += r);
        assert_eq!(Collectives::comm(&legacy), Collectives::comm(&routed));
        let a = legacy.ledger().events();
        let b = routed.ledger().events();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                (x.server, x.receiver, x.payload_words, x.round),
                (y.server, y.receiver, y.payload_words, y.round)
            );
        }
    }
}
