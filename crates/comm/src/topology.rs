//! Combining-tree routing plans for reduction collectives.
//!
//! Every routed reduction in the workspace — sketch aggregation, row
//! fetching — combines per-server blocks with a **non-associative**
//! floating-point merge, so the association order is part of the
//! determinism contract. This module fixes one canonical order — the
//! binary-halving schedule derived solely from the server count `s` —
//! and lets the [`Topology`] choose only the *routing*: which server
//! physically forwards its partial block to which peer, in which round.
//! Star and every tree fanout therefore produce **bit-identical**
//! results by construction; they differ only in who pays for which hop
//! and in how many rounds the reduction takes.
//!
//! ## The canonical merge schedule
//!
//! With `B = ⌈log₂ s⌉` binary rounds, round `b ∈ 1..=B` merges block
//! `i + 2^(b-1)` into block `i` for every `i` divisible by `2^b`
//! (ascending `i`). After round `b`, block `i` holds the fold of the
//! aligned index range `[i, i + 2^b) ∩ [0, s)`; after round `B`, block 0
//! holds the full reduction.
//!
//! ## Routing
//!
//! A topology groups consecutive binary rounds into routing rounds of
//! `m` levels each (`m = log₂ fanout` for a tree; `m = B` for the star,
//! which is thus the degenerate single-round case). In routing round
//! `h` (1-based) covering binary levels `(lo, hi]`:
//!
//! * **senders** are the servers `q > 0` divisible by `2^lo` but not by
//!   `2^hi` — they forward their accumulated block to the receiver
//!   `⌊q / 2^hi⌋ · 2^hi` and are done;
//! * **receivers** replay the covered merge steps on the blocks they
//!   hold, in canonical order.
//!
//! Every server `≠ 0` sends exactly once, so the *total* message count
//! is `s − 1` under every topology; what the tree changes is the
//! coordinator's **inbox** — `s − 1` root messages for the star versus
//! one per routing round (`⌈B/m⌉`) for a tree — and the round count,
//! which the α–β [`crate::CostModel`] prices as latency.

/// How reduction collectives route partial results to the coordinator.
///
/// Selection is config-passed (`RuntimeConfig` / `ServiceConfig` in
/// `dlra-runtime`) — never read from the ambient environment inside this
/// crate, keeping the comm layer deterministic in its inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Topology {
    /// Every server sends its block straight to the coordinator in one
    /// round (the paper's model; the degenerate `fanout = s` tree).
    #[default]
    Star,
    /// A combining tree: each receiver absorbs up to `fanout` children
    /// per round, so the coordinator's inbox shrinks from `s − 1`
    /// messages to `⌈log₂ s / log₂ fanout⌉`. `fanout` is clamped to at
    /// least 2; non-powers-of-two round down to the covered level count.
    Tree {
        /// Children combined per receiver per routing round.
        fanout: usize,
    },
}

impl Topology {
    /// Binary merge levels covered per routing round at server count `s`.
    fn levels_per_round(&self, binary_rounds: u32) -> u32 {
        match *self {
            Topology::Star => binary_rounds.max(1),
            Topology::Tree { fanout } => {
                let f = fanout.max(2) as u32;
                (u32::BITS - 1 - f.leading_zeros()).max(1)
            }
        }
    }
}

/// One physical message: `sender` forwards its accumulated block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// The forwarding server (never the coordinator).
    pub sender: usize,
    /// The server that absorbs the block (0 for the root hop).
    pub receiver: usize,
}

/// One canonical-schedule merge: block `src` folds into block `dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeStep {
    /// Surviving block index.
    pub dst: usize,
    /// Absorbed block index (dead after this step).
    pub src: usize,
}

/// One routing round: the hops that carry blocks, then the merge steps
/// the receivers replay, both in canonical (ascending-index) order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoundPlan {
    /// Messages of this round, ascending by sender.
    pub hops: Vec<Hop>,
    /// Covered merge steps in schedule order (level-major, ascending
    /// destination). Merges touching disjoint block pairs commute, so a
    /// receiver may replay just the subset it holds.
    pub merges: Vec<MergeStep>,
}

/// The full deterministic routing plan for one reduction at a fixed
/// `(topology, s)` — a pure function of those two inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologyPlan {
    topology: Topology,
    servers: usize,
    rounds: Vec<RoundPlan>,
}

impl TopologyPlan {
    /// Builds the plan for `s` servers under `topology`. Always at least
    /// one (possibly empty) round, so every reduction collective costs
    /// one ledger round even at `s = 1`, like the star it replaces.
    pub fn new(topology: Topology, s: usize) -> Self {
        let mut b = 0u32;
        while (1usize << b) < s {
            b += 1;
        }
        let m = topology.levels_per_round(b);
        let round_count = if b == 0 { 1 } else { b.div_ceil(m) };
        let mut rounds = Vec::with_capacity(round_count as usize);
        for h in 0..round_count {
            let lo = h * m;
            let hi = ((h + 1) * m).min(b);
            let mut merges = Vec::new();
            for level in lo + 1..=hi {
                let span = 1usize << level;
                let half = 1usize << (level - 1);
                let mut i = 0usize;
                while i + half < s {
                    merges.push(MergeStep {
                        dst: i,
                        src: i + half,
                    });
                    i += span;
                }
            }
            let step = 1usize << lo;
            let align = 1usize << hi;
            let mut hops = Vec::new();
            let mut q = step;
            while q < s {
                if !q.is_multiple_of(align) {
                    hops.push(Hop {
                        sender: q,
                        receiver: (q / align) * align,
                    });
                }
                q += step;
            }
            rounds.push(RoundPlan { hops, merges });
        }
        TopologyPlan {
            topology,
            servers: s,
            rounds,
        }
    }

    /// The topology this plan routes.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Server count `s` the plan was derived from.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// The routing rounds in execution order.
    pub fn rounds(&self) -> &[RoundPlan] {
        &self.rounds
    }

    /// Number of routing rounds (ledger rounds charged per reduction).
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Total messages across all rounds — `s − 1` under every topology
    /// (each non-coordinator server forwards exactly once).
    pub fn total_messages(&self) -> usize {
        self.rounds.iter().map(|r| r.hops.len()).sum()
    }

    /// Messages landing in the coordinator's inbox — the fan-in the tree
    /// exists to shrink: `s − 1` for the star, one per routing round
    /// that reaches the root for a tree.
    pub fn root_inbox_messages(&self) -> usize {
        self.rounds
            .iter()
            .flat_map(|r| &r.hops)
            .filter(|h| h.receiver == 0)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fold `values` through a plan's rounds exactly as an implementation
    /// would: charge nothing, just apply the merge schedule.
    fn reduce(plan: &TopologyPlan, values: &[f64]) -> f64 {
        let mut blocks: Vec<Option<f64>> = values.iter().copied().map(Some).collect();
        for round in plan.rounds() {
            for m in &round.merges {
                let src = blocks[m.src].take().expect("src block live");
                let dst = blocks[m.dst].as_mut().expect("dst block live");
                *dst += src;
            }
        }
        blocks[0].take().expect("root block")
    }

    #[test]
    fn star_is_one_round_all_to_root() {
        for s in [1usize, 2, 5, 8, 9, 64] {
            let plan = TopologyPlan::new(Topology::Star, s);
            assert_eq!(plan.num_rounds(), 1, "s = {s}");
            assert_eq!(plan.total_messages(), s - 1, "s = {s}");
            assert_eq!(plan.root_inbox_messages(), s - 1, "s = {s}");
            for hop in &plan.rounds()[0].hops {
                assert_eq!(hop.receiver, 0);
            }
            assert_eq!(plan.rounds()[0].merges.len(), s.saturating_sub(1));
        }
    }

    #[test]
    fn binary_tree_shape_at_s8() {
        let plan = TopologyPlan::new(Topology::Tree { fanout: 2 }, 8);
        assert_eq!(plan.num_rounds(), 3);
        let hops: Vec<Vec<(usize, usize)>> = plan
            .rounds()
            .iter()
            .map(|r| r.hops.iter().map(|h| (h.sender, h.receiver)).collect())
            .collect();
        assert_eq!(hops[0], vec![(1, 0), (3, 2), (5, 4), (7, 6)]);
        assert_eq!(hops[1], vec![(2, 0), (6, 4)]);
        assert_eq!(hops[2], vec![(4, 0)]);
        assert_eq!(plan.root_inbox_messages(), 3); // ⌈log₂ 8⌉
        assert_eq!(plan.total_messages(), 7);
    }

    #[test]
    fn non_power_of_two_covers_every_server_once() {
        for s in [3usize, 5, 9, 13, 100] {
            for topology in [
                Topology::Star,
                Topology::Tree { fanout: 2 },
                Topology::Tree { fanout: 4 },
            ] {
                let plan = TopologyPlan::new(topology, s);
                let mut sent = vec![0usize; s];
                let mut merged = vec![0usize; s];
                for round in plan.rounds() {
                    for h in &round.hops {
                        assert!(h.sender > 0 && h.sender < s);
                        assert!(h.receiver < h.sender, "{topology:?} s={s}");
                        sent[h.sender] += 1;
                    }
                    for m in &round.merges {
                        assert!(m.dst < m.src, "{topology:?} s={s}");
                        merged[m.src] += 1;
                    }
                }
                assert_eq!(sent[0], 0);
                assert!(sent[1..].iter().all(|&n| n == 1), "{topology:?} s={s}");
                assert_eq!(merged[0], 0);
                assert!(merged[1..].iter().all(|&n| n == 1), "{topology:?} s={s}");
                assert_eq!(plan.total_messages(), s - 1);
            }
        }
    }

    #[test]
    fn tree_root_inbox_is_logarithmic() {
        let plan = TopologyPlan::new(Topology::Tree { fanout: 2 }, 256);
        assert_eq!(plan.root_inbox_messages(), 8); // log₂ 256
        assert_eq!(plan.num_rounds(), 8);
        let star = TopologyPlan::new(Topology::Star, 256);
        assert_eq!(star.root_inbox_messages(), 255);
        assert!(plan.root_inbox_messages() * 4 <= star.root_inbox_messages());
    }

    #[test]
    fn fanout_four_halves_the_rounds() {
        let plan = TopologyPlan::new(Topology::Tree { fanout: 4 }, 16);
        assert_eq!(plan.num_rounds(), 2);
        // Round 1 receivers are multiples of 4; round 2 funnels into 0.
        for h in &plan.rounds()[0].hops {
            assert_eq!(h.receiver % 4, 0);
        }
        for h in &plan.rounds()[1].hops {
            assert_eq!(h.receiver, 0);
        }
        assert_eq!(plan.total_messages(), 15);
    }

    #[test]
    fn every_topology_reduces_in_the_same_association_order() {
        // Values chosen so a left fold and the binary schedule disagree in
        // the last bits — the plans must all pick the *same* order.
        let values: Vec<f64> = (0..9)
            .map(|i| (i as f64 + 0.1).powi(7) * if i % 2 == 0 { 1e-9 } else { 1e9 })
            .collect();
        for s in 1..=values.len() {
            let star = reduce(&TopologyPlan::new(Topology::Star, s), &values[..s]);
            for fanout in [2usize, 3, 4, 8] {
                let tree = reduce(
                    &TopologyPlan::new(Topology::Tree { fanout }, s),
                    &values[..s],
                );
                assert_eq!(
                    star.to_bits(),
                    tree.to_bits(),
                    "association diverged at s = {s}, fanout = {fanout}"
                );
            }
        }
    }

    #[test]
    fn single_server_plan_is_one_empty_round() {
        for topology in [Topology::Star, Topology::Tree { fanout: 2 }] {
            let plan = TopologyPlan::new(topology, 1);
            assert_eq!(plan.num_rounds(), 1);
            assert!(plan.rounds()[0].hops.is_empty());
            assert!(plan.rounds()[0].merges.is_empty());
        }
    }

    #[test]
    fn default_topology_is_star() {
        assert_eq!(Topology::default(), Topology::Star);
    }
}
