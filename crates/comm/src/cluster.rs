//! The star-topology cluster: per-server local state plus accounted
//! collectives. All data movement between servers goes through these
//! methods, so the ledger totals are a faithful communication transcript.

use crate::ledger::{Direction, Ledger, LedgerSnapshot};
use crate::payload::Payload;
use crate::topology::Topology;

/// A simulated cluster of `s` servers in the paper's generalized partition
/// model. `L` is the per-server local state (typically a local matrix plus
/// scratch). Server indices are `0..s`; server `0` doubles as the
/// coordinator (the paper's "server 1" / Central Processor), and traffic
/// between the coordinator and its own local state is free, exactly as in
/// the paper's model.
///
/// ```
/// use dlra_comm::Cluster;
/// let mut c = Cluster::new(vec![vec![1.0f64, 2.0], vec![3.0, 4.0]]);
/// let sums = c.gather("demo", |_t, local| local.iter().sum::<f64>());
/// assert_eq!(sums, vec![3.0, 7.0]);
/// // One upstream message of one word (+1 frame) was charged.
/// assert_eq!(c.comm().upstream_words, 2);
/// ```
pub struct Cluster<L> {
    locals: Vec<L>,
    ledger: Ledger,
    topology: Topology,
}

impl<L> Cluster<L> {
    /// Builds a cluster from per-server local states (one entry per server).
    /// Reductions route over the default [`Topology::Star`].
    pub fn new(locals: Vec<L>) -> Self {
        Cluster::with_topology(locals, Topology::Star)
    }

    /// Builds a cluster whose reduction collectives route over `topology`.
    /// The topology never changes results — the merge order is fixed by the
    /// server count alone — only which edges carry blocks.
    pub fn with_topology(locals: Vec<L>, topology: Topology) -> Self {
        assert!(!locals.is_empty(), "cluster needs at least one server");
        Cluster {
            locals,
            ledger: Ledger::new(),
            topology,
        }
    }

    /// Number of servers `s` (including the coordinator).
    pub fn num_servers(&self) -> usize {
        self.locals.len()
    }

    /// The routing topology for reduction collectives.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// The shared communication ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Snapshot of the current communication totals.
    pub fn comm(&self) -> LedgerSnapshot {
        self.ledger.snapshot()
    }

    /// Read-only access to a server's local state (for *evaluation only* —
    /// e.g. materializing the global matrix to measure true errors; never
    /// used inside protocols).
    pub fn local(&self, t: usize) -> &L {
        &self.locals[t]
    }

    /// All local states (evaluation only).
    pub fn locals(&self) -> &[L] {
        &self.locals
    }

    /// Mutable access to one server's local state for *zero-communication
    /// local operations* (each server mutating its own scratch, e.g.
    /// clearing injected coordinates after a sampling pass). Must not be
    /// used to move data between servers — that would bypass the ledger.
    pub fn local_mut_for_cleanup(&mut self, t: usize) -> &mut L {
        &mut self.locals[t]
    }

    /// Coordinator → all servers: sends `msg` to each of the `s − 1`
    /// non-coordinator servers, charging each message, then lets every
    /// server (including the coordinator's own state) observe it.
    pub fn broadcast<T: Payload + Clone>(
        &mut self,
        msg: &T,
        label: &'static str,
        mut on_receive: impl FnMut(usize, &mut L, &T),
    ) {
        self.ledger.next_round();
        let w = msg.words();
        for t in 1..self.locals.len() {
            self.ledger.charge(t, Direction::Downstream, w, label);
        }
        for (t, local) in self.locals.iter_mut().enumerate() {
            on_receive(t, local, msg);
        }
    }

    /// All servers → coordinator: each server computes a reply from its
    /// local state; replies from servers `1..s` are charged upstream.
    /// Returns the replies indexed by server.
    pub fn gather<T: Payload>(
        &mut self,
        label: &'static str,
        mut compute: impl FnMut(usize, &mut L) -> T,
    ) -> Vec<T> {
        self.ledger.next_round();
        let mut out = Vec::with_capacity(self.locals.len());
        for (t, local) in self.locals.iter_mut().enumerate() {
            let reply = compute(t, local);
            if t != 0 {
                self.ledger
                    .charge(t, Direction::Upstream, reply.words(), label);
            }
            out.push(reply);
        }
        out
    }

    /// Gather + fold: each server's reply is merged into an accumulator at
    /// the coordinator. This is how linear sketches aggregate: the wire cost
    /// is per-server sketch size, and the coordinator keeps only the sum.
    pub fn aggregate<T: Payload>(
        &mut self,
        label: &'static str,
        compute: impl FnMut(usize, &mut L) -> T,
        mut merge: impl FnMut(&mut T, T),
    ) -> T {
        let replies = self.gather(label, compute);
        let mut it = replies.into_iter();
        // dlra-allow(panic-policy): clusters are constructed with >= 1
        // server (enforced at build time), so gather always yields a reply.
        let mut acc = it.next().expect("at least one server");
        for r in it {
            merge(&mut acc, r);
        }
        acc
    }

    /// Coordinator ↔ one server round trip: sends `request` down, gets a
    /// reply up. Used for Algorithm 3 line 6/11 ("server 1 asks for aⱼ").
    pub fn query_server<Q: Payload, T: Payload>(
        &mut self,
        t: usize,
        request: &Q,
        label: &'static str,
        compute: impl FnOnce(&mut L, &Q) -> T,
    ) -> T {
        if t != 0 {
            self.ledger
                .charge(t, Direction::Downstream, request.words(), label);
        }
        let reply = compute(&mut self.locals[t], request);
        if t != 0 {
            self.ledger
                .charge(t, Direction::Upstream, reply.words(), label);
        }
        reply
    }

    /// Coordinator → every server down-query followed by an up-reply in the
    /// same round (e.g. "send me your part of rows i₁..iᵣ").
    pub fn query_all<Q: Payload + Clone, T: Payload>(
        &mut self,
        request: &Q,
        label: &'static str,
        mut compute: impl FnMut(usize, &mut L, &Q) -> T,
    ) -> Vec<T> {
        self.ledger.next_round();
        let qw = request.words();
        let mut out = Vec::with_capacity(self.locals.len());
        for (t, local) in self.locals.iter_mut().enumerate() {
            if t != 0 {
                self.ledger.charge(t, Direction::Downstream, qw, label);
            }
            let reply = compute(t, local, request);
            if t != 0 {
                self.ledger
                    .charge(t, Direction::Upstream, reply.words(), label);
            }
            out.push(reply);
        }
        out
    }
}

impl<L: Send> Cluster<L> {
    /// Parallel gather using std scoped threads: semantics and
    /// accounting identical to [`Cluster::gather`], but the per-server
    /// compute closures run concurrently. Use for expensive local work
    /// (sketching a large matrix); results are charged deterministically in
    /// server order afterwards, so ledgers match the sequential executor.
    pub fn par_gather<T: Payload + Send>(
        &mut self,
        label: &'static str,
        compute: impl Fn(usize, &mut L) -> T + Sync,
    ) -> Vec<T> {
        self.ledger.next_round();
        let mut replies: Vec<Option<T>> = (0..self.locals.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            for (t, (local, slot)) in self.locals.iter_mut().zip(replies.iter_mut()).enumerate() {
                let compute = &compute;
                scope.spawn(move || {
                    *slot = Some(compute(t, local));
                });
            }
        });
        let out: Vec<T> = replies
            .into_iter()
            // dlra-allow(panic-policy): the scoped loop above filled
            // exactly one slot per server before returning.
            .map(|r| r.expect("every server replied"))
            .collect();
        for (t, reply) in out.iter().enumerate() {
            if t != 0 {
                self.ledger
                    .charge(t, Direction::Upstream, reply.words(), label);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::FRAME_WORDS;

    fn cluster_of_vecs(s: usize, len: usize) -> Cluster<Vec<f64>> {
        Cluster::new((0..s).map(|t| vec![t as f64; len]).collect())
    }

    #[test]
    fn broadcast_reaches_all_and_charges() {
        let mut c = cluster_of_vecs(4, 2);
        let mut seen = vec![];
        c.broadcast(&7.5f64, "b", |t, _local, msg| seen.push((t, *msg)));
        assert_eq!(seen, vec![(0, 7.5), (1, 7.5), (2, 7.5), (3, 7.5)]);
        // 3 downstream messages of 1 word + frame each.
        assert_eq!(c.comm().downstream_words, 3 * (1 + FRAME_WORDS));
        assert_eq!(c.comm().upstream_words, 0);
        assert_eq!(c.comm().rounds, 1);
    }

    #[test]
    fn gather_collects_in_server_order() {
        let mut c = cluster_of_vecs(3, 1);
        let replies = c.gather("g", |t, local| local[0] + t as f64);
        assert_eq!(replies, vec![0.0, 2.0, 4.0]);
        // Coordinator's own reply is free: 2 upstream messages.
        assert_eq!(c.comm().upstream_words, 2 * (1 + FRAME_WORDS));
        assert_eq!(c.comm().messages, 2);
    }

    #[test]
    fn aggregate_folds() {
        let mut c = cluster_of_vecs(5, 3);
        let sum = c.aggregate(
            "agg",
            |_t, local| local.clone(),
            |acc, r| {
                for (a, b) in acc.iter_mut().zip(r) {
                    *a += b;
                }
            },
        );
        assert_eq!(sum, vec![10.0, 10.0, 10.0]);
        // 4 upstream messages of 3 words + frame.
        assert_eq!(c.comm().upstream_words, 4 * (3 + FRAME_WORDS));
    }

    #[test]
    fn query_server_round_trip() {
        let mut c = cluster_of_vecs(3, 4);
        let v = c.query_server(2, &1usize, "q", |local, &idx| local[idx]);
        assert_eq!(v, 2.0);
        assert_eq!(c.comm().downstream_words, 1 + FRAME_WORDS);
        assert_eq!(c.comm().upstream_words, 1 + FRAME_WORDS);
        // Querying the coordinator itself is free.
        let v0 = c.query_server(0, &0usize, "q0", |local, &idx| local[idx]);
        assert_eq!(v0, 0.0);
        assert_eq!(c.comm().messages, 2);
    }

    #[test]
    fn query_all_charges_both_directions() {
        let mut c = cluster_of_vecs(4, 2);
        let replies = c.query_all(&0usize, "qa", |t, local, &idx| (t as f64) * local[idx]);
        assert_eq!(replies.len(), 4);
        assert_eq!(c.comm().downstream_words, 3 * (1 + FRAME_WORDS));
        assert_eq!(c.comm().upstream_words, 3 * (1 + FRAME_WORDS));
    }

    #[test]
    fn par_gather_matches_sequential_accounting() {
        let mut c1 = cluster_of_vecs(6, 8);
        let mut c2 = cluster_of_vecs(6, 8);
        let r1 = c1.gather("x", |t, l| vec![l[0] * 2.0, t as f64]);
        let r2 = c2.par_gather("x", |t, l| vec![l[0] * 2.0, t as f64]);
        assert_eq!(r1, r2);
        assert_eq!(c1.comm(), c2.comm());
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_cluster_rejected() {
        let _ = Cluster::<()>::new(vec![]);
    }
}
