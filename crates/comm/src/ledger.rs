//! The communication ledger: every message that crosses a server boundary is
//! charged here, and tests assert on the totals (e.g. Theorem 1's
//! `O(s·k²·d/ε² + C)` bound and the experiments' communication-ratio knobs).
//!
//! The ledger is shared by every server of a cluster, so on the threaded
//! substrate (`dlra-runtime`) it is charged concurrently from worker
//! threads. The hot counters are lock-free atomics; only the optional
//! per-event transcript takes a mutex, and only when recording is enabled.
//! Sequential word-accounting semantics are unchanged: a charge adds
//! `payload + FRAME_WORDS` to exactly one direction and bumps the message
//! count, and `snapshot` taken at any quiescent point (no collective in
//! flight) is exact.

use dlra_util::sync::MutexExt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Message direction relative to the coordinator (server 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Server `t` → coordinator.
    Upstream,
    /// Coordinator → server `t` (a broadcast is `s − 1` such messages).
    Downstream,
}

/// One accounted message.
#[derive(Debug, Clone)]
pub struct CommEvent {
    /// Which non-coordinator server was involved (1-based; coordinator is 0).
    pub server: usize,
    /// The server the message landed at (0 for star-upstream and root hops;
    /// an interior combining-tree node for non-root hops).
    pub receiver: usize,
    /// Direction of travel.
    pub direction: Direction,
    /// Payload size in words (excluding the frame word).
    pub payload_words: u64,
    /// Human-readable label of the protocol step (e.g. `"Alg1.gather_rows"`).
    pub label: &'static str,
    /// Round index at the time of the message.
    pub round: u64,
}

/// Fixed per-message framing overhead in words (tag + length).
pub const FRAME_WORDS: u64 = 1;

/// A simple network cost model turning ledger totals into estimated wall
/// time: `rounds·latency + words·8/bandwidth`, the standard α–β model. The
/// simulation itself is instantaneous; this lets experiments report what a
/// protocol *would* cost on a concrete network.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// One-way latency charged per communication round, in seconds.
    pub latency_per_round: f64,
    /// Link bandwidth in bytes per second (aggregate at the coordinator).
    pub bytes_per_sec: f64,
}

impl CostModel {
    /// A 10 GbE datacenter profile (100 µs per round, 1.25 GB/s).
    pub fn datacenter() -> Self {
        CostModel {
            latency_per_round: 100e-6,
            bytes_per_sec: 1.25e9,
        }
    }

    /// A wide-area profile (50 ms per round, 12.5 MB/s).
    pub fn wide_area() -> Self {
        CostModel {
            latency_per_round: 50e-3,
            bytes_per_sec: 12.5e6,
        }
    }

    /// Estimated wall-clock seconds for a snapshot's traffic.
    pub fn estimate_seconds(&self, snap: &LedgerSnapshot) -> f64 {
        snap.rounds as f64 * self.latency_per_round
            + (snap.total_words() * 8) as f64 / self.bytes_per_sec
    }
}

#[derive(Debug, Default)]
struct LedgerInner {
    upstream_words: AtomicU64,
    downstream_words: AtomicU64,
    messages: AtomicU64,
    rounds: AtomicU64,
    root_inbox_words: AtomicU64,
    root_inbox_messages: AtomicU64,
    record_events: AtomicBool,
    // dlra-lock-order: ledger.events
    events: Mutex<Vec<CommEvent>>,
}

/// A thread-safe communication ledger shared by all collectives of a
/// [`crate::Cluster`] or a threaded substrate. Cloning shares the
/// underlying counters; charges from any thread are totalled without locks.
#[derive(Debug, Clone, Default)]
pub struct Ledger {
    inner: Arc<LedgerInner>,
}

/// A point-in-time copy of the ledger totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LedgerSnapshot {
    /// Total words sent servers → coordinator (incl. frames).
    pub upstream_words: u64,
    /// Total words sent coordinator → servers (incl. frames).
    pub downstream_words: u64,
    /// Number of messages.
    pub messages: u64,
    /// Number of communication rounds.
    pub rounds: u64,
    /// Words (incl. frames) that landed in the coordinator's inbox — the
    /// fan-in a combining tree exists to shrink. A subset of
    /// `upstream_words`: interior tree hops count upstream but not here.
    pub root_inbox_words: u64,
    /// Messages that landed in the coordinator's inbox (`s − 1` per star
    /// reduction, one per tree round reaching the root).
    pub root_inbox_messages: u64,
}

impl LedgerSnapshot {
    /// Total words in both directions.
    pub fn total_words(&self) -> u64 {
        self.upstream_words + self.downstream_words
    }

    /// Difference of two snapshots (for measuring one protocol phase).
    pub fn since(&self, earlier: &LedgerSnapshot) -> LedgerSnapshot {
        LedgerSnapshot {
            upstream_words: self.upstream_words - earlier.upstream_words,
            downstream_words: self.downstream_words - earlier.downstream_words,
            messages: self.messages - earlier.messages,
            rounds: self.rounds - earlier.rounds,
            root_inbox_words: self.root_inbox_words - earlier.root_inbox_words,
            root_inbox_messages: self.root_inbox_messages - earlier.root_inbox_messages,
        }
    }
}

/// Component-wise sum: recombines phase deltas (e.g. a shared prepare
/// phase plus a per-query execute phase) into the total a single
/// uninterrupted run would have charged — exact, because every field is a
/// plain count.
impl std::ops::Add for LedgerSnapshot {
    type Output = LedgerSnapshot;

    fn add(self, rhs: LedgerSnapshot) -> LedgerSnapshot {
        LedgerSnapshot {
            upstream_words: self.upstream_words + rhs.upstream_words,
            downstream_words: self.downstream_words + rhs.downstream_words,
            messages: self.messages + rhs.messages,
            rounds: self.rounds + rhs.rounds,
            root_inbox_words: self.root_inbox_words + rhs.root_inbox_words,
            root_inbox_messages: self.root_inbox_messages + rhs.root_inbox_messages,
        }
    }
}

/// In-place component-wise sum — the accumulation form of [`Add`], used by
/// metrics registries folding per-query deltas into running totals.
impl std::ops::AddAssign for LedgerSnapshot {
    fn add_assign(&mut self, rhs: LedgerSnapshot) {
        self.upstream_words += rhs.upstream_words;
        self.downstream_words += rhs.downstream_words;
        self.messages += rhs.messages;
        self.rounds += rhs.rounds;
        self.root_inbox_words += rhs.root_inbox_words;
        self.root_inbox_messages += rhs.root_inbox_messages;
    }
}

/// Operator-friendly one-liner: total words with the up/down split,
/// message and round counts.
impl std::fmt::Display for LedgerSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} words ({} up / {} down), {} msgs, {} rounds",
            self.total_words(),
            self.upstream_words,
            self.downstream_words,
            self.messages,
            self.rounds
        )
    }
}

impl Ledger {
    /// A fresh ledger. Event recording (the full transcript) is off by
    /// default; totals are always maintained.
    pub fn new() -> Self {
        Ledger::default()
    }

    /// Enables or disables per-event transcript recording.
    pub fn set_record_events(&self, on: bool) {
        self.inner.record_events.store(on, Ordering::Release);
    }

    /// Charges one message on a star edge and returns its total cost in
    /// words. Upstream messages implicitly land at the coordinator
    /// (receiver 0); downstream messages land at `server`.
    pub fn charge(
        &self,
        server: usize,
        direction: Direction,
        payload_words: u64,
        label: &'static str,
    ) -> u64 {
        let receiver = match direction {
            Direction::Upstream => 0,
            Direction::Downstream => server,
        };
        self.charge_hop(server, receiver, direction, payload_words, label)
    }

    /// Charges one message on an explicit `sender → receiver` edge — the
    /// per-hop form used by combining-tree collectives, so words are
    /// attributed to the edge that actually carried them. Upstream hops
    /// whose receiver is the coordinator additionally count toward the
    /// root-inbox totals.
    pub fn charge_hop(
        &self,
        sender: usize,
        receiver: usize,
        direction: Direction,
        payload_words: u64,
        label: &'static str,
    ) -> u64 {
        let cost = payload_words + FRAME_WORDS;
        match direction {
            Direction::Upstream => self.inner.upstream_words.fetch_add(cost, Ordering::Relaxed),
            Direction::Downstream => self
                .inner
                .downstream_words
                .fetch_add(cost, Ordering::Relaxed),
        };
        self.inner.messages.fetch_add(1, Ordering::Relaxed);
        if matches!(direction, Direction::Upstream) && receiver == 0 && sender != 0 {
            self.inner
                .root_inbox_words
                .fetch_add(cost, Ordering::Relaxed);
            self.inner
                .root_inbox_messages
                .fetch_add(1, Ordering::Relaxed);
        }
        if self.inner.record_events.load(Ordering::Acquire) {
            let round = self.inner.rounds.load(Ordering::Relaxed);
            self.inner.events.lock_recover().push(CommEvent {
                server: sender,
                receiver,
                direction,
                payload_words,
                label,
                round,
            });
        }
        cost
    }

    /// Marks the start of a new communication round (a collective step in
    /// which every server may exchange one batch with the coordinator).
    pub fn next_round(&self) {
        self.inner.rounds.fetch_add(1, Ordering::Relaxed);
    }

    /// Totals so far. Exact whenever no collective is mid-flight (each
    /// counter is individually exact at all times).
    pub fn snapshot(&self) -> LedgerSnapshot {
        LedgerSnapshot {
            upstream_words: self.inner.upstream_words.load(Ordering::Relaxed),
            downstream_words: self.inner.downstream_words.load(Ordering::Relaxed),
            messages: self.inner.messages.load(Ordering::Relaxed),
            rounds: self.inner.rounds.load(Ordering::Relaxed),
            root_inbox_words: self.inner.root_inbox_words.load(Ordering::Relaxed),
            root_inbox_messages: self.inner.root_inbox_messages.load(Ordering::Relaxed),
        }
    }

    /// Copy of the recorded transcript (empty unless recording was enabled).
    pub fn events(&self) -> Vec<CommEvent> {
        self.inner.events.lock_recover().clone()
    }

    /// Aggregates the recorded transcript by step label: returns
    /// `(label, total words incl. frames, message count)` sorted by cost
    /// descending. Empty unless recording was enabled. Used by the
    /// experiment harness to report per-phase communication breakdowns.
    pub fn by_label(&self) -> Vec<(&'static str, u64, u64)> {
        let events = self.inner.events.lock_recover();
        let mut agg: std::collections::BTreeMap<&'static str, (u64, u64)> =
            std::collections::BTreeMap::new();
        for e in events.iter() {
            let entry = agg.entry(e.label).or_default();
            entry.0 += e.payload_words + FRAME_WORDS;
            entry.1 += 1;
        }
        let mut out: Vec<(&'static str, u64, u64)> = agg
            .into_iter()
            .map(|(label, (w, m))| (label, w, m))
            .collect();
        out.sort_by_key(|&(_, w, _)| std::cmp::Reverse(w));
        out
    }

    /// Resets all counters and the transcript (recording flag preserved).
    pub fn reset(&self) {
        self.inner.upstream_words.store(0, Ordering::Relaxed);
        self.inner.downstream_words.store(0, Ordering::Relaxed);
        self.inner.messages.store(0, Ordering::Relaxed);
        self.inner.rounds.store(0, Ordering::Relaxed);
        self.inner.root_inbox_words.store(0, Ordering::Relaxed);
        self.inner.root_inbox_messages.store(0, Ordering::Relaxed);
        self.inner.events.lock_recover().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_with_frames() {
        let l = Ledger::new();
        l.charge(1, Direction::Upstream, 10, "a");
        l.charge(2, Direction::Downstream, 5, "b");
        l.charge(1, Direction::Upstream, 0, "c");
        let s = l.snapshot();
        assert_eq!(s.upstream_words, 10 + FRAME_WORDS + FRAME_WORDS);
        assert_eq!(s.downstream_words, 5 + FRAME_WORDS);
        assert_eq!(s.messages, 3);
        assert_eq!(s.total_words(), 15 + 3 * FRAME_WORDS);
    }

    #[test]
    fn snapshot_difference() {
        let l = Ledger::new();
        l.charge(1, Direction::Upstream, 10, "x");
        let before = l.snapshot();
        l.charge(1, Direction::Upstream, 20, "y");
        l.next_round();
        let after = l.snapshot();
        let delta = after.since(&before);
        assert_eq!(delta.upstream_words, 20 + FRAME_WORDS);
        assert_eq!(delta.messages, 1);
        assert_eq!(delta.rounds, 1);
    }

    #[test]
    fn snapshot_sum_recombines_phase_deltas() {
        let l = Ledger::new();
        l.charge(1, Direction::Upstream, 10, "prepare");
        l.next_round();
        let mid = l.snapshot();
        let prepare = mid.since(&LedgerSnapshot::default());
        l.charge(1, Direction::Downstream, 4, "execute");
        l.next_round();
        let execute = l.snapshot().since(&mid);
        assert_eq!(prepare + execute, l.snapshot());
    }

    #[test]
    fn transcript_recording_toggles() {
        let l = Ledger::new();
        l.charge(1, Direction::Upstream, 1, "off");
        assert!(l.events().is_empty());
        l.set_record_events(true);
        l.charge(2, Direction::Downstream, 2, "on");
        let ev = l.events();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].server, 2);
        assert_eq!(ev[0].label, "on");
    }

    #[test]
    fn transcript_sum_matches_totals() {
        let l = Ledger::new();
        l.set_record_events(true);
        for t in 1..=5 {
            l.charge(t, Direction::Upstream, t as u64 * 3, "gather");
        }
        let total: u64 = l
            .events()
            .iter()
            .map(|e| e.payload_words + FRAME_WORDS)
            .sum();
        assert_eq!(total, l.snapshot().upstream_words);
    }

    #[test]
    fn by_label_aggregates_and_sorts() {
        let l = Ledger::new();
        l.set_record_events(true);
        l.charge(1, Direction::Upstream, 10, "big");
        l.charge(2, Direction::Upstream, 10, "big");
        l.charge(1, Direction::Downstream, 1, "small");
        let agg = l.by_label();
        assert_eq!(agg.len(), 2);
        assert_eq!(agg[0], ("big", 2 * (10 + FRAME_WORDS), 2));
        assert_eq!(agg[1], ("small", 1 + FRAME_WORDS, 1));
    }

    #[test]
    fn by_label_empty_without_recording() {
        let l = Ledger::new();
        l.charge(1, Direction::Upstream, 5, "x");
        assert!(l.by_label().is_empty());
    }

    #[test]
    fn reset_clears_but_keeps_recording_flag() {
        let l = Ledger::new();
        l.set_record_events(true);
        l.charge(1, Direction::Upstream, 4, "z");
        l.reset();
        assert_eq!(l.snapshot(), LedgerSnapshot::default());
        l.charge(1, Direction::Upstream, 4, "z2");
        assert_eq!(l.events().len(), 1);
    }

    #[test]
    fn snapshot_add_assign_matches_add() {
        let a = LedgerSnapshot {
            upstream_words: 10,
            downstream_words: 2,
            messages: 3,
            rounds: 1,
            root_inbox_words: 6,
            root_inbox_messages: 2,
        };
        let b = LedgerSnapshot {
            upstream_words: 7,
            downstream_words: 5,
            messages: 2,
            rounds: 2,
            root_inbox_words: 4,
            root_inbox_messages: 1,
        };
        let mut acc = a;
        acc += b;
        assert_eq!(acc, a + b);
    }

    #[test]
    fn snapshot_display_totals() {
        let s = LedgerSnapshot {
            upstream_words: 10,
            downstream_words: 2,
            messages: 3,
            rounds: 1,
            ..LedgerSnapshot::default()
        };
        assert_eq!(
            format!("{s}"),
            "12 words (10 up / 2 down), 3 msgs, 1 rounds"
        );
    }

    #[test]
    fn cost_model_alpha_beta() {
        let snap = LedgerSnapshot {
            upstream_words: 1000,
            downstream_words: 250,
            messages: 10,
            rounds: 4,
            ..LedgerSnapshot::default()
        };
        let m = CostModel {
            latency_per_round: 0.01,
            bytes_per_sec: 1e6,
        };
        // 4 rounds × 10ms + 1250 words × 8 B / 1 MB/s = 0.04 + 0.01 s.
        let est = m.estimate_seconds(&snap);
        assert!((est - 0.05).abs() < 1e-12, "est {est}");
        // WAN dominated by latency, datacenter by neither at this size.
        assert!(
            CostModel::wide_area().estimate_seconds(&snap)
                > CostModel::datacenter().estimate_seconds(&snap)
        );
    }

    #[test]
    fn root_inbox_tracks_only_hops_into_the_coordinator() {
        let l = Ledger::new();
        // Star upstream: implicit receiver 0 → counted.
        l.charge(3, Direction::Upstream, 9, "star");
        // Interior tree hop: upstream but lands at server 2 → not counted.
        l.charge_hop(3, 2, Direction::Upstream, 9, "tree");
        // Root hop of a tree: counted.
        l.charge_hop(2, 0, Direction::Upstream, 20, "tree");
        // Downstream never counts, whatever the receiver.
        l.charge(1, Direction::Downstream, 50, "bcast");
        let s = l.snapshot();
        assert_eq!(s.root_inbox_messages, 2);
        assert_eq!(s.root_inbox_words, 9 + FRAME_WORDS + 20 + FRAME_WORDS);
        assert_eq!(s.upstream_words, 9 + 9 + 20 + 3 * FRAME_WORDS);
        assert_eq!(s.messages, 4);
    }

    #[test]
    fn charge_hop_records_the_receiver() {
        let l = Ledger::new();
        l.set_record_events(true);
        l.charge_hop(5, 4, Direction::Upstream, 2, "hop");
        l.charge(1, Direction::Downstream, 2, "down");
        let ev = l.events();
        assert_eq!(ev[0].server, 5);
        assert_eq!(ev[0].receiver, 4);
        assert_eq!(ev[1].server, 1);
        assert_eq!(ev[1].receiver, 1);
    }

    #[test]
    fn clones_share_state() {
        let l = Ledger::new();
        let l2 = l.clone();
        l2.charge(1, Direction::Upstream, 7, "shared");
        assert_eq!(l.snapshot().upstream_words, 7 + FRAME_WORDS);
    }

    #[test]
    fn concurrent_charges_lose_nothing() {
        let l = Ledger::new();
        l.set_record_events(true);
        let threads = 8u64;
        let per_thread = 500u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let l = l.clone();
                scope.spawn(move || {
                    for _ in 0..per_thread {
                        l.charge(t as usize + 1, Direction::Upstream, 3, "par");
                    }
                });
            }
        });
        let s = l.snapshot();
        assert_eq!(s.messages, threads * per_thread);
        assert_eq!(s.upstream_words, threads * per_thread * (3 + FRAME_WORDS));
        assert_eq!(l.events().len(), (threads * per_thread) as usize);
    }
}
