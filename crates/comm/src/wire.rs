//! Wire codecs for [`Payload`] types: the byte-level form a value takes
//! when it crosses a real socket (the `dlra-net` substrate).
//!
//! Every encoding is split into two parts, mirroring the ledger's cost
//! model:
//!
//! * the **body** — exactly 8 bytes per [`Payload::words`] word: the
//!   entries of a matrix, the table of a sketch, the elements of a vector.
//!   This invariant (`body bytes == 8 × words`) is what makes
//!   bytes-on-the-wire an affine function of ledger words, and the
//!   `dlra-net` wire-audit test asserts it over a full protocol run;
//! * the **descriptor** — the shape metadata a receiver needs to rebuild
//!   the value (vector lengths, matrix dimensions, sketch parameters and
//!   seeds). Descriptors are part of the per-frame overhead, alongside the
//!   frame header, and are never ledger-charged — exactly as the paper's
//!   model charges a broadcast seed one word and reconstructs the hash
//!   functions locally.
//!
//! Decoding never panics: malformed input (truncated buffers, oversized
//! lengths, bad tags) surfaces as a typed [`WireError`]. All integers are
//! little-endian; `f64` round-trips bit-exactly (NaN payloads included), so
//! a decoded block merges to the same bits as an in-process clone.

use crate::payload::Payload;
use dlra_linalg::Matrix;
use dlra_sketch::{AmsF2, CountMin, CountSketch, HeavyHittersSketch};

/// Upper bound on a single decoded sequence length (elements). Prevents a
/// corrupt or hostile descriptor from requesting an enormous allocation
/// before the body is even inspected.
pub const MAX_SEQ_LEN: u64 = 1 << 28;

/// Upper bound on one matrix / sketch-table dimension in a descriptor.
pub const MAX_DIM: u64 = 1 << 24;

/// A typed decode failure. Codecs return these instead of panicking — a
/// malformed frame from a peer must never take the coordinator down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value did.
    Truncated {
        /// What was being decoded.
        what: &'static str,
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// A declared length exceeds the codec's hard cap.
    Oversized {
        /// What was being decoded.
        what: &'static str,
        /// The declared length.
        len: u64,
        /// The cap it exceeded.
        max: u64,
    },
    /// A tag byte (bool, option flag) held an invalid value.
    BadTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending value.
        value: u64,
    },
    /// Decoding finished but bytes were left over — the descriptor and
    /// body must be consumed exactly.
    Trailing {
        /// Which buffer had leftovers.
        what: &'static str,
        /// How many bytes remained.
        remaining: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { what, needed, have } => {
                write!(f, "truncated {what}: needed {needed} bytes, have {have}")
            }
            WireError::Oversized { what, len, max } => {
                write!(f, "oversized {what}: declared {len}, cap {max}")
            }
            WireError::BadTag { what, value } => write!(f, "bad tag for {what}: {value}"),
            WireError::Trailing { what, remaining } => {
                write!(f, "{remaining} trailing bytes after decoding {what}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Accumulates the two-part encoding of a value.
#[derive(Debug, Default)]
pub struct WireWriter {
    /// Shape metadata (frame overhead, never ledger-charged).
    pub desc: Vec<u8>,
    /// Payload words, 8 bytes each (ledger-charged).
    pub body: Vec<u8>,
}

impl WireWriter {
    /// A writer with empty buffers.
    pub fn new() -> Self {
        WireWriter::default()
    }

    /// Appends one byte to the descriptor.
    pub fn desc_u8(&mut self, v: u8) {
        self.desc.push(v);
    }

    /// Appends a `u32` to the descriptor.
    pub fn desc_u32(&mut self, v: u32) {
        self.desc.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` to the descriptor.
    pub fn desc_u64(&mut self, v: u64) {
        self.desc.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` to the descriptor (bit-exact).
    pub fn desc_f64(&mut self, v: f64) {
        self.desc.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends one `u64` body word.
    pub fn word_u64(&mut self, v: u64) {
        self.body.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends one `f64` body word (bit-exact).
    pub fn word_f64(&mut self, v: f64) {
        self.body.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a slice of `f64` body words.
    pub fn words_f64(&mut self, vs: &[f64]) {
        self.body.reserve(vs.len() * 8);
        for &v in vs {
            self.word_f64(v);
        }
    }
}

/// Cursor over the two buffers of an encoded value.
#[derive(Debug)]
pub struct WireReader<'a> {
    desc: &'a [u8],
    body: &'a [u8],
}

impl<'a> WireReader<'a> {
    /// A reader over a descriptor/body pair.
    pub fn new(desc: &'a [u8], body: &'a [u8]) -> Self {
        WireReader { desc, body }
    }

    fn take_desc(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.desc.len() < n {
            return Err(WireError::Truncated {
                what,
                needed: n,
                have: self.desc.len(),
            });
        }
        let (head, rest) = self.desc.split_at(n);
        self.desc = rest;
        Ok(head)
    }

    fn take_body(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.body.len() < n {
            return Err(WireError::Truncated {
                what,
                needed: n,
                have: self.body.len(),
            });
        }
        let (head, rest) = self.body.split_at(n);
        self.body = rest;
        Ok(head)
    }

    /// Reads one descriptor byte.
    pub fn desc_u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take_desc(1, what)?[0])
    }

    /// Reads a descriptor `u32`.
    pub fn desc_u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        let b = self.take_desc(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a descriptor `u64`.
    pub fn desc_u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        let b = self.take_desc(8, what)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Reads a descriptor `f64` (bit-exact).
    pub fn desc_f64(&mut self, what: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.desc_u64(what)?))
    }

    /// Reads one `u64` body word.
    pub fn word_u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        let b = self.take_body(8, what)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Reads one `f64` body word (bit-exact).
    pub fn word_f64(&mut self, what: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.word_u64(what)?))
    }

    /// Reads `n` `f64` body words into a vector, capped by [`MAX_SEQ_LEN`]
    /// and by what the body can actually still hold.
    pub fn words_f64(&mut self, n: u64, what: &'static str) -> Result<Vec<f64>, WireError> {
        if n > MAX_SEQ_LEN {
            return Err(WireError::Oversized {
                what,
                len: n,
                max: MAX_SEQ_LEN,
            });
        }
        let bytes = self.take_body((n as usize) * 8, what)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| {
                let mut a = [0u8; 8];
                a.copy_from_slice(c);
                f64::from_le_bytes(a)
            })
            .collect())
    }

    /// Body words still unread.
    pub fn remaining_body_words(&self) -> u64 {
        (self.body.len() / 8) as u64
    }

    /// Asserts both buffers were consumed exactly.
    pub fn finish(self, what: &'static str) -> Result<(), WireError> {
        if !self.desc.is_empty() {
            return Err(WireError::Trailing {
                what,
                remaining: self.desc.len(),
            });
        }
        if !self.body.is_empty() {
            return Err(WireError::Trailing {
                what,
                remaining: self.body.len(),
            });
        }
        Ok(())
    }
}

/// Serialize a value into the descriptor/body split.
pub trait WireEncode {
    /// Appends this value's descriptor and body bytes.
    fn encode(&self, w: &mut WireWriter);
}

/// Rebuild a value from its descriptor/body split. Must never panic on
/// malformed input.
pub trait WireDecode: Sized {
    /// Consumes this value's descriptor and body bytes.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;
}

/// The full wire bound of a collective payload: it knows its word size and
/// round-trips through the byte codec. Blanket-implemented, so payload
/// types only spell out [`WireEncode`] / [`WireDecode`].
pub trait Wire: Payload + WireEncode + WireDecode {}

impl<T: Payload + WireEncode + WireDecode> Wire for T {}

/// Encodes a value, returning `(descriptor, body)`. Debug builds assert the
/// core invariant: the body is exactly 8 bytes per [`Payload::words`] word.
pub fn encode_value<T: Payload + WireEncode>(value: &T) -> (Vec<u8>, Vec<u8>) {
    let mut w = WireWriter::new();
    value.encode(&mut w);
    debug_assert_eq!(
        w.body.len() as u64,
        8 * value.words(),
        "wire body must be exactly 8 bytes per payload word"
    );
    (w.desc, w.body)
}

/// Decodes a value, requiring both buffers to be consumed exactly.
pub fn decode_value<T: WireDecode>(desc: &[u8], body: &[u8]) -> Result<T, WireError> {
    let mut r = WireReader::new(desc, body);
    let value = T::decode(&mut r)?;
    r.finish("value")?;
    Ok(value)
}

impl WireEncode for f64 {
    fn encode(&self, w: &mut WireWriter) {
        w.word_f64(*self);
    }
}

impl WireDecode for f64 {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.word_f64("f64")
    }
}

impl WireEncode for u64 {
    fn encode(&self, w: &mut WireWriter) {
        w.word_u64(*self);
    }
}

impl WireDecode for u64 {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.word_u64("u64")
    }
}

impl WireEncode for i64 {
    fn encode(&self, w: &mut WireWriter) {
        w.word_u64(*self as u64);
    }
}

impl WireDecode for i64 {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(r.word_u64("i64")? as i64)
    }
}

impl WireEncode for usize {
    fn encode(&self, w: &mut WireWriter) {
        w.word_u64(*self as u64);
    }
}

impl WireDecode for usize {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let v = r.word_u64("usize")?;
        usize::try_from(v).map_err(|_| WireError::Oversized {
            what: "usize",
            len: v,
            max: usize::MAX as u64,
        })
    }
}

impl WireEncode for bool {
    fn encode(&self, w: &mut WireWriter) {
        w.word_u64(u64::from(*self));
    }
}

impl WireDecode for bool {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.word_u64("bool")? {
            0 => Ok(false),
            1 => Ok(true),
            value => Err(WireError::BadTag {
                what: "bool",
                value,
            }),
        }
    }
}

impl WireEncode for () {
    fn encode(&self, _w: &mut WireWriter) {}
}

impl WireDecode for () {
    fn decode(_r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(())
    }
}

/// The presence flag lives in the descriptor, matching the [`Payload`]
/// accounting where it shares the frame word.
impl<T: WireEncode> WireEncode for Option<T> {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            None => w.desc_u8(0),
            Some(inner) => {
                w.desc_u8(1);
                inner.encode(w);
            }
        }
    }
}

impl<T: WireDecode> WireDecode for Option<T> {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.desc_u8("option flag")? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            value => Err(WireError::BadTag {
                what: "option flag",
                value: u64::from(value),
            }),
        }
    }
}

/// The element count lives in the descriptor; elements' own descriptors and
/// bodies follow in order.
impl<T: WireEncode> WireEncode for Vec<T> {
    fn encode(&self, w: &mut WireWriter) {
        debug_assert!(self.len() as u64 <= MAX_SEQ_LEN, "sequence too long");
        w.desc_u32(self.len() as u32);
        for item in self {
            item.encode(w);
        }
    }
}

impl<T: WireDecode> WireDecode for Vec<T> {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = u64::from(r.desc_u32("vec length")?);
        if n > MAX_SEQ_LEN {
            return Err(WireError::Oversized {
                what: "vec length",
                len: n,
                max: MAX_SEQ_LEN,
            });
        }
        // Reserve conservatively: a corrupt length cannot force a huge
        // allocation before the body runs out and errors.
        let mut out = Vec::with_capacity((n as usize).min(4096));
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<A: WireEncode, B: WireEncode> WireEncode for (A, B) {
    fn encode(&self, w: &mut WireWriter) {
        self.0.encode(w);
        self.1.encode(w);
    }
}

impl<A: WireDecode, B: WireDecode> WireDecode for (A, B) {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: WireEncode, B: WireEncode, C: WireEncode> WireEncode for (A, B, C) {
    fn encode(&self, w: &mut WireWriter) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }
}

impl<A: WireDecode, B: WireDecode, C: WireDecode> WireDecode for (A, B, C) {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

/// Dimensions in the descriptor, entries (row-major) in the body — one word
/// per entry, exactly the [`Payload`] accounting.
impl WireEncode for Matrix {
    fn encode(&self, w: &mut WireWriter) {
        w.desc_u32(self.rows() as u32);
        w.desc_u32(self.cols() as u32);
        w.words_f64(self.as_slice());
    }
}

impl WireDecode for Matrix {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let rows = u64::from(r.desc_u32("matrix rows")?);
        let cols = u64::from(r.desc_u32("matrix cols")?);
        if rows > MAX_DIM || cols > MAX_DIM {
            return Err(WireError::Oversized {
                what: "matrix dims",
                len: rows.max(cols),
                max: MAX_DIM,
            });
        }
        let data = r.words_f64(rows * cols, "matrix entries")?;
        Matrix::from_vec(rows as usize, cols as usize, data).map_err(|_| WireError::BadTag {
            what: "matrix dims",
            value: rows * cols,
        })
    }
}

/// Reads sketch table dimensions, rejecting zero and oversized values
/// before any construction happens (the constructors assert on zero dims).
fn sketch_dims(r: &mut WireReader<'_>, what: &'static str) -> Result<(usize, usize), WireError> {
    let depth = u64::from(r.desc_u32(what)?);
    let width = u64::from(r.desc_u32(what)?);
    if depth == 0 || width == 0 {
        return Err(WireError::BadTag {
            what,
            value: depth.min(width),
        });
    }
    if depth > MAX_DIM || width > MAX_DIM || depth * width > MAX_SEQ_LEN {
        return Err(WireError::Oversized {
            what,
            len: depth * width,
            max: MAX_SEQ_LEN,
        });
    }
    Ok((depth as usize, width as usize))
}

/// Parameters and seed in the descriptor (hash functions are reconstructed
/// locally, as a broadcast seed stands in for them in the paper's model);
/// the table — the part the ledger charges — in the body.
impl WireEncode for CountSketch {
    fn encode(&self, w: &mut WireWriter) {
        w.desc_u32(self.depth() as u32);
        w.desc_u32(self.width() as u32);
        w.desc_u64(self.seed());
        w.words_f64(self.table());
    }
}

impl WireDecode for CountSketch {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let (depth, width) = sketch_dims(r, "countsketch dims")?;
        let seed = r.desc_u64("countsketch seed")?;
        let table = r.words_f64((depth * width) as u64, "countsketch table")?;
        let mut cs = CountSketch::new(depth, width, seed);
        if !cs.load_table(&table) {
            return Err(WireError::BadTag {
                what: "countsketch table",
                value: table.len() as u64,
            });
        }
        Ok(cs)
    }
}

impl WireEncode for CountMin {
    fn encode(&self, w: &mut WireWriter) {
        w.desc_u32(self.depth() as u32);
        w.desc_u32(self.width() as u32);
        w.desc_u64(self.seed());
        w.words_f64(self.table());
    }
}

impl WireDecode for CountMin {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let (depth, width) = sketch_dims(r, "countmin dims")?;
        let seed = r.desc_u64("countmin seed")?;
        let table = r.words_f64((depth * width) as u64, "countmin table")?;
        let mut cm = CountMin::new(depth, width, seed);
        if !cm.load_table(&table) {
            return Err(WireError::BadTag {
                what: "countmin table",
                value: table.len() as u64,
            });
        }
        Ok(cm)
    }
}

impl WireEncode for AmsF2 {
    fn encode(&self, w: &mut WireWriter) {
        w.desc_u32(self.depth() as u32);
        w.desc_u32(self.width() as u32);
        w.desc_u64(self.seed());
        w.words_f64(self.cells());
    }
}

impl WireDecode for AmsF2 {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let (depth, width) = sketch_dims(r, "amsf2 dims")?;
        let seed = r.desc_u64("amsf2 seed")?;
        let cells = r.words_f64((depth * width) as u64, "amsf2 cells")?;
        let mut ams = AmsF2::new(depth, width, seed);
        if !ams.load_cells(&cells) {
            return Err(WireError::BadTag {
                what: "amsf2 cells",
                value: cells.len() as u64,
            });
        }
        Ok(ams)
    }
}

impl WireEncode for HeavyHittersSketch {
    fn encode(&self, w: &mut WireWriter) {
        w.desc_f64(self.b());
        self.countsketch().encode(w);
    }
}

impl WireDecode for HeavyHittersSketch {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let b = r.desc_f64("heavy-hitters threshold")?;
        if !b.is_finite() || b < 1.0 {
            return Err(WireError::BadTag {
                what: "heavy-hitters threshold",
                value: b.to_bits(),
            });
        }
        let cs = CountSketch::decode(r)?;
        Ok(HeavyHittersSketch::from_parts(b, cs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Payload + WireEncode + WireDecode>(value: &T) -> T {
        let (desc, body) = encode_value(value);
        assert_eq!(
            body.len() as u64,
            8 * value.words(),
            "body must be 8 bytes per word"
        );
        decode_value(&desc, &body).expect("roundtrip decode")
    }

    #[test]
    fn scalars_roundtrip_bit_exact() {
        assert_eq!(roundtrip(&1.5f64), 1.5);
        assert_eq!(roundtrip(&f64::NAN).to_bits(), f64::NAN.to_bits());
        assert_eq!(roundtrip(&(-0.0f64)).to_bits(), (-0.0f64).to_bits());
        assert_eq!(roundtrip(&u64::MAX), u64::MAX);
        assert_eq!(roundtrip(&(-42i64)), -42);
        assert_eq!(roundtrip(&7usize), 7);
        assert!(roundtrip(&true));
        roundtrip(&());
    }

    #[test]
    fn containers_roundtrip() {
        assert_eq!(roundtrip(&vec![1.0f64, -2.0, 3.5]), vec![1.0, -2.0, 3.5]);
        assert_eq!(roundtrip(&Vec::<u64>::new()), Vec::<u64>::new());
        assert_eq!(
            roundtrip(&vec![vec![1u64, 2], vec![], vec![3]]),
            vec![vec![1u64, 2], vec![], vec![3]]
        );
        assert_eq!(roundtrip(&Some(9.5f64)), Some(9.5));
        assert_eq!(roundtrip(&Option::<f64>::None), None);
        assert_eq!(roundtrip(&(1.5f64, 2u64)), (1.5, 2));
        assert_eq!(
            roundtrip(&(1u64, vec![2.0f64], false)),
            (1, vec![2.0], false)
        );
    }

    #[test]
    fn matrix_roundtrips_bit_exact() {
        let m = Matrix::from_fn(3, 4, |i, j| (i * 7 + j) as f64 * 0.1 - 1.0);
        let back = roundtrip(&m);
        assert_eq!(back.rows(), 3);
        assert_eq!(back.cols(), 4);
        assert_eq!(back.as_slice(), m.as_slice());
    }

    #[test]
    fn sketches_roundtrip_and_stay_mergeable() {
        let mut cs = CountSketch::new(3, 16, 42);
        cs.update(7, 2.5);
        cs.update(11, -1.0);
        let back = roundtrip(&cs);
        assert_eq!(back.estimate(7).to_bits(), cs.estimate(7).to_bits());
        // A decoded sketch merges with an original (same params + seed).
        let mut merged = cs.clone();
        merged.merge(&back);
        assert_eq!(merged.estimate(7), 2.0 * cs.estimate(7));

        let mut cm = CountMin::new(2, 8, 7);
        cm.update(3, 4.0);
        let back = roundtrip(&cm);
        assert_eq!(back.estimate(3).to_bits(), cm.estimate(3).to_bits());

        let mut ams = AmsF2::new(3, 4, 9);
        ams.update(1, 2.0);
        let back = roundtrip(&ams);
        assert_eq!(back.estimate().to_bits(), ams.estimate().to_bits());

        let mut hh = HeavyHittersSketch::with_dims(8.0, 3, 16, 5);
        hh.update(2, 10.0);
        let back = roundtrip(&hh);
        assert_eq!(back.b(), 8.0);
        assert_eq!(back.estimate(2).to_bits(), hh.estimate(2).to_bits());
        let mut merged = hh.clone();
        merged.merge(&back);
        assert_eq!(merged.estimate(2), 2.0 * hh.estimate(2));
    }

    #[test]
    fn truncated_body_is_a_typed_error() {
        let (desc, body) = encode_value(&vec![1.0f64, 2.0, 3.0]);
        let err = decode_value::<Vec<f64>>(&desc, &body[..body.len() - 1]).unwrap_err();
        assert!(matches!(err, WireError::Truncated { .. }), "{err:?}");
    }

    #[test]
    fn truncated_desc_is_a_typed_error() {
        let (desc, body) = encode_value(&Some(1.0f64));
        let err = decode_value::<Option<f64>>(&desc[..0], &body).unwrap_err();
        assert!(matches!(err, WireError::Truncated { .. }), "{err:?}");
    }

    #[test]
    fn oversized_length_is_a_typed_error() {
        let mut w = WireWriter::new();
        w.desc_u32(u32::MAX);
        let err = decode_value::<Vec<f64>>(&w.desc, &w.body).unwrap_err();
        assert!(matches!(err, WireError::Oversized { .. }), "{err:?}");
    }

    #[test]
    fn bad_tags_are_typed_errors() {
        let mut w = WireWriter::new();
        w.word_u64(7);
        let err = decode_value::<bool>(&w.desc, &w.body).unwrap_err();
        assert_eq!(
            err,
            WireError::BadTag {
                what: "bool",
                value: 7
            }
        );
        let mut w = WireWriter::new();
        w.desc_u8(9);
        let err = decode_value::<Option<f64>>(&w.desc, &w.body).unwrap_err();
        assert!(matches!(err, WireError::BadTag { .. }), "{err:?}");
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let (desc, mut body) = encode_value(&1.0f64);
        body.extend_from_slice(&[0u8; 8]);
        let err = decode_value::<f64>(&desc, &body).unwrap_err();
        assert!(matches!(err, WireError::Trailing { .. }), "{err:?}");
    }

    #[test]
    fn zero_sketch_dims_rejected_without_panicking() {
        let mut w = WireWriter::new();
        w.desc_u32(0);
        w.desc_u32(8);
        w.desc_u64(1);
        let err = decode_value::<CountSketch>(&w.desc, &w.body).unwrap_err();
        assert!(matches!(err, WireError::BadTag { .. }), "{err:?}");
    }
}
