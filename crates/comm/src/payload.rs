//! The [`Payload`] trait: anything that can cross a server boundary knows
//! its size in 8-byte words. This matches the paper's cost model, where a
//! word holds one matrix entry, index, or hash seed.

use dlra_linalg::Matrix;
use dlra_sketch::{AmsF2, CountMin, CountSketch, HeavyHittersSketch};

/// Wire size in 8-byte words of a message payload.
pub trait Payload {
    /// Number of words this value occupies on the wire.
    fn words(&self) -> u64;
}

impl Payload for f64 {
    fn words(&self) -> u64 {
        1
    }
}

impl Payload for u64 {
    fn words(&self) -> u64 {
        1
    }
}

impl Payload for i64 {
    fn words(&self) -> u64 {
        1
    }
}

impl Payload for usize {
    fn words(&self) -> u64 {
        1
    }
}

impl Payload for bool {
    fn words(&self) -> u64 {
        1
    }
}

impl Payload for () {
    fn words(&self) -> u64 {
        0
    }
}

impl<T: Payload> Payload for Option<T> {
    fn words(&self) -> u64 {
        // The presence flag shares the frame word; only the content counts.
        self.as_ref().map_or(0, Payload::words)
    }
}

impl<T: Payload> Payload for Vec<T> {
    fn words(&self) -> u64 {
        self.iter().map(Payload::words).sum()
    }
}

impl<T: Payload> Payload for &[T] {
    fn words(&self) -> u64 {
        self.iter().map(Payload::words).sum()
    }
}

impl<A: Payload, B: Payload> Payload for (A, B) {
    fn words(&self) -> u64 {
        self.0.words() + self.1.words()
    }
}

impl<A: Payload, B: Payload, C: Payload> Payload for (A, B, C) {
    fn words(&self) -> u64 {
        self.0.words() + self.1.words() + self.2.words()
    }
}

/// A matrix on the wire costs one word per entry. This is its *logical*
/// size: `Matrix` storage is `Arc`-shared copy-on-write, so an in-process
/// substrate may deliver a broadcast matrix as an O(1) handle clone, but
/// the ledger charges what a real wire would carry — word accounting is
/// independent of how the storage is shared.
impl Payload for Matrix {
    fn words(&self) -> u64 {
        (self.rows() * self.cols()) as u64
    }
}

impl Payload for CountSketch {
    fn words(&self) -> u64 {
        self.size_words()
    }
}

impl Payload for CountMin {
    fn words(&self) -> u64 {
        self.size_words()
    }
}

impl Payload for AmsF2 {
    fn words(&self) -> u64 {
        self.size_words()
    }
}

impl Payload for HeavyHittersSketch {
    fn words(&self) -> u64 {
        self.size_words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes() {
        assert_eq!(1.5f64.words(), 1);
        assert_eq!(7u64.words(), 1);
        assert_eq!((-3i64).words(), 1);
        assert_eq!(9usize.words(), 1);
        assert_eq!(true.words(), 1);
        assert_eq!(().words(), 0);
    }

    #[test]
    fn container_sizes() {
        assert_eq!(vec![1.0f64; 10].words(), 10);
        assert_eq!(vec![vec![1u64; 3]; 4].words(), 12);
        assert_eq!((1.0f64, 2u64).words(), 2);
        assert_eq!((1.0f64, 2u64, vec![0.0f64; 5]).words(), 7);
        assert_eq!(Some(3.0f64).words(), 1);
        assert_eq!(Option::<f64>::None.words(), 0);
    }

    #[test]
    fn matrix_size_is_logical_not_storage() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(Payload::words(&m), 12);
        // A clone shares storage but still costs full wire words: the
        // ledger models the network, not the in-process representation.
        let c = m.clone();
        assert!(c.shares_storage(&m));
        assert_eq!(Payload::words(&c), 12);
    }

    #[test]
    fn sketch_sizes() {
        let cs = CountSketch::new(4, 32, 0);
        assert_eq!(Payload::words(&cs), 128);
        let ams = AmsF2::new(2, 8, 0);
        assert_eq!(Payload::words(&ams), 16);
    }
}
