//! A two-party (Alice/Bob) accounted channel for communication-complexity
//! experiments (§VII's reductions are all two-party).
//!
//! Unlike [`crate::Cluster`], which models the star topology of the upper
//! bounds, this models the classic Yao setting: two parties exchanging
//! messages over one bidirectional link, with bit- rather than word-level
//! accounting (the lower bounds are stated in bits).

/// Which party sent a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Party {
    /// The first party (holds `x`).
    Alice,
    /// The second party (holds `y`).
    Bob,
}

/// An accounted two-party transcript.
#[derive(Debug, Default, Clone)]
pub struct TwoPartyChannel {
    bits_alice_to_bob: u64,
    bits_bob_to_alice: u64,
    messages: u64,
}

impl TwoPartyChannel {
    /// A fresh channel.
    pub fn new() -> Self {
        TwoPartyChannel::default()
    }

    /// Charges a message of `bits` bits from `from`.
    pub fn send(&mut self, from: Party, bits: u64) {
        match from {
            Party::Alice => self.bits_alice_to_bob += bits,
            Party::Bob => self.bits_bob_to_alice += bits,
        }
        self.messages += 1;
    }

    /// Sends one 64-bit word.
    pub fn send_word(&mut self, from: Party) {
        self.send(from, 64);
    }

    /// Sends an index into a universe of size `n` (`⌈log₂ n⌉` bits).
    pub fn send_index(&mut self, from: Party, n: u64) {
        let bits = 64 - n.max(2).saturating_sub(1).leading_zeros() as u64;
        self.send(from, bits);
    }

    /// Total bits exchanged.
    pub fn total_bits(&self) -> u64 {
        self.bits_alice_to_bob + self.bits_bob_to_alice
    }

    /// Number of messages.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Bits sent by one party.
    pub fn bits_from(&self, p: Party) -> u64 {
        match p {
            Party::Alice => self.bits_alice_to_bob,
            Party::Bob => self.bits_bob_to_alice,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_by_direction() {
        let mut ch = TwoPartyChannel::new();
        ch.send(Party::Alice, 10);
        ch.send(Party::Bob, 3);
        ch.send_word(Party::Alice);
        assert_eq!(ch.bits_from(Party::Alice), 74);
        assert_eq!(ch.bits_from(Party::Bob), 3);
        assert_eq!(ch.total_bits(), 77);
        assert_eq!(ch.messages(), 3);
    }

    #[test]
    fn index_cost_is_logarithmic() {
        let mut ch = TwoPartyChannel::new();
        ch.send_index(Party::Alice, 1024);
        assert_eq!(ch.total_bits(), 10);
        let mut ch2 = TwoPartyChannel::new();
        ch2.send_index(Party::Bob, 1 << 20);
        assert_eq!(ch2.total_bits(), 20);
        // Tiny universes still cost at least one bit.
        let mut ch3 = TwoPartyChannel::new();
        ch3.send_index(Party::Alice, 2);
        assert_eq!(ch3.total_bits(), 1);
    }
}
