//! Simulated distributed substrate with exact communication accounting.
//!
//! The paper's model (§I) is a star: `s` servers, each holding a local
//! `n × d` matrix, all communicating with server 1 (the Central Processor).
//! The paper's own evaluation simulates servers with processes and measures
//! *words* of communication, so this crate provides exactly that: a
//! [`Cluster`] owning per-server local state, collective operations
//! (broadcast / gather / aggregate / point query) that are the only way for
//! data to cross server boundaries, and a [`Ledger`] that charges every
//! message its payload size in 8-byte words plus a one-word frame.
//!
//! * [`payload`] — the [`Payload`] trait giving the word size of anything
//!   that crosses the wire (scalars, vectors, sketches, row fragments);
//! * [`ledger`] — the thread-safe cost ledger and per-event transcript;
//! * [`cluster`] — the star-topology cluster and its collectives, with both
//!   a sequential executor and a scoped-thread `par_gather`;
//! * [`collectives`] — the [`Collectives`] trait that makes protocol code
//!   generic over the execution substrate (this crate's sequential
//!   [`Cluster`] or `dlra-runtime`'s threaded message-passing cluster);
//! * [`topology`] — combining-tree routing plans for the reduction
//!   collectives: a typed [`Topology`] (star, or a tree of configurable
//!   fanout) and the deterministic per-round hop/merge schedule derived
//!   solely from the server count, so every topology produces bit-identical
//!   results;
//! * [`wire`] — byte codecs ([`WireEncode`] / [`WireDecode`]) used when a
//!   payload crosses a real socket (`dlra-net`), holding the invariant that
//!   a value's wire body is exactly 8 bytes per [`Payload`] word.

#![forbid(unsafe_code)]
pub mod cluster;
pub mod collectives;
pub mod ledger;
pub mod payload;
pub mod topology;
pub mod two_party;
pub mod wire;

pub use cluster::Cluster;
pub use collectives::Collectives;
pub use ledger::{CommEvent, CostModel, Direction, Ledger, LedgerSnapshot};
pub use payload::Payload;
pub use topology::{Topology, TopologyPlan};
pub use two_party::{Party, TwoPartyChannel};
pub use wire::{decode_value, encode_value, Wire, WireDecode, WireEncode, WireError};
