//! The per-server view of the implicit aggregate vector `a = Σₜ aᵗ`.
//!
//! A [`SampleVector`] exposes a server's local contribution to each
//! coordinate; the sketches in [`crate::bundle`] only ever read it through
//! this trait, so matrix-backed adapters (a flattened `n × d` local matrix
//! with a local entrywise transform) plug in without copying. Coordinate
//! injection (Algorithm 4 / §V-D) appends virtual coordinates past the
//! original dimension; injected values live on the coordinator only, other
//! servers implicitly contribute zero — exactly the paper's "other servers
//! append a consistent number of 0s".

/// A server's local view of one coordinate-indexed vector.
pub trait SampleVector {
    /// Original (pre-injection) dimension `l`.
    fn base_dim(&self) -> u64;

    /// Current dimension `l'` including injected coordinates.
    fn dim(&self) -> u64;

    /// This server's contribution to coordinate `j < dim()`.
    fn value(&self, j: u64) -> f64;

    /// Visits every coordinate with a nonzero local contribution.
    fn for_each_nonzero(&self, f: &mut dyn FnMut(u64, f64));

    /// Appends `values.len()` injected coordinates. On the coordinator the
    /// new coordinates take `values`; on other servers they are zero (the
    /// implementation receives the count via `values.len()` and must extend
    /// its dimension either way).
    fn append_injected(&mut self, values: &[f64], is_coordinator: bool);

    /// Removes all injected coordinates (restores `dim == base_dim`).
    fn clear_injected(&mut self);
}

/// A dense in-memory local vector plus injected tail. The reference
/// implementation of [`SampleVector`], used directly in sampler tests and
/// wrapped by `dlra-core`'s matrix adapters.
#[derive(Debug, Clone)]
pub struct DenseServerVec {
    data: Vec<f64>,
    injected: Vec<f64>,
    injected_len: u64,
}

impl DenseServerVec {
    /// Wraps a local dense vector.
    pub fn new(data: Vec<f64>) -> Self {
        DenseServerVec {
            data,
            injected: Vec::new(),
            injected_len: 0,
        }
    }
}

impl SampleVector for DenseServerVec {
    fn base_dim(&self) -> u64 {
        self.data.len() as u64
    }

    fn dim(&self) -> u64 {
        self.data.len() as u64 + self.injected_len
    }

    fn value(&self, j: u64) -> f64 {
        let l = self.data.len() as u64;
        if j < l {
            self.data[j as usize]
        } else if !self.injected.is_empty() {
            self.injected[(j - l) as usize]
        } else {
            0.0
        }
    }

    fn for_each_nonzero(&self, f: &mut dyn FnMut(u64, f64)) {
        for (j, &x) in self.data.iter().enumerate() {
            if x != 0.0 {
                f(j as u64, x);
            }
        }
        let l = self.data.len() as u64;
        for (j, &x) in self.injected.iter().enumerate() {
            if x != 0.0 {
                f(l + j as u64, x);
            }
        }
    }

    fn append_injected(&mut self, values: &[f64], is_coordinator: bool) {
        if is_coordinator {
            self.injected.extend_from_slice(values);
        }
        self.injected_len += values.len() as u64;
    }

    fn clear_injected(&mut self) {
        self.injected.clear();
        self.injected_len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_access() {
        let v = DenseServerVec::new(vec![1.0, 0.0, -2.0]);
        assert_eq!(v.base_dim(), 3);
        assert_eq!(v.dim(), 3);
        assert_eq!(v.value(0), 1.0);
        assert_eq!(v.value(2), -2.0);
        let mut seen = vec![];
        v.for_each_nonzero(&mut |j, x| seen.push((j, x)));
        assert_eq!(seen, vec![(0, 1.0), (2, -2.0)]);
    }

    #[test]
    fn injection_on_coordinator() {
        let mut v = DenseServerVec::new(vec![1.0]);
        v.append_injected(&[5.0, 6.0], true);
        assert_eq!(v.dim(), 3);
        assert_eq!(v.value(1), 5.0);
        assert_eq!(v.value(2), 6.0);
        let mut seen = vec![];
        v.for_each_nonzero(&mut |j, x| seen.push((j, x)));
        assert_eq!(seen, vec![(0, 1.0), (1, 5.0), (2, 6.0)]);
        v.clear_injected();
        assert_eq!(v.dim(), 1);
    }

    #[test]
    fn injection_on_worker_extends_with_zeros() {
        let mut v = DenseServerVec::new(vec![1.0]);
        v.append_injected(&[5.0, 6.0], false);
        assert_eq!(v.dim(), 3);
        assert_eq!(v.value(1), 0.0);
        assert_eq!(v.value(2), 0.0);
        let mut count = 0;
        v.for_each_nonzero(&mut |_, _| count += 1);
        assert_eq!(count, 1);
    }

    #[test]
    fn repeated_injection_accumulates() {
        let mut v = DenseServerVec::new(vec![]);
        v.append_injected(&[1.0], true);
        v.append_injected(&[2.0, 3.0], true);
        assert_eq!(v.dim(), 3);
        assert_eq!(v.value(2), 3.0);
    }
}
