//! Baseline samplers: the exact-probability oracle (the sampler assumed by
//! Frieze–Kannan–Vempala [11], which the paper points out is *not*
//! implementable cheaply in a distributed setting) and the uniform sampler
//! (sufficient for Gaussian random Fourier features, §VI-A).

use crate::vector::SampleVector;
use crate::zfn::ZFn;
use crate::zsampler::Draw;
use dlra_comm::Collectives;
use dlra_util::Rng;

/// Materializes the exact per-coordinate weights `z(aⱼ)` of the aggregate
/// vector by direct access to all local states.
///
/// This is an **evaluation oracle**: it reads every server's local state
/// without touching the ledger. Centralizing the data for real would cost
/// `Σₜ dim` words — the "ship everything" baseline the benchmark harness
/// accounts analytically.
pub fn exact_weights<L, C>(cluster: &C, zfn: &dyn ZFn) -> Vec<f64>
where
    L: SampleVector,
    C: Collectives<L>,
{
    let dim = cluster.with_local(0, SampleVector::dim) as usize;
    let mut agg = vec![0.0f64; dim];
    for t in 0..cluster.num_servers() {
        cluster.with_local(t, |local| {
            local.for_each_nonzero(&mut |j, x| agg[j as usize] += x);
        });
    }
    agg.iter().map(|&v| zfn.z(v)).collect()
}

/// Exact-probability sampler over precomputed weights (the FKV idealized
/// sampler: reports `Q` with zero error).
#[derive(Debug, Clone)]
pub struct ExactSampler {
    weights: Vec<f64>,
    values: Vec<f64>,
    total: f64,
}

impl ExactSampler {
    /// Builds from the aggregate vector's exact values and a `z` function.
    pub fn from_cluster<L, C>(cluster: &C, zfn: &dyn ZFn) -> Self
    where
        L: SampleVector,
        C: Collectives<L>,
    {
        let dim = cluster.with_local(0, SampleVector::dim) as usize;
        let mut values = vec![0.0f64; dim];
        for t in 0..cluster.num_servers() {
            cluster.with_local(t, |local| {
                local.for_each_nonzero(&mut |j, x| values[j as usize] += x);
            });
        }
        let weights: Vec<f64> = values.iter().map(|&v| zfn.z(v)).collect();
        let total = weights.iter().sum();
        ExactSampler {
            weights,
            values,
            total,
        }
    }

    /// Total mass `Z(a)`.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Exact probability of coordinate `j`.
    pub fn probability(&self, j: u64) -> f64 {
        if self.total > 0.0 {
            self.weights[j as usize] / self.total
        } else {
            0.0
        }
    }

    /// One exact draw; `None` when all weights are zero.
    pub fn draw(&self, rng: &mut Rng) -> Option<Draw> {
        if self.total <= 0.0 {
            return None;
        }
        let j = rng.weighted_index(&self.weights);
        Some(Draw {
            coord: j as u64,
            value: self.values[j],
            q_hat: self.probability(j as u64),
        })
    }

    /// `r` exact draws.
    pub fn draw_many(&self, r: usize, rng: &mut Rng) -> Vec<Draw> {
        (0..r).filter_map(|_| self.draw(rng)).collect()
    }
}

/// Uniform sampler over `[0, n)`: the right tool when all rows have (nearly)
/// equal norm, as with random Fourier features where `E‖Aᵢ‖² = d` for every
/// row (§VI-A). Costs no communication to *sample*; only the subsequent row
/// fetches are charged.
#[derive(Debug, Clone, Copy)]
pub struct UniformSampler {
    /// Number of items sampled over.
    pub n: u64,
}

impl UniformSampler {
    /// One uniform index with its exact probability `1/n`.
    pub fn draw(&self, rng: &mut Rng) -> (u64, f64) {
        (rng.below(self.n), 1.0 / self.n as f64)
    }

    /// `r` uniform indices (with replacement).
    pub fn draw_many(&self, r: usize, rng: &mut Rng) -> Vec<(u64, f64)> {
        (0..r).map(|_| self.draw(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::DenseServerVec;
    use crate::zfn::{PowerAbs, Square};
    use dlra_comm::Cluster;

    fn make_cluster(parts: Vec<Vec<f64>>) -> Cluster<DenseServerVec> {
        Cluster::new(parts.into_iter().map(DenseServerVec::new).collect())
    }

    #[test]
    fn exact_weights_aggregate_servers() {
        let c = make_cluster(vec![vec![1.0, 0.0, 2.0], vec![1.0, 3.0, -2.0]]);
        let w = exact_weights(&c, &Square);
        assert_eq!(w, vec![4.0, 9.0, 0.0]);
    }

    #[test]
    fn exact_weights_respect_zfn() {
        let c = make_cluster(vec![vec![4.0, 16.0]]);
        let w = exact_weights(&c, &PowerAbs::from_gm_p(2.0)); // z = |x|
        assert_eq!(w, vec![4.0, 16.0]);
    }

    #[test]
    fn exact_sampler_distribution() {
        let c = make_cluster(vec![vec![1.0, 2.0, 0.0, 3.0]]);
        let s = ExactSampler::from_cluster(&c, &Square);
        assert_eq!(s.total(), 14.0);
        assert_eq!(s.probability(1), 4.0 / 14.0);
        let mut rng = Rng::new(1);
        let mut counts = [0usize; 4];
        let n = 40_000;
        for d in s.draw_many(n, &mut rng) {
            counts[d.coord as usize] += 1;
        }
        assert_eq!(counts[2], 0);
        let f3 = counts[3] as f64 / n as f64;
        assert!((f3 - 9.0 / 14.0).abs() < 0.02, "f3 {f3}");
        // Reported q_hat is exact.
        let d = s.draw(&mut rng).unwrap();
        assert_eq!(d.q_hat, s.probability(d.coord));
    }

    #[test]
    fn exact_sampler_zero_vector() {
        let c = make_cluster(vec![vec![0.0; 5]]);
        let s = ExactSampler::from_cluster(&c, &Square);
        let mut rng = Rng::new(2);
        assert!(s.draw(&mut rng).is_none());
    }

    #[test]
    fn uniform_sampler_covers_range() {
        let u = UniformSampler { n: 10 };
        let mut rng = Rng::new(3);
        let draws = u.draw_many(5000, &mut rng);
        let mut seen = [false; 10];
        for (j, q) in draws {
            assert!(j < 10);
            assert_eq!(q, 0.1);
            seen[j as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
