//! The paper's distributed sampling machinery (§V, Algorithms 2–4).
//!
//! Given per-server local vectors `aᵗ ∈ ℝˡ` whose (implicit) aggregate is
//! `a = Σₜ aᵗ`, and a function `z(·)` satisfying *property P* (`x²/z(x)`
//! and `z(x)` nondecreasing in `|x|`, `z(0) = 0`), the [`ZSampler`] outputs a
//! coordinate `i` with probability `≈ z(aᵢ)/Z(a)` where `Z(a) = Σᵢ z(aᵢ)`,
//! together with an estimate of `Z(a)` and of the coordinate's sampling
//! probability — which is exactly what Algorithm 1's row sampling needs.
//!
//! Module map (paper → code):
//!
//! | Paper | Module |
//! |---|---|
//! | property-P functions `z` (softmax powers, M-estimator ψ²) | [`zfn`] |
//! | `Z-HeavyHitters` (Alg. 2: bucketed heavy hitters) | [`bundle`] |
//! | `Z-estimator` (Alg. 3: level sets `Sᵢ(a)`, subsample hierarchy, `Ẑ`, `ŝᵢ`) | [`estimator`] |
//! | `Z-sampler` (Alg. 4: coordinate injection + draw) | [`zsampler`] |
//! | uniform / exact-probability samplers (baselines, RFF application) | [`baseline`] |
//!
//! ## Faithfulness vs practicality
//!
//! The paper's constants (`B = 40ε⁻⁴T³ log l`, `⌈4B²⌉` buckets, `W =
//! (5120C²T²ε⁻³ log l)²`…) are astronomically large; its own experiments
//! "adjust parameters … to guarantee the ratio of total communication to the
//! sum of local data sizes is limited". We implement the same structure with
//! the knobs exposed in [`ZSamplerParams`]: per-level grouped heavy-hitter
//! sketches (Alg. 2's `hashₜ` buckets = our groups), a nested subsampling
//! hierarchy driven by one high-independence hash (Alg. 3's `g` and `Sⱼ`),
//! window-gated level-set size estimation (Alg. 3 line 12), and coordinate
//! injection for sparse small classes (Alg. 4 / §V-D). Two deliberate
//! engineering deviations, both documented in `DESIGN.md`:
//!
//! 1. `Ẑ` uses the empirical mean of the *exactly known* recovered values in
//!    each class instead of the class floor `(1+ε)ⁱ` — strictly more accurate
//!    at identical communication (the exact values are already fetched by
//!    Alg. 3 lines 6/11).
//! 2. Repeated draws reuse one prepared estimator pass, replacing the
//!    min-wise hash selection with a uniform draw from the recovered members
//!    of the chosen class (a fresh min-wise hash over a fixed set *is* a
//!    uniform draw). This is what makes `r = Θ(k²/ε²)` samples affordable,
//!    mirroring the batching the paper's experiments must also do.

#![forbid(unsafe_code)]
pub mod baseline;
pub mod bundle;
pub mod estimator;
pub mod params;
pub mod vector;
pub mod zfn;
pub mod zsampler;

pub use baseline::{exact_weights, ExactSampler, UniformSampler};
pub use bundle::SketchBundle;
pub use estimator::{run_z_estimator, ClassEstimate, EstimatorOutput};
pub use params::ZSamplerParams;
pub use vector::{DenseServerVec, SampleVector};
pub use zfn::{check_property_p, FairSq, HuberSq, L1L2Sq, PowerAbs, Square, ZFn};
pub use zsampler::{Draw, PreparedSampler, SamplerStats, SharedPrepared, ZSampler};
