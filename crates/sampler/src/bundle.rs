//! The per-server sketch bundle: Algorithm 2's `Z-HeavyHitters` replicated
//! across Algorithm 3's subsampling levels.
//!
//! Level `0` sketches the full vector; level `j ≥ 1` sketches the
//! restriction to `Sⱼ = {i : g(i) < 2⁻ʲ}` for a shared high-independence
//! hash `g` (so the `Sⱼ` are nested, as in the paper). Within a level, each
//! of `reps` repetitions routes coordinates through a pairwise-independent
//! group hash into `groups` buckets and maintains one
//! [`HeavyHittersSketch`] per bucket — Algorithm 2's `hashₜ : [m] → [⌈4B²⌉]`
//! followed by `HeavyHitters(v(Hₜ,ₑ), B, ·)`. Two coordinates that are both
//! `z`-heavy land in different groups with constant probability per rep;
//! within its group, a `z`-heavy coordinate is `F₂`-heavy by property P, so
//! plain heavy-hitter recovery finds it.
//!
//! The whole bundle is linear, so per-server bundles built from one
//! broadcast seed merge by addition into the bundle of the aggregate vector.

use crate::params::ZSamplerParams;
use crate::vector::SampleVector;
use dlra_comm::wire::{WireDecode, WireEncode, WireError, WireReader, WireWriter};
use dlra_comm::Payload;
use dlra_sketch::{HeavyHittersSketch, KWiseHash};

/// One repetition at one level: group hash + per-group heavy hitters.
#[derive(Debug, Clone)]
struct GroupedHh {
    group_hash: KWiseHash,
    groups: Vec<HeavyHittersSketch>,
}

/// The full multi-level sketch bundle one server ships to the coordinator.
#[derive(Debug, Clone)]
pub struct SketchBundle {
    seed: u64,
    levels: Vec<Vec<GroupedHh>>,
    sub_hash: KWiseHash,
    num_levels: usize,
    max_candidates_per_level: usize,
}

impl SketchBundle {
    /// Builds an empty bundle. Identical `(params, seed, dim)` ⇒ identical
    /// hash functions ⇒ mergeable.
    pub fn new(params: &ZSamplerParams, seed: u64, dim: u64) -> Self {
        let num_levels = params.effective_levels(dim);
        let sub_hash = KWiseHash::from_seed(params.g_independence.max(2), seed ^ 0x5EED_5EED);
        let levels = build_levels(
            seed,
            num_levels,
            params.reps,
            params.groups,
            params.b_threshold,
            params.hh_depth,
            params.hh_width,
        );
        SketchBundle {
            seed,
            levels,
            sub_hash,
            num_levels,
            max_candidates_per_level: params.max_candidates_per_level,
        }
    }

    /// Number of subsampling levels beyond the base.
    pub fn num_levels(&self) -> usize {
        self.num_levels
    }

    /// The deepest level coordinate `j` survives to: `j ∈ Sₗ` for all
    /// `l ≤ level_of(j)` (nested subsampling via the shared hash `g`).
    #[inline]
    pub fn level_of(&self, j: u64) -> usize {
        let u = self.sub_hash.unit(j);
        if u <= 0.0 {
            return self.num_levels;
        }
        let lvl = (-u.log2()).floor();
        (lvl.max(0.0) as usize).min(self.num_levels)
    }

    /// Adds `value` at coordinate `j` into every level it survives to.
    pub fn update(&mut self, j: u64, value: f64) {
        if value == 0.0 {
            return;
        }
        let deepest = self.level_of(j);
        for level in 0..=deepest {
            for rep in self.levels[level].iter_mut() {
                let g = rep.group_hash.bucket(j, rep.groups.len());
                rep.groups[g].update(j, value);
            }
        }
    }

    /// Sketches a server's whole local vector.
    pub fn absorb<V: SampleVector + ?Sized>(&mut self, v: &V) {
        v.for_each_nonzero(&mut |j, x| self.update(j, x));
    }

    /// Merges a bundle built with the same `(params, seed, dim)`.
    pub fn merge(&mut self, other: &SketchBundle) {
        assert_eq!(self.seed, other.seed, "bundle seed mismatch");
        assert_eq!(self.num_levels, other.num_levels, "bundle level mismatch");
        for (la, lb) in self.levels.iter_mut().zip(&other.levels) {
            for (ra, rb) in la.iter_mut().zip(lb) {
                for (ga, gb) in ra.groups.iter_mut().zip(&rb.groups) {
                    ga.merge(gb);
                }
            }
        }
    }

    /// Total sketch size in words (the upstream cost per server).
    pub fn size_words(&self) -> u64 {
        self.levels
            .iter()
            .flatten()
            .flat_map(|r| r.groups.iter())
            .map(HeavyHittersSketch::size_words)
            .sum()
    }

    /// Recovers, for each level, the coordinates reported heavy by any
    /// repetition's group sketch, scanning candidates `0..dim`.
    ///
    /// Returns `recovered[level] = sorted candidate list`. Runs at the
    /// coordinator on the *merged* bundle; it is pure local computation
    /// (the model allows polynomial local work) and costs no communication.
    pub fn recover(&self, dim: u64) -> Vec<Vec<u64>> {
        // Precompute per-group acceptance thresholds: est² ≥ F̂₂ / (2B).
        let thresholds: Vec<Vec<Vec<f64>>> = self
            .levels
            .iter()
            .map(|reps| {
                reps.iter()
                    .map(|r| {
                        r.groups
                            .iter()
                            .map(|g| 0.5 * g.f2_estimate() / g.b())
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let mut scored: Vec<Vec<(f64, u64)>> = vec![Vec::new(); self.num_levels + 1];
        for j in 0..dim {
            let deepest = self.level_of(j);
            for level in 0..=deepest {
                let mut best = 0.0f64;
                let mut hit = false;
                for (rep, thr) in self.levels[level].iter().zip(&thresholds[level]) {
                    let g = rep.group_hash.bucket(j, rep.groups.len());
                    let t = thr[g];
                    if t <= 0.0 {
                        continue;
                    }
                    let est = rep.groups[g].estimate(j);
                    if est * est >= t {
                        hit = true;
                        best = best.max(est.abs());
                    }
                }
                if hit {
                    scored[level].push((best, j));
                }
            }
        }
        // Cap each level to the largest-estimate candidates, bounding the
        // exact-lookup round's communication.
        scored
            .into_iter()
            .map(|mut lvl| {
                if lvl.len() > self.max_candidates_per_level {
                    lvl.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
                    lvl.truncate(self.max_candidates_per_level);
                }
                let mut coords: Vec<u64> = lvl.into_iter().map(|(_, j)| j).collect();
                coords.sort_unstable();
                coords
            })
            .collect()
    }
}

impl Payload for SketchBundle {
    fn words(&self) -> u64 {
        self.size_words()
    }
}

/// The deterministic hash-function scaffolding shared by [`SketchBundle::new`]
/// and the wire decoder. Both must derive group-hash and heavy-hitter seeds
/// by exactly this formula — a decoded bundle that drifted here would merge
/// with mismatched hashes and silently corrupt recovery.
fn build_levels(
    seed: u64,
    num_levels: usize,
    reps: usize,
    groups: usize,
    b_threshold: f64,
    hh_depth: usize,
    hh_width: usize,
) -> Vec<Vec<GroupedHh>> {
    (0..=num_levels)
        .map(|level| {
            (0..reps)
                .map(|rep| {
                    let tag = (level as u64) << 32 | rep as u64;
                    let group_hash =
                        KWiseHash::from_seed(2, seed ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    let groups = (0..groups)
                        .map(|g| {
                            HeavyHittersSketch::with_dims(
                                b_threshold,
                                hh_depth,
                                hh_width,
                                seed ^ (tag << 8 | g as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
                            )
                        })
                        .collect();
                    GroupedHh { group_hash, groups }
                })
                .collect()
        })
        .collect()
}

/// Caps on decoded bundle shape parameters: generous for any real
/// configuration, small enough that a corrupt descriptor cannot demand a
/// pathological allocation.
const MAX_BUNDLE_LEVELS: u64 = 64;
const MAX_BUNDLE_REPS: u64 = 1 << 12;
const MAX_BUNDLE_GROUPS: u64 = 1 << 12;
const MAX_BUNDLE_DIM: u64 = 1 << 20;
const MAX_BUNDLE_INDEP: u64 = 1 << 12;
const MAX_BUNDLE_CANDIDATES: u64 = 1 << 24;

/// Descriptor: construction seed + shape parameters (hash functions are
/// re-derived locally from the seed, as the paper's model reconstructs
/// sketch hashes from a broadcast seed). Body: every heavy-hitter counter
/// table in level/rep/group order — exactly [`SketchBundle::size_words`]
/// words, keeping wire bytes proportional to ledger words.
impl WireEncode for SketchBundle {
    fn encode(&self, w: &mut WireWriter) {
        w.desc_u64(self.seed);
        w.desc_u32(self.num_levels as u32);
        let reps = self.levels.first().map_or(0, Vec::len);
        let (b, depth, width) = self
            .levels
            .first()
            .and_then(|l| l.first())
            .and_then(|r| r.groups.first())
            .map_or((1.0, 1, 1), |hh| {
                (hh.b(), hh.countsketch().depth(), hh.countsketch().width())
            });
        let groups = self
            .levels
            .first()
            .and_then(|l| l.first())
            .map_or(0, |r| r.groups.len());
        w.desc_u32(reps as u32);
        w.desc_u32(groups as u32);
        w.desc_u32(depth as u32);
        w.desc_u32(width as u32);
        w.desc_f64(b);
        w.desc_u32(self.sub_hash.independence() as u32);
        w.desc_u32(self.max_candidates_per_level as u32);
        for level in &self.levels {
            for rep in level {
                for hh in &rep.groups {
                    w.words_f64(hh.countsketch().table());
                }
            }
        }
    }
}

impl WireDecode for SketchBundle {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let seed = r.desc_u64("bundle seed")?;
        let num_levels = u64::from(r.desc_u32("bundle levels")?);
        let reps = u64::from(r.desc_u32("bundle reps")?);
        let groups = u64::from(r.desc_u32("bundle groups")?);
        let depth = u64::from(r.desc_u32("bundle hh depth")?);
        let width = u64::from(r.desc_u32("bundle hh width")?);
        let b = r.desc_f64("bundle threshold")?;
        let indep = u64::from(r.desc_u32("bundle g independence")?);
        let max_candidates = u64::from(r.desc_u32("bundle candidate cap")?);
        if num_levels > MAX_BUNDLE_LEVELS {
            return Err(WireError::Oversized {
                what: "bundle levels",
                len: num_levels,
                max: MAX_BUNDLE_LEVELS,
            });
        }
        if reps == 0 || reps > MAX_BUNDLE_REPS {
            return Err(WireError::Oversized {
                what: "bundle reps",
                len: reps,
                max: MAX_BUNDLE_REPS,
            });
        }
        if groups == 0 || groups > MAX_BUNDLE_GROUPS {
            return Err(WireError::Oversized {
                what: "bundle groups",
                len: groups,
                max: MAX_BUNDLE_GROUPS,
            });
        }
        if depth == 0 || width == 0 || depth > MAX_BUNDLE_DIM || width > MAX_BUNDLE_DIM {
            return Err(WireError::Oversized {
                what: "bundle hh dims",
                len: depth.max(width),
                max: MAX_BUNDLE_DIM,
            });
        }
        if !(2..=MAX_BUNDLE_INDEP).contains(&indep) {
            return Err(WireError::Oversized {
                what: "bundle g independence",
                len: indep,
                max: MAX_BUNDLE_INDEP,
            });
        }
        if max_candidates > MAX_BUNDLE_CANDIDATES {
            return Err(WireError::Oversized {
                what: "bundle candidate cap",
                len: max_candidates,
                max: MAX_BUNDLE_CANDIDATES,
            });
        }
        if !b.is_finite() || b < 1.0 {
            return Err(WireError::BadTag {
                what: "bundle threshold",
                value: b.to_bits(),
            });
        }
        let table_words = depth * width;
        let total_words = (num_levels + 1) * reps * groups * table_words;
        if total_words > r.remaining_body_words() {
            return Err(WireError::Truncated {
                what: "bundle tables",
                needed: (total_words * 8) as usize,
                have: (r.remaining_body_words() * 8) as usize,
            });
        }
        let mut levels = build_levels(
            seed,
            num_levels as usize,
            reps as usize,
            groups as usize,
            b,
            depth as usize,
            width as usize,
        );
        for level in levels.iter_mut() {
            for rep in level.iter_mut() {
                for hh in rep.groups.iter_mut() {
                    let table = r.words_f64(table_words, "bundle table")?;
                    if !hh.load_countsketch_table(&table) {
                        return Err(WireError::BadTag {
                            what: "bundle table",
                            value: table.len() as u64,
                        });
                    }
                }
            }
        }
        let sub_hash = KWiseHash::from_seed(indep as usize, seed ^ 0x5EED_5EED);
        Ok(SketchBundle {
            seed,
            levels,
            sub_hash,
            num_levels: num_levels as usize,
            max_candidates_per_level: max_candidates as usize,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::DenseServerVec;
    use dlra_util::Rng;

    fn small_params() -> ZSamplerParams {
        ZSamplerParams {
            hh_width: 64,
            groups: 4,
            reps: 2,
            b_threshold: 16.0,
            max_levels: 8,
            ..ZSamplerParams::default()
        }
    }

    #[test]
    fn level_of_is_geometric() {
        let p = small_params();
        let b = SketchBundle::new(&p, 42, 1 << 16);
        let n = 100_000u64;
        let mut counts = vec![0usize; b.num_levels() + 1];
        for j in 0..n {
            counts[b.level_of(j)] += 1;
        }
        // P(level ≥ 1) = 1/2, P(level ≥ 2) = 1/4, ...
        let at_least_1: usize = counts[1..].iter().sum();
        let frac = at_least_1 as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "frac {frac}");
        let at_least_3: usize = counts[3..].iter().sum();
        let frac3 = at_least_3 as f64 / n as f64;
        assert!((frac3 - 0.125).abs() < 0.01, "frac3 {frac3}");
    }

    #[test]
    fn update_zero_is_noop() {
        let p = small_params();
        let mut b = SketchBundle::new(&p, 1, 100);
        b.update(5, 0.0);
        assert!(b.recover(100).iter().all(|l| l.is_empty()));
    }

    #[test]
    fn merge_matches_joint() {
        let p = small_params();
        let mut rng = Rng::new(7);
        let dim = 500u64;
        let v1: Vec<f64> = (0..dim).map(|_| rng.gaussian() * 0.1).collect();
        let mut v2: Vec<f64> = (0..dim).map(|_| rng.gaussian() * 0.1).collect();
        v2[123] += 30.0; // heavy only in aggregate
        let mut b1 = SketchBundle::new(&p, 9, dim);
        let mut b2 = SketchBundle::new(&p, 9, dim);
        let mut joint = SketchBundle::new(&p, 9, dim);
        b1.absorb(&DenseServerVec::new(v1.clone()));
        b2.absorb(&DenseServerVec::new(v2.clone()));
        let sum: Vec<f64> = v1.iter().zip(&v2).map(|(a, b)| a + b).collect();
        joint.absorb(&DenseServerVec::new(sum));
        b1.merge(&b2);
        let r_merged = b1.recover(dim);
        let r_joint = joint.recover(dim);
        assert_eq!(r_merged, r_joint);
        assert!(r_merged[0].contains(&123));
    }

    #[test]
    #[should_panic(expected = "seed mismatch")]
    fn merge_rejects_different_seeds() {
        let p = small_params();
        let mut a = SketchBundle::new(&p, 1, 10);
        let b = SketchBundle::new(&p, 2, 10);
        a.merge(&b);
    }

    #[test]
    fn recovers_heavy_at_base_level() {
        let p = small_params();
        let dim = 2000u64;
        let mut rng = Rng::new(11);
        let mut v: Vec<f64> = (0..dim).map(|_| rng.gaussian() * 0.05).collect();
        v[50] = 20.0;
        v[1500] = -25.0;
        let mut b = SketchBundle::new(&p, 21, dim);
        b.absorb(&DenseServerVec::new(v));
        let rec = b.recover(dim);
        assert!(rec[0].contains(&50), "missing 50 at base");
        assert!(rec[0].contains(&1500), "missing 1500 at base");
    }

    #[test]
    fn subsampled_levels_surface_mid_mass_class() {
        // A large class of equal mid-weight coordinates is invisible at the
        // base level (none is 1/B-heavy) but visible at deep levels where
        // few survivors remain.
        let p = small_params();
        let dim = 1 << 14;
        let mut v = vec![0.0f64; dim as usize];
        // 512 coordinates of weight 1 (class), everything else tiny.
        let mut rng = Rng::new(13);
        for x in v.iter_mut() {
            *x = rng.gaussian() * 0.002;
        }
        for c in 0..512u64 {
            v[(c * 31) as usize % dim as usize] = 1.0;
        }
        let mut b = SketchBundle::new(&p, 31, dim);
        b.absorb(&DenseServerVec::new(v.clone()));
        let rec = b.recover(dim);
        // At depth ~7, about 4 of the 512 survive and dominate their groups.
        let deep_hits: usize = (5..=8)
            .map(|lvl| rec[lvl].iter().filter(|&&j| v[j as usize] == 1.0).count())
            .sum();
        assert!(deep_hits > 0, "no class member recovered at deep levels");
    }

    #[test]
    fn wire_roundtrip_preserves_recovery_and_merge() {
        use dlra_comm::wire::{decode_value, encode_value};
        let p = small_params();
        let dim = 800u64;
        let mut rng = Rng::new(17);
        let mut v: Vec<f64> = (0..dim).map(|_| rng.gaussian() * 0.05).collect();
        v[77] = 15.0;
        let mut b = SketchBundle::new(&p, 29, dim);
        b.absorb(&DenseServerVec::new(v));
        let (desc, body) = encode_value(&b);
        assert_eq!(body.len() as u64, 8 * Payload::words(&b));
        let back: SketchBundle = decode_value(&desc, &body).expect("decode");
        assert_eq!(back.recover(dim), b.recover(dim));
        // A decoded bundle merges with a locally built one — hash
        // derivations must agree exactly.
        let mut merged = SketchBundle::new(&p, 29, dim);
        merged.merge(&back);
        assert_eq!(merged.recover(dim), b.recover(dim));
    }

    #[test]
    fn wire_decode_rejects_truncated_tables() {
        use dlra_comm::wire::{decode_value, encode_value, WireError};
        let p = small_params();
        let b = SketchBundle::new(&p, 3, 64);
        let (desc, body) = encode_value(&b);
        let err = decode_value::<SketchBundle>(&desc, &body[..body.len() - 8]).unwrap_err();
        assert!(matches!(err, WireError::Truncated { .. }), "{err:?}");
    }

    #[test]
    fn size_words_matches_structure() {
        let p = small_params();
        let b = SketchBundle::new(&p, 0, 1000);
        let expect = (b.num_levels() as u64 + 1)
            * p.reps as u64
            * p.groups as u64
            * (p.hh_depth * p.hh_width) as u64;
        assert_eq!(b.size_words(), expect);
        assert_eq!(Payload::words(&b), expect);
    }
}
