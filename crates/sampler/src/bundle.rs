//! The per-server sketch bundle: Algorithm 2's `Z-HeavyHitters` replicated
//! across Algorithm 3's subsampling levels.
//!
//! Level `0` sketches the full vector; level `j ≥ 1` sketches the
//! restriction to `Sⱼ = {i : g(i) < 2⁻ʲ}` for a shared high-independence
//! hash `g` (so the `Sⱼ` are nested, as in the paper). Within a level, each
//! of `reps` repetitions routes coordinates through a pairwise-independent
//! group hash into `groups` buckets and maintains one
//! [`HeavyHittersSketch`] per bucket — Algorithm 2's `hashₜ : [m] → [⌈4B²⌉]`
//! followed by `HeavyHitters(v(Hₜ,ₑ), B, ·)`. Two coordinates that are both
//! `z`-heavy land in different groups with constant probability per rep;
//! within its group, a `z`-heavy coordinate is `F₂`-heavy by property P, so
//! plain heavy-hitter recovery finds it.
//!
//! The whole bundle is linear, so per-server bundles built from one
//! broadcast seed merge by addition into the bundle of the aggregate vector.

use crate::params::ZSamplerParams;
use crate::vector::SampleVector;
use dlra_comm::Payload;
use dlra_sketch::{HeavyHittersSketch, KWiseHash};

/// One repetition at one level: group hash + per-group heavy hitters.
#[derive(Debug, Clone)]
struct GroupedHh {
    group_hash: KWiseHash,
    groups: Vec<HeavyHittersSketch>,
}

/// The full multi-level sketch bundle one server ships to the coordinator.
#[derive(Debug, Clone)]
pub struct SketchBundle {
    seed: u64,
    levels: Vec<Vec<GroupedHh>>,
    sub_hash: KWiseHash,
    num_levels: usize,
    max_candidates_per_level: usize,
}

impl SketchBundle {
    /// Builds an empty bundle. Identical `(params, seed, dim)` ⇒ identical
    /// hash functions ⇒ mergeable.
    pub fn new(params: &ZSamplerParams, seed: u64, dim: u64) -> Self {
        let num_levels = params.effective_levels(dim);
        let sub_hash = KWiseHash::from_seed(params.g_independence.max(2), seed ^ 0x5EED_5EED);
        let levels = (0..=num_levels)
            .map(|level| {
                (0..params.reps)
                    .map(|rep| {
                        let tag = (level as u64) << 32 | rep as u64;
                        let group_hash =
                            KWiseHash::from_seed(2, seed ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                        let groups = (0..params.groups)
                            .map(|g| {
                                HeavyHittersSketch::with_dims(
                                    params.b_threshold,
                                    params.hh_depth,
                                    params.hh_width,
                                    seed ^ (tag << 8 | g as u64)
                                        .wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
                                )
                            })
                            .collect();
                        GroupedHh { group_hash, groups }
                    })
                    .collect()
            })
            .collect();
        SketchBundle {
            seed,
            levels,
            sub_hash,
            num_levels,
            max_candidates_per_level: params.max_candidates_per_level,
        }
    }

    /// Number of subsampling levels beyond the base.
    pub fn num_levels(&self) -> usize {
        self.num_levels
    }

    /// The deepest level coordinate `j` survives to: `j ∈ Sₗ` for all
    /// `l ≤ level_of(j)` (nested subsampling via the shared hash `g`).
    #[inline]
    pub fn level_of(&self, j: u64) -> usize {
        let u = self.sub_hash.unit(j);
        if u <= 0.0 {
            return self.num_levels;
        }
        let lvl = (-u.log2()).floor();
        (lvl.max(0.0) as usize).min(self.num_levels)
    }

    /// Adds `value` at coordinate `j` into every level it survives to.
    pub fn update(&mut self, j: u64, value: f64) {
        if value == 0.0 {
            return;
        }
        let deepest = self.level_of(j);
        for level in 0..=deepest {
            for rep in self.levels[level].iter_mut() {
                let g = rep.group_hash.bucket(j, rep.groups.len());
                rep.groups[g].update(j, value);
            }
        }
    }

    /// Sketches a server's whole local vector.
    pub fn absorb<V: SampleVector + ?Sized>(&mut self, v: &V) {
        v.for_each_nonzero(&mut |j, x| self.update(j, x));
    }

    /// Merges a bundle built with the same `(params, seed, dim)`.
    pub fn merge(&mut self, other: &SketchBundle) {
        assert_eq!(self.seed, other.seed, "bundle seed mismatch");
        assert_eq!(self.num_levels, other.num_levels, "bundle level mismatch");
        for (la, lb) in self.levels.iter_mut().zip(&other.levels) {
            for (ra, rb) in la.iter_mut().zip(lb) {
                for (ga, gb) in ra.groups.iter_mut().zip(&rb.groups) {
                    ga.merge(gb);
                }
            }
        }
    }

    /// Total sketch size in words (the upstream cost per server).
    pub fn size_words(&self) -> u64 {
        self.levels
            .iter()
            .flatten()
            .flat_map(|r| r.groups.iter())
            .map(HeavyHittersSketch::size_words)
            .sum()
    }

    /// Recovers, for each level, the coordinates reported heavy by any
    /// repetition's group sketch, scanning candidates `0..dim`.
    ///
    /// Returns `recovered[level] = sorted candidate list`. Runs at the
    /// coordinator on the *merged* bundle; it is pure local computation
    /// (the model allows polynomial local work) and costs no communication.
    pub fn recover(&self, dim: u64) -> Vec<Vec<u64>> {
        // Precompute per-group acceptance thresholds: est² ≥ F̂₂ / (2B).
        let thresholds: Vec<Vec<Vec<f64>>> = self
            .levels
            .iter()
            .map(|reps| {
                reps.iter()
                    .map(|r| {
                        r.groups
                            .iter()
                            .map(|g| 0.5 * g.f2_estimate() / g.b())
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let mut scored: Vec<Vec<(f64, u64)>> = vec![Vec::new(); self.num_levels + 1];
        for j in 0..dim {
            let deepest = self.level_of(j);
            for level in 0..=deepest {
                let mut best = 0.0f64;
                let mut hit = false;
                for (rep, thr) in self.levels[level].iter().zip(&thresholds[level]) {
                    let g = rep.group_hash.bucket(j, rep.groups.len());
                    let t = thr[g];
                    if t <= 0.0 {
                        continue;
                    }
                    let est = rep.groups[g].estimate(j);
                    if est * est >= t {
                        hit = true;
                        best = best.max(est.abs());
                    }
                }
                if hit {
                    scored[level].push((best, j));
                }
            }
        }
        // Cap each level to the largest-estimate candidates, bounding the
        // exact-lookup round's communication.
        scored
            .into_iter()
            .map(|mut lvl| {
                if lvl.len() > self.max_candidates_per_level {
                    lvl.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
                    lvl.truncate(self.max_candidates_per_level);
                }
                let mut coords: Vec<u64> = lvl.into_iter().map(|(_, j)| j).collect();
                coords.sort_unstable();
                coords
            })
            .collect()
    }
}

impl Payload for SketchBundle {
    fn words(&self) -> u64 {
        self.size_words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::DenseServerVec;
    use dlra_util::Rng;

    fn small_params() -> ZSamplerParams {
        ZSamplerParams {
            hh_width: 64,
            groups: 4,
            reps: 2,
            b_threshold: 16.0,
            max_levels: 8,
            ..ZSamplerParams::default()
        }
    }

    #[test]
    fn level_of_is_geometric() {
        let p = small_params();
        let b = SketchBundle::new(&p, 42, 1 << 16);
        let n = 100_000u64;
        let mut counts = vec![0usize; b.num_levels() + 1];
        for j in 0..n {
            counts[b.level_of(j)] += 1;
        }
        // P(level ≥ 1) = 1/2, P(level ≥ 2) = 1/4, ...
        let at_least_1: usize = counts[1..].iter().sum();
        let frac = at_least_1 as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "frac {frac}");
        let at_least_3: usize = counts[3..].iter().sum();
        let frac3 = at_least_3 as f64 / n as f64;
        assert!((frac3 - 0.125).abs() < 0.01, "frac3 {frac3}");
    }

    #[test]
    fn update_zero_is_noop() {
        let p = small_params();
        let mut b = SketchBundle::new(&p, 1, 100);
        b.update(5, 0.0);
        assert!(b.recover(100).iter().all(|l| l.is_empty()));
    }

    #[test]
    fn merge_matches_joint() {
        let p = small_params();
        let mut rng = Rng::new(7);
        let dim = 500u64;
        let v1: Vec<f64> = (0..dim).map(|_| rng.gaussian() * 0.1).collect();
        let mut v2: Vec<f64> = (0..dim).map(|_| rng.gaussian() * 0.1).collect();
        v2[123] += 30.0; // heavy only in aggregate
        let mut b1 = SketchBundle::new(&p, 9, dim);
        let mut b2 = SketchBundle::new(&p, 9, dim);
        let mut joint = SketchBundle::new(&p, 9, dim);
        b1.absorb(&DenseServerVec::new(v1.clone()));
        b2.absorb(&DenseServerVec::new(v2.clone()));
        let sum: Vec<f64> = v1.iter().zip(&v2).map(|(a, b)| a + b).collect();
        joint.absorb(&DenseServerVec::new(sum));
        b1.merge(&b2);
        let r_merged = b1.recover(dim);
        let r_joint = joint.recover(dim);
        assert_eq!(r_merged, r_joint);
        assert!(r_merged[0].contains(&123));
    }

    #[test]
    #[should_panic(expected = "seed mismatch")]
    fn merge_rejects_different_seeds() {
        let p = small_params();
        let mut a = SketchBundle::new(&p, 1, 10);
        let b = SketchBundle::new(&p, 2, 10);
        a.merge(&b);
    }

    #[test]
    fn recovers_heavy_at_base_level() {
        let p = small_params();
        let dim = 2000u64;
        let mut rng = Rng::new(11);
        let mut v: Vec<f64> = (0..dim).map(|_| rng.gaussian() * 0.05).collect();
        v[50] = 20.0;
        v[1500] = -25.0;
        let mut b = SketchBundle::new(&p, 21, dim);
        b.absorb(&DenseServerVec::new(v));
        let rec = b.recover(dim);
        assert!(rec[0].contains(&50), "missing 50 at base");
        assert!(rec[0].contains(&1500), "missing 1500 at base");
    }

    #[test]
    fn subsampled_levels_surface_mid_mass_class() {
        // A large class of equal mid-weight coordinates is invisible at the
        // base level (none is 1/B-heavy) but visible at deep levels where
        // few survivors remain.
        let p = small_params();
        let dim = 1 << 14;
        let mut v = vec![0.0f64; dim as usize];
        // 512 coordinates of weight 1 (class), everything else tiny.
        let mut rng = Rng::new(13);
        for x in v.iter_mut() {
            *x = rng.gaussian() * 0.002;
        }
        for c in 0..512u64 {
            v[(c * 31) as usize % dim as usize] = 1.0;
        }
        let mut b = SketchBundle::new(&p, 31, dim);
        b.absorb(&DenseServerVec::new(v.clone()));
        let rec = b.recover(dim);
        // At depth ~7, about 4 of the 512 survive and dominate their groups.
        let deep_hits: usize = (5..=8)
            .map(|lvl| rec[lvl].iter().filter(|&&j| v[j as usize] == 1.0).count())
            .sum();
        assert!(deep_hits > 0, "no class member recovered at deep levels");
    }

    #[test]
    fn size_words_matches_structure() {
        let p = small_params();
        let b = SketchBundle::new(&p, 0, 1000);
        let expect = (b.num_levels() as u64 + 1)
            * p.reps as u64
            * p.groups as u64
            * (p.hh_depth * p.hh_width) as u64;
        assert_eq!(b.size_words(), expect);
        assert_eq!(Payload::words(&b), expect);
    }
}
