//! The distributed `Z-estimator` (Algorithm 3).
//!
//! One run consists of two accounted communication rounds, exactly as in the
//! paper ("Algorithm 3 can be implemented with two rounds"): the servers
//! first ship their (seeded) sketch bundles which the coordinator merges and
//! from which it recovers per-level candidate lists (`D`, `Dⱼ`); the
//! coordinator then asks every server for its local contribution to each
//! candidate (`server 1 communicates with other servers to compute a_p`),
//! sums them to *exact* aggregate values, and builds:
//!
//! * level-set size estimates `ŝᵢ` — full counts for classes whose members
//!   are individually heavy (line 6), and `2ʲ·|Sᵢ(a) ∩ Dⱼ|` for levels
//!   whose recovered count falls in the acceptance window (line 12);
//! * `Ẑ = Σᵢ ŝᵢ·repᵢ` (line 14 — we use the mean recovered `z`-value per
//!   class as `repᵢ` instead of the floor `(1+ε)ⁱ`; the exact values are
//!   already in hand, so this costs nothing and is strictly more accurate).

use crate::bundle::SketchBundle;
use crate::params::ZSamplerParams;
use crate::vector::SampleVector;
use crate::zfn::ZFn;
use dlra_comm::Collectives;
use std::collections::BTreeMap;

/// Per-class output of the estimator.
#[derive(Debug, Clone)]
pub struct ClassEstimate {
    /// Estimated class size `ŝᵢ ≈ |Sᵢ(a)|`.
    pub s_hat: f64,
    /// Representative `z`-value (mean of recovered members' exact `z`).
    pub rep_value: f64,
    /// Recovered members with their exact aggregate values `a_j`.
    pub members: Vec<(u64, f64)>,
}

/// Output of one Z-estimator run.
#[derive(Debug, Clone)]
pub struct EstimatorOutput {
    /// `Ẑ ≈ Z(a) = Σⱼ z(aⱼ)`.
    pub z_hat: f64,
    /// Per-class estimates keyed by level-set index `i`
    /// (`z ∈ [(1+ε)ⁱ, (1+ε)^{i+1})`).
    pub classes: BTreeMap<i32, ClassEstimate>,
    /// Dimension of the (possibly injection-extended) vector examined.
    pub dim: u64,
}

impl EstimatorOutput {
    /// The level-set index of a `z`-value under class width `1 + eps`.
    pub fn class_of(zv: f64, eps: f64) -> Option<i32> {
        if zv <= 0.0 || !zv.is_finite() {
            return None;
        }
        Some((zv.ln() / (1.0 + eps).ln()).floor() as i32)
    }

    /// Total number of recovered coordinates across classes.
    pub fn recovered_count(&self) -> usize {
        self.classes.values().map(|c| c.members.len()).sum()
    }
}

/// Runs Algorithm 3 on the cluster's current local vectors.
///
/// All randomness derives from `seed`, which the coordinator broadcasts
/// (one word) so every server builds an identical sketch structure.
pub fn run_z_estimator<L, C>(
    cluster: &mut C,
    zfn: &dyn ZFn,
    params: &ZSamplerParams,
    seed: u64,
) -> EstimatorOutput
where
    L: SampleVector,
    C: Collectives<L>,
{
    let dim = cluster.with_local(0, SampleVector::dim);
    debug_assert!(
        (0..cluster.num_servers()).all(|t| cluster.with_local(t, SampleVector::dim) == dim),
        "all servers must agree on the vector dimension"
    );
    if dim == 0 {
        return EstimatorOutput {
            z_hat: 0.0,
            classes: BTreeMap::new(),
            dim,
        };
    }

    // Round 1a: broadcast the seed (the whole hash structure in one word).
    cluster.broadcast(&seed, "zest.seed", |_, _, _| {});

    // Round 1b: every server sketches its local vector; the bundles combine
    // up the configured topology (sketches are linear, and the combining
    // order is fixed by the server count, so any routing is bit-identical).
    // The sketch parameters travel by value into the per-server closure so
    // it can run on worker threads.
    let worker_params = params.clone();
    let merged = cluster.aggregate_topo(
        "zest.sketch",
        move |_t, local| {
            let mut b = SketchBundle::new(&worker_params, seed, dim);
            b.absorb(local);
            b
        },
        |acc, b| acc.merge(&b),
    );

    // Local recovery at the coordinator (no communication).
    let per_level = merged.recover(dim);
    let mut candidates: Vec<u64> = per_level.iter().flatten().copied().collect();
    candidates.sort_unstable();
    candidates.dedup();

    if candidates.is_empty() {
        return EstimatorOutput {
            z_hat: 0.0,
            classes: BTreeMap::new(),
            dim,
        };
    }

    // Round 2: exact lookups of every candidate's aggregate value.
    let exact = lookup_exact(cluster, &candidates);

    // Classify candidates.
    let eps = params.eps_class;
    let class_of_coord: BTreeMap<u64, i32> = candidates
        .iter()
        .zip(&exact)
        .filter_map(|(&j, &v)| EstimatorOutput::class_of(zfn.z(v), eps).map(|c| (j, c)))
        .collect();
    let value_of: BTreeMap<u64, f64> = candidates.iter().copied().zip(exact).collect();

    // Per-class members (all levels, deduplicated).
    let mut classes: BTreeMap<i32, ClassEstimate> = BTreeMap::new();
    for (&j, &c) in &class_of_coord {
        classes
            .entry(c)
            .or_insert_with(|| ClassEstimate {
                s_hat: 0.0,
                rep_value: 0.0,
                members: Vec::new(),
            })
            .members
            .push((j, value_of[&j]));
    }

    // Size estimates: start from the recovered member count (a lower bound,
    // exact when the class is individually heavy — Alg. 3 line 6), then let
    // windowed subsample counts scale it up (line 12).
    for (level, recs) in per_level.iter().enumerate().skip(1) {
        let mut counts: BTreeMap<i32, usize> = BTreeMap::new();
        for j in recs {
            if let Some(&c) = class_of_coord.get(j) {
                *counts.entry(c).or_default() += 1;
            }
        }
        let scale = (1u64 << level) as f64;
        for (c, n) in counts {
            if n >= params.window_lo && n < params.window_hi {
                let e = classes.get_mut(&c).expect("class exists");
                e.s_hat = e.s_hat.max(scale * n as f64);
            }
        }
    }
    let mut z_hat = 0.0;
    for est in classes.values_mut() {
        est.s_hat = est.s_hat.max(est.members.len() as f64);
        let zsum: f64 = est.members.iter().map(|&(_, v)| zfn.z(v)).sum();
        est.rep_value = zsum / est.members.len() as f64;
        z_hat += est.s_hat * est.rep_value;
    }

    EstimatorOutput {
        z_hat,
        classes,
        dim,
    }
}

/// Coordinator asks every server for its local contribution to each listed
/// coordinate and sums the replies (Algorithm 3 lines 6 and 11). The
/// per-server contribution vectors combine entrywise up the configured
/// topology, so under a tree only partial sums travel toward the root.
pub fn lookup_exact<L, C>(cluster: &mut C, coords: &[u64]) -> Vec<f64>
where
    L: SampleVector,
    C: Collectives<L>,
{
    let request: Vec<u64> = coords.to_vec();
    cluster.query_aggregate(
        &request,
        "zest.lookup",
        |_t, local, req: &Vec<u64>| req.iter().map(|&j| local.value(j)).collect::<Vec<f64>>(),
        |acc, reply| {
            for (a, v) in acc.iter_mut().zip(reply) {
                *a += v;
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::DenseServerVec;
    use crate::zfn::{PowerAbs, Square};
    use dlra_comm::Cluster;
    use dlra_util::Rng;

    fn make_cluster(parts: Vec<Vec<f64>>) -> Cluster<DenseServerVec> {
        Cluster::new(parts.into_iter().map(DenseServerVec::new).collect())
    }

    fn test_params() -> ZSamplerParams {
        ZSamplerParams {
            hh_width: 128,
            groups: 4,
            reps: 2,
            b_threshold: 16.0,
            ..ZSamplerParams::default()
        }
    }

    #[test]
    fn class_of_boundaries() {
        let eps = 0.5;
        // z = 1.0 → class 0; z = 1.5 → class 1; z = 2.25 → class 2.
        assert_eq!(EstimatorOutput::class_of(1.0, eps), Some(0));
        assert_eq!(EstimatorOutput::class_of(1.6, eps), Some(1));
        assert_eq!(EstimatorOutput::class_of(0.9, eps), Some(-1));
        assert_eq!(EstimatorOutput::class_of(0.0, eps), None);
        assert_eq!(EstimatorOutput::class_of(-3.0, eps), None);
    }

    #[test]
    fn zero_vector_gives_zero_estimate() {
        let mut c = make_cluster(vec![vec![0.0; 100]; 3]);
        let out = run_z_estimator(&mut c, &Square, &test_params(), 1);
        assert_eq!(out.z_hat, 0.0);
        assert!(out.classes.is_empty());
    }

    #[test]
    fn lookup_exact_sums_across_servers() {
        let mut c = make_cluster(vec![vec![1.0, 2.0, 3.0], vec![10.0, 20.0, 30.0]]);
        let vals = lookup_exact(&mut c, &[0, 2]);
        assert_eq!(vals, vec![11.0, 33.0]);
    }

    #[test]
    fn few_heavy_coordinates_estimated_exactly() {
        // A vector with a handful of big coordinates and silence elsewhere:
        // every coordinate is heavy, recovery is exhaustive, Ẑ is exact.
        let dim = 4096usize;
        let mut v1 = vec![0.0f64; dim];
        let mut v2 = vec![0.0f64; dim];
        v1[7] = 3.0;
        v2[7] = 2.0; // aggregate 5 → z = 25
        v1[100] = -4.0; // z = 16
        v2[3000] = 6.0; // z = 36
        let mut c = make_cluster(vec![v1, v2]);
        let out = run_z_estimator(&mut c, &Square, &test_params(), 3);
        let truth = 25.0 + 16.0 + 36.0;
        assert!(
            (out.z_hat - truth).abs() < 1e-6,
            "z_hat {} truth {truth}",
            out.z_hat
        );
        assert_eq!(out.recovered_count(), 3);
        // Exact member values.
        let all: Vec<(u64, f64)> = out
            .classes
            .values()
            .flat_map(|e| e.members.iter().copied())
            .collect();
        assert!(all.contains(&(7, 5.0)));
        assert!(all.contains(&(100, -4.0)));
        assert!(all.contains(&(3000, 6.0)));
    }

    #[test]
    fn bulk_class_estimated_within_factor() {
        // 1024 coordinates of weight ~1 in a dim-16384 vector: the class size
        // must be estimated within a reasonable factor via subsampling.
        let dim = 1 << 14;
        let mut rng = Rng::new(5);
        let mut v = vec![0.0f64; dim];
        let mut planted = 0usize;
        while planted < 1024 {
            let j = rng.index(dim);
            if v[j] == 0.0 {
                v[j] = 1.0;
                planted += 1;
            }
        }
        let mut c = make_cluster(vec![v]);
        let mut p = test_params();
        p.hh_width = 256;
        let out = run_z_estimator(&mut c, &Square, &p, 17);
        let truth = 1024.0;
        assert!(
            out.z_hat > truth / 4.0 && out.z_hat < truth * 4.0,
            "z_hat {} truth {truth}",
            out.z_hat
        );
    }

    #[test]
    fn mixed_scales_with_power_z() {
        // z = |x|^{2/p} with p = 2 (square-root pooling): heavy + bulk.
        let dim = 8192usize;
        let mut rng = Rng::new(9);
        let mut v = vec![0.0f64; dim];
        for x in v.iter_mut() {
            if rng.bernoulli(0.05) {
                *x = rng.range_f64(0.5, 1.5);
            }
        }
        v[11] = 5000.0;
        let z = PowerAbs::from_gm_p(2.0);
        let truth: f64 = v.iter().map(|&x| z.z(x)).sum();
        let mut c = make_cluster(vec![v]);
        let mut p = test_params();
        p.hh_width = 256;
        let out = run_z_estimator(&mut c, &z, &p, 23);
        assert!(
            out.z_hat > truth / 4.0 && out.z_hat < truth * 4.0,
            "z_hat {} truth {truth}",
            out.z_hat
        );
        // The single huge coordinate must be recovered with its exact value.
        let found = out
            .classes
            .values()
            .flat_map(|e| &e.members)
            .any(|&(j, val)| j == 11 && (val - 5000.0).abs() < 1e-9);
        assert!(found, "heavy coordinate not recovered exactly");
    }

    #[test]
    fn two_rounds_of_communication() {
        let mut c = make_cluster(vec![vec![1.0; 256]; 3]);
        run_z_estimator(&mut c, &Square, &test_params(), 2);
        // seed broadcast + sketch gather + lookup round = 3 accounted rounds.
        assert_eq!(c.comm().rounds, 3);
        assert!(c.comm().upstream_words > 0);
        assert!(c.comm().downstream_words > 0);
    }
}
