//! Tuning knobs for the Z-estimator / Z-sampler.
//!
//! [`ZSamplerParams::practical`] is the configuration the experiments use:
//! sketch sizes derived from a per-server word budget, matching how the
//! paper's own evaluation "adjusts parameters to guarantee the ratio of the
//! amount of total communication to the sum of local data sizes is limited".
//! [`ZSamplerParams::theory`] reproduces the paper's asymptotic scalings
//! (with hard caps so it remains runnable) for side-by-side comparison in
//! the ablation benches.

/// Parameters for Algorithms 2–4.
///
/// `PartialEq` compares every knob exactly (query planners key prepared
/// samplers on it: two parameterizations may share a preparation only when
/// they are identical).
#[derive(Debug, Clone, PartialEq)]
pub struct ZSamplerParams {
    /// Level-set width: class `i` holds coordinates with
    /// `z(a_j) ∈ [(1+ε)ⁱ, (1+ε)^{i+1})` (the paper's ε).
    pub eps_class: f64,
    /// CountSketch rows per heavy-hitter group.
    pub hh_depth: usize,
    /// CountSketch buckets per heavy-hitter group.
    pub hh_width: usize,
    /// Groups per repetition (Algorithm 2's `⌈4B²⌉` hash buckets; heavy
    /// coordinates must separate into distinct groups).
    pub groups: usize,
    /// Independent repetitions per level (Algorithm 2's `⌈20 log(1/δ)⌉`).
    pub reps: usize,
    /// Heaviness threshold `B`: within a group, report `j` when
    /// `v̂_j² ≥ F̂₂(group)/B` (recovery uses a ×½ slack, see
    /// `HeavyHittersSketch::recover`).
    pub b_threshold: f64,
    /// Subsampling levels beyond the base level; level `j ≥ 1` keeps a
    /// coordinate with probability `2⁻ʲ` (Algorithm 3's `Sⱼ`). `0` means
    /// "choose from the dimension at run time".
    pub max_levels: usize,
    /// Window `[window_lo, window_hi)` on the per-level recovered count for
    /// accepting `ŝᵢ = 2ʲ·|Sᵢ ∩ Dⱼ|` (Algorithm 3 line 12's
    /// `[4C²ε⁻² log l, 16C²ε⁻² log l)`).
    pub window_lo: usize,
    /// Upper end of the acceptance window (exclusive).
    pub window_hi: usize,
    /// Cap on injected coordinates per growing class (keeps Algorithm 4's
    /// injection `⌈εẐ/(5T(1+ε)ⁱ)⌉` finite at practical scale).
    pub max_inject_per_class: usize,
    /// Independence of the subsampling hash `g` (paper: `O(C log(ε⁻¹ l))`).
    pub g_independence: usize,
    /// Retry budget when a draw lands on an injected coordinate
    /// (paper: repeat `O(C log l)` times).
    pub max_draw_tries: usize,
    /// Cap on recovered candidates per level (bounds the exact-lookup
    /// round's cost: the coordinator keeps only the largest-estimate
    /// candidates, which are the ones heavy enough to matter).
    pub max_candidates_per_level: usize,
}

impl Default for ZSamplerParams {
    fn default() -> Self {
        ZSamplerParams {
            eps_class: 0.35,
            hh_depth: 4,
            hh_width: 128,
            groups: 4,
            reps: 2,
            b_threshold: 24.0,
            max_levels: 0,
            window_lo: 3,
            window_hi: 96,
            max_inject_per_class: 64,
            g_independence: 16,
            max_draw_tries: 64,
            max_candidates_per_level: 512,
        }
    }
}

impl ZSamplerParams {
    /// Derives sketch sizes from a per-server, per-estimator-pass word
    /// budget for a vector of dimension `l`. This is the knob the
    /// figure-reproduction harnesses sweep to hit target communication
    /// ratios: when the budget is tight, repetitions / groups / depth are
    /// reduced before the per-group width (trading failure probability for
    /// wire cost, exactly the adjustment the paper's experiments describe).
    pub fn practical(l: u64, words_per_server_per_pass: u64) -> Self {
        let mut p = ZSamplerParams::default();
        let levels = Self::levels_for(l);
        p.max_levels = levels;
        // Total words ≈ (levels + 1) · reps · groups · depth · width.
        let per_level = (words_per_server_per_pass / (levels as u64 + 1)).max(16);
        // Quality ladder: prefer more repetitions/groups while the width
        // stays useful (≥ 24 buckets per group).
        let ladder: [(usize, usize, usize); 5] =
            [(2, 4, 4), (2, 4, 3), (2, 2, 3), (1, 2, 3), (1, 2, 2)];
        let mut chosen = ladder[ladder.len() - 1];
        for &(reps, groups, depth) in &ladder {
            let width = per_level / (reps * groups * depth) as u64;
            if width >= 24 {
                chosen = (reps, groups, depth);
                break;
            }
        }
        let (reps, groups, depth) = chosen;
        p.reps = reps;
        p.groups = groups;
        p.hh_depth = depth;
        p.hh_width = (per_level / (reps * groups * depth) as u64).clamp(8, 4096) as usize;
        p.b_threshold = (p.hh_width as f64 / 4.0).clamp(4.0, 64.0);
        // Lookups cost ~2·s words per candidate; keep them near the sketch
        // budget.
        p.max_candidates_per_level =
            ((words_per_server_per_pass / (4 * (levels as u64 + 1))).clamp(32, 1024)) as usize;
        p
    }

    /// The paper's asymptotic parameterization for accuracy `eps` on
    /// dimension `l` with failure probability `delta`, capped to stay
    /// runnable (documented deviation — the uncapped constants exceed any
    /// physical memory for `l` beyond a few hundred).
    pub fn theory(l: u64, eps: f64, delta: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps in (0,1)");
        let lf = (l.max(2)) as f64;
        let t = (lf.ln() / eps).ceil(); // T = Θ(log(l)/ε)
        let b = 40.0 * eps.powi(-4) * t.powi(3) * lf.ln(); // B = 40ε⁻⁴T³log l
        let groups = (4.0 * b * b).min(64.0) as usize; // ⌈4B²⌉, capped
        let reps = ((20.0 * (1.0 / delta).ln()).ceil() as usize).clamp(2, 8);
        ZSamplerParams {
            eps_class: eps,
            hh_depth: 5,
            hh_width: (b.min(2048.0) as usize).max(32),
            groups: groups.max(4),
            reps,
            b_threshold: b.min(256.0),
            max_levels: Self::levels_for(l),
            window_lo: ((4.0 * lf.ln() / (eps * eps)).min(8.0)) as usize,
            window_hi: ((16.0 * lf.ln() / (eps * eps)).min(512.0)) as usize,
            max_inject_per_class: 256,
            g_independence: ((20.0 * (lf / eps).ln()).min(32.0)) as usize,
            max_draw_tries: (lf.ln().ceil() as usize * 4).max(16),
            max_candidates_per_level: 4096,
        }
    }

    /// Number of subsampling levels appropriate for dimension `l`
    /// (`⌈log₂ l⌉`, the depth at which the expected survivor count is ~1).
    pub fn levels_for(l: u64) -> usize {
        (64 - l.max(2).leading_zeros()) as usize
    }

    /// Levels actually used for a vector of dimension `l`.
    pub fn effective_levels(&self, l: u64) -> usize {
        if self.max_levels == 0 {
            Self::levels_for(l)
        } else {
            self.max_levels
        }
    }

    /// Per-server sketch words for one estimator pass on dimension `l`
    /// (excluding exact-value queries, which depend on recovery counts).
    pub fn sketch_words(&self, l: u64) -> u64 {
        let levels = self.effective_levels(l) as u64 + 1;
        levels * self.reps as u64 * self.groups as u64 * (self.hh_depth * self.hh_width) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let p = ZSamplerParams::default();
        assert!(p.eps_class > 0.0 && p.eps_class < 1.0);
        assert!(p.window_lo < p.window_hi);
        assert!(p.hh_width >= 16);
    }

    #[test]
    fn practical_respects_budget_roughly() {
        let l = 100_000;
        for &budget in &[5_000u64, 20_000, 80_000] {
            let p = ZSamplerParams::practical(l, budget);
            let words = p.sketch_words(l);
            // Within a small factor of the budget (floors/caps may push up
            // tiny budgets).
            assert!(words <= budget * 3 + 50_000, "budget {budget} gave {words}");
        }
    }

    #[test]
    fn practical_scales_width_with_budget() {
        let l = 50_000;
        let small = ZSamplerParams::practical(l, 2_000);
        let big = ZSamplerParams::practical(l, 200_000);
        assert!(big.hh_width > small.hh_width);
    }

    #[test]
    fn levels_for_dimension() {
        assert_eq!(ZSamplerParams::levels_for(2), 2);
        assert_eq!(ZSamplerParams::levels_for(1024), 11);
        // Effective levels override.
        let mut p = ZSamplerParams {
            max_levels: 5,
            ..ZSamplerParams::default()
        };
        assert_eq!(p.effective_levels(1024), 5);
        p.max_levels = 0;
        assert_eq!(p.effective_levels(1024), 11);
    }

    #[test]
    fn theory_params_capped_but_larger() {
        let t = ZSamplerParams::theory(10_000, 0.5, 0.1);
        let d = ZSamplerParams::default();
        assert!(t.groups >= d.groups);
        assert!(t.b_threshold >= d.b_threshold);
        assert!(t.g_independence >= 8);
    }

    #[test]
    #[should_panic(expected = "eps in (0,1)")]
    fn theory_rejects_bad_eps() {
        ZSamplerParams::theory(100, 1.5, 0.1);
    }
}
