//! Property-P functions `z(·)` (§V) and the paper's application instances.
//!
//! Property P: for all `x₁, x₂` with `|x₁| ≥ |x₂|`,
//! `x₁²/z(x₁) ≥ x₂²/z(x₂)` and `z(x₁) ≥ z(x₂)`, with `z(0) = 0` — i.e.
//! `z` is even, nondecreasing in `|x|`, and grows at most quadratically.
//! Algorithm 1 needs `z` with `z(x)/c ≤ f(x)² ≤ c·z(x)` for the entrywise
//! `f`; each application below pairs `z = f²` directly.

/// A function satisfying property P, together with the partial inverse the
/// coordinate-injection step needs.
pub trait ZFn: Send + Sync {
    /// Evaluates `z(x) ≥ 0`.
    fn z(&self, x: f64) -> f64;

    /// The smallest `x ≥ 0` with `z(x) ≥ y`, or `None` if `y > sup z`.
    ///
    /// The paper (§V-D): "if `z⁻¹((1+ε)ⁱ)` does not exist, `Sᵢ(a)` must be
    /// empty, we can ignore this class" — saturating ψ-functions (Huber,
    /// L1−L2, Fair squared) have bounded `z`, so high classes are skipped.
    fn z_inv(&self, y: f64) -> Option<f64>;

    /// Short name for diagnostics.
    fn name(&self) -> &'static str;
}

/// `z(x) = x²` — plain ℓ₂ sampling (`f = identity`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Square;

impl ZFn for Square {
    fn z(&self, x: f64) -> f64 {
        x * x
    }
    fn z_inv(&self, y: f64) -> Option<f64> {
        (y >= 0.0).then(|| y.sqrt())
    }
    fn name(&self) -> &'static str {
        "square"
    }
}

/// `z(x) = |x|^α` with `0 < α ≤ 2` — the ℓ_{2/p} sampling of the softmax /
/// generalized-mean application (§VI-B): with locally p-th-powered entries
/// and `f(x) = x^{1/p}`, `f(x)² = x^{2/p}`, i.e. `α = 2/p`.
#[derive(Debug, Clone, Copy)]
pub struct PowerAbs {
    /// Exponent `α ∈ (0, 2]`.
    pub alpha: f64,
}

impl PowerAbs {
    /// From the GM parameter `p ≥ 1`: `α = 2/p`.
    pub fn from_gm_p(p: f64) -> Self {
        assert!(p >= 1.0, "GM parameter p must be >= 1, got {p}");
        PowerAbs { alpha: 2.0 / p }
    }
}

impl ZFn for PowerAbs {
    fn z(&self, x: f64) -> f64 {
        x.abs().powf(self.alpha)
    }
    fn z_inv(&self, y: f64) -> Option<f64> {
        (y >= 0.0).then(|| y.powf(1.0 / self.alpha))
    }
    fn name(&self) -> &'static str {
        "power-abs"
    }
}

/// `z(x) = ψ(x)²` for the Huber ψ-function (Table I):
/// `ψ(x) = x` for `|x| ≤ k`, else `k·sgn(x)`.
#[derive(Debug, Clone, Copy)]
pub struct HuberSq {
    /// The Huber threshold `k > 0`.
    pub k: f64,
}

impl ZFn for HuberSq {
    fn z(&self, x: f64) -> f64 {
        let a = x.abs().min(self.k);
        a * a
    }
    fn z_inv(&self, y: f64) -> Option<f64> {
        if y < 0.0 || y > self.k * self.k {
            None
        } else {
            Some(y.sqrt())
        }
    }
    fn name(&self) -> &'static str {
        "huber-sq"
    }
}

/// `z(x) = ψ(x)²` for the L1−L2 ψ-function (Table I):
/// `ψ(x) = x / (1 + x²/2)^{1/2}`, which saturates at `√2`, so `z < 2`.
#[derive(Debug, Clone, Copy, Default)]
pub struct L1L2Sq;

impl ZFn for L1L2Sq {
    fn z(&self, x: f64) -> f64 {
        let psi = x / (1.0 + x * x / 2.0).sqrt();
        psi * psi
    }
    fn z_inv(&self, y: f64) -> Option<f64> {
        // z = x² / (1 + x²/2)  ⇒  x² = y / (1 − y/2), valid while y < 2.
        if !(0.0..2.0).contains(&y) {
            return None;
        }
        let x2 = y / (1.0 - y / 2.0);
        Some(x2.sqrt())
    }
    fn name(&self) -> &'static str {
        "l1l2-sq"
    }
}

/// `z(x) = ψ(x)²` for the "Fair" ψ-function (Table I):
/// `ψ(x) = x / (1 + |x|/c)`, which saturates at `c`, so `z < c²`.
#[derive(Debug, Clone, Copy)]
pub struct FairSq {
    /// The Fair scale `c > 0`.
    pub c: f64,
}

impl ZFn for FairSq {
    fn z(&self, x: f64) -> f64 {
        let psi = x / (1.0 + x.abs() / self.c);
        psi * psi
    }
    fn z_inv(&self, y: f64) -> Option<f64> {
        // ψ(x) = x/(1 + x/c) for x ≥ 0; ψ = √y ⇒ x = ψ / (1 − ψ/c), ψ < c.
        if y < 0.0 {
            return None;
        }
        let psi = y.sqrt();
        if psi >= self.c {
            return None;
        }
        Some(psi / (1.0 - psi / self.c))
    }
    fn name(&self) -> &'static str {
        "fair-sq"
    }
}

/// Checks property P empirically on a grid of magnitudes (used by tests and
/// debug assertions when wiring in a new `z`).
pub fn check_property_p(z: &dyn ZFn, xs: &[f64]) -> bool {
    if z.z(0.0) != 0.0 {
        return false;
    }
    let mut mags: Vec<f64> = xs.iter().map(|x| x.abs()).filter(|&x| x > 0.0).collect();
    mags.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mut prev_ratio = 0.0f64;
    let mut prev_z = 0.0f64;
    for &x in &mags {
        let zx = z.z(x);
        if zx < prev_z - 1e-12 {
            return false; // z must be nondecreasing
        }
        if zx > 0.0 {
            let ratio = x * x / zx;
            if ratio < prev_ratio - 1e-9 * prev_ratio.max(1.0) {
                return false; // x²/z(x) must be nondecreasing
            }
            prev_ratio = ratio;
        }
        prev_z = zx;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Vec<f64> {
        let mut xs: Vec<f64> = (1..2000).map(|i| i as f64 * 0.01).collect();
        xs.extend((1..100).map(|i| i as f64 * 3.0));
        xs.push(0.0);
        xs
    }

    #[test]
    fn all_zfns_satisfy_property_p() {
        let zs: Vec<Box<dyn ZFn>> = vec![
            Box::new(Square),
            Box::new(PowerAbs { alpha: 2.0 }),
            Box::new(PowerAbs { alpha: 1.0 }),
            Box::new(PowerAbs::from_gm_p(5.0)),
            Box::new(PowerAbs::from_gm_p(20.0)),
            Box::new(HuberSq { k: 1.5 }),
            Box::new(L1L2Sq),
            Box::new(FairSq { c: 2.0 }),
        ];
        for z in &zs {
            assert!(
                check_property_p(z.as_ref(), &grid()),
                "{} fails P",
                z.name()
            );
        }
    }

    #[test]
    fn square_values_and_inverse() {
        assert_eq!(Square.z(-3.0), 9.0);
        assert_eq!(Square.z_inv(9.0), Some(3.0));
        assert_eq!(Square.z_inv(-1.0), None);
    }

    #[test]
    fn power_abs_matches_gm() {
        let z = PowerAbs::from_gm_p(4.0);
        assert!((z.alpha - 0.5).abs() < 1e-15);
        assert!((z.z(16.0) - 4.0).abs() < 1e-12);
        assert!((z.z_inv(4.0).unwrap() - 16.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "p must be >= 1")]
    fn gm_p_below_one_rejected() {
        PowerAbs::from_gm_p(0.5);
    }

    #[test]
    fn huber_caps_and_inverse() {
        let z = HuberSq { k: 2.0 };
        assert_eq!(z.z(1.0), 1.0);
        assert_eq!(z.z(-1.0), 1.0);
        assert_eq!(z.z(100.0), 4.0); // capped at k²
        assert_eq!(z.z_inv(4.0), Some(2.0));
        assert_eq!(z.z_inv(4.1), None); // beyond saturation
    }

    #[test]
    fn l1l2_saturation() {
        let z = L1L2Sq;
        assert!(z.z(1e9) <= 2.0 + 1e-12); // saturates at 2 (up to f64 rounding)
        assert!(z.z(1e9) > 1.999_999);
        let x = z.z_inv(1.0).unwrap();
        assert!((z.z(x) - 1.0).abs() < 1e-12, "round trip at y=1");
        assert_eq!(z.z_inv(2.0), None);
    }

    #[test]
    fn fair_saturation_and_roundtrip() {
        let z = FairSq { c: 3.0 };
        assert!(z.z(1e12) < 9.0);
        for &y in &[0.1, 1.0, 5.0, 8.9] {
            let x = z.z_inv(y).unwrap();
            assert!((z.z(x) - y).abs() < 1e-9 * y.max(1.0), "round trip at {y}");
        }
        assert_eq!(z.z_inv(9.0), None);
    }

    #[test]
    fn property_p_rejects_fast_growth() {
        // z = x⁴ violates "at most quadratic growth" (x²/z decreasing).
        struct Quartic;
        impl ZFn for Quartic {
            fn z(&self, x: f64) -> f64 {
                x.powi(4)
            }
            fn z_inv(&self, y: f64) -> Option<f64> {
                (y >= 0.0).then(|| y.powf(0.25))
            }
            fn name(&self) -> &'static str {
                "quartic"
            }
        }
        assert!(!check_property_p(&Quartic, &grid()));
    }

    #[test]
    fn property_p_rejects_nonzero_origin() {
        struct Shifted;
        impl ZFn for Shifted {
            fn z(&self, x: f64) -> f64 {
                x * x + 1.0
            }
            fn z_inv(&self, y: f64) -> Option<f64> {
                (y >= 1.0).then(|| (y - 1.0).sqrt())
            }
            fn name(&self) -> &'static str {
                "shifted"
            }
        }
        assert!(!check_property_p(&Shifted, &grid()));
    }
}
