//! The distributed `Z-sampler` (Algorithm 4): coordinate injection, a second
//! estimator pass, and probability-proportional draws.
//!
//! `prepare` runs the paper's pipeline once:
//!
//! 1. `Z-estimator` on the original aggregate `a` → `Ẑ(a)`, class sizes.
//! 2. Coordinate injection (§V-D): for each *growing* class `i` the
//!    coordinator appends `⌈εẐ/(5T(1+ε)ⁱ)⌉` virtual coordinates of value
//!    `z⁻¹((1+ε)ⁱ)` to its own vector while every other server appends
//!    zeros — making every growing class *contributing* so its size estimate
//!    is reliable. (We cap the per-class count; see `ZSamplerParams`.)
//! 3. `Z-estimator` on the extended `a′` → the sampling structure.
//!
//! `draw` then implements Algorithm 4 lines 4–6: choose class `i*` with
//! probability `ŝᵢ·repᵢ/Ẑ`, choose a member uniformly from the recovered
//! members of that class (a fresh min-wise hash over a fixed recovered set
//! *is* a uniform draw — see the crate docs), and reject injected
//! coordinates (`output FAIL`), retrying up to the configured budget.

use crate::estimator::{run_z_estimator, EstimatorOutput};
use crate::params::ZSamplerParams;
use crate::vector::SampleVector;
use crate::zfn::ZFn;
use dlra_comm::{Collectives, LedgerSnapshot, Payload};
use dlra_util::Rng;
use std::sync::Arc;

/// One sampled coordinate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Draw {
    /// The sampled coordinate of the original vector (`< base_dim`).
    pub coord: u64,
    /// Its exact aggregate value `a_j` (known from the estimator's lookups).
    pub value: f64,
    /// The reported sampling probability `Q̂_j = z(a_j)/Ẑ` — the `(1±γ)Q`
    /// approximation Algorithm 1 consumes.
    pub q_hat: f64,
}

/// Configuration wrapper for running the sampler.
///
/// ```
/// use dlra_comm::Cluster;
/// use dlra_sampler::{DenseServerVec, Square, ZSampler, ZSamplerParams};
/// use dlra_util::Rng;
///
/// // One dominant coordinate split across two servers.
/// let mut v1 = vec![0.0; 512];
/// let mut v2 = vec![0.0; 512];
/// v1[99] = 6.0;
/// v2[99] = 4.0; // aggregate 10 → z = 100
/// let mut cluster = Cluster::new(vec![
///     DenseServerVec::new(v1),
///     DenseServerVec::new(v2),
/// ]);
/// let sampler = ZSampler::new(ZSamplerParams::default(), 7);
/// let prepared = sampler.prepare(&mut cluster, &Square);
/// let draw = prepared.draw(&mut Rng::new(1)).unwrap();
/// assert_eq!(draw.coord, 99);
/// assert!((draw.value - 10.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct ZSampler {
    /// Tuning parameters.
    pub params: ZSamplerParams,
    /// Root seed; both estimator passes and the injection derive from it.
    pub seed: u64,
}

/// A recovered class member: `(coordinate, exact aggregate value, z-value)`.
type ClassMember = (u64, f64, f64);

/// A [`PreparedSampler`] wrapped for sharing across queries: the structure
/// itself behind an `Arc` (draws take `&self` and an external RNG, so one
/// preparation can serve any number of concurrent consumers) plus the
/// ledger delta the preparation cost — the `k`-independent, one-time part
/// of Algorithm 1's communication, accounted separately from the per-query
/// draw/fetch phases so planners can amortize it.
#[derive(Debug, Clone)]
pub struct SharedPrepared {
    /// The shareable draw structure.
    pub sampler: Arc<PreparedSampler>,
    /// Exact communication charged by the two estimator passes and the
    /// injection broadcast of this preparation.
    pub prepare_comm: LedgerSnapshot,
}

/// A prepared sampling structure supporting repeated draws.
#[derive(Debug, Clone)]
pub struct PreparedSampler {
    z_hat: f64,
    base_dim: u64,
    /// `(class weight, members)`.
    classes: Vec<(f64, Vec<ClassMember>)>,
    total_weight: f64,
    max_draw_tries: usize,
}

impl ZSampler {
    /// Creates a sampler with the given parameters and root seed.
    pub fn new(params: ZSamplerParams, seed: u64) -> Self {
        ZSampler { params, seed }
    }

    /// Runs the two-pass pipeline and returns the draw structure.
    /// Injected coordinates are cleared from the cluster before returning.
    /// Generic over the substrate: the same pipeline runs on the sequential
    /// simulator and the threaded runtime.
    pub fn prepare<L, C>(&self, cluster: &mut C, zfn: &dyn ZFn) -> PreparedSampler
    where
        L: SampleVector,
        C: Collectives<L>,
    {
        self.prepare_inner(cluster, zfn)
    }

    /// [`ZSampler::prepare`] returning a shareable artifact: the prepared
    /// structure behind an `Arc` together with the exact ledger delta the
    /// preparation charged. The preparation is a deterministic function of
    /// the cluster contents, the parameters, and the seed — two calls on
    /// identical data produce bit-identical structures and identical
    /// deltas — which is what makes it safe for a query planner to run it
    /// once and share the result across every query with the same plan key.
    pub fn prepare_shared<L, C>(&self, cluster: &mut C, zfn: &dyn ZFn) -> SharedPrepared
    where
        L: SampleVector,
        C: Collectives<L>,
    {
        let before = cluster.comm();
        let sampler = Arc::new(self.prepare_inner(cluster, zfn));
        SharedPrepared {
            sampler,
            prepare_comm: cluster.comm().since(&before),
        }
    }

    fn prepare_inner<L, C>(&self, cluster: &mut C, zfn: &dyn ZFn) -> PreparedSampler
    where
        L: SampleVector,
        C: Collectives<L>,
    {
        let base_dim = cluster.with_local(0, SampleVector::base_dim);
        let pass1 = run_z_estimator(cluster, zfn, &self.params, self.seed);
        if pass1.z_hat <= 0.0 {
            return PreparedSampler::empty(base_dim, self.params.max_draw_tries);
        }

        // --- Coordinate injection (§V-D). ---
        let inject = self.injection_plan(&pass1, zfn);
        let injected_total: usize = inject.iter().map(|&(_, n)| n as usize).sum();
        if injected_total > 0 {
            // Broadcast the per-class (value, count) plan — 2 words/class —
            // and extend every server's vector (coordinator gets the values,
            // workers get zeros).
            cluster.broadcast(
                &InjectPlan(inject.clone()),
                "zsamp.inject",
                |t, local, plan| {
                    let values: Vec<f64> = plan
                        .0
                        .iter()
                        .flat_map(|&(v, n)| std::iter::repeat_n(v, n as usize))
                        .collect();
                    local.append_injected(&values, t == 0);
                },
            );
        }

        // --- Second pass on the extended vector. ---
        let pass2 = run_z_estimator(
            cluster,
            zfn,
            &self.params,
            self.seed.wrapping_add(0x0BAD_5EED_0BAD_5EED),
        );

        // Restore the cluster for the caller (a purely local,
        // zero-communication cleanup on every server).
        if injected_total > 0 {
            for t in 0..cluster.num_servers() {
                cluster.with_local_mut(t, SampleVector::clear_injected);
            }
        }

        if pass2.z_hat <= 0.0 {
            return PreparedSampler::empty(base_dim, self.params.max_draw_tries);
        }

        let mut classes = Vec::with_capacity(pass2.classes.len());
        let mut total_weight = 0.0;
        for est in pass2.classes.values() {
            let weight = est.s_hat * est.rep_value;
            let members: Vec<ClassMember> =
                est.members.iter().map(|&(j, v)| (j, v, zfn.z(v))).collect();
            if weight > 0.0 && !members.is_empty() {
                total_weight += weight;
                classes.push((weight, members));
            }
        }
        PreparedSampler {
            z_hat: pass2.z_hat,
            base_dim,
            classes,
            total_weight,
            max_draw_tries: self.params.max_draw_tries,
        }
    }

    /// Growing classes and their injection counts/values.
    ///
    /// A class is *growing* when its value floor is well below `Ẑ`
    /// (paper: `(1+ε)ⁱ ≤ Ẑ/(5ε⁻⁴T³log l)`; here the divisor follows from
    /// `T` and the per-class cap). Injection counts follow
    /// `⌈εẑ/(5T·(1+ε)ⁱ)⌉` capped at `max_inject_per_class`; classes whose
    /// uncapped count would exceed the cap are skipped from below — their
    /// total contribution is below the estimator's resolution anyway
    /// (the paper's non-contributing bound `Z_NC < εZ`).
    fn injection_plan(&self, pass1: &EstimatorOutput, zfn: &dyn ZFn) -> Vec<(f64, u64)> {
        let eps = self.params.eps_class;
        let lf = (pass1.dim.max(2)) as f64;
        let t_classes = (lf.ln() / eps).ceil().max(1.0);
        let z_hat = pass1.z_hat;
        let ln1e = (1.0 + eps).ln();
        // Value range: from Ẑ (nothing grows above it) down to the level
        // where the uncapped count would exceed the cap.
        let i_top = (z_hat.ln() / ln1e).floor() as i32;
        let mut plan = Vec::new();
        for i in (i_top - 8 * t_classes as i32..=i_top).rev() {
            let floor_val = (1.0 + eps).powi(i);
            if floor_val > z_hat / (5.0 * t_classes) {
                continue; // not growing: too heavy to need injection
            }
            let count = (eps * z_hat / (5.0 * t_classes * floor_val)).ceil();
            if count as usize > self.params.max_inject_per_class {
                break; // classes below resolution; stop injecting
            }
            let Some(value) = zfn.z_inv(floor_val) else {
                continue; // class empty for saturating z (paper §V-D)
            };
            if value.is_finite() && count >= 1.0 {
                plan.push((value, count as u64));
            }
        }
        plan
    }
}

/// Wire form of the injection plan: `(value, count)` per growing class.
#[derive(Debug, Clone)]
struct InjectPlan(Vec<(f64, u64)>);

impl Payload for InjectPlan {
    fn words(&self) -> u64 {
        2 * self.0.len() as u64
    }
}

impl dlra_comm::WireEncode for InjectPlan {
    fn encode(&self, w: &mut dlra_comm::wire::WireWriter) {
        w.desc_u32(self.0.len() as u32);
        for &(value, count) in &self.0 {
            w.word_f64(value);
            w.word_u64(count);
        }
    }
}

impl dlra_comm::WireDecode for InjectPlan {
    fn decode(r: &mut dlra_comm::wire::WireReader<'_>) -> Result<Self, dlra_comm::WireError> {
        let n = u64::from(r.desc_u32("inject plan length")?);
        if n > dlra_comm::wire::MAX_SEQ_LEN {
            return Err(dlra_comm::WireError::Oversized {
                what: "inject plan length",
                len: n,
                max: dlra_comm::wire::MAX_SEQ_LEN,
            });
        }
        let mut plan = Vec::with_capacity((n as usize).min(4096));
        for _ in 0..n {
            let value = r.word_f64("inject plan value")?;
            let count = r.word_u64("inject plan count")?;
            plan.push((value, count));
        }
        Ok(InjectPlan(plan))
    }
}

/// Diagnostics of a prepared sampler (for reports and tests).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplerStats {
    /// The estimate `Ẑ`.
    pub z_hat: f64,
    /// Number of nonempty level-set classes.
    pub num_classes: usize,
    /// Total recovered candidates across classes.
    pub total_candidates: usize,
    /// How many of them are injected (virtual) coordinates.
    pub injected_candidates: usize,
    /// Original vector dimension.
    pub base_dim: u64,
}

impl PreparedSampler {
    fn empty(base_dim: u64, max_draw_tries: usize) -> Self {
        PreparedSampler {
            z_hat: 0.0,
            base_dim,
            classes: Vec::new(),
            total_weight: 0.0,
            max_draw_tries,
        }
    }

    /// The estimate `Ẑ` used in reported probabilities.
    pub fn z_hat(&self) -> f64 {
        self.z_hat
    }

    /// True when the underlying vector had no recoverable mass.
    pub fn is_empty(&self) -> bool {
        self.total_weight <= 0.0 || self.classes.is_empty()
    }

    /// Diagnostics: class and candidate counts, injection share.
    pub fn stats(&self) -> SamplerStats {
        let total_candidates: usize = self.classes.iter().map(|(_, m)| m.len()).sum();
        let injected_candidates: usize = self
            .classes
            .iter()
            .flat_map(|(_, m)| m.iter())
            .filter(|&&(coord, _, _)| coord >= self.base_dim)
            .count();
        SamplerStats {
            z_hat: self.z_hat,
            num_classes: self.classes.len(),
            total_candidates,
            injected_candidates,
            base_dim: self.base_dim,
        }
    }

    /// One draw (Algorithm 4 lines 4–6). Returns `None` when every retry hit
    /// an injected coordinate or the structure is empty.
    pub fn draw(&self, rng: &mut Rng) -> Option<Draw> {
        if self.is_empty() {
            return None;
        }
        for _ in 0..self.max_draw_tries {
            // Class pick ∝ ŝᵢ·repᵢ.
            let mut u = rng.f64() * self.total_weight;
            let mut chosen = self.classes.len() - 1;
            for (idx, (w, _)) in self.classes.iter().enumerate() {
                u -= w;
                if u < 0.0 {
                    chosen = idx;
                    break;
                }
            }
            let members = &self.classes[chosen].1;
            let (coord, value, zv) = members[rng.index(members.len())];
            if coord >= self.base_dim {
                continue; // injected coordinate: FAIL, retry
            }
            return Some(Draw {
                coord,
                value,
                q_hat: (zv / self.z_hat).min(1.0),
            });
        }
        None
    }

    /// Draws `r` samples, skipping failed attempts (the paper repeats the
    /// sampler and keeps non-injected outputs).
    pub fn draw_many(&self, r: usize, rng: &mut Rng) -> Vec<Draw> {
        (0..r).filter_map(|_| self.draw(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::DenseServerVec;
    use crate::zfn::{HuberSq, Square};
    use dlra_comm::Cluster;
    use std::collections::BTreeMap;

    fn make_cluster(parts: Vec<Vec<f64>>) -> Cluster<DenseServerVec> {
        Cluster::new(parts.into_iter().map(DenseServerVec::new).collect())
    }

    fn test_params() -> ZSamplerParams {
        ZSamplerParams {
            hh_width: 128,
            groups: 4,
            reps: 2,
            b_threshold: 16.0,
            ..ZSamplerParams::default()
        }
    }

    #[test]
    fn zero_vector_draws_nothing() {
        let mut c = make_cluster(vec![vec![0.0; 64]; 2]);
        let s = ZSampler::new(test_params(), 1);
        let prep = s.prepare(&mut c, &Square);
        assert!(prep.is_empty());
        let mut rng = Rng::new(2);
        assert_eq!(prep.draw(&mut rng), None);
    }

    #[test]
    fn heavy_coordinates_dominate_draws() {
        let dim = 4096usize;
        let mut v = vec![0.01f64; dim];
        v[42] = 100.0; // z = 10000, dwarfs everything
        let mut c = make_cluster(vec![v]);
        let s = ZSampler::new(test_params(), 3);
        let prep = s.prepare(&mut c, &Square);
        assert!(!prep.is_empty());
        let mut rng = Rng::new(4);
        let draws = prep.draw_many(200, &mut rng);
        assert!(!draws.is_empty());
        let hits = draws.iter().filter(|d| d.coord == 42).count();
        assert!(
            hits as f64 / draws.len() as f64 > 0.9,
            "heavy coordinate drawn {hits}/{}",
            draws.len()
        );
        // q_hat close to its true share.
        let d = draws.iter().find(|d| d.coord == 42).unwrap();
        assert!((d.value - 100.0).abs() < 1e-9);
        assert!(d.q_hat > 0.5, "q_hat {}", d.q_hat);
    }

    #[test]
    fn empirical_distribution_tracks_z_over_planted_classes() {
        // Two planted classes: 8 coords of value 10 (z=100) and 64 coords of
        // value 2 (z=4). Class masses: 800 vs 256.
        let dim = 1 << 13;
        let mut v = vec![0.0f64; dim];
        for i in 0..8 {
            v[i * 37] = 10.0;
        }
        for i in 0..64 {
            v[4096 + i * 29] = 2.0;
        }
        let truth_heavy = 800.0 / (800.0 + 256.0);
        let mut c = make_cluster(vec![v.clone()]);
        let mut p = test_params();
        p.hh_width = 256;
        let s = ZSampler::new(p, 7);
        let prep = s.prepare(&mut c, &Square);
        let mut rng = Rng::new(8);
        let draws = prep.draw_many(2000, &mut rng);
        assert!(draws.len() > 1500, "too many failures: {}", draws.len());
        let heavy = draws.iter().filter(|d| v[d.coord as usize] == 10.0).count();
        let frac = heavy as f64 / draws.len() as f64;
        assert!(
            (frac - truth_heavy).abs() < 0.2,
            "heavy fraction {frac} vs {truth_heavy}"
        );
        // All drawn values must be exact.
        for d in &draws {
            assert!(
                (d.value - v[d.coord as usize]).abs() < 1e-9,
                "wrong value at {}",
                d.coord
            );
        }
    }

    #[test]
    fn distributed_draws_respect_aggregate() {
        // Coordinate heavy only after aggregation across 4 servers.
        let dim = 2048usize;
        let mut parts: Vec<Vec<f64>> = vec![vec![0.0; dim]; 4];
        for p in parts.iter_mut() {
            p[99] = 6.0; // aggregate 24 → z = 576
            p[7] = -1.0; // aggregate -4 → z = 16
        }
        let mut c = make_cluster(parts);
        let s = ZSampler::new(test_params(), 11);
        let prep = s.prepare(&mut c, &Square);
        let mut rng = Rng::new(12);
        let draws = prep.draw_many(300, &mut rng);
        let big = draws.iter().filter(|d| d.coord == 99).count();
        assert!(
            big as f64 / draws.len() as f64 > 0.8,
            "aggregate-heavy fraction {}",
            big as f64 / draws.len() as f64
        );
        let d = draws.iter().find(|d| d.coord == 99).unwrap();
        assert!((d.value - 24.0).abs() < 1e-9);
    }

    #[test]
    fn huber_z_saturates_outliers() {
        // With Huber ψ (k = 1), a wild outlier's z is capped at 1, so it
        // must NOT dominate the draws.
        let dim = 1024usize;
        let mut v = vec![0.0f64; dim];
        for i in 0..128 {
            v[i * 8] = 1.0; // z = 1 each → mass 128
        }
        v[513] = 1e6; // z capped at 1
        let mut c = make_cluster(vec![v]);
        let mut p = test_params();
        p.hh_width = 256;
        let s = ZSampler::new(p, 13);
        let prep = s.prepare(&mut c, &HuberSq { k: 1.0 });
        let mut rng = Rng::new(14);
        let draws = prep.draw_many(500, &mut rng);
        assert!(!draws.is_empty());
        let outlier = draws.iter().filter(|d| d.coord == 513).count();
        assert!(
            (outlier as f64) < 0.1 * draws.len() as f64,
            "outlier drawn {outlier}/{}",
            draws.len()
        );
    }

    #[test]
    fn draws_never_return_injected_coordinates() {
        let dim = 512usize;
        let mut v = vec![0.0f64; dim];
        for x in v.iter_mut().take(10) {
            *x = 1.0;
        }
        let mut c = make_cluster(vec![v]);
        let s = ZSampler::new(test_params(), 15);
        let prep = s.prepare(&mut c, &Square);
        let mut rng = Rng::new(16);
        for d in prep.draw_many(500, &mut rng) {
            assert!(d.coord < dim as u64);
        }
    }

    #[test]
    fn prepare_shared_matches_prepare_and_accounts_cost() {
        let parts = vec![vec![1.0, 0.0, 3.0, 0.5, 0.0, 2.0, 0.0, 0.25]; 3];
        let s = ZSampler::new(test_params(), 23);

        let mut c1 = make_cluster(parts.clone());
        let plain = s.prepare(&mut c1, &Square);

        let mut c2 = make_cluster(parts);
        let before = dlra_comm::Collectives::comm(&c2);
        let shared = s.prepare_shared(&mut c2, &Square);

        // Same structure, bit for bit (deterministic pipeline)...
        assert_eq!(plain.z_hat().to_bits(), shared.sampler.z_hat().to_bits());
        assert_eq!(plain.stats(), shared.sampler.stats());
        let mut ra = Rng::new(9);
        let mut rb = Rng::new(9);
        assert_eq!(
            plain.draw_many(50, &mut ra),
            shared.sampler.draw_many(50, &mut rb)
        );

        // ...and the snapshotted cost is exactly what the cluster charged.
        assert_eq!(
            shared.prepare_comm,
            dlra_comm::Collectives::comm(&c2).since(&before)
        );
        assert!(shared.prepare_comm.total_words() > 0);

        // The artifact is shareable: cloning bumps the Arc, not the data.
        let other = Arc::clone(&shared.sampler);
        assert_eq!(Arc::strong_count(&other), 2);
    }

    #[test]
    fn injection_cleared_after_prepare() {
        let mut c = make_cluster(vec![vec![1.0; 256]; 2]);
        let s = ZSampler::new(test_params(), 17);
        let _ = s.prepare(&mut c, &Square);
        assert_eq!(c.local(0).dim(), 256);
        assert_eq!(c.local(1).dim(), 256);
    }

    #[test]
    fn q_hat_consistent_with_empirical_frequency() {
        // For a vector with a few distinct heavy values, the reported q̂
        // should match empirical draw frequencies within a factor ~2.
        let dim = 2048usize;
        let mut v = vec![0.0f64; dim];
        v[10] = 30.0;
        v[20] = 20.0;
        v[30] = 10.0;
        let z = Square;
        let ztot: f64 = v.iter().map(|&x| z.z(x)).sum();
        let mut c = make_cluster(vec![v.clone()]);
        let s = ZSampler::new(test_params(), 19);
        let prep = s.prepare(&mut c, &z);
        let mut rng = Rng::new(20);
        let n = 4000;
        let draws = prep.draw_many(n, &mut rng);
        let mut freq: BTreeMap<u64, usize> = BTreeMap::new();
        for d in &draws {
            *freq.entry(d.coord).or_default() += 1;
        }
        for (&coord, &count) in &freq {
            let emp = count as f64 / draws.len() as f64;
            let truth = z.z(v[coord as usize]) / ztot;
            assert!(
                emp / truth < 2.5 && truth / emp < 2.5,
                "coord {coord}: emp {emp:.3} truth {truth:.3}"
            );
            let d = draws.iter().find(|d| d.coord == coord).unwrap();
            assert!(
                d.q_hat / truth < 2.0 && truth / d.q_hat < 2.0,
                "coord {coord}: q̂ {} truth {truth}",
                d.q_hat
            );
        }
    }
}
