//! Theorem 8: for `f(x) = xᵖ`, a `(1+ε)` relative-error protocol needs
//! `Ω(1/ε²)` bits — reduction from Gap-Hamming-Distance.
//!
//! The gadget (§VII-B): embed the sign vectors in the first column of a
//! `(1/ε² + k) × (k+1)` matrix scaled by `ε`, and add diagonal rows `√2`
//! and `√(2(1+ε))/ε`. Then `AᵀA = diag(‖x+y‖²ε², 2, 2(1+ε)/ε², …)`, and
//! whether the first column's mass `‖x+y‖²ε² = 2 + 2ε²⟨x,y⟩` exceeds `2`
//! — i.e. the sign of `⟨x,y⟩` — is readable off *any* valid rank-k
//! projection from the first coordinate of the left-out direction.

use crate::problems::GapHammingInstance;
use crate::ReductionStats;
use dlra_linalg::{best_rank_k, matrix::norm_sq, Matrix};

/// Builds the two parties' gadget matrices `(A¹, A²)` for rank parameter
/// `k`; `A = A¹ + A²` is what the PCA protocol runs on.
pub fn build_gadgets(inst: &GapHammingInstance, k: usize) -> (Matrix, Matrix) {
    assert!(k >= 1);
    let m = inst.x.len();
    let eps = 1.0 / (m as f64).sqrt();
    let rows = m + k;
    let cols = k + 1;
    let mut a1 = Matrix::zeros(rows, cols);
    let mut a2 = Matrix::zeros(rows, cols);
    for i in 0..m {
        a1[(i, 0)] = inst.x[i] * eps;
        a2[(i, 0)] = inst.y[i] * eps;
    }
    a1[(m, 1)] = 2.0f64.sqrt();
    for g in 0..k - 1 {
        a1[(m + 1 + g, 2 + g)] = (2.0 * (1.0 + eps)).sqrt() / eps;
    }
    (a1, a2)
}

/// Decides a Gap-Hamming instance via a relative-error rank-k PCA oracle.
/// Returns `(is_positive, stats)` where positive means `⟨x,y⟩ > +2√m`.
pub fn solve_ghd_via_pca(
    inst: &GapHammingInstance,
    k: usize,
    oracle: &mut dyn FnMut(&Matrix, usize) -> Matrix,
) -> (bool, ReductionStats) {
    let m = inst.x.len();
    let eps = 1.0 / (m as f64).sqrt();
    let (a1, a2) = build_gadgets(inst, k);
    let a = a1.add(&a2).expect("same shape");

    let mut stats = ReductionStats {
        oracle_calls: 1,
        ..Default::default()
    };
    let proj = oracle(&a, k);

    // u := first row of (I_{k+1} − P); v := u/‖u‖; decide by v₁².
    let cols = k + 1;
    let mut u = vec![0.0f64; cols];
    for j in 0..cols {
        let id = if j == 0 { 1.0 } else { 0.0 };
        u[j] = id - proj[(0, j)];
    }
    let nu = norm_sq(&u);
    stats.side_words += 1; // the one-bit answer
    if nu < 1e-12 {
        // P retains e₀ entirely ⇒ the first column was among the top-k ⇒
        // its mass exceeded 2 ⇒ ⟨x,y⟩ > 0.
        return (true, stats);
    }
    let v1_sq = u[0] * u[0] / nu;
    (v1_sq < 0.5 * (1.0 + eps), stats)
}

/// Exact-SVD oracle (satisfies any `(1+ε)` relative-error guarantee).
pub fn exact_oracle(a: &Matrix, k: usize) -> Matrix {
    best_rank_k(a, k).expect("oracle SVD").projection.to_dense()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlra_util::Rng;

    #[test]
    fn gadget_gram_is_diagonal_with_claimed_entries() {
        let mut rng = Rng::new(1);
        let inst = GapHammingInstance::generate(64, true, 1.0, &mut rng);
        let k = 3;
        let (a1, a2) = build_gadgets(&inst, k);
        let a = a1.add(&a2).unwrap();
        let g = a.gram();
        let eps = 1.0 / 8.0;
        // Off-diagonals vanish.
        for i in 0..k + 1 {
            for j in 0..k + 1 {
                if i != j {
                    assert!(g[(i, j)].abs() < 1e-9, "g[{i}][{j}] = {}", g[(i, j)]);
                }
            }
        }
        // Diagonal: ‖x+y‖²ε², 2, 2(1+ε)/ε².
        let xy: f64 = inst.inner();
        let col0 = (2.0 * 64.0 + 2.0 * xy) * eps * eps;
        assert!((g[(0, 0)] - col0).abs() < 1e-9);
        assert!((g[(1, 1)] - 2.0).abs() < 1e-9);
        for gg in 2..k + 1 {
            assert!((g[(gg, gg)] - 2.0 * (1.0 + eps) / (eps * eps)).abs() < 1e-6);
        }
    }

    #[test]
    fn decides_positive_instances() {
        for seed in 0..6 {
            let mut rng = Rng::new(seed);
            let inst = GapHammingInstance::generate(144, true, 1.0, &mut rng);
            let (pos, stats) = solve_ghd_via_pca(&inst, 2, &mut exact_oracle);
            assert!(pos, "seed {seed}");
            assert_eq!(stats.oracle_calls, 1);
        }
    }

    #[test]
    fn decides_negative_instances() {
        for seed in 0..6 {
            let mut rng = Rng::new(100 + seed);
            let inst = GapHammingInstance::generate(144, false, 1.0, &mut rng);
            let (pos, _) = solve_ghd_via_pca(&inst, 2, &mut exact_oracle);
            assert!(!pos, "seed {seed}");
        }
    }

    #[test]
    fn works_across_k() {
        let mut rng = Rng::new(42);
        for k in [1usize, 2, 4, 6] {
            let pos_inst = GapHammingInstance::generate(100, true, 1.0, &mut rng);
            let neg_inst = GapHammingInstance::generate(100, false, 1.0, &mut rng);
            assert!(
                solve_ghd_via_pca(&pos_inst, k, &mut exact_oracle).0,
                "k={k}"
            );
            assert!(
                !solve_ghd_via_pca(&neg_inst, k, &mut exact_oracle).0,
                "k={k}"
            );
        }
    }

    #[test]
    fn dimension_scaling() {
        // Larger m (smaller ε): still decided with one oracle call.
        let mut rng = Rng::new(77);
        let inst = GapHammingInstance::generate(1024, true, 1.0, &mut rng);
        let (pos, stats) = solve_ghd_via_pca(&inst, 3, &mut exact_oracle);
        assert!(pos);
        assert_eq!(stats.oracle_calls, 1);
    }
}
