//! Theorem 4: for `f(x) = |x|ᵖ` (`p > 1`), relative-error PCA needs
//! `Ω̃((1+ε)^{−2/p} n^{1−1/p} d^{1−4/p})` bits — reduction from L∞.
//!
//! The protocol (§VII-B): arrange the L∞ vectors into an `n × d` matrix, add
//! a `B·I_{k−1}` gadget block so the rank-k projection has exactly one slot
//! left for a data column, and observe that any valid `(1+ε)` relative-error
//! projection must spend that slot on the column containing a `B`-separated
//! coordinate (its `|·|ᵖ` value dwarfs everything else). Recursing on that
//! column shrinks the candidate set by a factor `d` per round; after
//! `O(log_d m)` oracle calls the single surviving coordinate is checked
//! directly.

use crate::problems::LinftyInstance;
use crate::ReductionStats;
use dlra_linalg::{best_rank_k, Matrix};

/// Decides an L∞ instance using a relative-error rank-k PCA oracle.
///
/// `oracle` receives the materialized `A` (as both parties' protocol would
/// jointly define it) and the rank `k`, and must return a `d′ × d′`
/// projection with `‖A − AP‖²_F ≤ (1+ε)‖A − [A]ₖ‖²_F`. The default used by
/// tests is the exact SVD projection (which trivially satisfies the
/// guarantee). Returns `(is_far, stats)`.
pub fn solve_linfty_via_pca(
    inst: &LinftyInstance,
    d: usize,
    k: usize,
    p: f64,
    oracle: &mut dyn FnMut(&Matrix, usize) -> Matrix,
) -> (bool, ReductionStats) {
    assert!(k >= 2, "gadget needs k >= 2");
    assert!(d >= 2, "need d >= 2");
    assert!(p > 1.0, "Theorem 4 needs p > 1");
    let m = inst.x.len();
    let mut stats = ReductionStats::default();

    // Both parties can compute B from public parameters.
    let n0 = m.div_ceil(d);
    let b_pow_p = (2.0f64 * (n0 * d) as f64 * (d as f64).powi(4)).sqrt(); // |B|^p with ε≈0

    // Candidate coordinate ids, arranged row-major into (⌈len/d⌉ × d).
    let mut ids: Vec<usize> = (0..m).collect();

    while ids.len() > 1 {
        stats.rounds += 1;
        let rows = ids.len().div_ceil(d);
        let dd = d + k - 1;
        // A[i][j] = |x_id − y_id|^p on the data block; gadget B^p·I_{k−1}.
        let mut a = Matrix::zeros(rows + k - 1, dd);
        for (pos, &id) in ids.iter().enumerate() {
            let (i, j) = (pos / d, pos % d);
            let diff = (inst.x[id] - inst.y[id]).abs() as f64;
            a[(i, j)] = diff.powf(p);
        }
        for g in 0..k - 1 {
            a[(rows + g, d + g)] = b_pow_p;
        }

        stats.oracle_calls += 1;
        let proj = oracle(&a, k);

        // Column scores |e_iᵀ P|₂²; keep the best column with index < d.
        let mut scores: Vec<(f64, usize)> = (0..dd)
            .map(|i| {
                let s: f64 = (0..dd).map(|j| proj[(i, j)].powi(2)).sum();
                (s, i)
            })
            .collect();
        scores.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
        let c = scores
            .iter()
            .take(k)
            .find(|&&(_, i)| i < d)
            .map(|&(_, i)| i)
            // No data column in the top-k: nothing is heavy; pick column 0
            // arbitrarily (the final check will reject).
            .unwrap_or(0);
        stats.side_words += 1; // Alice sends c to Bob.

        // Both rearrange: keep the ids in column c.
        ids = (0..rows)
            .filter_map(|i| ids.get(i * d + c).copied())
            .collect();
        if ids.is_empty() {
            return (false, stats);
        }
    }

    // Final check on the lone candidate: Alice sends x[id] (1 word), Bob
    // compares against y[id] (1 word back).
    stats.side_words += 2;
    let id = ids[0];
    ((inst.x[id] - inst.y[id]).abs() == inst.b, stats)
}

/// The exact-SVD oracle: a projection achieving the optimum, hence any
/// `(1+ε)` guarantee.
pub fn exact_oracle(a: &Matrix, k: usize) -> Matrix {
    best_rank_k(a, k).expect("oracle SVD").projection.to_dense()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlra_util::Rng;

    fn run(m: usize, d: usize, planted: bool, seed: u64) -> (bool, ReductionStats) {
        let mut rng = Rng::new(seed);
        let inst = LinftyInstance::generate(m, 8, planted, &mut rng);
        solve_linfty_via_pca(&inst, d, 2, 2.0, &mut exact_oracle)
    }

    #[test]
    fn detects_planted_far_coordinate() {
        for seed in 0..5 {
            let (far, _) = run(256, 8, true, seed);
            assert!(far, "missed planted coordinate (seed {seed})");
        }
    }

    #[test]
    fn rejects_close_instances() {
        for seed in 0..5 {
            let (far, _) = run(256, 8, false, 100 + seed);
            assert!(!far, "false positive (seed {seed})");
        }
    }

    #[test]
    fn round_count_is_logarithmic() {
        let (_, stats) = run(4096, 8, true, 7);
        // log_8(4096) = 4 rounds of column narrowing.
        assert!(stats.rounds <= 5, "rounds {}", stats.rounds);
        assert_eq!(stats.oracle_calls, stats.rounds);
        // Side communication is tiny — the point of the reduction.
        assert!(stats.side_words < 16);
    }

    #[test]
    fn higher_p_also_works() {
        let mut rng = Rng::new(9);
        let inst = LinftyInstance::generate(512, 4, true, &mut rng);
        let (far, _) = solve_linfty_via_pca(&inst, 8, 3, 3.0, &mut exact_oracle);
        assert!(far);
    }

    #[test]
    fn single_coordinate_instance() {
        let inst = LinftyInstance {
            x: vec![9],
            y: vec![1],
            b: 8,
            planted: Some(0),
        };
        let (far, stats) = solve_linfty_via_pca(&inst, 4, 2, 2.0, &mut exact_oracle);
        assert!(far);
        assert_eq!(stats.oracle_calls, 0); // no narrowing needed
    }
}
