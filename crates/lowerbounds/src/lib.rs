//! Executable constructions of the paper's relative-error lower bounds
//! (§VII, Theorems 4, 6, 8).
//!
//! The theorems are reductions: *if* a cheap relative-error distributed PCA
//! protocol existed, it would solve a communication problem with a known
//! lower bound (L∞ [23], 2-DISJ [24], Gap-Hamming-Distance [25]). These
//! modules build the gadget instances and run the reduction protocols
//! against a PCA oracle, verifying end to end that a valid `(1+ε)`
//! relative-error projection *does* decide each promise problem — which is
//! the entire combinatorial content of the proofs, and the reason the
//! paper's upper bounds settle for additive error.
//!
//! * [`problems`] — instance generators for the three promise problems;
//! * [`thm4`] — `f(x) = |x|ᵖ, p > 1` needs `Ω̃((1+ε)^{−2/p} n^{1−1/p} d^{1−4/p})` bits (from L∞);
//! * [`thm6`] — `f = max` or Huber ψ needs `Ω̃(nd)` bits (from 2-DISJ);
//! * [`thm8`] — `f(x) = xᵖ` needs `Ω(1/ε²)` bits (from Gap-Hamming).

#![forbid(unsafe_code)]
pub mod problems;
pub mod thm4;
pub mod thm6;
pub mod thm8;

pub use problems::{GapHammingInstance, LinftyInstance, TwoDisjInstance};
pub use thm4::solve_linfty_via_pca;
pub use thm6::solve_disj_via_pca;
pub use thm8::solve_ghd_via_pca;

/// Statistics of one reduction run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReductionStats {
    /// Number of PCA-oracle invocations (the quantity the theorem charges).
    pub oracle_calls: u64,
    /// Bookkeeping words exchanged by the reduction itself (column indices,
    /// final checks) — negligible next to the oracle, as the proofs require.
    pub side_words: u64,
    /// Number of recursion rounds.
    pub rounds: u64,
}
