//! Theorem 6: for `f = max` (or the Huber ψ), relative-error PCA needs
//! `Ω̃(nd)` bits — reduction from 2-DISJ.
//!
//! The construction (§VII-B): flip both bit vectors and arrange them into a
//! matrix; under `max`, the entry is `0` exactly at a *joint* 1 (both
//! parties hold the element), and `1` everywhere else. With a `1_d` row and
//! an `I_{k−2}` gadget, the matrix has rank exactly `k` when a joint element
//! exists (its row becomes `ē_j`, and `1_d − ē_j = e_j` joins the row
//! space) and `k−1` otherwise — so a *zero-error* rank-k projection (which
//! is what `(1+ε)·0` forces) reveals the joint column: `ē_l` is fixed by
//! `P` exactly for `l` = the joint column. Recursing on that column finds
//! the element with `O(log_d(nd))` oracle calls.

use crate::problems::TwoDisjInstance;
use crate::ReductionStats;
use dlra_linalg::{svd, Matrix};

/// Which entrywise function realizes the construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DisjVariant {
    /// `A = max(A¹, A²)` entrywise.
    Max,
    /// `A = ψ(A¹ + A²)` for the Huber ψ with `ψ(0)=0, ψ(1)=ψ(2)=1`
    /// (threshold `k = 1`).
    Huber,
}

/// Decides a 2-DISJ instance using a relative-error rank-k PCA oracle.
///
/// The oracle must return a projection achieving
/// `‖A − AP‖²_F ≤ (1+ε)‖A − [A]ₖ‖²_F`; since `A` has rank ≤ k, that forces
/// zero error, i.e. `P`'s row space ⊇ rowspace(A). Returns
/// `(intersects, stats)`.
pub fn solve_disj_via_pca(
    inst: &TwoDisjInstance,
    d: usize,
    k: usize,
    variant: DisjVariant,
    oracle: &mut dyn FnMut(&Matrix, usize) -> Matrix,
) -> (bool, ReductionStats) {
    assert!(k >= 2, "gadget needs k >= 2");
    assert!(d >= 2);
    let m = inst.x.len();
    let mut stats = ReductionStats::default();
    let mut ids: Vec<usize> = (0..m).collect();

    while ids.len() > 1 {
        stats.rounds += 1;
        let rows = ids.len().div_ceil(d);
        let dd = d + k - 2;
        // Data block: flipped bits through max / Huber(sum); padding
        // positions (no id) behave like (0,0) ↦ flipped (1,1) ↦ value 1.
        let mut a = Matrix::zeros(rows + 1 + (k - 2), dd);
        for pos in 0..rows * d {
            let (i, j) = (pos / d, pos % d);
            let val = match ids.get(pos) {
                Some(&id) => {
                    let fx = 1.0 - inst.x[id] as f64;
                    let fy = 1.0 - inst.y[id] as f64;
                    match variant {
                        DisjVariant::Max => fx.max(fy),
                        DisjVariant::Huber => (fx + fy).min(1.0),
                    }
                }
                None => 1.0,
            };
            a[(i, j)] = val;
        }
        // Gadget: a 1_d row and I_{k−2} in the extra columns.
        for j in 0..d {
            a[(rows, j)] = 1.0;
        }
        for g in 0..k - 2 {
            a[(rows + 1 + g, d + g)] = 1.0;
        }

        stats.oracle_calls += 1;
        let proj = oracle(&a, k);

        // Find l ∈ [d] with (ē_l, 0)·P == (ē_l, 0).
        let mut found: Option<usize> = None;
        for l in 0..d {
            let mut fixed = true;
            for jj in 0..dd {
                let want = if jj < d && jj != l { 1.0 } else { 0.0 };
                // (ē_l P)_jj = Σ_i ē_l[i]·P[i][jj].
                let got: f64 = (0..d).filter(|&i| i != l).map(|i| proj[(i, jj)]).sum();
                if (got - want).abs() > 1e-6 {
                    fixed = false;
                    break;
                }
            }
            if fixed {
                found = Some(l);
                break;
            }
        }
        let Some(c) = found else {
            // No column qualifies: no joint element anywhere.
            return (false, stats);
        };
        stats.side_words += 1;
        ids = (0..rows)
            .filter_map(|i| ids.get(i * d + c).copied())
            .collect();
        if ids.is_empty() {
            return (false, stats);
        }
    }

    // Direct check of the lone candidate (2 words).
    stats.side_words += 2;
    let id = ids[0];
    (inst.x[id] == 1 && inst.y[id] == 1, stats)
}

/// Rank-aware exact oracle: projection onto the row space of `A`, truncated
/// to the top-k directions by singular value but *excluding* numerically
/// null directions (so "fixed by P" tests are exact).
pub fn exact_rowspace_oracle(a: &Matrix, k: usize) -> Matrix {
    let dec = svd(a).expect("oracle SVD");
    let rank = dec.rank(1e-9).min(k);
    let v = dec.top_right_vectors(rank);
    v.matmul(&v.transpose()).expect("square")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlra_util::Rng;

    fn run(
        m: usize,
        d: usize,
        variant: DisjVariant,
        intersecting: bool,
        seed: u64,
    ) -> (bool, ReductionStats) {
        let mut rng = Rng::new(seed);
        let inst = TwoDisjInstance::generate(m, intersecting, &mut rng);
        solve_disj_via_pca(&inst, d, 3, variant, &mut exact_rowspace_oracle)
    }

    #[test]
    fn max_variant_detects_intersection() {
        for seed in 0..5 {
            let (hit, _) = run(256, 8, DisjVariant::Max, true, seed);
            assert!(hit, "missed intersection (seed {seed})");
        }
    }

    #[test]
    fn max_variant_rejects_disjoint() {
        for seed in 0..5 {
            let (hit, _) = run(256, 8, DisjVariant::Max, false, 50 + seed);
            assert!(!hit, "false intersection (seed {seed})");
        }
    }

    #[test]
    fn huber_variant_matches_max() {
        for seed in 0..3 {
            let (hit, _) = run(128, 4, DisjVariant::Huber, true, 90 + seed);
            assert!(hit);
            let (miss, _) = run(128, 4, DisjVariant::Huber, false, 95 + seed);
            assert!(!miss);
        }
    }

    #[test]
    fn oracle_calls_logarithmic_side_words_tiny() {
        let (hit, stats) = run(4096, 16, DisjVariant::Max, true, 11);
        assert!(hit);
        assert!(stats.rounds <= 4, "rounds {}", stats.rounds);
        assert!(stats.side_words < 12);
    }

    #[test]
    fn rank_structure_of_construction() {
        // Joint element ⇒ rank k; disjoint ⇒ rank k−1.
        let mut rng = Rng::new(13);
        let k = 3;
        for (intersecting, want_rank) in [(true, k), (false, k - 1)] {
            let inst = TwoDisjInstance::generate(64, intersecting, &mut rng);
            let d = 8;
            let rows = 64usize.div_ceil(d);
            let dd = d + k - 2;
            let mut a = Matrix::zeros(rows + 1 + (k - 2), dd);
            for pos in 0..64 {
                let (i, j) = (pos / d, pos % d);
                let fx = 1.0 - inst.x[pos] as f64;
                let fy = 1.0 - inst.y[pos] as f64;
                a[(i, j)] = fx.max(fy);
            }
            for j in 0..d {
                a[(rows, j)] = 1.0;
            }
            a[(rows + 1, d)] = 1.0;
            let dec = svd(&a).unwrap();
            assert_eq!(dec.rank(1e-9), want_rank, "intersecting={intersecting}");
        }
    }
}
