//! Instance generators for the three communication promise problems the
//! lower bounds reduce from.

use dlra_util::Rng;

/// An L∞ promise instance (Theorem 5 / [23]): vectors `x, y ∈ {0..B}ᵐ` with
/// either `|xᵢ − yᵢ| ≤ 1` everywhere, or exactly one coordinate with
/// `|xᵢ − yᵢ| = B` (and `≤ 1` elsewhere).
#[derive(Debug, Clone)]
pub struct LinftyInstance {
    /// Alice's vector.
    pub x: Vec<i64>,
    /// Bob's vector.
    pub y: Vec<i64>,
    /// The gap parameter `B ≥ 2`.
    pub b: i64,
    /// The planted far coordinate, if any.
    pub planted: Option<usize>,
}

impl LinftyInstance {
    /// Generates an instance of dimension `m`; `planted` plants a
    /// `B`-separated coordinate at a random position.
    pub fn generate(m: usize, b: i64, planted: bool, rng: &mut Rng) -> Self {
        assert!(b >= 2, "need B >= 2");
        let x: Vec<i64> = (0..m).map(|_| rng.below(b as u64 - 1) as i64).collect();
        let mut y: Vec<i64> = x
            .iter()
            .map(|&xi| {
                // |x - y| <= 1 baseline.
                let delta = rng.below(3) as i64 - 1;
                (xi + delta).clamp(0, b)
            })
            .collect();
        let planted_at = planted.then(|| {
            let i = rng.index(m);
            // Force |x_i − y_i| = B exactly.
            if x[i] >= b {
                y[i] = x[i] - b;
            } else {
                y[i] = x[i] + b;
            }
            i
        });
        LinftyInstance {
            x,
            y,
            b,
            planted: planted_at,
        }
    }

    /// True iff the promise's "far" case holds.
    pub fn is_far(&self) -> bool {
        self.planted.is_some()
    }
}

/// A 2-DISJ promise instance (Theorem 7 / [24]): binary vectors that either
/// share no common 1, or share exactly one.
#[derive(Debug, Clone)]
pub struct TwoDisjInstance {
    /// Alice's set, as a 0/1 vector.
    pub x: Vec<u8>,
    /// Bob's set.
    pub y: Vec<u8>,
    /// The planted joint coordinate, if any.
    pub joint: Option<usize>,
}

impl TwoDisjInstance {
    /// Generates an instance of dimension `m` with each side holding ~`m/4`
    /// elements; `intersecting` plants exactly one shared element.
    pub fn generate(m: usize, intersecting: bool, rng: &mut Rng) -> Self {
        assert!(m >= 4);
        let mut x = vec![0u8; m];
        let mut y = vec![0u8; m];
        // Disjoint supports: partition a random permutation.
        let mut perm: Vec<usize> = (0..m).collect();
        rng.shuffle(&mut perm);
        let quarter = m / 4;
        for &i in &perm[..quarter] {
            x[i] = 1;
        }
        for &i in &perm[quarter..2 * quarter] {
            y[i] = 1;
        }
        let joint = intersecting.then(|| {
            let i = perm[2 * quarter]; // untouched position
            x[i] = 1;
            y[i] = 1;
            i
        });
        TwoDisjInstance { x, y, joint }
    }

    /// True iff the sets intersect.
    pub fn intersects(&self) -> bool {
        self.joint.is_some()
    }
}

/// A Gap-Hamming / gap-inner-product instance (Theorem 9 / [25], in the
/// form Theorem 8's proof uses): `x, y ∈ {−1,+1}ᵐ` with
/// `⟨x,y⟩ > 2√m` or `⟨x,y⟩ < −2√m` (the paper writes `m = 1/ε²`, gap
/// `±2/ε`).
#[derive(Debug, Clone)]
pub struct GapHammingInstance {
    /// Alice's sign vector.
    pub x: Vec<f64>,
    /// Bob's sign vector.
    pub y: Vec<f64>,
    /// True iff `⟨x,y⟩ > +2√m`.
    pub positive: bool,
}

impl GapHammingInstance {
    /// Generates an instance of dimension `m` with inner product
    /// `±⌈gap_mult·2√m⌉` (`gap_mult ≥ 1` widens the promise gap).
    pub fn generate(m: usize, positive: bool, gap_mult: f64, rng: &mut Rng) -> Self {
        assert!(m >= 16);
        let gap = ((2.0 * (m as f64).sqrt() * gap_mult).ceil() as i64).min(m as i64);
        let target = if positive { gap } else { -gap };
        // agreements a, disagreements b: a + b = m, a − b = target.
        let a = ((m as i64 + target) / 2) as usize;
        let x: Vec<f64> = (0..m)
            .map(|_| if rng.bernoulli(0.5) { 1.0 } else { -1.0 })
            .collect();
        let mut order: Vec<usize> = (0..m).collect();
        rng.shuffle(&mut order);
        let mut y = vec![0.0f64; m];
        for (pos, &i) in order.iter().enumerate() {
            y[i] = if pos < a { x[i] } else { -x[i] };
        }
        GapHammingInstance { x, y, positive }
    }

    /// The exact inner product.
    pub fn inner(&self) -> f64 {
        self.x.iter().zip(&self.y).map(|(a, b)| a * b).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linfty_close_case_promise() {
        let mut rng = Rng::new(1);
        let inst = LinftyInstance::generate(200, 10, false, &mut rng);
        assert!(!inst.is_far());
        assert!(inst.x.iter().zip(&inst.y).all(|(a, b)| (a - b).abs() <= 1));
    }

    #[test]
    fn linfty_far_case_promise() {
        let mut rng = Rng::new(2);
        let inst = LinftyInstance::generate(200, 10, true, &mut rng);
        let i = inst.planted.unwrap();
        assert_eq!((inst.x[i] - inst.y[i]).abs(), 10);
        let far_count = inst
            .x
            .iter()
            .zip(&inst.y)
            .filter(|(a, b)| (*a - *b).abs() > 1)
            .count();
        assert_eq!(far_count, 1);
        assert!(inst.x.iter().all(|&v| v >= 0));
        assert!(inst.y.iter().all(|&v| v >= 0));
    }

    #[test]
    fn disj_cases() {
        let mut rng = Rng::new(3);
        let empty = TwoDisjInstance::generate(100, false, &mut rng);
        assert!(!empty.intersects());
        let common: usize = empty
            .x
            .iter()
            .zip(&empty.y)
            .filter(|(a, b)| **a == 1 && **b == 1)
            .count();
        assert_eq!(common, 0);

        let one = TwoDisjInstance::generate(100, true, &mut rng);
        let common: usize = one
            .x
            .iter()
            .zip(&one.y)
            .filter(|(a, b)| **a == 1 && **b == 1)
            .count();
        assert_eq!(common, 1);
        assert_eq!(one.x.iter().position(|&v| v == 1).map(|_| ()), Some(()));
    }

    #[test]
    fn ghd_gap_respected() {
        let mut rng = Rng::new(4);
        for positive in [true, false] {
            let inst = GapHammingInstance::generate(400, positive, 1.0, &mut rng);
            let ip = inst.inner();
            let gap = 2.0 * 400f64.sqrt();
            if positive {
                assert!(ip >= gap, "ip {ip}");
            } else {
                assert!(ip <= -gap, "ip {ip}");
            }
            assert!(inst.x.iter().all(|&v| v == 1.0 || v == -1.0));
            assert!(inst.y.iter().all(|&v| v == 1.0 || v == -1.0));
        }
    }
}
