//! **Extension beyond the paper**: adaptive multi-round row sampling
//! (Deshpande–Vempala-style) in the distributed setting.
//!
//! The paper's Algorithm 1 samples all `r` rows against the *original*
//! row-norm distribution, giving additive error `ε‖A‖²_F`, and its §IX asks
//! "whether there are more efficient protocols even with additive error".
//! Adaptive sampling is the classical answer in the centralized setting:
//! sample a batch, project it out, and resample against the *residual*
//! `A(I − P)` — after `t` rounds the additive term decays like
//! `εᵗ‖A‖² + O(ε)‖A − [A]ₖ‖²`, approaching a relative-error guarantee.
//!
//! In the generalized partition model this works whenever `f` is **linear**
//! (`f = identity`): the residual is `A(I−P) = Σₜ Aᵗ(I−P)`, so after the
//! coordinator broadcasts the current basis `V` (`d·k` words), every server
//! can form its residual share locally and the same Z-sampling machinery
//! applies to the residual's implicit aggregate. For nonlinear `f` the
//! residual is not a sum of local matrices, which is exactly why the paper
//! stops at one-shot sampling — we document the boundary with a runtime
//! check.

use crate::fkv::{build_b_matrix, SampledRow};
use crate::functions::EntryFunction;
use crate::model::{MatrixServer, PartitionModel};
use crate::{CoreError, Result};
use dlra_comm::{Collectives, LedgerSnapshot};
use dlra_linalg::{orthonormalize_columns, svd, Projector};
use dlra_sampler::{Square, ZSampler, ZSamplerParams};
use dlra_util::Rng;

/// Configuration for adaptive sampling.
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// Target rank.
    pub k: usize,
    /// Sampling rounds (1 = plain Algorithm 1).
    pub rounds: usize,
    /// Rows sampled per round.
    pub r_per_round: usize,
    /// Z-sampler tuning for each round.
    pub params: ZSamplerParams,
    /// Root seed.
    pub seed: u64,
}

/// Output of the adaptive protocol.
#[derive(Debug, Clone)]
pub struct AdaptiveOutput {
    /// Final rank-≤k projection, stored factored (`projection.basis()` is
    /// the broadcast wire format).
    pub projection: Projector,
    /// Communication consumed across all rounds.
    pub comm: LedgerSnapshot,
    /// Row indices sampled per round.
    pub rows_per_round: Vec<Vec<usize>>,
}

/// Runs adaptive distributed sampling on any substrate. Requires
/// `f = Identity` (see the module docs for why nonlinear `f` cannot be
/// supported).
pub fn run_adaptive<C: Collectives<MatrixServer>>(
    model: &mut PartitionModel<C>,
    cfg: &AdaptiveConfig,
) -> Result<AdaptiveOutput> {
    if model.entry_function() != EntryFunction::Identity {
        return Err(CoreError::InvalidConfig(
            "adaptive sampling requires f = identity (residuals of nonlinear \
             f are not sums of local matrices)"
                .into(),
        ));
    }
    let (n, d) = model.shape();
    if cfg.k == 0 || cfg.k > d {
        return Err(CoreError::InvalidConfig(format!(
            "k = {} out of range for d = {d}",
            cfg.k
        )));
    }
    if cfg.rounds == 0 || cfg.r_per_round == 0 {
        return Err(CoreError::InvalidConfig(
            "rounds and r_per_round must be >= 1".into(),
        ));
    }

    let before = model.cluster().comm();
    let mut rng = Rng::new(cfg.seed ^ 0xADA9_7EED);
    // Accumulated sampled rows (raw aggregated, with probabilities from the
    // round in which each was drawn) and the current basis.
    let mut all_rows: Vec<SampledRow> = Vec::new();
    let mut basis: Option<Projector> = None; // factored VVᵀ, V d × c
    let mut rows_per_round = Vec::new();

    for round in 0..cfg.rounds {
        // 1. Broadcast the current basis so every server forms its local
        //    residual share Aᵗ(I − VVᵀ). Round 0 samples the raw matrix.
        //    The wire format is unchanged by the factored projector: what
        //    travels is the `d × c` basis `V` itself (a `Matrix` payload,
        //    charged at full wire words, message clones sharing storage);
        //    each server rebuilds the projector locally.
        if let Some(p) = &basis {
            model
                .cluster_mut()
                .broadcast(p.basis(), "adaptive.basis", move |_t, server, m| {
                    server.set_residual_basis(m);
                });
        }

        // 2. Z-sample entries of the residual (z = x², the identity-f case).
        let zsampler = ZSampler::new(cfg.params.clone(), cfg.seed ^ ((round as u64 + 1) << 24));
        let prepared = zsampler.prepare(model.cluster_mut(), &Square);
        if prepared.is_empty() {
            // Residual is (numerically) zero: we are done early.
            break;
        }
        let draws = prepared.draw_many(cfg.r_per_round, &mut rng);
        if draws.is_empty() {
            break;
        }
        let indices: Vec<usize> = draws.iter().map(|dr| dr.coord as usize / d).collect();
        rows_per_round.push(indices.clone());

        // 3. Fetch the *original* rows (the FKV matrix B must approximate A,
        //    not the residual) but weight by the residual probabilities.
        let fetched = crate::algorithm1::fetch_global_rows(model, &indices)?;
        let z_hat = prepared.z_hat();
        for row in fetched {
            // Residual z-mass of the row under the current basis.
            let resid = match &basis {
                None => row.raw.clone(),
                Some(p) => p.residual_row(&row.raw),
            };
            let zmass: f64 = resid.iter().map(|x| x * x).sum();
            let q = (zmass / z_hat).clamp(1e-12, 1.0);
            all_rows.push(SampledRow {
                index: row.index,
                values: row.values,
                q_hat: q,
            });
        }

        // 4. Extend the basis with the top directions of the sampled rows.
        let b = build_b_matrix(&all_rows)?;
        let dec = svd(&b)?;
        let take = cfg.k.min(dec.s.len());
        let mut candidate = dec.top_right_vectors(take);
        if let Some(p) = &basis {
            candidate = p.basis().hstack(&candidate)?;
        }
        let ortho = orthonormalize_columns(&candidate);
        // Keep at most 2k directions between rounds to bound the broadcast.
        let keep = (2 * cfg.k).min(ortho.cols());
        basis = Some(Projector::from_basis(ortho.select_col_block(0, keep)));
    }

    // Clear residual bases (local cleanup).
    for t in 0..model.num_servers() {
        model
            .cluster_mut()
            .with_local_mut(t, MatrixServer::clear_residual);
    }

    // Final projection: top-k right singular space of the accumulated B.
    if all_rows.is_empty() {
        return Err(CoreError::SamplerExhausted);
    }
    let b = build_b_matrix(&all_rows)?;
    let dec = svd(&b)?;
    let projection = dec.top_right_projector(cfg.k.min(dec.s.len()));
    let _ = n;
    Ok(AdaptiveOutput {
        projection,
        comm: model.cluster().comm().since(&before),
        rows_per_round,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::evaluate_projection;
    use dlra_linalg::Matrix;

    fn shared_model(seed: u64) -> (PartitionModel, Matrix) {
        let mut rng = Rng::new(seed);
        // Strong rank-3 signal + moderate noise: adaptive rounds should
        // sharpen the tail.
        let u = Matrix::gaussian(400, 3, &mut rng).scaled(3.0);
        let v = Matrix::gaussian(3, 24, &mut rng);
        let mut a = u.matmul(&v).unwrap();
        a.add_assign(&Matrix::gaussian(400, 24, &mut rng).scaled(0.4))
            .unwrap();
        let parts = dlra_sampler_split(&a, 4, &mut rng);
        (
            PartitionModel::new(parts, EntryFunction::Identity).unwrap(),
            a,
        )
    }

    fn dlra_sampler_split(a: &Matrix, s: usize, rng: &mut Rng) -> Vec<Matrix> {
        let (n, d) = a.shape();
        let mut parts: Vec<Matrix> = (0..s - 1)
            .map(|_| Matrix::gaussian(n, d, rng).scaled(0.2))
            .collect();
        let mut last = a.clone();
        for p in &parts {
            last = last.sub(p).unwrap();
        }
        parts.push(last);
        parts
    }

    #[test]
    fn broadcast_basis_round_trips_through_projector() {
        // The residual weighting the coordinator applies (Projector::
        // residual_row) and the view the servers install (set_residual_
        // basis) must agree: x(I − VVᵀ) computed both ways.
        let mut rng = Rng::new(1);
        let v = orthonormalize_columns(&Matrix::gaussian(8, 3, &mut rng));
        let p = Projector::from_basis(v.clone());
        let a = Matrix::gaussian(5, 8, &mut rng);
        let server_view = p.residual(&a).unwrap();
        for i in 0..5 {
            let coord_view = p.residual_row(a.row(i));
            for (x, y) in coord_view.iter().zip(server_view.row(i)) {
                assert!((x - y).abs() < 1e-12, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn rejects_nonlinear_f() {
        let parts = vec![Matrix::identity(4)];
        let mut m = PartitionModel::new(parts, EntryFunction::Huber { k: 1.0 }).unwrap();
        let cfg = AdaptiveConfig {
            k: 2,
            rounds: 2,
            r_per_round: 10,
            params: ZSamplerParams::default(),
            seed: 0,
        };
        assert!(run_adaptive(&mut m, &cfg).is_err());
    }

    #[test]
    fn multi_round_beats_single_round_at_equal_budget() {
        // 2×30 adaptive rows vs 1×60 one-shot rows: averaged over seeds the
        // adaptive variant should not be worse (usually better: the second
        // batch targets the unexplained directions).
        let mut adaptive_total = 0.0;
        let mut oneshot_total = 0.0;
        let trials = 4;
        for t in 0..trials {
            let (mut m1, a) = shared_model(100 + t);
            let (mut m2, _) = shared_model(100 + t);
            let base = AdaptiveConfig {
                k: 3,
                rounds: 1,
                r_per_round: 60,
                params: ZSamplerParams::default(),
                seed: 7 + t,
            };
            let adaptive = AdaptiveConfig {
                rounds: 2,
                r_per_round: 30,
                ..base.clone()
            };
            let o1 = run_adaptive(&mut m1, &base).unwrap();
            let o2 = run_adaptive(&mut m2, &adaptive).unwrap();
            oneshot_total += o1.projection.residual_sq(&a).unwrap();
            adaptive_total += o2.projection.residual_sq(&a).unwrap();
        }
        assert!(
            adaptive_total <= oneshot_total * 1.15,
            "adaptive {adaptive_total} vs one-shot {oneshot_total}"
        );
    }

    #[test]
    fn achieves_small_additive_error() {
        let (mut m, a) = shared_model(9);
        let cfg = AdaptiveConfig {
            k: 3,
            rounds: 3,
            r_per_round: 40,
            params: ZSamplerParams::default(),
            seed: 11,
        };
        let out = run_adaptive(&mut m, &cfg).unwrap();
        let eval = evaluate_projection(&a, &out.projection, 3).unwrap();
        assert!(eval.additive_error < 0.1, "{}", eval.additive_error);
        assert_eq!(out.rows_per_round.len(), 3);
        assert!(out.comm.total_words() > 0);
    }

    #[test]
    fn early_exit_on_exact_low_rank() {
        // Exactly rank-2 data: after round 1 captures it, the residual is
        // ~zero and the sampler finds (almost) nothing; the protocol must
        // still return a valid projection.
        let mut rng = Rng::new(13);
        let u = Matrix::gaussian(120, 2, &mut rng);
        let v = Matrix::gaussian(2, 10, &mut rng);
        let a = u.matmul(&v).unwrap();
        let parts = dlra_sampler_split(&a, 3, &mut rng);
        let mut m = PartitionModel::new(parts, EntryFunction::Identity).unwrap();
        let cfg = AdaptiveConfig {
            k: 2,
            rounds: 4,
            r_per_round: 40,
            params: ZSamplerParams::default(),
            seed: 15,
        };
        let out = run_adaptive(&mut m, &cfg).unwrap();
        let eval = evaluate_projection(&a, &out.projection, 2).unwrap();
        assert!(eval.additive_error < 1e-3, "{}", eval.additive_error);
    }
}
