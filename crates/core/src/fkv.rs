//! The Frieze–Kannan–Vempala sampling-based low-rank step (§III).
//!
//! Given `r` sampled rows of the global matrix with (approximately) reported
//! probabilities `Q̂`, build `B ∈ ℝʳˣᵈ` with `Bᵢ′ = Aᵢ / √(r·Q̂ᵢ)` and take
//! the projection onto `B`'s top-k right singular space. Lemmas 1–3 of the
//! paper bound `‖AᵀA − BᵀB‖_F` and turn that into the additive-error
//! guarantee; the unit tests here exercise those lemmas numerically.

use crate::{CoreError, Result};
use dlra_linalg::{svd, Matrix, Projector};

/// One sampled global row with its reported probability.
#[derive(Debug, Clone)]
pub struct SampledRow {
    /// Row index in the global matrix.
    pub index: usize,
    /// The global row `Aᵢ = f(Σₜ Aᵗᵢ)` (post-`f`).
    pub values: Vec<f64>,
    /// Reported probability `Q̂ᵢ ∈ (1±γ)·Qᵢ`.
    pub q_hat: f64,
}

/// Builds the rescaled sample matrix `B` (Algorithm 1 line 7).
pub fn build_b_matrix(rows: &[SampledRow]) -> Result<Matrix> {
    if rows.is_empty() {
        return Err(CoreError::SamplerExhausted);
    }
    let d = rows[0].values.len();
    let r = rows.len();
    let mut b = Matrix::zeros(r, d);
    for (i, row) in rows.iter().enumerate() {
        if row.values.len() != d {
            return Err(CoreError::InvalidModel(format!(
                "sampled row {i} has {} entries, expected {d}",
                row.values.len()
            )));
        }
        if row.q_hat <= 0.0 || !row.q_hat.is_finite() || row.q_hat.is_nan() {
            return Err(CoreError::InvalidModel(format!(
                "sampled row {i} has invalid probability {}",
                row.q_hat
            )));
        }
        let scale = 1.0 / (r as f64 * row.q_hat).sqrt();
        for (j, &v) in row.values.iter().enumerate() {
            b[(i, j)] = v * scale;
        }
    }
    Ok(b)
}

/// Top-k right singular projection of `B` (Algorithm 1 line 8): returns
/// the factored `P = VVᵀ` and `‖BP‖²_F`; the captured energy drives the
/// boosting comparison of §IV. The `d × d` matrix is never materialized —
/// `V` itself is what protocols ship and apply.
pub fn fkv_projection(b: &Matrix, k: usize) -> Result<(Projector, f64)> {
    if k == 0 {
        return Err(CoreError::InvalidConfig("k must be positive".into()));
    }
    let dec = svd(b)?;
    let p = dec.top_right_projector(k);
    let captured: f64 = dec.s.iter().take(k).map(|x| x * x).sum();
    Ok((p, captured))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlra_linalg::best_rank_k;
    use dlra_util::Rng;

    fn exact_row_sampler(a: &Matrix, r: usize, rng: &mut Rng) -> Vec<SampledRow> {
        let weights = a.row_norms_sq();
        let total: f64 = weights.iter().sum();
        (0..r)
            .map(|_| {
                let i = rng.weighted_index(&weights);
                SampledRow {
                    index: i,
                    values: a.row(i).to_vec(),
                    q_hat: weights[i] / total,
                }
            })
            .collect()
    }

    #[test]
    fn b_matrix_scaling() {
        let rows = vec![
            SampledRow {
                index: 0,
                values: vec![2.0, 0.0],
                q_hat: 0.5,
            },
            SampledRow {
                index: 1,
                values: vec![0.0, 3.0],
                q_hat: 0.5,
            },
        ];
        let b = build_b_matrix(&rows).unwrap();
        // scale = 1/sqrt(2 * 0.5) = 1.
        assert_eq!(b[(0, 0)], 2.0);
        assert_eq!(b[(1, 1)], 3.0);
    }

    #[test]
    fn b_matrix_rejects_bad_input() {
        assert!(matches!(
            build_b_matrix(&[]),
            Err(CoreError::SamplerExhausted)
        ));
        let bad_q = vec![SampledRow {
            index: 0,
            values: vec![1.0],
            q_hat: 0.0,
        }];
        assert!(build_b_matrix(&bad_q).is_err());
        let ragged = vec![
            SampledRow {
                index: 0,
                values: vec![1.0, 2.0],
                q_hat: 0.5,
            },
            SampledRow {
                index: 1,
                values: vec![1.0],
                q_hat: 0.5,
            },
        ];
        assert!(build_b_matrix(&ragged).is_err());
    }

    #[test]
    fn btb_is_unbiased_estimate_of_ata() {
        // E[BᵀB] = AᵀA when probabilities are exact (Lemma 3's core fact).
        let mut rng = Rng::new(5);
        let a = Matrix::gaussian(60, 6, &mut rng);
        let ata = a.gram();
        let mut acc = Matrix::zeros(6, 6);
        let trials = 300;
        for _ in 0..trials {
            let rows = exact_row_sampler(&a, 20, &mut rng);
            let b = build_b_matrix(&rows).unwrap();
            acc.add_assign(&b.gram()).unwrap();
        }
        acc.scale(1.0 / trials as f64);
        let diff = acc.sub(&ata).unwrap().frobenius_norm();
        assert!(
            diff < 0.1 * ata.frobenius_norm(),
            "bias {diff} vs {}",
            ata.frobenius_norm()
        );
    }

    #[test]
    fn fkv_achieves_additive_error_on_low_rank_plus_noise() {
        let mut rng = Rng::new(7);
        let k = 3;
        // Planted rank-3 + small noise, 200 × 16.
        let u = Matrix::gaussian(200, k, &mut rng);
        let v = Matrix::gaussian(k, 16, &mut rng);
        let mut a = u.matmul(&v).unwrap();
        a.add_assign(&Matrix::gaussian(200, 16, &mut rng).scaled(0.05))
            .unwrap();

        let best = best_rank_k(&a, k).unwrap();
        let r = 80; // ≈ k²/ε² with ε ≈ 1/3
        let rows = exact_row_sampler(&a, r, &mut rng);
        let b = build_b_matrix(&rows).unwrap();
        let (p, _) = fkv_projection(&b, k).unwrap();
        let res = p.residual_sq(&a).unwrap();
        let additive = (res - best.error_sq) / best.total_sq;
        assert!(
            additive < 0.15,
            "additive error {additive} too large (res {res}, best {})",
            best.error_sq
        );
    }

    #[test]
    fn fkv_tolerates_approximate_probabilities() {
        // Lemma 3: (1±γ) mis-reported probabilities only cost O(γ).
        let mut rng = Rng::new(9);
        let k = 2;
        let u = Matrix::gaussian(150, k, &mut rng);
        let v = Matrix::gaussian(k, 12, &mut rng);
        let a = u.matmul(&v).unwrap();
        let best = best_rank_k(&a, k).unwrap();

        let mut rows = exact_row_sampler(&a, 60, &mut rng);
        for row in rows.iter_mut() {
            let gamma = rng.range_f64(-0.15, 0.15);
            row.q_hat *= 1.0 + gamma;
        }
        let b = build_b_matrix(&rows).unwrap();
        let (p, _) = fkv_projection(&b, k).unwrap();
        let res = p.residual_sq(&a).unwrap();
        let additive = (res - best.error_sq) / best.total_sq;
        assert!(additive < 0.2, "additive error {additive}");
    }

    #[test]
    fn captured_energy_increases_with_k() {
        let mut rng = Rng::new(11);
        let b = Matrix::gaussian(30, 8, &mut rng);
        let mut prev = 0.0;
        for k in 1..=8 {
            let (_, cap) = fkv_projection(&b, k).unwrap();
            assert!(cap >= prev - 1e-9);
            prev = cap;
        }
        assert!((prev - b.frobenius_norm_sq()).abs() < 1e-7);
    }

    #[test]
    fn fkv_rejects_k_zero() {
        let b = Matrix::identity(3);
        assert!(fkv_projection(&b, 0).is_err());
    }
}
