//! The error quantities the paper's evaluation reports (§VIII):
//!
//! * actual additive error `|‖A−AP‖²_F − ‖A−[A]ₖ‖²_F| / ‖A‖²_F`
//! * actual relative error `‖A−AP‖²_F / ‖A−[A]ₖ‖²_F`
//! * theoretical additive-error prediction `k²/r`

use crate::Result;
use dlra_linalg::{best_rank_k_error_sq, Matrix, Projector};

/// Error report for one projection against the true global matrix.
#[derive(Debug, Clone, Copy)]
pub struct EvalReport {
    /// `‖A − AP‖²_F`.
    pub residual_sq: f64,
    /// `‖A − [A]ₖ‖²_F` (Eckart–Young optimum).
    pub best_error_sq: f64,
    /// `‖A‖²_F`.
    pub total_sq: f64,
    /// `(‖A−AP‖²_F − ‖A−[A]ₖ‖²_F) / ‖A‖²_F` — Figure 1's y-axis.
    pub additive_error: f64,
    /// `‖A−AP‖²_F / ‖A−[A]ₖ‖²_F` — Figure 2's y-axis
    /// (`f64::INFINITY` when the best error is zero and the residual isn't).
    pub relative_error: f64,
}

/// Evaluates a factored projection `P = VVᵀ` against the global matrix `A`
/// for rank `k`; the residual is computed through the basis (`O(ndk)`),
/// never through a dense `d × d` matrix.
///
/// This requires a full SVD of `A` and is evaluation-only: the paper's
/// protocols never see `A` in one place.
pub fn evaluate_projection(a: &Matrix, p: &Projector, k: usize) -> Result<EvalReport> {
    let residual_sq = p.residual_sq(a)?;
    evaluate_with_residual(a, residual_sq, k)
}

/// [`evaluate_projection`] for an arbitrary **dense** `d × d` projection
/// matrix (adversarial sweeps and hand-built projections in tests; protocol
/// outputs are factored and use [`evaluate_projection`]).
pub fn evaluate_dense_projection(a: &Matrix, p: &Matrix, k: usize) -> Result<EvalReport> {
    let residual_sq = dlra_linalg::residual_sq(a, p)?;
    evaluate_with_residual(a, residual_sq, k)
}

fn evaluate_with_residual(a: &Matrix, residual_sq: f64, k: usize) -> Result<EvalReport> {
    let best_error_sq = best_rank_k_error_sq(a, k)?;
    let total_sq = a.frobenius_norm_sq();
    let additive_error = if total_sq > 0.0 {
        (residual_sq - best_error_sq).abs() / total_sq
    } else {
        0.0
    };
    let relative_error = if best_error_sq > 1e-12 * total_sq.max(1e-300) {
        residual_sq / best_error_sq
    } else if residual_sq <= 1e-12 * total_sq.max(1e-300) {
        1.0
    } else {
        f64::INFINITY
    };
    Ok(EvalReport {
        residual_sq,
        best_error_sq,
        total_sq,
        additive_error,
        relative_error,
    })
}

/// The paper's theoretical additive-error prediction when sampling `r` rows
/// for rank `k`: "If we sample r rows, we predict the additive error will be
/// k²/r" (§VIII).
pub fn predicted_additive_error(k: usize, r: usize) -> f64 {
    (k * k) as f64 / r as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlra_linalg::best_rank_k;
    use dlra_util::Rng;

    #[test]
    fn optimal_projection_scores_zero_additive() {
        let mut rng = Rng::new(1);
        let a = Matrix::gaussian(30, 8, &mut rng);
        let approx = best_rank_k(&a, 3).unwrap();
        let rep = evaluate_projection(&a, &approx.projection, 3).unwrap();
        assert!(rep.additive_error < 1e-9, "{}", rep.additive_error);
        assert!((rep.relative_error - 1.0).abs() < 1e-6);
    }

    #[test]
    fn bad_projection_scores_poorly() {
        let mut rng = Rng::new(2);
        // Strongly anisotropic matrix; projecting onto the wrong axis hurts.
        let a = Matrix::from_fn(40, 4, |i, j| {
            if j == 0 {
                (i + 1) as f64
            } else {
                0.01 * rng.gaussian()
            }
        });
        // Projection onto e₂ (misses the dominant direction); exercises
        // the dense-matrix evaluation path.
        let mut p = Matrix::zeros(4, 4);
        p[(1, 1)] = 1.0;
        let rep = evaluate_dense_projection(&a, &p, 1).unwrap();
        assert!(rep.additive_error > 0.5, "{}", rep.additive_error);
        assert!(rep.relative_error > 100.0, "{}", rep.relative_error);
    }

    #[test]
    fn exact_low_rank_relative_error_defined_as_one() {
        let mut rng = Rng::new(3);
        let u = Matrix::gaussian(20, 2, &mut rng);
        let v = Matrix::gaussian(2, 6, &mut rng);
        let a = u.matmul(&v).unwrap();
        let approx = best_rank_k(&a, 2).unwrap();
        let rep = evaluate_projection(&a, &approx.projection, 2).unwrap();
        // ‖A−[A]₂‖ = 0 and the residual is also ~0 → defined as 1.
        assert_eq!(rep.relative_error, 1.0);
    }

    #[test]
    fn zero_matrix_is_trivially_approximated() {
        let a = Matrix::zeros(5, 3);
        let rep = evaluate_projection(&a, &Projector::zero(3), 1).unwrap();
        assert_eq!(rep.additive_error, 0.0);
        let rep = evaluate_dense_projection(&a, &Matrix::zeros(3, 3), 1).unwrap();
        assert_eq!(rep.additive_error, 0.0);
    }

    #[test]
    fn dense_and_factored_paths_agree() {
        let mut rng = Rng::new(9);
        let a = Matrix::gaussian(25, 7, &mut rng);
        let approx = best_rank_k(&a, 3).unwrap();
        let fac = evaluate_projection(&a, &approx.projection, 3).unwrap();
        let den = evaluate_dense_projection(&a, &approx.projection.to_dense(), 3).unwrap();
        assert!((fac.residual_sq - den.residual_sq).abs() < 1e-8);
        assert!((fac.additive_error - den.additive_error).abs() < 1e-10);
    }

    #[test]
    fn prediction_formula() {
        assert_eq!(predicted_additive_error(3, 90), 0.1);
        assert_eq!(predicted_additive_error(10, 100), 1.0);
    }
}
