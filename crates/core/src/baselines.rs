//! Prior-work baseline: distributed PCA in the **row partition model**
//! ([8], [9] — Feldman–Schmidt–Sohler / Liang et al. style).
//!
//! Each server holds a *disjoint set of rows* of the global matrix and
//! ships a local SVD summary (its top-`t` scaled right singular vectors);
//! stacking the summaries and taking the top-k right singular space yields
//! a relative-error approximation with `t = O(k/ε)`.
//!
//! This is the model the paper's related-work section contrasts against:
//! the technique fundamentally requires rows to live wholly on one server,
//! so it *cannot run* in the generalized partition model (where every entry
//! is a sum across servers passed through a nonlinearity) — which is why
//! Algorithm 1's sampling approach is needed. The type signature here makes
//! that visible: the input is a list of row blocks, not a
//! [`crate::PartitionModel`].

use crate::{CoreError, Result};
use dlra_comm::{Cluster, LedgerSnapshot};
use dlra_linalg::{svd, Matrix, Projector};

/// Output of the row-partition protocol.
#[derive(Debug, Clone)]
pub struct RowPartitionOutput {
    /// Rank-≤k projection, stored factored as its `d × k` basis.
    pub projection: Projector,
    /// Communication consumed (the per-server summaries).
    pub comm: LedgerSnapshot,
    /// Summary rank `t` each server transmitted.
    pub t: usize,
}

/// Runs the row-partition distributed PCA baseline.
///
/// * `row_blocks` — per-server row blocks (arbitrary row counts, equal
///   column counts); their vertical concatenation is the global matrix;
/// * `k` — target rank;
/// * `t` — per-server summary rank (`t ≥ k`; `t = ⌈k/ε⌉` for `(1+ε)`
///   relative error).
pub fn row_partition_pca(
    row_blocks: Vec<Matrix>,
    k: usize,
    t: usize,
) -> Result<RowPartitionOutput> {
    if row_blocks.is_empty() {
        return Err(CoreError::InvalidModel("no servers".into()));
    }
    let d = row_blocks[0].cols();
    if row_blocks.iter().any(|b| b.cols() != d) {
        return Err(CoreError::InvalidModel(
            "row blocks must share a column count".into(),
        ));
    }
    if k == 0 || t < k || k > d {
        return Err(CoreError::InvalidConfig(format!(
            "need 1 <= k <= t and k <= d (k={k}, t={t}, d={d})"
        )));
    }

    let mut cluster = Cluster::new(row_blocks);
    // Each server ships the top-t rows of Σ·Vᵀ from its local SVD — a t×d
    // matrix whose Gram equals the truncated local Gram.
    let summaries = cluster.gather("rowpart.summary", |_t, block| {
        let dec = svd(block).expect("local SVD");
        let keep = t.min(dec.s.len());
        let mut summary = Matrix::zeros(keep, d);
        for i in 0..keep {
            for j in 0..d {
                summary[(i, j)] = dec.s[i] * dec.vt[(i, j)];
            }
        }
        summary.as_slice().to_vec()
    });

    // Coordinator stacks the summaries and takes the global top-k.
    let total_rows: usize = summaries.iter().map(|s| s.len() / d).sum();
    let mut stacked = Matrix::zeros(total_rows, d);
    let mut at = 0;
    for s in summaries {
        for chunk in s.chunks_exact(d) {
            stacked.row_mut(at).copy_from_slice(chunk);
            at += 1;
        }
    }
    let dec = svd(&stacked)?;
    let projection = dec.top_right_projector(k);
    Ok(RowPartitionOutput {
        projection,
        comm: cluster.comm(),
        t,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::evaluate_projection;
    use dlra_util::Rng;

    fn row_partitioned(
        n: usize,
        d: usize,
        k: usize,
        s: usize,
        noise: f64,
        seed: u64,
    ) -> (Vec<Matrix>, Matrix) {
        let mut rng = Rng::new(seed);
        let u = Matrix::gaussian(n, k, &mut rng);
        let v = Matrix::gaussian(k, d, &mut rng);
        let mut a = u.matmul(&v).unwrap();
        a.add_assign(&Matrix::gaussian(n, d, &mut rng).scaled(noise))
            .unwrap();
        let per = n / s;
        let blocks: Vec<Matrix> = (0..s)
            .map(|t| {
                let lo = t * per;
                let hi = if t == s - 1 { n } else { (t + 1) * per };
                a.select_rows(&(lo..hi).collect::<Vec<_>>())
            })
            .collect();
        (blocks, a)
    }

    #[test]
    fn near_relative_error_on_low_rank_data() {
        let (blocks, a) = row_partitioned(240, 20, 3, 6, 0.05, 1);
        let out = row_partition_pca(blocks, 3, 12).unwrap();
        let eval = evaluate_projection(&a, &out.projection, 3).unwrap();
        assert!(
            eval.relative_error < 1.1,
            "relative {}",
            eval.relative_error
        );
    }

    #[test]
    fn summary_rank_tradeoff() {
        // Bigger t → no worse error.
        let (blocks, a) = row_partitioned(300, 24, 4, 5, 0.3, 2);
        let small = row_partition_pca(blocks.clone(), 4, 4).unwrap();
        let big = row_partition_pca(blocks, 4, 20).unwrap();
        let e_small = evaluate_projection(&a, &small.projection, 4).unwrap();
        let e_big = evaluate_projection(&a, &big.projection, 4).unwrap();
        assert!(e_big.relative_error <= e_small.relative_error + 0.05);
        assert!(big.comm.total_words() > small.comm.total_words());
    }

    #[test]
    fn communication_is_t_times_d_per_server() {
        let (blocks, _) = row_partitioned(200, 16, 2, 4, 0.1, 3);
        let t = 8;
        let out = row_partition_pca(blocks, 2, t).unwrap();
        // 3 non-coordinator servers × (t·d + frame).
        assert_eq!(out.comm.upstream_words, 3 * (t as u64 * 16 + 1));
    }

    #[test]
    fn validates_input() {
        assert!(row_partition_pca(vec![], 2, 4).is_err());
        let blocks = vec![Matrix::zeros(5, 4), Matrix::zeros(5, 3)];
        assert!(row_partition_pca(blocks, 2, 4).is_err());
        let blocks = vec![Matrix::zeros(5, 4)];
        assert!(row_partition_pca(blocks.clone(), 0, 4).is_err());
        assert!(row_partition_pca(blocks.clone(), 3, 2).is_err());
        assert!(row_partition_pca(blocks, 5, 8).is_err());
    }

    #[test]
    fn uneven_blocks_supported() {
        let mut rng = Rng::new(4);
        let blocks = vec![
            Matrix::gaussian(10, 6, &mut rng),
            Matrix::gaussian(37, 6, &mut rng),
            Matrix::gaussian(1, 6, &mut rng),
        ];
        let a = blocks[0]
            .vstack(&blocks[1])
            .unwrap()
            .vstack(&blocks[2])
            .unwrap();
        let out = row_partition_pca(blocks, 2, 6).unwrap();
        let eval = evaluate_projection(&a, &out.projection, 2).unwrap();
        assert!(eval.relative_error < 2.0);
    }
}
