//! The entrywise functions `f` of the generalized partition model, paired
//! with the property-P `z` each application samples by (`z = f²`).
//!
//! Table I of the paper lists the ψ-functions of the M-estimators:
//!
//! | Huber | L1−L2 | "Fair" |
//! |---|---|---|
//! | `k·sgn(x)` if `|x| > k`, else `x` | `x/(1 + x²/2)^{1/2}` | `x/(1 + |x|/c)` |

use dlra_sampler::{FairSq, HuberSq, L1L2Sq, PowerAbs, Square, ZFn};

/// An entrywise function `f : ℝ → ℝ` applied to the aggregated matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EntryFunction {
    /// `f(x) = x` — the arbitrary partition model of [7] as a special case.
    Identity,
    /// `f(x) = x^{1/p}` applied to locally p-th-powered, `1/s`-scaled
    /// absolute entries — together computing the softmax
    /// `GM(|M¹|,…,|Mˢ|)` of §VI-B. Entries reaching `f` are nonnegative.
    GmRoot {
        /// The generalized-mean exponent `p ≥ 1`.
        p: f64,
    },
    /// Huber ψ-function with threshold `k` (robust PCA, §VI-C).
    Huber {
        /// Capping threshold `k > 0`.
        k: f64,
    },
    /// L1−L2 ψ-function (saturates at √2).
    L1L2,
    /// "Fair" ψ-function with scale `c` (saturates at `c`).
    Fair {
        /// Scale parameter `c > 0`.
        c: f64,
    },
    /// `f = max` across servers — included for the lower-bound experiments;
    /// the paper proves relative-error PCA for it needs Ω̃(nd) bits and
    /// recommends approximating it by `GmRoot` with large `p`.
    Max,
}

impl EntryFunction {
    /// Applies `f` to an aggregated entry.
    ///
    /// `Max` cannot be computed from the sum alone and must go through
    /// [`crate::model::PartitionModel::global_matrix`], which evaluates it
    /// from the local entries; calling `apply` on it panics.
    pub fn apply(&self, x: f64) -> f64 {
        match *self {
            EntryFunction::Identity => x,
            EntryFunction::GmRoot { p } => {
                debug_assert!(x >= -1e-12, "GmRoot input must be nonnegative, got {x}");
                x.max(0.0).powf(1.0 / p)
            }
            EntryFunction::Huber { k } => {
                if x.abs() > k {
                    k * x.signum()
                } else {
                    x
                }
            }
            EntryFunction::L1L2 => x / (1.0 + x * x / 2.0).sqrt(),
            EntryFunction::Fair { c } => x / (1.0 + x.abs() / c),
            EntryFunction::Max => {
                panic!("EntryFunction::Max is not a function of the entry sum")
            }
        }
    }

    /// The property-P function `z` with `z = f²`, used by the sampler.
    /// `None` for `Max` (the paper's point: sample via `GmRoot` instead).
    pub fn z_fn(&self) -> Option<Box<dyn ZFn>> {
        match *self {
            EntryFunction::Identity => Some(Box::new(Square)),
            EntryFunction::GmRoot { p } => Some(Box::new(PowerAbs::from_gm_p(p))),
            EntryFunction::Huber { k } => Some(Box::new(HuberSq { k })),
            EntryFunction::L1L2 => Some(Box::new(L1L2Sq)),
            EntryFunction::Fair { c } => Some(Box::new(FairSq { c })),
            EntryFunction::Max => None,
        }
    }

    /// The local preprocessing a server applies to its raw entry before the
    /// entries are (implicitly) summed. Identity for everything except the
    /// softmax application, where server `t` stores `|Mᵗ[i,j]|ᵖ / s`
    /// (§VI-B: "server t can locally compute Aᵗ such that
    /// `Aᵗ[i,j] = (Mᵗ[i,j])ᵖ/s`").
    pub fn local_transform(&self, raw: f64, s: usize) -> f64 {
        match *self {
            EntryFunction::GmRoot { p } => raw.abs().powf(p) / s as f64,
            _ => raw,
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            EntryFunction::Identity => "identity",
            EntryFunction::GmRoot { .. } => "gm-root",
            EntryFunction::Huber { .. } => "huber",
            EntryFunction::L1L2 => "l1-l2",
            EntryFunction::Fair { .. } => "fair",
            EntryFunction::Max => "max",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_identity() {
        assert_eq!(EntryFunction::Identity.apply(-3.5), -3.5);
    }

    #[test]
    fn gm_root_and_local_transform_compose_to_gm() {
        // GM(|x1|..|xs|) = (Σ|xi|^p / s)^{1/p}.
        let f = EntryFunction::GmRoot { p: 3.0 };
        let s = 4;
        let raw = [1.0, -2.0, 0.5, 3.0];
        let local_sum: f64 = raw.iter().map(|&x| f.local_transform(x, s)).sum();
        let gm = f.apply(local_sum);
        let expect = ((1.0f64 + 8.0 + 0.125 + 27.0) / 4.0).powf(1.0 / 3.0);
        assert!((gm - expect).abs() < 1e-12);
    }

    #[test]
    fn gm_approaches_max_for_large_p() {
        let s = 5;
        let raw = [0.1, 0.5, 2.0, 1.0, 0.2];
        let f = EntryFunction::GmRoot { p: 40.0 };
        let local_sum: f64 = raw.iter().map(|&x| f.local_transform(x, s)).sum();
        let gm = f.apply(local_sum);
        // GM with huge p ≈ max = 2.0, within the paper's constant factor.
        assert!(gm > 1.8 && gm <= 2.0, "gm {gm}");
    }

    #[test]
    fn huber_caps_symmetrically() {
        let f = EntryFunction::Huber { k: 2.0 };
        assert_eq!(f.apply(1.5), 1.5);
        assert_eq!(f.apply(10.0), 2.0);
        assert_eq!(f.apply(-10.0), -2.0);
        assert_eq!(f.apply(0.0), 0.0);
    }

    #[test]
    fn l1l2_and_fair_are_odd_and_bounded() {
        for &x in &[0.0, 0.5, 3.0, 100.0, 1e6] {
            let l = EntryFunction::L1L2.apply(x);
            assert!((EntryFunction::L1L2.apply(-x) + l).abs() < 1e-12);
            assert!(l.abs() <= 2.0f64.sqrt() + 1e-12);
            let fair = EntryFunction::Fair { c: 3.0 }.apply(x);
            assert!(fair.abs() < 3.0 + 1e-12);
            assert!((EntryFunction::Fair { c: 3.0 }.apply(-x) + fair).abs() < 1e-12);
        }
    }

    #[test]
    fn z_fn_matches_f_squared() {
        let cases: Vec<EntryFunction> = vec![
            EntryFunction::Identity,
            EntryFunction::GmRoot { p: 2.0 },
            EntryFunction::GmRoot { p: 5.0 },
            EntryFunction::Huber { k: 1.5 },
            EntryFunction::L1L2,
            EntryFunction::Fair { c: 2.0 },
        ];
        for f in cases {
            let z = f.z_fn().unwrap();
            let xs: Vec<f64> = match f {
                // GmRoot inputs are nonnegative local-power sums.
                EntryFunction::GmRoot { .. } => vec![0.0, 0.3, 1.0, 7.5, 100.0],
                _ => vec![-5.0, -0.7, 0.0, 0.4, 3.0, 50.0],
            };
            for &x in &xs {
                let want = f.apply(x).powi(2);
                let got = z.z(x);
                assert!(
                    (want - got).abs() <= 1e-9 * want.max(1.0),
                    "{}: z({x}) = {got}, f² = {want}",
                    f.name()
                );
            }
        }
    }

    #[test]
    fn max_has_no_z() {
        assert!(EntryFunction::Max.z_fn().is_none());
    }

    #[test]
    #[should_panic(expected = "not a function of the entry sum")]
    fn max_apply_panics() {
        EntryFunction::Max.apply(1.0);
    }
}
