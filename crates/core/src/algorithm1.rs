//! Algorithm 1 — the distributed PCA framework (§IV).
//!
//! ```text
//! 1: Input: {Aᵗ ∈ ℝⁿˣᵈ}, k, ε
//! 3: r = Θ(k²/ε²)
//! 4-6: sample rows i₁..iᵣ of A, sampler reports Q̂ ∈ (1±γ)Q
//! 7:   every server sends its part of each sampled row to server 1,
//!      which assembles B with Bᵢ′ = Aᵢ / √(r·Q̂ᵢ)
//! 8:   P = VVᵀ from B's top-k right singular vectors
//! ```
//!
//! Success boosting (§IV): repeat the protocol `O(log 1/δ)` times and keep
//! the `P` with maximum `‖BP‖²_F`.

use crate::fkv::{build_b_matrix, fkv_projection, SampledRow};
use crate::functions::EntryFunction;
use crate::model::{MatrixServer, PartitionModel};
use crate::{CoreError, InterruptReason, Result};
use dlra_comm::{Collectives, LedgerSnapshot};
use dlra_linalg::Projector;
use dlra_sampler::{PreparedSampler, UniformSampler, ZFn, ZSampler, ZSamplerParams};
use dlra_util::Rng;
use std::sync::Arc;

/// Which distributed sampler drives row selection.
#[derive(Debug, Clone)]
pub enum SamplerKind {
    /// The generalized Z-sampler (Algorithms 2–4) with `z = f²` — the
    /// paper's main construction.
    Z(ZSamplerParams),
    /// Uniform row sampling — correct when row norms are near-uniform
    /// (Gaussian random Fourier features, §VI-A).
    Uniform,
    /// Idealized exact-probability sampler (the FKV assumption the paper
    /// relaxes). Sampling itself is an unaccounted oracle; row fetches are
    /// still charged. Baseline for the ablation benches.
    ExactOracle,
}

/// Configuration for one Algorithm 1 run.
#[derive(Debug, Clone)]
pub struct Algorithm1Config {
    /// Target rank `k ≥ 1`.
    pub k: usize,
    /// Number of sampled rows `r = Θ(k²/ε²)`.
    pub r: usize,
    /// Boosting repetitions (keep the best `‖BP‖²_F`); `1` = no boosting.
    pub boost: usize,
    /// The row sampler.
    pub sampler: SamplerKind,
    /// Root seed for all protocol randomness.
    pub seed: u64,
}

impl Default for Algorithm1Config {
    fn default() -> Self {
        Algorithm1Config {
            k: 5,
            r: 50,
            boost: 1,
            sampler: SamplerKind::Z(ZSamplerParams::default()),
            seed: 0xD15A_57E5,
        }
    }
}

impl Algorithm1Config {
    /// The paper's sample count `r = ⌈k²/ε²⌉` for accuracy `eps`.
    pub fn r_for(k: usize, eps: f64) -> usize {
        ((k * k) as f64 / (eps * eps)).ceil() as usize
    }
}

/// Result of an Algorithm 1 run.
#[derive(Debug, Clone)]
pub struct Algorithm1Output {
    /// The rank-≤k projection `P = VVᵀ`, stored factored as its `d × k`
    /// basis (`projection.basis()` is exactly the `V` of line 8; the dense
    /// `d × d` matrix is never materialized on the protocol path).
    pub projection: Projector,
    /// Words/messages/rounds consumed by this run (sampling + row fetches).
    pub comm: LedgerSnapshot,
    /// Row indices actually sampled (with multiplicity), per boost rep kept.
    pub rows: Vec<usize>,
    /// `‖BP‖²_F` of the winning repetition (the boosting score).
    pub captured: f64,
}

/// Validates an [`Algorithm1Config`] against the model's column count.
fn validate_config(cfg: &Algorithm1Config, d: usize) -> Result<()> {
    if cfg.k == 0 {
        return Err(CoreError::InvalidConfig("k must be >= 1".into()));
    }
    if cfg.k > d {
        return Err(CoreError::InvalidConfig(format!(
            "k = {} exceeds column count d = {d}",
            cfg.k
        )));
    }
    if cfg.r == 0 {
        return Err(CoreError::InvalidConfig("r must be >= 1".into()));
    }
    if cfg.boost == 0 {
        return Err(CoreError::InvalidConfig("boost must be >= 1".into()));
    }
    Ok(())
}

/// The boosting loop shared by the planned and unplanned entry points:
/// `sample` produces the rep's rows (lines 4–7), the body builds `B`, takes
/// the top-k right singular space, and keeps the best `‖BP‖²_F`.
///
/// `check` is consulted at the start of every repetition and again between
/// the draw/fetch phase and the local SVD, so a caller-imposed deadline or
/// cancellation interrupts the protocol promptly instead of only at
/// whole-run boundaries. A run that is never interrupted is bit- and
/// ledger-identical to one given the never-stop check.
fn run_boosted<C: Collectives<MatrixServer>>(
    model: &mut PartitionModel<C>,
    cfg: &Algorithm1Config,
    check: &dyn Fn() -> Option<InterruptReason>,
    mut sample: impl FnMut(&mut PartitionModel<C>, u64) -> Result<Vec<SampledRow>>,
) -> Result<Algorithm1Output> {
    let before = model.cluster().comm();
    let mut best: Option<(Projector, f64, Vec<usize>)> = None;
    for rep in 0..cfg.boost {
        if let Some(reason) = check() {
            return Err(CoreError::Interrupted(reason));
        }
        let rep_seed = cfg
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(rep as u64));
        let sampled = sample(model, rep_seed)?;
        if let Some(reason) = check() {
            return Err(CoreError::Interrupted(reason));
        }
        let indices: Vec<usize> = sampled.iter().map(|s| s.index).collect();
        let b = build_b_matrix(&sampled)?;
        let (p, captured) = fkv_projection(&b, cfg.k)?;
        if best.as_ref().is_none_or(|(_, c, _)| captured > *c) {
            best = Some((p, captured, indices));
        }
    }
    let (projection, captured, rows) = best.expect("boost >= 1");
    Ok(Algorithm1Output {
        projection,
        comm: model.cluster().comm().since(&before),
        rows,
        captured,
    })
}

/// Runs Algorithm 1 end to end on a partition model, on any substrate
/// implementing [`Collectives`] (the sequential simulator or the threaded
/// runtime) — the protocol body is identical either way.
///
/// Internally this is prepare-then-execute: the Z-sampled path prepares a
/// [`PreparedZPlan`] per boosting repetition and immediately consumes it,
/// which is bit- and ledger-identical to the historical single-pass code.
/// Callers serving many queries over one resident dataset should prepare
/// once with [`prepare_z_plan`] and execute each query with
/// [`run_algorithm1_with_plan`] instead — the preparation (the expensive,
/// `k`-independent distributed phase) is then paid a single time.
pub fn run_algorithm1<C: Collectives<MatrixServer>>(
    model: &mut PartitionModel<C>,
    cfg: &Algorithm1Config,
) -> Result<Algorithm1Output> {
    run_algorithm1_interruptible(model, cfg, &|| None)
}

/// [`run_algorithm1`] with a caller-supplied stop signal: `check` is polled
/// between protocol phases (each boosting repetition's start, and between
/// its draw/fetch and local SVD), and a `Some(reason)` abandons the run
/// with [`CoreError::Interrupted`]. This is how the serving runtime
/// enforces query deadlines and cancellation *inside* long-running
/// executions rather than only before they start; `check` returning `None`
/// forever reproduces [`run_algorithm1`] bit- and ledger-identically.
pub fn run_algorithm1_interruptible<C: Collectives<MatrixServer>>(
    model: &mut PartitionModel<C>,
    cfg: &Algorithm1Config,
    check: &dyn Fn() -> Option<InterruptReason>,
) -> Result<Algorithm1Output> {
    validate_config(cfg, model.shape().1)?;
    run_boosted(model, cfg, check, |model, rep_seed| {
        sample_rows(model, cfg, rep_seed)
    })
}

/// A shareable execution plan for Algorithm 1's Z-sampled path: the
/// prepared Z-sampler (the `k`-independent distributed phase of the
/// protocol — sketch bundles, coordinate injection, second estimator
/// pass), the exact one-time communication it charged, and the identity it
/// was prepared under. Cloning shares the `Arc`-backed structure; any
/// number of queries may draw from one plan concurrently.
#[derive(Debug, Clone)]
pub struct PreparedZPlan {
    sampler: Arc<PreparedSampler>,
    /// Ledger delta of the preparation (two estimator passes plus the
    /// injection broadcast) — the cost a planner amortizes across queries.
    pub prepare_comm: LedgerSnapshot,
    /// The entrywise `f` the plan was prepared under.
    pub f: EntryFunction,
    /// The sampler parameters the plan was prepared under.
    pub params: ZSamplerParams,
    /// The preparation seed (both estimator passes derive from it).
    pub seed: u64,
}

impl PreparedZPlan {
    /// The shared draw structure.
    pub fn sampler(&self) -> &Arc<PreparedSampler> {
        &self.sampler
    }
}

/// The property-P `z` for the model's `f`, or the error naming the `f`
/// that has none.
fn z_fn_for<C: Collectives<MatrixServer>>(model: &PartitionModel<C>) -> Result<Box<dyn ZFn>> {
    model.entry_function().z_fn().ok_or_else(|| {
        CoreError::InvalidConfig(format!(
            "no property-P z for f = {}; use GmRoot to approximate max",
            model.entry_function().name()
        ))
    })
}

/// Runs the `k`-independent distributed phase once and returns the
/// shareable plan. Deterministic in (data, `params`, `seed`): repeated
/// preparations yield bit-identical plans charging identical ledger
/// deltas, so a planner may cache the result and share it across every
/// query with the same key. Fails with [`CoreError::SamplerExhausted`]
/// when the data has no recoverable mass (exactly as the unplanned path
/// would).
pub fn prepare_z_plan<C: Collectives<MatrixServer>>(
    model: &mut PartitionModel<C>,
    params: &ZSamplerParams,
    seed: u64,
) -> Result<PreparedZPlan> {
    let zfn = z_fn_for(model)?;
    let shared =
        ZSampler::new(params.clone(), seed).prepare_shared(model.cluster_mut(), zfn.as_ref());
    if shared.sampler.is_empty() {
        return Err(CoreError::SamplerExhausted);
    }
    Ok(PreparedZPlan {
        sampler: shared.sampler,
        prepare_comm: shared.prepare_comm,
        f: model.entry_function(),
        params: params.clone(),
        seed,
    })
}

/// Runs Algorithm 1 consuming a pre-prepared sampler: only the per-query
/// phases (probability-proportional draws, row fetches, the FKV step) run;
/// no preparation communication is charged. The returned `comm` therefore
/// covers draw/fetch only — callers account the plan's
/// [`PreparedZPlan::prepare_comm`] once, however many queries consumed it.
///
/// `cfg.sampler` must be [`SamplerKind::Z`] with exactly the plan's
/// parameters, and the model's `f` must match the plan's; mismatches are
/// [`CoreError::InvalidConfig`] (a planner must never serve a query from a
/// foreign plan). When `cfg.boost == 1` and `cfg.seed` equals the plan's
/// prepare seed, the output is bit-identical to [`run_algorithm1`] and
/// `prepare_comm + comm` equals its ledger delta exactly; with boosting,
/// every repetition draws from the one shared preparation instead of
/// re-preparing per repetition.
pub fn run_algorithm1_with_plan<C: Collectives<MatrixServer>>(
    model: &mut PartitionModel<C>,
    cfg: &Algorithm1Config,
    plan: &PreparedZPlan,
) -> Result<Algorithm1Output> {
    run_algorithm1_with_plan_interruptible(model, cfg, plan, &|| None)
}

/// [`run_algorithm1_with_plan`] with a caller-supplied stop signal; see
/// [`run_algorithm1_interruptible`] for the polling contract.
pub fn run_algorithm1_with_plan_interruptible<C: Collectives<MatrixServer>>(
    model: &mut PartitionModel<C>,
    cfg: &Algorithm1Config,
    plan: &PreparedZPlan,
    check: &dyn Fn() -> Option<InterruptReason>,
) -> Result<Algorithm1Output> {
    validate_config(cfg, model.shape().1)?;
    let SamplerKind::Z(params) = &cfg.sampler else {
        return Err(CoreError::InvalidConfig(
            "run_algorithm1_with_plan requires SamplerKind::Z".into(),
        ));
    };
    if *params != plan.params {
        return Err(CoreError::InvalidConfig(
            "plan was prepared under different ZSamplerParams".into(),
        ));
    }
    if plan.f != model.entry_function() {
        return Err(CoreError::InvalidConfig(format!(
            "plan was prepared under f = {}, model has f = {}",
            plan.f.name(),
            model.entry_function().name()
        )));
    }
    run_boosted(model, cfg, check, |model, rep_seed| {
        z_rows_from_plan(model, cfg.r, rep_seed, plan)
    })
}

/// Lines 4–7: draw `r` rows and fetch them from the servers.
fn sample_rows<C: Collectives<MatrixServer>>(
    model: &mut PartitionModel<C>,
    cfg: &Algorithm1Config,
    seed: u64,
) -> Result<Vec<SampledRow>> {
    let n = model.shape().0;
    let mut rng = Rng::new(seed ^ 0xA5A5_A5A5_5A5A_5A5A);
    match &cfg.sampler {
        SamplerKind::Uniform => {
            let sampler = UniformSampler { n: n as u64 };
            let draws = sampler.draw_many(cfg.r, &mut rng);
            let pairs: Vec<(usize, f64)> =
                draws.into_iter().map(|(i, q)| (i as usize, q)).collect();
            Ok(fetch_rows(model, &pairs)?
                .into_iter()
                .map(FetchedRow::into_sampled)
                .collect())
        }
        SamplerKind::ExactOracle => {
            // Oracle: exact row weights from the (evaluation-only) global
            // matrix; fetches still paid.
            let a = model.global_matrix();
            let weights = a.row_norms_sq();
            let total: f64 = weights.iter().sum();
            if total <= 0.0 {
                return Err(CoreError::SamplerExhausted);
            }
            let pairs: Vec<(usize, f64)> = (0..cfg.r)
                .map(|_| {
                    let i = rng.weighted_index(&weights);
                    (i, weights[i] / total)
                })
                .collect();
            Ok(fetch_rows(model, &pairs)?
                .into_iter()
                .map(FetchedRow::into_sampled)
                .collect())
        }
        SamplerKind::Z(params) => {
            // Prepare-then-execute: one plan per repetition, consumed
            // immediately — bit- and ledger-identical to preparing inline.
            let plan = prepare_z_plan(model, params, seed)?;
            z_rows_from_plan(model, cfg.r, seed, &plan)
        }
    }
}

/// Lines 4–7 of the Z-sampled path, given an already-prepared sampler:
/// draw `r` entries, promote each to its row, fetch the rows, and attach
/// the exact `z`-mass probabilities. This is the per-query (plan-consuming)
/// half of the prepare/execute split; all randomness comes from
/// `draw_seed`, never from the plan.
fn z_rows_from_plan<C: Collectives<MatrixServer>>(
    model: &mut PartitionModel<C>,
    r: usize,
    draw_seed: u64,
    plan: &PreparedZPlan,
) -> Result<Vec<SampledRow>> {
    let d = model.shape().1;
    let zfn = z_fn_for(model)?;
    let mut rng = Rng::new(draw_seed ^ 0xA5A5_A5A5_5A5A_5A5A);
    let prepared = plan.sampler();
    if prepared.is_empty() {
        return Err(CoreError::SamplerExhausted);
    }
    let draws = prepared.draw_many(r, &mut rng);
    if draws.is_empty() {
        return Err(CoreError::SamplerExhausted);
    }
    // Entry → row: an entry draw selects its row (§V: "If an entry
    // is sampled, then we choose the entire row as the sample").
    let row_of = |coord: u64| (coord as usize) / d;
    let pairs: Vec<(usize, f64)> = draws
        .iter()
        .map(|dr| (row_of(dr.coord), f64::NAN))
        .collect();
    // Fetch raw rows first; the row's reported probability is its
    // z-mass over Ẑ, computable exactly from the fetched raw row.
    let mut rows = fetch_rows(model, &pairs)?;
    let z_hat = prepared.z_hat();
    for row in rows.iter_mut() {
        let zmass: f64 = row.raw.iter().map(|&x| zfn.z(x)).sum();
        row.q_hat = (zmass / z_hat).min(1.0);
        // NaN-safe: reject zero, negative, and NaN probabilities.
        if row.q_hat <= 0.0 || row.q_hat.is_nan() {
            return Err(CoreError::SamplerExhausted);
        }
    }
    Ok(rows.into_iter().map(FetchedRow::into_sampled).collect())
}

/// Internal extension of [`SampledRow`] carrying the raw (pre-`f`)
/// aggregated row for probability computation.
struct FetchedRow {
    index: usize,
    raw: Vec<f64>,
    values: Vec<f64>,
    q_hat: f64,
}

impl FetchedRow {
    fn into_sampled(self) -> SampledRow {
        SampledRow {
            index: self.index,
            values: self.values,
            q_hat: self.q_hat,
        }
    }
}

/// Algorithm 1 line 7: the coordinator requests each distinct sampled row;
/// every server ships its local part (d words per row), and the coordinator
/// assembles the aggregated raw rows and applies `f`.
fn fetch_rows<C: Collectives<MatrixServer>>(
    model: &mut PartitionModel<C>,
    pairs: &[(usize, f64)],
) -> Result<Vec<FetchedRow>> {
    let d = model.shape().1;
    let mut distinct: Vec<usize> = pairs.iter().map(|&(i, _)| i).collect();
    distinct.sort_unstable();
    distinct.dedup();
    let request: Vec<u64> = distinct.iter().map(|&i| i as u64).collect();
    // Per-server row fragments sum entrywise up the configured topology:
    // under a tree, servers combine partial row sums pairwise and only the
    // aggregate reaches the coordinator.
    let summed = model.cluster_mut().query_aggregate(
        &request,
        "alg1.fetch_rows",
        move |_t, local, req: &Vec<u64>| {
            let mut out = Vec::with_capacity(req.len() * d);
            for &i in req {
                out.extend_from_slice(local.row(i as usize));
            }
            out
        },
        |acc, reply| {
            for (a, v) in acc.iter_mut().zip(reply) {
                *a += v;
            }
        },
    );
    let raw_rows: Vec<Vec<f64>> = summed.chunks_exact(d).map(<[f64]>::to_vec).collect();
    let pos_of = |i: usize| distinct.binary_search(&i).expect("sampled row present");
    Ok(pairs
        .iter()
        .map(|&(i, q)| {
            let raw = raw_rows[pos_of(i)].clone();
            let values = model.apply_f_to_raw_row(&raw);
            FetchedRow {
                index: i,
                raw,
                values,
                q_hat: q,
            }
        })
        .collect())
}

/// A fetched global row: the aggregated raw entries `Σₜ Aᵗᵢ` and the
/// post-`f` values. Public for experiment harnesses that drive the FKV step
/// themselves (e.g. amortizing one sampler preparation across many `k`).
#[derive(Debug, Clone)]
pub struct GlobalRow {
    /// Row index in the global matrix.
    pub index: usize,
    /// Aggregated raw entries (pre-`f`).
    pub raw: Vec<f64>,
    /// The global row `f(raw)`.
    pub values: Vec<f64>,
}

impl GlobalRow {
    /// Attaches a reported probability, producing the FKV input row.
    pub fn into_sampled(self, q_hat: f64) -> SampledRow {
        SampledRow {
            index: self.index,
            values: self.values,
            q_hat,
        }
    }
}

/// Public accounted row fetch (Algorithm 1 line 7): `indices` may repeat;
/// each distinct row is shipped once (d words per server) and reused.
pub fn fetch_global_rows<C: Collectives<MatrixServer>>(
    model: &mut PartitionModel<C>,
    indices: &[usize],
) -> Result<Vec<GlobalRow>> {
    let pairs: Vec<(usize, f64)> = indices.iter().map(|&i| (i, f64::NAN)).collect();
    Ok(fetch_rows(model, &pairs)?
        .into_iter()
        .map(|f| GlobalRow {
            index: f.index,
            raw: f.raw,
            values: f.values,
        })
        .collect())
}

/// Baseline: the communication (in words) of simply shipping every local
/// matrix to the coordinator.
pub fn ship_everything_words<C: Collectives<MatrixServer>>(model: &PartitionModel<C>) -> u64 {
    let (n, d) = model.shape();
    ((model.num_servers() - 1) * n * d) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::EntryFunction;
    use crate::metrics::evaluate_projection;
    use dlra_linalg::lowrank::is_projection_of_rank_at_most;
    use dlra_linalg::Matrix;

    fn low_rank_model(
        s: usize,
        n: usize,
        d: usize,
        k: usize,
        noise: f64,
        seed: u64,
    ) -> PartitionModel {
        let mut rng = Rng::new(seed);
        let u = Matrix::gaussian(n, k, &mut rng);
        let v = Matrix::gaussian(k, d, &mut rng);
        let mut a = u.matmul(&v).unwrap();
        a.add_assign(&Matrix::gaussian(n, d, &mut rng).scaled(noise))
            .unwrap();
        // Additive shares: random parts summing to A.
        let mut parts: Vec<Matrix> = (0..s - 1)
            .map(|_| Matrix::gaussian(n, d, &mut rng))
            .collect();
        let mut last = a;
        for p in &parts {
            last = last.sub(p).unwrap();
        }
        parts.push(last);
        PartitionModel::new(parts, EntryFunction::Identity).unwrap()
    }

    #[test]
    fn validates_config() {
        let mut m = low_rank_model(2, 20, 8, 2, 0.0, 1);
        let bad_k = Algorithm1Config {
            k: 0,
            ..Default::default()
        };
        assert!(run_algorithm1(&mut m, &bad_k).is_err());
        let big_k = Algorithm1Config {
            k: 9,
            ..Default::default()
        };
        assert!(run_algorithm1(&mut m, &big_k).is_err());
        let bad_r = Algorithm1Config {
            k: 2,
            r: 0,
            ..Default::default()
        };
        assert!(run_algorithm1(&mut m, &bad_r).is_err());
    }

    #[test]
    fn exact_oracle_end_to_end() {
        let mut m = low_rank_model(3, 150, 12, 3, 0.05, 2);
        let cfg = Algorithm1Config {
            k: 3,
            r: 80,
            sampler: SamplerKind::ExactOracle,
            ..Default::default()
        };
        let out = run_algorithm1(&mut m, &cfg).unwrap();
        assert!(is_projection_of_rank_at_most(
            &out.projection.to_dense(),
            3,
            1e-7
        ));
        let rep = evaluate_projection(&m.global_matrix(), &out.projection, 3).unwrap();
        assert!(rep.additive_error < 0.15, "additive {}", rep.additive_error);
        assert!(out.comm.total_words() > 0);
        assert_eq!(out.rows.len(), 80);
    }

    #[test]
    fn z_sampler_end_to_end_identity_f() {
        let mut m = low_rank_model(3, 128, 10, 2, 0.05, 3);
        let cfg = Algorithm1Config {
            k: 2,
            r: 60,
            sampler: SamplerKind::Z(ZSamplerParams::default()),
            ..Default::default()
        };
        let out = run_algorithm1(&mut m, &cfg).unwrap();
        let rep = evaluate_projection(&m.global_matrix(), &out.projection, 2).unwrap();
        assert!(rep.additive_error < 0.35, "additive {}", rep.additive_error);
    }

    #[test]
    fn boosting_never_hurts_captured_energy() {
        let mut m1 = low_rank_model(2, 100, 8, 2, 0.2, 4);
        let mut m3 = low_rank_model(2, 100, 8, 2, 0.2, 4);
        let base = Algorithm1Config {
            k: 2,
            r: 30,
            sampler: SamplerKind::ExactOracle,
            seed: 9,
            ..Default::default()
        };
        let boosted = Algorithm1Config {
            boost: 4,
            ..base.clone()
        };
        let o1 = run_algorithm1(&mut m1, &base).unwrap();
        let o3 = run_algorithm1(&mut m3, &boosted).unwrap();
        assert!(o3.captured >= o1.captured - 1e-9);
    }

    #[test]
    fn communication_scales_with_r_and_d() {
        // Theorem 1: row-collection cost is O(s·r·d) words.
        let mut m = low_rank_model(4, 200, 16, 2, 0.1, 5);
        let s = m.num_servers() as u64;
        let cfg = Algorithm1Config {
            k: 2,
            r: 40,
            sampler: SamplerKind::Uniform,
            ..Default::default()
        };
        let out = run_algorithm1(&mut m, &cfg).unwrap();
        let distinct = {
            let mut v = out.rows.clone();
            v.sort_unstable();
            v.dedup();
            v.len() as u64
        };
        // Upstream ≈ (s−1)·distinct·d words (+ frames).
        let expect = (s - 1) * distinct * 16;
        assert!(
            out.comm.upstream_words >= expect && out.comm.upstream_words <= expect + 4 * s * 40,
            "upstream {} vs expected ≈ {expect}",
            out.comm.upstream_words
        );
    }

    #[test]
    fn planned_run_is_bit_identical_to_unplanned() {
        // boost == 1 and matching seeds: prepare-then-execute through an
        // explicit plan must reproduce run_algorithm1 exactly, and the
        // plan's one-time cost plus the execute delta must equal the
        // unplanned ledger delta word for word.
        let cfg = Algorithm1Config {
            k: 2,
            r: 40,
            sampler: SamplerKind::Z(ZSamplerParams::default()),
            seed: 77,
            ..Default::default()
        };
        let mut unplanned = low_rank_model(3, 96, 10, 2, 0.05, 8);
        let want = run_algorithm1(&mut unplanned, &cfg).unwrap();

        let mut planned = low_rank_model(3, 96, 10, 2, 0.05, 8);
        let plan = prepare_z_plan(&mut planned, &ZSamplerParams::default(), 77).unwrap();
        let got = run_algorithm1_with_plan(&mut planned, &cfg, &plan).unwrap();

        assert_eq!(
            got.projection.basis().as_slice(),
            want.projection.basis().as_slice()
        );
        assert_eq!(got.rows, want.rows);
        assert_eq!(got.captured.to_bits(), want.captured.to_bits());
        assert_eq!(plan.prepare_comm + got.comm, want.comm);
    }

    #[test]
    fn one_plan_serves_many_ranks() {
        // The preparation is k-independent: one plan, three ranks, each
        // execution charging only draw/fetch words.
        let mut m = low_rank_model(3, 128, 12, 3, 0.05, 9);
        let plan = prepare_z_plan(&mut m, &ZSamplerParams::default(), 5).unwrap();
        let shared_before = Arc::strong_count(plan.sampler());
        for k in 1..=3 {
            let cfg = Algorithm1Config {
                k,
                r: 50,
                sampler: SamplerKind::Z(ZSamplerParams::default()),
                seed: 5,
                ..Default::default()
            };
            let out = run_algorithm1_with_plan(&mut m, &cfg, &plan).unwrap();
            assert_eq!(out.projection.basis().cols(), k);
            assert!(out.comm.total_words() > 0);
            assert!(out.comm.total_words() < plan.prepare_comm.total_words());
        }
        // Execution borrowed the plan; nothing cloned the structure away.
        assert_eq!(Arc::strong_count(plan.sampler()), shared_before);
    }

    #[test]
    fn boosted_planned_run_prepares_once() {
        // With boosting, every repetition draws from the one shared
        // preparation: the execute delta stays strictly below what two
        // prepare phases would cost.
        let cfg = Algorithm1Config {
            k: 2,
            r: 25,
            boost: 3,
            sampler: SamplerKind::Z(ZSamplerParams::default()),
            seed: 13,
        };
        let mut m = low_rank_model(2, 80, 8, 2, 0.1, 10);
        let plan = prepare_z_plan(&mut m, &ZSamplerParams::default(), 13).unwrap();
        let out = run_algorithm1_with_plan(&mut m, &cfg, &plan).unwrap();
        assert!(out.comm.total_words() < plan.prepare_comm.total_words());
    }

    #[test]
    fn plan_mismatches_are_rejected() {
        let mut m = low_rank_model(2, 60, 8, 2, 0.05, 11);
        let plan = prepare_z_plan(&mut m, &ZSamplerParams::default(), 3).unwrap();

        // Different sampler parameters.
        let other_params = ZSamplerParams {
            hh_width: 64,
            ..ZSamplerParams::default()
        };
        let cfg = Algorithm1Config {
            k: 2,
            r: 20,
            sampler: SamplerKind::Z(other_params),
            seed: 3,
            ..Default::default()
        };
        assert!(matches!(
            run_algorithm1_with_plan(&mut m, &cfg, &plan),
            Err(CoreError::InvalidConfig(_))
        ));

        // Non-Z sampler.
        let cfg = Algorithm1Config {
            k: 2,
            r: 20,
            sampler: SamplerKind::Uniform,
            seed: 3,
            ..Default::default()
        };
        assert!(matches!(
            run_algorithm1_with_plan(&mut m, &cfg, &plan),
            Err(CoreError::InvalidConfig(_))
        ));

        // Different entrywise f.
        let mut rng = Rng::new(12);
        let parts: Vec<Matrix> = (0..2).map(|_| Matrix::gaussian(60, 8, &mut rng)).collect();
        let mut huber = PartitionModel::new(parts, EntryFunction::Huber { k: 2.0 }).unwrap();
        let cfg = Algorithm1Config {
            k: 2,
            r: 20,
            sampler: SamplerKind::Z(ZSamplerParams::default()),
            seed: 3,
            ..Default::default()
        };
        assert!(matches!(
            run_algorithm1_with_plan(&mut huber, &cfg, &plan),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn zero_matrix_reports_exhausted() {
        let parts = vec![Matrix::zeros(10, 4); 2];
        let mut m = PartitionModel::new(parts, EntryFunction::Identity).unwrap();
        let cfg = Algorithm1Config {
            k: 1,
            r: 5,
            ..Default::default()
        };
        assert!(matches!(
            run_algorithm1(&mut m, &cfg),
            Err(CoreError::SamplerExhausted)
        ));
    }

    #[test]
    fn ship_everything_baseline() {
        let m = low_rank_model(4, 50, 8, 2, 0.0, 6);
        assert_eq!(ship_everything_words(&m), 3 * 50 * 8);
    }
}
