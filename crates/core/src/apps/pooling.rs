//! Softmax / generalized-mean (P-norm) pooling PCA (§VI-B).
//!
//! Each server holds raw per-image patch-code counts `Mᵗ ∈ ℝⁿˣᵈ` (its share
//! of the pooling); the global matrix is `A[i,j] = GM(|M¹[i,j]|,…,|Mˢ[i,j]|)`
//! with parameter `p` — average pooling at `p = 1`, square-root pooling at
//! `p = 2`, and an approximation of max pooling as `p` grows (the paper uses
//! `P ∈ {1, 2, 5, 20}`). Server `t` locally stores `|Mᵗ|ᵖ/s`, `f(x) =
//! x^{1/p}`, and sampling uses `z(x) = x^{2/p}` (ℓ_{2/p} sampling), whose
//! communication is independent of `p` — so `p = Θ(log nd)` softmax can
//! stand in for the provably-expensive exact max (§VII).

use crate::algorithm1::{run_algorithm1, Algorithm1Config, Algorithm1Output, SamplerKind};
use crate::model::PartitionModel;
use crate::Result;
use dlra_linalg::Matrix;
use dlra_sampler::ZSamplerParams;

/// Runs distributed GM-pooling PCA end to end.
///
/// * `raw` — per-server raw pooled counts `Mᵗ` (same `n × d` shape each);
/// * `p` — the GM exponent (`1` = average pooling, large ≈ max pooling);
/// * `k`, `r` — target rank and sample count;
/// * `params` — Z-sampler tuning (communication budget knob);
/// * `seed` — protocol randomness.
///
/// Returns the Algorithm 1 output together with the constructed model (for
/// evaluation against `model.global_matrix()`).
pub fn run_gm_pooling_pca(
    raw: Vec<Matrix>,
    p: f64,
    k: usize,
    r: usize,
    params: ZSamplerParams,
    seed: u64,
) -> Result<(Algorithm1Output, PartitionModel)> {
    let mut model = PartitionModel::gm_pooling(raw, p)?;
    let cfg = Algorithm1Config {
        k,
        r,
        boost: 1,
        sampler: SamplerKind::Z(params),
        seed,
    };
    let out = run_algorithm1(&mut model, &cfg)?;
    Ok((out, model))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::evaluate_projection;
    use dlra_util::Rng;

    /// Synthetic pooled 1-of-K codes: Zipf-popular codewords, per-image
    /// patches distributed across servers.
    fn pooled_codes(
        s: usize,
        n: usize,
        d: usize,
        patches_per_image: usize,
        seed: u64,
    ) -> Vec<Matrix> {
        let mut rng = Rng::new(seed);
        // Zipfian codeword weights with per-image topic tilt.
        let base: Vec<f64> = (0..d).map(|j| 1.0 / (1.0 + j as f64)).collect();
        let mut parts = vec![Matrix::zeros(n, d); s];
        for i in 0..n {
            let topic = rng.index(4);
            let mut w = base.clone();
            for (j, wj) in w.iter_mut().enumerate() {
                if j % 4 == topic {
                    *wj *= 6.0;
                }
            }
            for _ in 0..patches_per_image {
                let j = rng.weighted_index(&w);
                let t = rng.index(s);
                parts[t][(i, j)] += 1.0;
            }
        }
        parts
    }

    #[test]
    fn average_pooling_end_to_end() {
        let raw = pooled_codes(3, 120, 24, 40, 1);
        let (out, model) =
            run_gm_pooling_pca(raw, 1.0, 3, 80, ZSamplerParams::default(), 2).unwrap();
        let rep = evaluate_projection(&model.global_matrix(), &out.projection, 3).unwrap();
        assert!(rep.additive_error < 0.3, "additive {}", rep.additive_error);
        assert!(out.comm.total_words() > 0);
    }

    #[test]
    fn high_p_approximates_max_pooling() {
        let raw = pooled_codes(3, 60, 16, 30, 3);
        let (_, model) =
            run_gm_pooling_pca(raw.clone(), 20.0, 2, 40, ZSamplerParams::default(), 4).unwrap();
        let gm = model.global_matrix();
        // GM with p=20 must be within [c·max, max] entrywise, c' ∈ (0,1).
        for i in 0..gm.rows() {
            for j in 0..gm.cols() {
                let mx = raw.iter().map(|m| m[(i, j)].abs()).fold(0.0, f64::max);
                let g = gm[(i, j)];
                assert!(g <= mx + 1e-9, "GM {g} > max {mx}");
                if mx > 0.0 {
                    assert!(g >= 0.8 * mx, "GM {g} << max {mx} at ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn p_two_square_root_pooling() {
        let raw = pooled_codes(2, 80, 16, 25, 5);
        let (out, model) =
            run_gm_pooling_pca(raw, 2.0, 2, 60, ZSamplerParams::default(), 6).unwrap();
        let rep = evaluate_projection(&model.global_matrix(), &out.projection, 2).unwrap();
        assert!(rep.additive_error < 0.35, "additive {}", rep.additive_error);
    }
}
