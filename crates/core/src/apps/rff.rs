//! Gaussian random Fourier features (§VI-A).
//!
//! Raw data `M = Σₜ Mᵗ ∈ ℝⁿˣᵐ` is partitioned arbitrarily; the matrix to
//! approximate is the RFF expansion `A[i,j] = √2·cos((Mᵢ·Z)ⱼ + bⱼ)` with
//! `Z ∈ ℝᵐˣᵈ` i.i.d. `N(0,1)` (scaled by the kernel bandwidth) and `b`
//! uniform on `[0, 2π]`. Because `E[A²ᵢⱼ] = 1`, every row satisfies
//! `‖Aᵢ‖² ≈ d`, so **uniform** row sampling meets the FKV condition and the
//! only communication is collecting `Θ(k²/ε²)` raw rows of `M` (the
//! expansion happens at the coordinator and at evaluation time).

use crate::fkv::{build_b_matrix, fkv_projection, SampledRow};
use crate::model::{MatrixServer, PartitionModel};
use crate::{CoreError, Result};
use dlra_comm::{Collectives, LedgerSnapshot};
use dlra_linalg::{Matrix, Projector};
use dlra_sampler::UniformSampler;
use dlra_util::Rng;

/// A sampled random Fourier feature map `x ↦ √2·cos(xᵀZ + b)`.
#[derive(Debug, Clone)]
pub struct RffMap {
    z: Matrix,
    b: Vec<f64>,
}

impl RffMap {
    /// Draws a map from `ℝᵐ` to `ℝᵈ` approximating the Gaussian RBF kernel
    /// `exp(−‖x−y‖²/(2σ²))`; `sigma` is the bandwidth (`1.0` reproduces the
    /// paper's `e^{−‖x−y‖²/2}`).
    pub fn new(m: usize, d: usize, sigma: f64, seed: u64) -> Self {
        assert!(sigma > 0.0, "bandwidth must be positive");
        let mut rng = Rng::new(seed);
        let z = Matrix::from_fn(m, d, |_, _| rng.gaussian() / sigma);
        let b = (0..d)
            .map(|_| rng.range_f64(0.0, 2.0 * std::f64::consts::PI))
            .collect();
        RffMap { z, b }
    }

    /// Input dimension `m`.
    pub fn input_dim(&self) -> usize {
        self.z.rows()
    }

    /// Feature dimension `d`.
    pub fn feature_dim(&self) -> usize {
        self.z.cols()
    }

    /// Expands one raw row.
    pub fn expand_row(&self, x: &[f64]) -> Vec<f64> {
        let proj = self.z.transpose().matvec(x).expect("input dim matches");
        proj.iter()
            .zip(&self.b)
            .map(|(&p, &b)| std::f64::consts::SQRT_2 * (p + b).cos())
            .collect()
    }

    /// Expands a whole matrix row-by-row (evaluation helper).
    pub fn expand_matrix(&self, m: &Matrix) -> Matrix {
        let rows: Vec<Vec<f64>> = (0..m.rows()).map(|i| self.expand_row(m.row(i))).collect();
        Matrix::from_rows(&rows).expect("uniform expansion width")
    }

    /// The approximate kernel value `φ(x)ᵀφ(y)/d` (for tests; converges to
    /// the Gaussian RBF kernel as `d → ∞`).
    pub fn kernel_estimate(&self, x: &[f64], y: &[f64]) -> f64 {
        let fx = self.expand_row(x);
        let fy = self.expand_row(y);
        fx.iter().zip(&fy).map(|(a, b)| a * b).sum::<f64>() / self.feature_dim() as f64
    }
}

/// Output of the distributed RFF-PCA protocol.
#[derive(Debug, Clone)]
pub struct RffPcaOutput {
    /// Rank-≤k projection in feature space, stored factored as its
    /// `d × k` basis.
    pub projection: Projector,
    /// Communication consumed (raw-row collection).
    pub comm: LedgerSnapshot,
    /// Sampled row indices (with multiplicity).
    pub rows: Vec<usize>,
}

/// Distributed PCA of the RFF expansion: uniformly sample `r` rows of the
/// raw data, collect and aggregate them at the coordinator, expand, and run
/// the FKV step with `Q̂ᵢ = 1/n`.
///
/// `raw_model` must be an `Identity` partition model over the raw data `M`.
pub fn run_rff_pca<C: Collectives<MatrixServer>>(
    raw_model: &mut PartitionModel<C>,
    map: &RffMap,
    k: usize,
    r: usize,
    seed: u64,
) -> Result<RffPcaOutput> {
    let (n, m) = raw_model.shape();
    if map.input_dim() != m {
        return Err(CoreError::InvalidConfig(format!(
            "RFF map expects {} input dims, raw data has {m}",
            map.input_dim()
        )));
    }
    if k == 0 || k > map.feature_dim() {
        return Err(CoreError::InvalidConfig(format!(
            "k = {k} out of range for feature dim {}",
            map.feature_dim()
        )));
    }
    if r == 0 {
        return Err(CoreError::InvalidConfig("r must be >= 1".into()));
    }
    let before = raw_model.cluster().comm();
    let mut rng = Rng::new(seed);
    let sampler = UniformSampler { n: n as u64 };
    let draws = sampler.draw_many(r, &mut rng);
    let mut indices: Vec<usize> = draws.iter().map(|&(i, _)| i as usize).collect();
    let mut distinct = indices.clone();
    distinct.sort_unstable();
    distinct.dedup();

    // Collect raw rows (m words per server per distinct row).
    let request: Vec<u64> = distinct.iter().map(|&i| i as u64).collect();
    let replies = raw_model.cluster_mut().query_all(
        &request,
        "rff.fetch_rows",
        move |_t, local, req: &Vec<u64>| {
            let mut out = Vec::with_capacity(req.len() * m);
            for &i in req {
                out.extend_from_slice(local.row(i as usize));
            }
            out
        },
    );
    let mut raw_rows = vec![vec![0.0f64; m]; distinct.len()];
    for reply in replies {
        for (ri, chunk) in reply.chunks_exact(m).enumerate() {
            for (acc, &v) in raw_rows[ri].iter_mut().zip(chunk) {
                *acc += v;
            }
        }
    }

    // Expand at the coordinator and run the FKV step with uniform Q.
    let q = 1.0 / n as f64;
    let sampled: Vec<SampledRow> = indices
        .iter()
        .map(|&i| {
            let pos = distinct.binary_search(&i).expect("present");
            SampledRow {
                index: i,
                values: map.expand_row(&raw_rows[pos]),
                q_hat: q,
            }
        })
        .collect();
    let b = build_b_matrix(&sampled)?;
    let (projection, _) = fkv_projection(&b, k)?;
    indices.shrink_to_fit();
    Ok(RffPcaOutput {
        projection,
        comm: raw_model.cluster().comm().since(&before),
        rows: indices,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::EntryFunction;
    use crate::metrics::evaluate_projection;

    fn clustered_raw(n: usize, m: usize, seed: u64) -> Matrix {
        // A few Gaussian clusters so the kernel matrix has structure.
        let mut rng = Rng::new(seed);
        let centers: Vec<Vec<f64>> = (0..4)
            .map(|_| (0..m).map(|_| rng.gaussian() * 2.0).collect())
            .collect();
        Matrix::from_fn(n, m, |i, j| centers[i % 4][j] + 0.3 * rng.gaussian())
    }

    fn split_additively(a: &Matrix, s: usize, seed: u64) -> Vec<Matrix> {
        let mut rng = Rng::new(seed);
        let (n, m) = a.shape();
        let mut parts: Vec<Matrix> = (0..s - 1)
            .map(|_| Matrix::gaussian(n, m, &mut rng).scaled(0.5))
            .collect();
        let mut last = a.clone();
        for p in &parts {
            last = last.sub(p).unwrap();
        }
        parts.push(last);
        parts
    }

    #[test]
    fn kernel_estimate_matches_rbf() {
        let map = RffMap::new(6, 4096, 1.0, 1);
        let x = vec![0.5, -0.2, 0.1, 0.0, 0.3, -0.4];
        let y = vec![0.1, 0.1, -0.1, 0.2, 0.0, -0.1];
        let dist2: f64 = x
            .iter()
            .zip(&y)
            .map(|(a, b): (&f64, &f64)| (a - b).powi(2))
            .sum();
        let want = (-dist2 / 2.0).exp();
        let got = map.kernel_estimate(&x, &y);
        assert!((got - want).abs() < 0.05, "got {got} want {want}");
    }

    #[test]
    fn feature_rows_have_near_uniform_norms() {
        let raw = clustered_raw(50, 6, 2);
        let map = RffMap::new(6, 256, 1.0, 3);
        let feats = map.expand_matrix(&raw);
        for i in 0..feats.rows() {
            let norm = feats.row_norm_sq(i);
            // E = d = 256; allow ±40%.
            assert!((150.0..360.0).contains(&norm), "row {i} norm {norm}");
        }
    }

    #[test]
    fn end_to_end_rff_pca() {
        let n = 300;
        let raw = clustered_raw(n, 6, 4);
        let parts = split_additively(&raw, 4, 5);
        let mut model = PartitionModel::new(parts, EntryFunction::Identity).unwrap();
        let map = RffMap::new(6, 64, 1.0, 6);
        let k = 6;
        let out = run_rff_pca(&mut model, &map, k, 120, 7).unwrap();

        let global_feats = map.expand_matrix(&model.global_matrix());
        let rep = evaluate_projection(&global_feats, &out.projection, k).unwrap();
        assert!(rep.additive_error < 0.2, "additive {}", rep.additive_error);
        // Communication: ≤ (s−1)·(distinct ≤ r)·(m + 1) words + frames.
        assert!(out.comm.total_words() < 3 * 120 * (6 + 2) * 2);
    }

    #[test]
    fn input_validation() {
        let raw = clustered_raw(20, 6, 8);
        let mut model = PartitionModel::new(vec![raw], EntryFunction::Identity).unwrap();
        let map = RffMap::new(5, 16, 1.0, 9); // wrong input dim
        assert!(run_rff_pca(&mut model, &map, 2, 10, 1).is_err());
        let map = RffMap::new(6, 16, 1.0, 9);
        assert!(run_rff_pca(&mut model, &map, 0, 10, 1).is_err());
        assert!(run_rff_pca(&mut model, &map, 17, 10, 1).is_err());
        assert!(run_rff_pca(&mut model, &map, 2, 0, 1).is_err());
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_rejected() {
        RffMap::new(3, 4, 0.0, 1);
    }
}
