//! Robust PCA via M-estimator ψ-functions (§VI-C).
//!
//! When a few entries of the data are corrupted by huge noise, classic PCA
//! latches onto them. Applying a saturating ψ entrywise (Huber, L1−L2,
//! "Fair") caps the damaged entries while preserving benign magnitudes —
//! and since the matrix is arbitrarily partitioned, *no single server can
//! detect the outliers locally*; the capping must happen on the aggregate,
//! which is exactly what the generalized partition model provides.

use crate::algorithm1::{run_algorithm1, Algorithm1Config, Algorithm1Output, SamplerKind};
use crate::functions::EntryFunction;
use crate::model::PartitionModel;
use crate::Result;
use dlra_linalg::Matrix;
use dlra_sampler::ZSamplerParams;

/// Runs distributed robust PCA with the given ψ-function.
///
/// * `parts` — per-server additive shares of the (corrupted) data;
/// * `psi` — a saturating entry function (`Huber`, `L1L2`, or `Fair`);
/// * `k`, `r`, `params`, `seed` — as in [`run_algorithm1`].
pub fn run_robust_pca(
    parts: Vec<Matrix>,
    psi: EntryFunction,
    k: usize,
    r: usize,
    params: ZSamplerParams,
    seed: u64,
) -> Result<(Algorithm1Output, PartitionModel)> {
    let mut model = PartitionModel::new(parts, psi)?;
    let cfg = Algorithm1Config {
        k,
        r,
        boost: 1,
        sampler: SamplerKind::Z(params),
        seed,
    };
    let out = run_algorithm1(&mut model, &cfg)?;
    Ok((out, model))
}

/// Picks a Huber threshold from benign-scale data: `multiple ×` the median
/// absolute entry of a *local* sample. (A heuristic the experiments use so
/// the threshold tracks the data scale; the paper fixes thresholds
/// implicitly through its ψ normalization.)
pub fn huber_threshold_from(parts: &[Matrix], multiple: f64) -> f64 {
    let mut mags: Vec<f64> = parts
        .iter()
        .flat_map(|m| m.as_slice().iter().map(|x| x.abs()))
        .filter(|&x| x > 0.0)
        .collect();
    if mags.is_empty() {
        return multiple;
    }
    let mid = mags.len() / 2;
    mags.select_nth_unstable_by(mid, |a, b| a.partial_cmp(b).unwrap());
    multiple * mags[mid]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::evaluate_projection;
    use dlra_util::Rng;

    /// Low-rank data with a handful of wildly corrupted entries, split
    /// additively so no server sees the corruption alone.
    fn corrupted_low_rank(
        s: usize,
        n: usize,
        d: usize,
        k: usize,
        outliers: usize,
        seed: u64,
    ) -> (Vec<Matrix>, Matrix) {
        let mut rng = Rng::new(seed);
        let u = Matrix::gaussian(n, k, &mut rng);
        let v = Matrix::gaussian(k, d, &mut rng);
        let clean = u.matmul(&v).unwrap();
        let mut dirty = clean.clone();
        for _ in 0..outliers {
            let i = rng.index(n);
            let j = rng.index(d);
            dirty[(i, j)] = 1e4 * (1.0 + rng.f64());
        }
        let mut parts: Vec<Matrix> = (0..s - 1)
            .map(|_| Matrix::gaussian(n, d, &mut rng))
            .collect();
        let mut last = dirty;
        for p in &parts {
            last = last.sub(p).unwrap();
        }
        parts.push(last);
        (parts, clean)
    }

    #[test]
    fn huber_filters_outliers_plain_pca_does_not() {
        let (parts, _clean) = corrupted_low_rank(3, 150, 16, 2, 12, 1);
        let k = 2;
        let r = 80;

        // Identity f: outliers dominate the spectrum, additive error of the
        // clean-signal subspace measured on the capped matrix is awful.
        let psi = EntryFunction::Huber { k: 10.0 };
        let (out, model) =
            run_robust_pca(parts.clone(), psi, k, r, ZSamplerParams::default(), 2).unwrap();
        let capped = model.global_matrix();
        assert!(capped.max_abs() <= 10.0 + 1e-9, "ψ must cap all entries");
        let rep = evaluate_projection(&capped, &out.projection, k).unwrap();
        assert!(rep.additive_error < 0.3, "additive {}", rep.additive_error);
    }

    #[test]
    fn capped_matrix_close_to_clean_signal() {
        // With benign entries below the threshold, ψ(A) differs from the
        // clean matrix only at the corrupted cells.
        let (parts, clean) = corrupted_low_rank(2, 60, 10, 2, 5, 3);
        let psi = EntryFunction::Huber {
            k: huber_threshold_from(&parts, 50.0).min(50.0),
        };
        let model = PartitionModel::new(parts, psi).unwrap();
        let capped = model.global_matrix();
        let mut differing = 0;
        for i in 0..60 {
            for j in 0..10 {
                if (capped[(i, j)] - clean[(i, j)]).abs() > 1e-6 {
                    differing += 1;
                }
            }
        }
        assert!(differing <= 25, "too many entries perturbed: {differing}");
    }

    #[test]
    fn fair_and_l1l2_also_run() {
        let (parts, _) = corrupted_low_rank(2, 80, 12, 2, 6, 5);
        for psi in [EntryFunction::Fair { c: 4.0 }, EntryFunction::L1L2] {
            let (out, model) =
                run_robust_pca(parts.clone(), psi, 2, 60, ZSamplerParams::default(), 7).unwrap();
            let rep = evaluate_projection(&model.global_matrix(), &out.projection, 2).unwrap();
            assert!(
                rep.additive_error < 0.4,
                "{}: additive {}",
                psi.name(),
                rep.additive_error
            );
        }
    }

    #[test]
    fn threshold_heuristic_scales_with_data() {
        let mut rng = Rng::new(9);
        let m = Matrix::gaussian(50, 10, &mut rng).scaled(3.0);
        let t = huber_threshold_from(&[m], 2.0);
        // Median |N(0,3)| ≈ 3·0.674 ≈ 2.02; doubled ≈ 4.
        assert!((3.0..5.5).contains(&t), "threshold {t}");
        assert_eq!(huber_threshold_from(&[Matrix::zeros(3, 3)], 2.0), 2.0);
    }
}
