//! The paper's applications (§VI): Gaussian random Fourier features,
//! softmax / generalized-mean pooling, and M-estimator robust PCA.

pub mod pooling;
pub mod rff;
pub mod robust;

pub use pooling::run_gm_pooling_pca;
pub use rff::{run_rff_pca, RffMap};
pub use robust::run_robust_pca;
