//! # dlra-core — Distributed low-rank approximation of implicit functions of a matrix
//!
//! Reproduction of Woodruff & Zhong, *Distributed Low Rank Approximation of
//! Implicit Functions of a Matrix*, ICDE 2016 (arXiv:1601.07721).
//!
//! `s` servers each hold a local matrix `Aᵗ ∈ ℝⁿˣᵈ`; the global matrix is
//! implicit: `A[i,j] = f(Σₜ Aᵗ[i,j])` for an entrywise `f` known to all
//! servers (the **generalized partition model**, [`model`]). This crate
//! implements the paper's Algorithm 1 ([`algorithm1`]): sample
//! `r = Θ(k²/ε²)` rows with probability approximately proportional to their
//! squared norms (via the generalized distributed sampler of `dlra-sampler`,
//! a uniform sampler, or an idealized exact oracle), rescale them into a
//! small matrix `B`, and output the projection `P = VVᵀ` onto `B`'s top-k
//! right singular space — guaranteeing the additive-error bound
//! `‖A − AP‖²_F ≤ ‖A − [A]ₖ‖²_F + O(ε)·‖A‖²_F` (Theorem 1).
//!
//! The applications of §VI are in [`apps`]:
//! Gaussian random Fourier features (uniform sampling), softmax /
//! generalized-mean pooling (ℓ_{2/p} sampling of locally powered entries),
//! and robust PCA via M-estimator ψ-functions.
//!
//! ```
//! use dlra_core::prelude::*;
//! use dlra_linalg::Matrix;
//! use dlra_util::Rng;
//!
//! // Four servers, additive shares of a low-rank-ish 200×32 matrix.
//! let mut rng = Rng::new(7);
//! let parts: Vec<Matrix> = (0..4).map(|_| Matrix::gaussian(200, 32, &mut rng)).collect();
//! let mut model = PartitionModel::new(parts, EntryFunction::Identity).unwrap();
//!
//! let cfg = Algorithm1Config { k: 5, r: 60, ..Algorithm1Config::default() };
//! let out = run_algorithm1(&mut model, &cfg).unwrap();
//! let report = evaluate_projection(&model.global_matrix(), &out.projection, 5).unwrap();
//! assert!(report.additive_error < 0.5);
//! ```

#![forbid(unsafe_code)]
pub mod adaptive;
pub mod algorithm1;
pub mod apps;
pub mod baselines;
pub mod fkv;
pub mod functions;
pub mod metrics;
pub mod model;
pub mod theory;

pub use adaptive::{run_adaptive, AdaptiveConfig, AdaptiveOutput};
pub use algorithm1::{
    fetch_global_rows, prepare_z_plan, run_algorithm1, run_algorithm1_interruptible,
    run_algorithm1_with_plan, run_algorithm1_with_plan_interruptible, Algorithm1Config,
    Algorithm1Output, GlobalRow, PreparedZPlan, SamplerKind,
};
pub use baselines::{row_partition_pca, RowPartitionOutput};
pub use fkv::{build_b_matrix, fkv_projection, SampledRow};
pub use functions::EntryFunction;
pub use metrics::{evaluate_dense_projection, evaluate_projection, EvalReport};
pub use model::{MatrixServer, PartitionModel};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::algorithm1::{
        prepare_z_plan, run_algorithm1, run_algorithm1_with_plan, Algorithm1Config,
        Algorithm1Output, PreparedZPlan, SamplerKind,
    };
    pub use crate::functions::EntryFunction;
    pub use crate::metrics::{evaluate_dense_projection, evaluate_projection, EvalReport};
    pub use crate::model::{MatrixServer, PartitionModel};
    pub use dlra_linalg::Projector;
}

/// Why an interruptible run was asked to stop mid-protocol; carried by
/// [`CoreError::Interrupted`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterruptReason {
    /// The caller's deadline expired while the protocol was still running.
    Deadline,
    /// The caller cancelled the run.
    Cancelled,
}

/// Errors surfaced by the protocol layer.
#[derive(Debug)]
pub enum CoreError {
    /// Underlying linear-algebra failure.
    Linalg(dlra_linalg::LinalgError),
    /// The model is malformed (mismatched shapes, no servers, …).
    InvalidModel(String),
    /// Bad protocol configuration (k = 0, r = 0, …).
    InvalidConfig(String),
    /// The sampler could not produce any rows (e.g. all-zero data).
    SamplerExhausted,
    /// The serving runtime cannot run the query (executor pool dead or shut
    /// down). Distinct from [`CoreError::InvalidConfig`]: the query itself
    /// may be fine and can be retried against a live runtime.
    RuntimeUnavailable(String),
    /// An interruptible run observed its caller's stop signal mid-protocol
    /// (between sampling rounds) and abandoned the computation; see
    /// [`algorithm1::run_algorithm1_interruptible`].
    Interrupted(InterruptReason),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Linalg(e) => write!(f, "linear algebra: {e}"),
            CoreError::InvalidModel(m) => write!(f, "invalid model: {m}"),
            CoreError::InvalidConfig(m) => write!(f, "invalid config: {m}"),
            CoreError::SamplerExhausted => write!(f, "sampler produced no rows"),
            CoreError::RuntimeUnavailable(m) => write!(f, "runtime unavailable: {m}"),
            CoreError::Interrupted(InterruptReason::Deadline) => {
                write!(f, "interrupted: deadline expired")
            }
            CoreError::Interrupted(InterruptReason::Cancelled) => {
                write!(f, "interrupted: cancelled")
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<dlra_linalg::LinalgError> for CoreError {
    fn from(e: dlra_linalg::LinalgError) -> Self {
        CoreError::Linalg(e)
    }
}

/// Workspace-wide `Result` alias for the protocol layer.
pub type Result<T> = std::result::Result<T, CoreError>;
