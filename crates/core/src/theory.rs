//! Numerical validators for the paper's analysis (§III–IV, Lemmas 1–3 and
//! Theorem 2's sampling guarantee).
//!
//! These functions measure the quantities the proofs bound, so tests (and
//! curious users) can check the *inequalities themselves* on concrete
//! random instances rather than trusting the implementation end to end.

use crate::fkv::SampledRow;
use dlra_linalg::{orthonormalize_columns, projection_from_basis, Matrix};
use dlra_util::Rng;

/// The Gram deviation `‖AᵀA − BᵀB‖_F / ‖A‖²_F` — the θ of §III.
pub fn gram_deviation(a: &Matrix, b: &Matrix) -> f64 {
    let diff = a.gram().sub(&b.gram()).expect("same column count");
    diff.frobenius_norm() / a.frobenius_norm_sq()
}

/// Lemma 1's left side for a given projection: `|‖AP‖²_F − ‖BP‖²_F|`,
/// together with its claimed bound `k·‖AᵀA − BᵀB‖ · 1` expressed via the
/// Frobenius norm (`‖·‖ ≤ ‖·‖_F`): returns `(lhs, k·θ·‖A‖²_F)`.
pub fn lemma1_sides(a: &Matrix, b: &Matrix, p: &Matrix, k: usize) -> (f64, f64) {
    let lhs =
        (a.matmul(p).unwrap().frobenius_norm_sq() - b.matmul(p).unwrap().frobenius_norm_sq()).abs();
    let theta = gram_deviation(a, b);
    (lhs, k as f64 * theta * a.frobenius_norm_sq())
}

/// Lemma 2's conclusion for the projection `P` maximizing `‖BP‖²_F`:
/// returns `(‖A − AP‖²_F, ‖A − [A]ₖ‖²_F + 2·eps·‖A‖²_F)` where `eps` is the
/// supplied uniform bound on `|‖AP′‖² − ‖BP′‖²|/‖A‖²`.
pub fn lemma2_sides(a: &Matrix, p: &Matrix, k: usize, eps: f64) -> (f64, f64) {
    let lhs = dlra_linalg::residual_sq(a, p).unwrap();
    let best = dlra_linalg::best_rank_k_error_sq(a, k).unwrap();
    (lhs, best + 2.0 * eps * a.frobenius_norm_sq())
}

/// Builds `B` by length-squared sampling with probabilities perturbed by a
/// uniform `(1±gamma)` factor, as Algorithm 1's sampler is allowed to do,
/// and returns the realized Gram deviation (Lemma 3's subject).
pub fn perturbed_sampling_deviation(a: &Matrix, r: usize, gamma: f64, rng: &mut Rng) -> f64 {
    let weights = a.row_norms_sq();
    let total: f64 = weights.iter().sum();
    let rows: Vec<SampledRow> = (0..r)
        .map(|_| {
            let i = rng.weighted_index(&weights);
            let q = weights[i] / total;
            SampledRow {
                index: i,
                values: a.row(i).to_vec(),
                q_hat: q * (1.0 + rng.range_f64(-gamma, gamma)),
            }
        })
        .collect();
    let b = crate::fkv::build_b_matrix(&rows).expect("valid rows");
    gram_deviation(a, &b)
}

/// A uniformly random rank-k projection (for adversarial sweeps in tests).
pub fn random_projection(d: usize, k: usize, rng: &mut Rng) -> Matrix {
    let basis = orthonormalize_columns(&Matrix::gaussian(d, k, rng));
    projection_from_basis(&basis)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlra_linalg::best_rank_k;

    fn test_matrix(rng: &mut Rng) -> Matrix {
        let u = Matrix::gaussian(150, 3, rng);
        let v = Matrix::gaussian(3, 12, rng);
        let mut a = u.matmul(&v).unwrap();
        a.add_assign(&Matrix::gaussian(150, 12, rng).scaled(0.2))
            .unwrap();
        a
    }

    #[test]
    fn lemma1_bound_holds_over_random_projections() {
        // For every rank-k projection: |‖AP‖² − ‖BP‖²| ≤ k·θ·‖A‖²_F.
        let mut rng = Rng::new(1);
        let a = test_matrix(&mut rng);
        let weights = a.row_norms_sq();
        let total: f64 = weights.iter().sum();
        let rows: Vec<SampledRow> = (0..60)
            .map(|_| {
                let i = rng.weighted_index(&weights);
                SampledRow {
                    index: i,
                    values: a.row(i).to_vec(),
                    q_hat: weights[i] / total,
                }
            })
            .collect();
        let b = crate::fkv::build_b_matrix(&rows).unwrap();
        for k in 1..=4 {
            for trial in 0..20 {
                let p = random_projection(12, k, &mut Rng::new(500 + trial));
                let (lhs, bound) = lemma1_sides(&a, &b, &p, k);
                assert!(lhs <= bound + 1e-9, "k={k} trial={trial}: {lhs} > {bound}");
            }
        }
    }

    #[test]
    fn lemma2_bound_holds_for_b_optimal_projection() {
        let mut rng = Rng::new(2);
        let a = test_matrix(&mut rng);
        let weights = a.row_norms_sq();
        let total: f64 = weights.iter().sum();
        let k = 3;
        let rows: Vec<SampledRow> = (0..80)
            .map(|_| {
                let i = rng.weighted_index(&weights);
                SampledRow {
                    index: i,
                    values: a.row(i).to_vec(),
                    q_hat: weights[i] / total,
                }
            })
            .collect();
        let b = crate::fkv::build_b_matrix(&rows).unwrap();
        // ε = k·θ (Lemma 1's uniform bound over rank-k projections).
        let eps = k as f64 * gram_deviation(&a, &b);
        let p = best_rank_k(&b, k).unwrap().projection.to_dense();
        let (lhs, rhs) = lemma2_sides(&a, &p, k, eps);
        assert!(lhs <= rhs + 1e-9, "{lhs} > {rhs}");
    }

    #[test]
    fn gram_deviation_shrinks_with_r() {
        // Lemma 3 / §III: E[dev²] = O(1/r); averaged deviation should drop
        // by roughly √10 when r grows 10×.
        let mut rng = Rng::new(3);
        let a = test_matrix(&mut rng);
        let avg = |r: usize, rng: &mut Rng| -> f64 {
            (0..10)
                .map(|_| perturbed_sampling_deviation(&a, r, 0.0, rng))
                .sum::<f64>()
                / 10.0
        };
        let d_small = avg(20, &mut rng);
        let d_big = avg(200, &mut rng);
        assert!(
            d_big < d_small / 1.8,
            "dev(200) = {d_big} not ≪ dev(20) = {d_small}"
        );
    }

    #[test]
    fn gamma_perturbation_costs_o_gamma() {
        // Lemma 3: (1±γ)-perturbed probabilities add O(γ) to the deviation.
        let mut rng = Rng::new(4);
        let a = test_matrix(&mut rng);
        let trials = 12;
        let avg = |gamma: f64, rng: &mut Rng| -> f64 {
            (0..trials)
                .map(|_| perturbed_sampling_deviation(&a, 120, gamma, rng))
                .sum::<f64>()
                / trials as f64
        };
        let clean = avg(0.0, &mut rng);
        let gentle = avg(0.1, &mut rng);
        let rough = avg(0.4, &mut rng);
        assert!(gentle < clean + 0.15, "γ=0.1: {gentle} vs clean {clean}");
        assert!(rough < clean + 0.6, "γ=0.4: {rough} vs clean {clean}");
    }
}
