//! The generalized partition model (§I): per-server local matrices whose
//! entrywise-aggregated image `A[i,j] = f(Σₜ Aᵗ[i,j])` is the matrix being
//! approximated.

use crate::functions::EntryFunction;
use crate::{CoreError, Result};
use dlra_comm::{Cluster, Collectives};
use dlra_linalg::Matrix;
use dlra_sampler::SampleVector;

/// Query-local scratch layered over the resident local matrix: the
/// injected-coordinate tail used by the Z-sampler, and the optional
/// residual sampling view of the adaptive extension. Scratch is owned by
/// one query's model instance and never aliases the resident storage, so
/// concurrent queries over the same resident dataset cannot interfere.
#[derive(Debug, Clone, Default)]
struct QueryScratch {
    injected: Vec<f64>,
    injected_len: u64,
    /// When set, the *sampling view* is this residual matrix
    /// `Aᵗ(I − VVᵀ)` instead of the resident local (adaptive extension;
    /// see [`crate::adaptive`]). Row fetches always serve the original
    /// rows.
    residual: Option<Matrix>,
}

/// One server's state: its local matrix viewed as a flattened
/// coordinate vector (row-major, coordinate `j ↦ entry (j/d, j%d)`), plus
/// the injected-coordinate tail used by the Z-sampler.
///
/// The state is split in two halves with different lifetimes:
///
/// * **resident local** — the matrix itself. No protocol mutates it, so
///   every query's server shares the same copy-on-write storage
///   ([`Matrix`] clones are O(1)); loading a dataset into `s` servers
///   copies no entry data.
/// * **query scratch** — injected coordinates and the residual sampling
///   view, private to one query and reset between protocol runs.
#[derive(Debug, Clone)]
pub struct MatrixServer {
    /// The resident half: immutable for the server's lifetime.
    local: Matrix,
    /// The query-local half.
    scratch: QueryScratch,
}

impl MatrixServer {
    /// Wraps a local matrix (already locally transformed if the model's `f`
    /// requires it). The matrix storage is shared, not copied: servers built
    /// from clones of one resident dataset all alias its entry buffers.
    pub fn new(local: Matrix) -> Self {
        MatrixServer {
            local,
            scratch: QueryScratch::default(),
        }
    }

    /// `true` when this server's resident local aliases `m`'s storage —
    /// i.e. building or running against this server copied no matrix data.
    pub fn shares_resident_storage(&self, m: &Matrix) -> bool {
        self.local.shares_storage(m)
    }

    /// The local matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.local
    }

    /// This server's slice of row `i` (what it ships when the coordinator
    /// requests a sampled row — Algorithm 1 line 7). Always the *original*
    /// local row, regardless of any residual sampling view.
    pub fn row(&self, i: usize) -> &[f64] {
        self.local.row(i)
    }

    /// Installs a residual sampling view `Aᵗ(I − VVᵀ)` from an orthonormal
    /// basis `v` (`d × c`, exactly the broadcast payload): a purely local
    /// O(ndc) computation through the factored projector — the dense `d × d`
    /// matrix is never formed.
    pub fn set_residual_basis(&mut self, v: &Matrix) {
        let projector = dlra_linalg::Projector::from_basis(v.clone());
        self.scratch.residual = Some(projector.residual(&self.local).expect("basis shape"));
    }

    /// Removes the residual view (sampling reverts to the local matrix).
    pub fn clear_residual(&mut self) {
        self.scratch.residual = None;
    }

    /// The matrix the sampler currently sees.
    fn sample_matrix(&self) -> &Matrix {
        self.scratch.residual.as_ref().unwrap_or(&self.local)
    }
}

impl SampleVector for MatrixServer {
    fn base_dim(&self) -> u64 {
        (self.local.rows() * self.local.cols()) as u64
    }

    fn dim(&self) -> u64 {
        self.base_dim() + self.scratch.injected_len
    }

    /// Coordinate lookup. Coordinates past the matrix serve the injected
    /// tail where this server holds it (the coordinator) and `0.0`
    /// everywhere else — including past `dim()`, on every server alike, so
    /// an out-of-range probe can never panic on one server while returning
    /// `0.0` on another.
    fn value(&self, j: u64) -> f64 {
        let base = self.base_dim();
        if j < base {
            let m = self.sample_matrix();
            let d = m.cols();
            m[(j as usize / d, j as usize % d)]
        } else {
            self.scratch
                .injected
                .get((j - base) as usize)
                .copied()
                .unwrap_or(0.0)
        }
    }

    fn for_each_nonzero(&self, f: &mut dyn FnMut(u64, f64)) {
        for (j, &x) in self.sample_matrix().as_slice().iter().enumerate() {
            if x != 0.0 {
                f(j as u64, x);
            }
        }
        let base = self.base_dim();
        for (j, &x) in self.scratch.injected.iter().enumerate() {
            if x != 0.0 {
                f(base + j as u64, x);
            }
        }
    }

    fn append_injected(&mut self, values: &[f64], is_coordinator: bool) {
        if is_coordinator {
            self.scratch.injected.extend_from_slice(values);
        }
        self.scratch.injected_len += values.len() as u64;
    }

    fn clear_injected(&mut self) {
        self.scratch.injected.clear();
        self.scratch.injected_len = 0;
    }
}

/// The generalized partition model: a cluster of [`MatrixServer`]s plus
/// the entrywise function `f`. Generic over the execution substrate `C`
/// (defaulting to the sequential in-process [`Cluster`]); the threaded
/// message-passing substrate in `dlra-runtime` plugs in through the same
/// [`Collectives`] surface, and every protocol in this crate runs on
/// either unchanged.
pub struct PartitionModel<C = Cluster<MatrixServer>> {
    cluster: C,
    f: EntryFunction,
    n: usize,
    d: usize,
    /// Raw (pre-transform) locals kept for `Max` evaluation; empty otherwise.
    raw_locals: Vec<Matrix>,
}

impl PartitionModel<Cluster<MatrixServer>> {
    /// Builds a model on the sequential simulator whose servers hold
    /// `locals` directly (entries are summed, then `f` is applied). For
    /// `GmRoot` use [`PartitionModel::gm_pooling`], which performs the
    /// local powering.
    pub fn new(locals: Vec<Matrix>, f: EntryFunction) -> Result<Self> {
        Self::with_substrate(locals, f, Cluster::new)
    }

    /// Builds the softmax / generalized-mean model of §VI-B from *raw* local
    /// matrices `Mᵗ`: each server locally stores `|Mᵗ[i,j]|ᵖ/s`, and
    /// `f(x) = x^{1/p}`, so the global matrix is `GM(|M¹|,…,|Mˢ|)` with
    /// parameter `p`.
    pub fn gm_pooling(raw: Vec<Matrix>, p: f64) -> Result<Self> {
        Self::gm_pooling_with(raw, p, Cluster::new)
    }
}

impl<C: Collectives<MatrixServer>> PartitionModel<C> {
    /// Builds a model on an arbitrary substrate: `build` turns the prepared
    /// per-server states into the substrate (e.g. `Cluster::new` or
    /// `dlra-runtime`'s `ThreadedCluster::new`).
    pub fn with_substrate(
        locals: Vec<Matrix>,
        f: EntryFunction,
        build: impl FnOnce(Vec<MatrixServer>) -> C,
    ) -> Result<Self> {
        if locals.is_empty() {
            return Err(CoreError::InvalidModel("no servers".into()));
        }
        let (n, d) = locals[0].shape();
        if n == 0 || d == 0 {
            return Err(CoreError::InvalidModel(format!("empty matrices {n}x{d}")));
        }
        for (t, m) in locals.iter().enumerate() {
            if m.shape() != (n, d) {
                return Err(CoreError::InvalidModel(format!(
                    "server {t} has shape {:?}, expected ({n}, {d})",
                    m.shape()
                )));
            }
        }
        // For `Max` evaluation the model keeps handles to the raw locals.
        // Matrix storage is copy-on-write, so this shares the resident
        // buffers with the servers below — s pointer bumps, no entry data.
        let raw_locals = if f == EntryFunction::Max {
            locals.clone()
        } else {
            Vec::new()
        };
        let cluster = build(locals.into_iter().map(MatrixServer::new).collect());
        Ok(PartitionModel {
            cluster,
            f,
            n,
            d,
            raw_locals,
        })
    }

    /// [`PartitionModel::gm_pooling`] on an arbitrary substrate.
    pub fn gm_pooling_with(
        raw: Vec<Matrix>,
        p: f64,
        build: impl FnOnce(Vec<MatrixServer>) -> C,
    ) -> Result<Self> {
        let s = raw.len();
        let f = EntryFunction::GmRoot { p };
        let transformed: Vec<Matrix> = raw
            .into_iter()
            .map(|m| m.map(|x| f.local_transform(x, s)))
            .collect();
        Self::with_substrate(transformed, f, build)
    }

    /// Number of servers.
    pub fn num_servers(&self) -> usize {
        self.cluster.num_servers()
    }

    /// Global data shape `(n, d)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.n, self.d)
    }

    /// The entrywise function.
    pub fn entry_function(&self) -> EntryFunction {
        self.f
    }

    /// The underlying substrate (protocols run through this).
    pub fn cluster_mut(&mut self) -> &mut C {
        &mut self.cluster
    }

    /// The underlying substrate, read-only.
    pub fn cluster(&self) -> &C {
        &self.cluster
    }

    /// Sum of local data sizes in words (`s·n·d`), the denominator of the
    /// experiments' communication ratio.
    pub fn total_local_words(&self) -> u64 {
        (self.num_servers() * self.n * self.d) as u64
    }

    /// Materializes the global matrix `A[i,j] = f(Σₜ Aᵗ[i,j])`
    /// (**evaluation only** — this is the quantity protocols may not see).
    pub fn global_matrix(&self) -> Matrix {
        if self.f == EntryFunction::Max {
            return Matrix::from_fn(self.n, self.d, |i, j| {
                self.raw_locals
                    .iter()
                    .map(|m| m[(i, j)])
                    .fold(f64::NEG_INFINITY, f64::max)
            });
        }
        let mut sum = Matrix::zeros(self.n, self.d);
        for t in 0..self.num_servers() {
            self.cluster.with_local(t, |server| {
                sum.add_assign(server.matrix())
                    .expect("uniform shapes by construction");
            });
        }
        sum.map(|x| self.f.apply(x))
    }

    /// The aggregated *raw* row `Σₜ Aᵗᵢ` as the coordinator reconstructs it
    /// after a row fetch, plus the global row `f(·)` of it.
    pub fn apply_f_to_raw_row(&self, raw: &[f64]) -> Vec<f64> {
        raw.iter().map(|&x| self.f.apply(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlra_util::Rng;

    #[test]
    fn matrix_server_flattening() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![0.0, 4.0]]).unwrap();
        let s = MatrixServer::new(m);
        assert_eq!(s.base_dim(), 4);
        assert_eq!(s.value(0), 1.0);
        assert_eq!(s.value(1), 2.0);
        assert_eq!(s.value(3), 4.0);
        let mut seen = vec![];
        s.for_each_nonzero(&mut |j, x| seen.push((j, x)));
        assert_eq!(seen, vec![(0, 1.0), (1, 2.0), (3, 4.0)]);
    }

    #[test]
    fn matrix_server_injection() {
        let m = Matrix::zeros(2, 2);
        let mut s = MatrixServer::new(m);
        s.append_injected(&[9.0], true);
        assert_eq!(s.dim(), 5);
        assert_eq!(s.value(4), 9.0);
        s.clear_injected();
        assert_eq!(s.dim(), 4);
    }

    #[test]
    fn matrix_server_value_is_total_on_every_server() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let mut coord = MatrixServer::new(m.clone());
        let mut other = MatrixServer::new(m);
        coord.append_injected(&[9.0, 8.0], true);
        other.append_injected(&[9.0, 8.0], false);
        assert_eq!(coord.dim(), 6);
        assert_eq!(other.dim(), 6);
        // In the injected range only the coordinator holds values.
        assert_eq!(coord.value(4), 9.0);
        assert_eq!(other.value(4), 0.0);
        // Past `dim()` both paths agree on 0.0 instead of one panicking.
        for j in [6u64, 7, 100] {
            assert_eq!(coord.value(j), 0.0);
            assert_eq!(other.value(j), 0.0);
        }
    }

    #[test]
    fn servers_share_resident_storage() {
        let mut rng = Rng::new(4);
        let parts: Vec<Matrix> = (0..3).map(|_| Matrix::gaussian(6, 4, &mut rng)).collect();
        let model = PartitionModel::new(parts.clone(), EntryFunction::Identity).unwrap();
        for (t, part) in parts.iter().enumerate() {
            model.cluster().with_local(t, |server| {
                assert!(server.shares_resident_storage(part), "server {t} copied");
            });
        }
    }

    #[test]
    fn max_model_raw_locals_share_resident_storage() {
        let mut rng = Rng::new(5);
        let parts: Vec<Matrix> = (0..2).map(|_| Matrix::gaussian(4, 3, &mut rng)).collect();
        let model = PartitionModel::new(parts.clone(), EntryFunction::Max).unwrap();
        for (raw, part) in model.raw_locals.iter().zip(&parts) {
            assert!(raw.shares_storage(part));
        }
        // Evaluation still sees the max-aggregated matrix.
        let g = model.global_matrix();
        assert_eq!(g.shape(), (4, 3));
    }

    #[test]
    fn scratch_paths_never_touch_resident_storage() {
        let mut rng = Rng::new(6);
        let resident = Matrix::gaussian(8, 5, &mut rng);
        let snapshot = resident.clone();
        let mut server = MatrixServer::new(resident.clone());
        assert!(server.shares_resident_storage(&resident));

        // Injected-coordinate scratch: grows query-local state only.
        server.append_injected(&[1.0, 2.0, 3.0], true);
        assert!(server.shares_resident_storage(&resident));

        // Residual sampling view: a fresh matrix, not a mutation of the
        // resident local.
        let v = dlra_linalg::orthonormalize_columns(&Matrix::gaussian(5, 2, &mut rng));
        server.set_residual_basis(&v);
        assert!(server.shares_resident_storage(&resident));
        assert!(!server.sample_matrix().shares_storage(&resident));

        server.clear_residual();
        server.clear_injected();
        assert!(server.shares_resident_storage(&resident));
        assert_eq!(resident, snapshot, "resident entries were mutated");
    }

    #[test]
    fn model_validates_shapes() {
        let a = Matrix::zeros(3, 2);
        let b = Matrix::zeros(3, 3);
        assert!(matches!(
            PartitionModel::new(vec![a.clone(), b], EntryFunction::Identity),
            Err(CoreError::InvalidModel(_))
        ));
        assert!(PartitionModel::new(vec![], EntryFunction::Identity).is_err());
        let ok = PartitionModel::new(vec![a.clone(), a], EntryFunction::Identity).unwrap();
        assert_eq!(ok.shape(), (3, 2));
        assert_eq!(ok.num_servers(), 2);
        assert_eq!(ok.total_local_words(), 12);
    }

    #[test]
    fn global_matrix_identity_sums() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![10.0, 20.0]]).unwrap();
        let m = PartitionModel::new(vec![a, b], EntryFunction::Identity).unwrap();
        let g = m.global_matrix();
        assert_eq!(g.row(0), &[11.0, 22.0]);
    }

    #[test]
    fn global_matrix_gm_pooling() {
        let raw1 = Matrix::from_rows(&[vec![1.0, -3.0]]).unwrap();
        let raw2 = Matrix::from_rows(&[vec![2.0, 1.0]]).unwrap();
        let m = PartitionModel::gm_pooling(vec![raw1, raw2], 2.0).unwrap();
        let g = m.global_matrix();
        // GM(1,2; p=2) = sqrt((1+4)/2), GM(3,1) = sqrt((9+1)/2)
        assert!((g[(0, 0)] - (2.5f64).sqrt()).abs() < 1e-12);
        assert!((g[(0, 1)] - (5.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn global_matrix_huber_caps() {
        let a = Matrix::from_rows(&[vec![0.5, 100.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![0.5, 100.0]]).unwrap();
        let m = PartitionModel::new(vec![a, b], EntryFunction::Huber { k: 2.0 }).unwrap();
        let g = m.global_matrix();
        assert_eq!(g.row(0), &[1.0, 2.0]);
    }

    #[test]
    fn global_matrix_max() {
        let a = Matrix::from_rows(&[vec![1.0, 5.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![3.0, 2.0]]).unwrap();
        let m = PartitionModel::new(vec![a, b], EntryFunction::Max).unwrap();
        let g = m.global_matrix();
        assert_eq!(g.row(0), &[3.0, 5.0]);
    }

    #[test]
    fn gm_pooling_matches_direct_gm() {
        let mut rng = Rng::new(3);
        let s = 3;
        let raws: Vec<Matrix> = (0..s).map(|_| Matrix::gaussian(4, 5, &mut rng)).collect();
        let p = 5.0;
        let m = PartitionModel::gm_pooling(raws.clone(), p).unwrap();
        let g = m.global_matrix();
        for i in 0..4 {
            for j in 0..5 {
                let gm = (raws.iter().map(|r| r[(i, j)].abs().powf(p)).sum::<f64>() / s as f64)
                    .powf(1.0 / p);
                assert!((g[(i, j)] - gm).abs() < 1e-10);
            }
        }
    }
}
