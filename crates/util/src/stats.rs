//! Tiny statistics helpers used by tests, experiment harnesses, and the
//! sampler-distribution validation code.

/// Arithmetic mean; returns 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; returns 0 for slices of length < 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Harmonic mean of strictly positive values; 0 for an empty slice.
pub fn harmonic_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let s: f64 = xs.iter().map(|x| 1.0 / x).sum();
    xs.len() as f64 / s
}

/// Relative-or-absolute closeness test: `|a-b| <= tol * max(1, |a|, |b|)`.
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * 1.0_f64.max(a.abs()).max(b.abs())
}

/// Chi-squared statistic of observed counts against expected probabilities.
///
/// Used by the sampler tests to check that empirical sampling frequencies
/// match the target `z(a_i)/Z(a)` distribution. Categories with expected
/// count below `min_expected` are pooled into one bucket to keep the
/// statistic well-behaved. Returns `(statistic, degrees_of_freedom)`.
pub fn chi_squared(observed: &[u64], probs: &[f64], total: u64, min_expected: f64) -> (f64, usize) {
    assert_eq!(observed.len(), probs.len());
    let mut stat = 0.0;
    let mut pooled_obs = 0.0;
    let mut pooled_exp = 0.0;
    let mut cells = 0usize;
    for (&o, &p) in observed.iter().zip(probs) {
        let e = p * total as f64;
        if e < min_expected {
            pooled_obs += o as f64;
            pooled_exp += e;
        } else {
            stat += (o as f64 - e).powi(2) / e;
            cells += 1;
        }
    }
    if pooled_exp > 0.0 {
        stat += (pooled_obs - pooled_exp).powi(2) / pooled_exp;
        cells += 1;
    }
    (stat, cells.saturating_sub(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basic() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&xs) - 2.5).abs() < 1e-12);
        assert!((variance(&xs) - 1.25).abs() < 1e-12);
        assert!((stddev(&xs) - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_slices() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[3.0]), 0.0);
        assert_eq!(harmonic_mean(&[]), 0.0);
    }

    #[test]
    fn harmonic_mean_basic() {
        // HM(1, 2, 4) = 3 / (1 + 1/2 + 1/4) = 12/7
        assert!((harmonic_mean(&[1.0, 2.0, 4.0]) - 12.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn approx_eq_scales() {
        assert!(approx_eq(1e9, 1e9 + 1.0, 1e-8));
        assert!(!approx_eq(1.0, 1.1, 1e-8));
        assert!(approx_eq(0.0, 1e-12, 1e-9));
    }

    #[test]
    fn chi_squared_uniform_fit() {
        // Perfectly proportional counts give statistic 0.
        let obs = [250u64, 250, 250, 250];
        let probs = [0.25; 4];
        let (stat, df) = chi_squared(&obs, &probs, 1000, 5.0);
        assert_eq!(df, 3);
        assert!(stat < 1e-12);
    }

    #[test]
    fn chi_squared_pools_small_cells() {
        let obs = [990u64, 5, 5];
        let probs = [0.99, 0.005, 0.005];
        // expected counts 990, 5, 5 with min_expected 6 pools the two small cells
        let (_, df) = chi_squared(&obs, &probs, 1000, 6.0);
        assert_eq!(df, 1);
    }

    #[test]
    fn chi_squared_detects_bad_fit() {
        let obs = [900u64, 100];
        let probs = [0.5, 0.5];
        let (stat, _) = chi_squared(&obs, &probs, 1000, 5.0);
        assert!(stat > 100.0);
    }
}
