//! Small deterministic utilities shared across the `dlra` workspace.
//!
//! The distributed protocols in this workspace must be exactly reproducible:
//! every server derives its randomness from seeds broadcast by the
//! coordinator, and the experiment harnesses fix a global seed. We therefore
//! use our own tiny, well-understood PRNG ([`Rng`], xoshiro256++ seeded via
//! SplitMix64) instead of thread-local OS entropy, plus a Box–Muller Gaussian
//! sampler and a handful of numeric helpers used by tests and benchmarks.

#![forbid(unsafe_code)]

pub mod rng;
pub mod stats;
pub mod sync;

pub use rng::Rng;
pub use stats::{approx_eq, harmonic_mean, mean, stddev, variance};
pub use sync::{MutexExt, RwLockExt};

/// Machine-epsilon-scale tolerance used throughout numeric tests.
pub const EPS: f64 = 1e-10;
