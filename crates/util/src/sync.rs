//! Poison-recovering lock helpers.
//!
//! The serving path must not panic (see the repo's `panic-policy` lint),
//! and `Mutex`/`RwLock` poisoning is the one place std forces a
//! panic-or-propagate choice on every acquisition. Poisoning only means
//! *some* thread panicked while holding the guard; for the state these
//! locks protect (queues, residency tables, plan caches, transcripts)
//! the data is either still consistent or re-validated by the reader, so
//! the right policy is to take the guard and keep serving rather than
//! cascade the panic into every thread that touches the lock afterwards.
//!
//! These extension traits centralize that policy so call sites read as
//! intent (`.lock_recover()`) instead of repeating the
//! `unwrap_or_else(PoisonError::into_inner)` incantation.

use std::sync::{Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Poison-recovering acquisition for [`Mutex`].
pub trait MutexExt<T> {
    /// Acquires the mutex, recovering the guard if a previous holder
    /// panicked.
    fn lock_recover(&self) -> MutexGuard<'_, T>;
}

impl<T> MutexExt<T> for Mutex<T> {
    fn lock_recover(&self) -> MutexGuard<'_, T> {
        self.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Poison-recovering acquisition for [`RwLock`].
pub trait RwLockExt<T> {
    /// Acquires a read guard, recovering from poisoning.
    fn read_recover(&self) -> RwLockReadGuard<'_, T>;
    /// Acquires a write guard, recovering from poisoning.
    fn write_recover(&self) -> RwLockWriteGuard<'_, T>;
}

impl<T> RwLockExt<T> for RwLock<T> {
    fn read_recover(&self) -> RwLockReadGuard<'_, T> {
        self.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn write_recover(&self) -> RwLockWriteGuard<'_, T> {
        self.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex, RwLock};

    #[test]
    fn lock_recover_survives_a_poisoned_mutex() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*m.lock_recover(), 7);
        *m.lock_recover() = 8;
        assert_eq!(*m.lock_recover(), 8);
    }

    #[test]
    fn rwlock_recover_survives_poisoning() {
        let l = Arc::new(RwLock::new(vec![1, 2, 3]));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(l.is_poisoned());
        assert_eq!(l.read_recover().len(), 3);
        l.write_recover().push(4);
        assert_eq!(l.read_recover().len(), 4);
    }
}
