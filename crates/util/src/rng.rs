//! A deterministic xoshiro256++ PRNG seeded via SplitMix64.
//!
//! Why not the `rand` crate everywhere? The protocols here *broadcast seeds*
//! between simulated servers and re-derive hash functions from them; the
//! bit-for-bit behaviour of the generator is part of the protocol transcript
//! and thus of our communication accounting tests. Owning the generator keeps
//! the workspace hermetic. The generator is the public-domain xoshiro256++ of
//! Blackman & Vigna, which passes BigCrush and is more than adequate for
//! sampling experiments.

/// SplitMix64 step, used for seeding and as a cheap stateless mixer.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic PRNG (xoshiro256++).
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second output of the last Box–Muller draw.
    gauss_spare: Option<f64>,
}

impl Rng {
    /// Creates a generator from a 64-bit seed. Two generators built from the
    /// same seed produce identical streams.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng {
            s,
            gauss_spare: None,
        }
    }

    /// Derives an independent child generator; `stream` selects the child.
    ///
    /// Used to hand each simulated server its own stream from one broadcast
    /// seed without the streams overlapping.
    pub fn fork(&self, stream: u64) -> Rng {
        let mut sm =
            self.s[0] ^ self.s[2].rotate_left(17) ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng {
            s,
            gauss_spare: None,
        }
    }

    /// Next raw 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, n)` via Lemire's unbiased method. Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "Rng::below(0)");
        // Lemire rejection: multiply-shift with a retry on the biased strip.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let lo = m as u64;
            if lo >= n || lo >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` index in `[0, n)`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal via Box–Muller (with caching of the paired output).
    pub fn gaussian(&mut self) -> f64 {
        if let Some(g) = self.gauss_spare.take() {
            return g;
        }
        // Draw u1 in (0,1] to avoid ln(0).
        let u1 = 1.0 - self.f64();
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.gaussian()
    }

    /// Exponential with rate `lambda`.
    #[inline]
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        -(1.0 - self.f64()).ln() / lambda
    }

    /// Samples an index from an (unnormalized, nonnegative) weight vector.
    /// Panics if all weights are zero or any weight is negative/NaN.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "weighted_index requires positive finite total weight, got {total}"
        );
        let mut u = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            debug_assert!(w >= 0.0, "negative weight {w} at {i}");
            u -= w;
            if u < 0.0 {
                return i;
            }
        }
        // Floating-point slack: return the last positive weight.
        weights
            .iter()
            .rposition(|&w| w > 0.0)
            .expect("at least one positive weight")
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (Floyd's algorithm order is
    /// not needed; simple partial shuffle keeps it O(n) worst case but we use
    /// rejection when k is small relative to n).
    pub fn sample_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct from {n}");
        if k * 4 >= n {
            let mut all: Vec<usize> = (0..n).collect();
            self.shuffle(&mut all);
            all.truncate(k);
            all.sort_unstable();
            all
        } else {
            let mut seen = std::collections::HashSet::with_capacity(k * 2);
            let mut out = Vec::with_capacity(k);
            while out.len() < k {
                let x = self.index(n);
                if seen.insert(x) {
                    out.push(x);
                }
            }
            out.sort_unstable();
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_deterministic_and_distinct() {
        let root = Rng::new(7);
        let mut c1 = root.fork(1);
        let mut c1b = root.fork(1);
        let mut c2 = root.fork(2);
        assert_eq!(c1.next_u64(), c1b.next_u64());
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Rng::new(4);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let x = r.below(7) as usize;
            assert!(x < 7);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn below_one_is_zero() {
        let mut r = Rng::new(5);
        for _ in 0..100 {
            assert_eq!(r.below(1), 0);
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut r = Rng::new(6);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.gaussian()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn weighted_index_frequencies() {
        let mut r = Rng::new(8);
        let w = [1.0, 2.0, 3.0, 0.0];
        let mut counts = [0usize; 4];
        let n = 60_000;
        for _ in 0..n {
            counts[r.weighted_index(&w)] += 1;
        }
        assert_eq!(counts[3], 0);
        let f1 = counts[1] as f64 / n as f64;
        let f2 = counts[2] as f64 / n as f64;
        assert!((f1 - 2.0 / 6.0).abs() < 0.02, "f1 {f1}");
        assert!((f2 - 3.0 / 6.0).abs() < 0.02, "f2 {f2}");
    }

    #[test]
    #[should_panic(expected = "positive finite total weight")]
    fn weighted_index_rejects_zero_total() {
        Rng::new(1).weighted_index(&[0.0, 0.0]);
    }

    #[test]
    fn sample_distinct_properties() {
        let mut r = Rng::new(9);
        for &(n, k) in &[(10usize, 10usize), (100, 5), (100, 80), (1, 1), (5, 0)] {
            let s = r.sample_distinct(n, k);
            assert_eq!(s.len(), k);
            assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted distinct");
            assert!(s.iter().all(|&x| x < n));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(10);
        let mut v: Vec<usize> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn exponential_mean() {
        let mut r = Rng::new(11);
        let n = 100_000;
        let m = (0..n).map(|_| r.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((m - 0.5).abs() < 0.01, "mean {m}");
    }
}
