//! The analyzer must pass on the workspace that ships it: this test runs
//! the full rule set over the live repo, which is exactly what the CI
//! gate (`cargo run -p dlra-analyze -- check`) enforces. If a change
//! introduces a violation, this test names it.

use std::path::Path;

#[test]
fn workspace_is_clean_under_dlra_analyze() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let report = dlra_analyze::check_workspace(&root).expect("workspace sources readable");
    assert!(
        report.files > 50,
        "walker found only {} files",
        report.files
    );
    assert_eq!(report.errors(), 0, "\n{}", report.render());
    assert_eq!(report.warnings(), 0, "\n{}", report.render());
}
