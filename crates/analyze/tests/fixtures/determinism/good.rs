// Fixture: the deterministic equivalent — ordered collections, no
// clocks. Must produce zero findings.
use std::collections::BTreeMap;

pub fn charge(words: &mut BTreeMap<String, u64>, server: &str, n: u64) {
    *words.entry(server.to_string()).or_insert(0) += n;
}

// The words appearing inside strings or comments must not trip the rule:
// a HashMap mentioned here is prose, not code.
pub const DOC: &str = "HashMap and Instant::now are banned in this module";
