// Fixture: wall-clock reads and unordered collections in a
// ledger-deterministic module. Every marked line must be flagged.
use std::collections::HashMap;
use std::time::Instant;

pub fn charge(words: &mut HashMap<String, u64>, server: &str, n: u64) {
    let start = Instant::now();
    *words.entry(server.to_string()).or_insert(0) += n;
    let _ = start.elapsed();
}
