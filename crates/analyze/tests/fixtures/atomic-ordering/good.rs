// Fixture: weak orderings for counters, and a justified SeqCst.
// Must produce zero findings.
use std::sync::atomic::{AtomicU64, Ordering};

pub static QUERIES: AtomicU64 = AtomicU64::new(0);
pub static READY: AtomicU64 = AtomicU64::new(0);

pub fn record() {
    QUERIES.fetch_add(1, Ordering::Relaxed);
}

pub fn publish() {
    // SeqCst is load-bearing here: the flag participates in a
    // store-buffering pattern with a second flag in another module, and
    // both observers must agree on a single total order of the stores.
    READY.store(1, Ordering::SeqCst);
}
