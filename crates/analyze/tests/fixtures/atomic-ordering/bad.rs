// Fixture: unjustified SeqCst, including the plain-counter case.
use std::sync::atomic::{AtomicU64, Ordering};

pub static QUERIES: AtomicU64 = AtomicU64::new(0);
pub static READY: AtomicU64 = AtomicU64::new(0);

pub fn record() {
    QUERIES.fetch_add(1, Ordering::SeqCst);
}

pub fn publish() {
    READY.store(1, Ordering::SeqCst);
}
