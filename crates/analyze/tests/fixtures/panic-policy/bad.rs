// Fixture: panicking constructs on the serving path.
pub fn first_row(rows: &[u64]) -> u64 {
    let head = rows.first().unwrap();
    if *head == 0 {
        panic!("zero row id");
    }
    rows.iter().copied().max().expect("nonempty")
}
