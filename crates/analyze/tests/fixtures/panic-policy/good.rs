// Fixture: typed-error handling on the serving path, with a test module
// where unwraps are sanctioned. Must produce zero findings.
pub fn first_row(rows: &[u64]) -> Result<u64, String> {
    match rows.first() {
        Some(&head) if head != 0 => Ok(head),
        Some(_) => Err("zero row id".to_string()),
        None => Err("empty".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_is_fine_in_tests() {
        // Inside #[cfg(test)] the rule does not apply.
        assert_eq!(first_row(&[3]).unwrap(), 3);
    }
}
