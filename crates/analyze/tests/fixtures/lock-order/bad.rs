// Fixture: two locks acquired in opposite orders by two functions — the
// classic AB/BA deadlock shape. The acquisition graph has the cycle
// fixture.queue -> fixture.table -> fixture.queue.
use std::sync::Mutex;

pub struct State {
    // dlra-lock-order: fixture.queue
    queue: Mutex<Vec<u64>>,
    // dlra-lock-order: fixture.table
    table: Mutex<Vec<String>>,
}

impl State {
    pub fn enqueue(&self, id: u64, name: &str) {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        let mut t = self.table.lock().unwrap_or_else(|e| e.into_inner());
        q.push(id);
        t.push(name.to_string());
    }

    pub fn rename(&self, name: &str, id: u64) {
        let mut t = self.table.lock().unwrap_or_else(|e| e.into_inner());
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        t.push(name.to_string());
        q.push(id);
    }
}
