// Fixture: the same two locks, but every path agrees on the order
// fixture.queue -> fixture.table. The graph is acyclic; zero findings.
use std::sync::Mutex;

pub struct State {
    // dlra-lock-order: fixture.queue
    queue: Mutex<Vec<u64>>,
    // dlra-lock-order: fixture.table
    table: Mutex<Vec<String>>,
}

impl State {
    pub fn enqueue(&self, id: u64, name: &str) {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        let mut t = self.table.lock().unwrap_or_else(|e| e.into_inner());
        q.push(id);
        t.push(name.to_string());
    }

    pub fn rename(&self, name: &str, id: u64) {
        // Release the table guard before touching the queue: the shared
        // order is queue before table, so a table-first path must not
        // hold its guard across the queue acquisition.
        {
            let mut t = self.table.lock().unwrap_or_else(|e| e.into_inner());
            t.push(name.to_string());
        }
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.push(id);
    }
}
