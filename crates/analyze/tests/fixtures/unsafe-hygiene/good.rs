// Fixture: unsafe confined to crates/linalg and justified in place.
// Must produce zero file-level findings when checked under linalg.
pub fn reinterpret(bytes: &[u8]) -> &[u32] {
    // SAFETY: the pointer comes from a live &[u8] borrow and the length
    // is truncated to whole u32 words, so the view never reads past the
    // original allocation; alignment is checked by the caller.
    unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const u32, bytes.len() / 4) }
}
