// Fixture: an unsafe block with no SAFETY comment. Checked under a
// non-linalg path it violates the confinement half of the rule; checked
// under crates/linalg it violates the justification half.
pub fn reinterpret(bytes: &[u8]) -> &[u32] {
    unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const u32, bytes.len() / 4) }
}
