// Fixture: an ad-hoc spawn outside the sanctioned pools.
pub fn fire_and_forget(job: impl FnOnce() + Send + 'static) {
    std::thread::spawn(job);
}
