// Fixture: no ad-hoc threads; work is queued for an existing pool.
// Must produce zero findings.
pub fn enqueue(queue: &std::sync::mpsc::Sender<Box<dyn FnOnce() + Send>>, job: Box<dyn FnOnce() + Send>) {
    let _ = queue.send(job);
}
