// Fixture: a combining-tree routing plan that breaks the comm-layer
// contract three ways — unordered hop storage (determinism), an ambient
// fanout override (env-determinism), and a panicking accessor
// (panic-policy). Every marked line must be flagged.
use std::collections::HashMap;

pub struct Plan {
    hops: HashMap<usize, usize>,
}

impl Plan {
    pub fn new(servers: usize) -> Self {
        let fanout: usize = std::env::var("DLRA_TOPOLOGY_FANOUT")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(2);
        let mut hops = HashMap::new();
        for sender in 1..servers {
            hops.insert(sender, sender / fanout * fanout);
        }
        Plan { hops }
    }

    pub fn receiver(&self, sender: usize) -> usize {
        *self.hops.get(&sender).unwrap()
    }
}
