// Fixture: the contract-clean combining-tree plan — ordered hop
// storage, fanout passed as typed configuration, a total accessor.
// Must produce zero findings and zero warnings.
use std::collections::BTreeMap;

pub struct Plan {
    hops: BTreeMap<usize, usize>,
}

impl Plan {
    pub fn new(servers: usize, fanout: usize) -> Self {
        let fanout = fanout.max(2);
        let mut hops = BTreeMap::new();
        for sender in 1..servers {
            hops.insert(sender, sender / fanout * fanout);
        }
        Plan { hops }
    }

    pub fn receiver(&self, sender: usize) -> Option<usize> {
        self.hops.get(&sender).copied()
    }
}
