// Fixture: configuration threaded through typed parameters instead of
// the ambient environment. Must produce zero findings.
pub struct Config {
    pub threads: usize,
}

pub fn threads(cfg: &Config) -> usize {
    cfg.threads.max(1)
}
