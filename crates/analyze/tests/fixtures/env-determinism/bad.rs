// Fixture: ambient environment reads in a ledger-deterministic module.
pub fn threads() -> usize {
    std::env::var("DLRA_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}
