//! Fixture: the same dial written under the contract — the peer address
//! arrives as a typed parameter (in the real crate, via the bootstrap
//! roster) and every failure a remote peer can cause comes back as a
//! typed error the caller decides about.

use std::io::{self, Read};
use std::net::TcpStream;

/// Dials an explicitly configured coordinator and reads one frame header.
pub fn dial_and_read(addr: &str) -> io::Result<Vec<u8>> {
    let mut stream = TcpStream::connect(addr)?;
    let mut buf = vec![0u8; 24];
    stream.read_exact(&mut buf)?;
    Ok(buf)
}
