//! Fixture: a transport module that breaks both halves of the net
//! governance contract — it pulls its peer address out of the ambient
//! environment and lets remote-triggerable I/O failures panic instead of
//! resolving to a typed error.

use std::io::Read;
use std::net::TcpStream;

/// Dials whatever the environment says, panicking on every failure a
/// remote peer (or a missing variable) can cause.
pub fn dial_and_read() -> Vec<u8> {
    let addr = std::env::var("DLRA_COORDINATOR").unwrap();
    let mut stream = TcpStream::connect(addr).expect("connect to coordinator");
    let mut buf = vec![0u8; 24];
    stream.read_exact(&mut buf).expect("read frame header");
    buf
}
