// Fixture: defective suppressions. A reason-less dlra-allow is an error
// and the finding it meant to cover still stands; an unknown rule id is
// an error; a well-formed suppression matching nothing is a warning.
use std::collections::BTreeMap;

// dlra-allow(determinism)
pub fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::UNIX_EPOCH
}

// dlra-allow(no-such-rule): the rule id is misspelled
pub fn noop() {}

// dlra-allow(panic-policy): nothing on the next line panics
pub fn unused(map: &BTreeMap<u32, u32>) -> usize {
    map.len()
}
