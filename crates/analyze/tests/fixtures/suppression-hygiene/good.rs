// Fixture: a well-formed suppression — known rule, mandatory reason —
// covering a real finding. Zero findings remain.

// dlra-allow(determinism): the epoch constant is the same in every run;
// no wall clock is read.
pub fn stamp() -> std::time::SystemTime { std::time::SystemTime::UNIX_EPOCH }
