//! Fixture-driven integration tests: each rule gets a `bad` fixture that
//! must be flagged and a `good` fixture that must pass clean. Fixtures
//! live in `tests/fixtures/<rule>/` and are fed to [`check_sources`]
//! under virtual workspace paths that put them in the rule's scope.

use dlra_analyze::{check_sources, Report, Severity};

/// Runs the analyzer over one in-memory file at a virtual path.
fn run(path: &str, src: &str) -> Report {
    check_sources(&[(path.to_string(), src.to_string())])
}

fn errors_of(report: &Report, rule: &str) -> usize {
    report
        .of_rule(rule)
        .filter(|d| d.severity == Severity::Error)
        .count()
}

// ---------------------------------------------------------------- determinism

#[test]
fn determinism_bad_fixture_is_flagged() {
    let r = run(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/determinism/bad.rs"),
    );
    // One HashMap in the use, one in the signature, one Instant::now.
    assert!(errors_of(&r, "determinism") >= 3, "{}", r.render());
}

#[test]
fn determinism_good_fixture_is_clean() {
    let r = run(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/determinism/good.rs"),
    );
    assert_eq!(r.errors(), 0, "{}", r.render());
}

#[test]
fn determinism_rule_is_scoped_to_deterministic_modules() {
    // The same source outside the ledger-deterministic modules is fine:
    // the runtime is allowed to use HashMap and read the clock.
    let r = run(
        "crates/runtime/src/fixture.rs",
        include_str!("fixtures/determinism/bad.rs"),
    );
    assert_eq!(errors_of(&r, "determinism"), 0, "{}", r.render());
}

// ------------------------------------------------------------ env-determinism

#[test]
fn env_determinism_bad_fixture_is_flagged() {
    let r = run(
        "crates/sampler/src/fixture.rs",
        include_str!("fixtures/env-determinism/bad.rs"),
    );
    assert!(errors_of(&r, "env-determinism") >= 1, "{}", r.render());
}

#[test]
fn env_determinism_good_fixture_is_clean() {
    let r = run(
        "crates/sampler/src/fixture.rs",
        include_str!("fixtures/env-determinism/good.rs"),
    );
    assert_eq!(r.errors(), 0, "{}", r.render());
}

// --------------------------------------------------------------- panic-policy

#[test]
fn panic_policy_bad_fixture_is_flagged() {
    let r = run(
        "crates/runtime/src/fixture.rs",
        include_str!("fixtures/panic-policy/bad.rs"),
    );
    // unwrap, panic!, expect — three distinct sites.
    assert_eq!(errors_of(&r, "panic-policy"), 3, "{}", r.render());
}

#[test]
fn panic_policy_good_fixture_is_clean() {
    // The good fixture deliberately unwraps inside #[cfg(test)]: the rule
    // must skip test regions.
    let r = run(
        "crates/runtime/src/fixture.rs",
        include_str!("fixtures/panic-policy/good.rs"),
    );
    assert_eq!(r.errors(), 0, "{}", r.render());
}

// ------------------------------------------------------------- unsafe-hygiene

#[test]
fn unsafe_outside_linalg_is_flagged() {
    let r = run(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/unsafe-hygiene/bad.rs"),
    );
    assert!(errors_of(&r, "unsafe-hygiene") >= 1, "{}", r.render());
}

#[test]
fn unsafe_in_linalg_without_safety_comment_is_flagged() {
    let r = run(
        "crates/linalg/src/fixture.rs",
        include_str!("fixtures/unsafe-hygiene/bad.rs"),
    );
    assert!(errors_of(&r, "unsafe-hygiene") >= 1, "{}", r.render());
}

#[test]
fn justified_unsafe_in_linalg_is_clean() {
    let r = run(
        "crates/linalg/src/fixture.rs",
        include_str!("fixtures/unsafe-hygiene/good.rs"),
    );
    assert_eq!(r.errors(), 0, "{}", r.render());
}

#[test]
fn unsafe_crate_without_deny_attribute_is_flagged() {
    // Crate-level half: a lib.rs is present, the crate uses unsafe, but
    // the root does not deny unsafe_op_in_unsafe_fn.
    let r = check_sources(&[
        (
            "crates/linalg/src/lib.rs".to_string(),
            "//! Kernel crate.\npub mod fixture;\n".to_string(),
        ),
        (
            "crates/linalg/src/fixture.rs".to_string(),
            include_str!("fixtures/unsafe-hygiene/good.rs").to_string(),
        ),
    ]);
    assert_eq!(errors_of(&r, "unsafe-hygiene"), 1, "{}", r.render());
}

#[test]
fn unsafe_free_crate_without_forbid_attribute_is_flagged() {
    let r = check_sources(&[(
        "crates/core/src/lib.rs".to_string(),
        "//! Clean crate without the forbid attribute.\npub fn id(x: u64) -> u64 { x }\n"
            .to_string(),
    )]);
    assert_eq!(errors_of(&r, "unsafe-hygiene"), 1, "{}", r.render());
}

// ------------------------------------------------------------ atomic-ordering

#[test]
fn atomic_ordering_bad_fixture_is_flagged() {
    let r = run(
        "crates/obs/src/fixture.rs",
        include_str!("fixtures/atomic-ordering/bad.rs"),
    );
    // The unjustified store and the SeqCst counter.
    assert_eq!(errors_of(&r, "atomic-ordering"), 2, "{}", r.render());
}

#[test]
fn atomic_ordering_good_fixture_is_clean() {
    let r = run(
        "crates/obs/src/fixture.rs",
        include_str!("fixtures/atomic-ordering/good.rs"),
    );
    assert_eq!(r.errors(), 0, "{}", r.render());
}

// ---------------------------------------------------------- thread-discipline

#[test]
fn thread_discipline_bad_fixture_is_flagged() {
    let r = run(
        "crates/obs/src/fixture.rs",
        include_str!("fixtures/thread-discipline/bad.rs"),
    );
    assert_eq!(errors_of(&r, "thread-discipline"), 1, "{}", r.render());
}

#[test]
fn thread_discipline_good_fixture_is_clean() {
    let r = run(
        "crates/obs/src/fixture.rs",
        include_str!("fixtures/thread-discipline/good.rs"),
    );
    assert_eq!(r.errors(), 0, "{}", r.render());
}

#[test]
fn sanctioned_pool_files_may_spawn() {
    let r = run(
        "crates/linalg/src/threads.rs",
        include_str!("fixtures/thread-discipline/bad.rs"),
    );
    assert_eq!(errors_of(&r, "thread-discipline"), 0, "{}", r.render());
}

// ----------------------------------------------------------------- lock-order

#[test]
fn lock_order_cycle_is_flagged() {
    let r = run(
        "crates/runtime/src/fixture.rs",
        include_str!("fixtures/lock-order/bad.rs"),
    );
    assert!(errors_of(&r, "lock-order") >= 1, "{}", r.render());
    // The diagnostic names the cycle through both locks.
    let d = r.of_rule("lock-order").next().unwrap();
    assert!(
        d.message.contains("fixture.queue") && d.message.contains("fixture.table"),
        "{}",
        d.render()
    );
}

#[test]
fn lock_order_consistent_order_is_clean() {
    let r = run(
        "crates/runtime/src/fixture.rs",
        include_str!("fixtures/lock-order/good.rs"),
    );
    assert_eq!(r.errors(), 0, "{}", r.render());
}

// ------------------------------------------------------------------- topology

#[test]
fn topology_bad_fixture_breaks_the_comm_contract_three_ways() {
    // Tree-routing code lives in `crates/comm`, so it is simultaneously
    // in the determinism, env-determinism, and panic-policy scopes: a
    // plan with unordered hops, an ambient fanout override, and a
    // panicking accessor trips all three.
    let r = run(
        "crates/comm/src/fixture.rs",
        include_str!("fixtures/topology/bad.rs"),
    );
    assert!(errors_of(&r, "determinism") >= 2, "{}", r.render());
    assert!(errors_of(&r, "env-determinism") >= 1, "{}", r.render());
    assert!(errors_of(&r, "panic-policy") >= 1, "{}", r.render());
}

#[test]
fn topology_good_fixture_is_clean() {
    let r = run(
        "crates/comm/src/fixture.rs",
        include_str!("fixtures/topology/good.rs"),
    );
    assert_eq!(r.errors(), 0, "{}", r.render());
    assert_eq!(r.warnings(), 0, "{}", r.render());
}

// ------------------------------------------------------------- net transport

#[test]
fn net_bad_fixture_breaks_the_transport_contract_both_ways() {
    // The transport crate is simultaneously in the panic-policy and
    // env-determinism scopes: an ambient coordinator address plus three
    // panicking I/O sites trip both rules.
    let r = run(
        "crates/net/src/fixture.rs",
        include_str!("fixtures/net/bad.rs"),
    );
    assert!(errors_of(&r, "env-determinism") >= 1, "{}", r.render());
    assert_eq!(errors_of(&r, "panic-policy"), 3, "{}", r.render());
}

#[test]
fn net_good_fixture_is_clean() {
    let r = run(
        "crates/net/src/fixture.rs",
        include_str!("fixtures/net/good.rs"),
    );
    assert_eq!(r.errors(), 0, "{}", r.render());
    assert_eq!(r.warnings(), 0, "{}", r.render());
}

#[test]
fn net_env_scope_does_not_leak_into_other_crates() {
    // The same ambient read outside the env-isolated scopes is the
    // runtime layer's prerogative (that is where DLRA_SUBSTRATE lives).
    let r = run(
        "crates/runtime/src/fixture.rs",
        include_str!("fixtures/net/bad.rs"),
    );
    assert_eq!(errors_of(&r, "env-determinism"), 0, "{}", r.render());
    // Panic policy still applies there.
    assert_eq!(errors_of(&r, "panic-policy"), 3, "{}", r.render());
}

// --------------------------------------------------------- suppression-hygiene

#[test]
fn defective_suppressions_are_flagged() {
    let r = run(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/suppression-hygiene/bad.rs"),
    );
    // Reason-less dlra-allow + unknown rule id.
    assert_eq!(errors_of(&r, "suppression-hygiene"), 2, "{}", r.render());
    // The finding the reason-less suppression meant to cover still stands.
    assert!(errors_of(&r, "determinism") >= 1, "{}", r.render());
    // The well-formed suppression that matched nothing is a warning.
    assert_eq!(r.warnings(), 1, "{}", r.render());
}

#[test]
fn well_formed_suppression_silences_the_finding() {
    let r = run(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/suppression-hygiene/good.rs"),
    );
    assert_eq!(r.errors(), 0, "{}", r.render());
    assert_eq!(r.warnings(), 0, "{}", r.render());
}
