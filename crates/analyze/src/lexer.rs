//! A lightweight, comment- and string-aware Rust lexer.
//!
//! The rules in this crate are textual, but naive substring matching over
//! raw source would flag `unwrap` inside a doc example or a diagnostic
//! message string. The lexer splits every source line into two views:
//!
//! * **code** — the line with comments removed and string/char-literal
//!   *interiors* blanked to spaces (the delimiting quotes survive, so the
//!   shape of the code is preserved and byte columns still line up), and
//! * **comment** — the concatenated text of every comment on the line
//!   (line comments, doc comments, and any block-comment fragments).
//!
//! Handled: line comments (`//`, `///`, `//!`), nested block comments
//! (`/* /* */ */`), string literals with escapes, raw strings with any
//! hash arity (`r#".."#`), byte and byte-raw strings, char literals, and
//! lifetimes (`'a` never opens a char literal).
//!
//! No external parser crates: the same offline constraint as the shim
//! crates applies, and positional fidelity (exact line/column for
//! diagnostics) is easier to guarantee over raw text anyway.

/// One source line, split into its code and comment views.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// Code with comments stripped and literal interiors blanked.
    pub code: String,
    /// Concatenated comment text (without the `//` / `/*` markers).
    pub comment: String,
}

impl Line {
    /// `true` when the line carries no code tokens (blank or comment-only).
    pub fn is_code_blank(&self) -> bool {
        self.code.trim().is_empty()
    }

    /// `true` when the line is comment-only (no code, some comment text).
    pub fn is_comment_only(&self) -> bool {
        self.is_code_blank() && !self.comment.trim().is_empty()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    /// Nesting depth of `/* … */`.
    BlockComment(u32),
    /// Inside `"…"`; the flag is set right after a `\`.
    Str {
        escaped: bool,
    },
    /// Inside `r##"…"##` with the given hash arity.
    RawStr {
        hashes: u32,
    },
    /// Inside `'…'`; the flag is set right after a `\`.
    Char {
        escaped: bool,
    },
}

/// Splits `src` into per-line code/comment views. The result always has
/// exactly as many entries as `src` has lines.
pub fn lex(src: &str) -> Vec<Line> {
    let mut lines: Vec<Line> = Vec::new();
    let mut cur = Line::default();
    let mut state = State::Code;
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;

    // `prev_code` is the last non-whitespace char emitted to the code view;
    // it disambiguates lifetimes from char literals (`<'a>` vs `b'a'`).
    let mut prev_code: char = '\0';

    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();

        if c == '\n' {
            // A line comment ends with the line; everything else carries.
            if state == State::LineComment {
                state = State::Code;
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }

        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    i += 2;
                    // Skip doc markers so `///` and `//!` read like `//`.
                    while matches!(bytes.get(i), Some('/') | Some('!')) {
                        i += 1;
                    }
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    cur.code.push(' ');
                    cur.code.push(' ');
                    i += 2;
                }
                '"' => {
                    cur.code.push('"');
                    prev_code = '"';
                    state = State::Str { escaped: false };
                    i += 1;
                }
                'r' | 'b' if is_raw_or_byte_literal(&bytes, i) => {
                    // Consume the prefix (`r`, `b`, `br`, `rb`) plus hashes,
                    // then enter the appropriate literal state.
                    let mut j = i;
                    while matches!(bytes.get(j), Some('r') | Some('b')) {
                        cur.code.push(bytes[j]);
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while bytes.get(j) == Some(&'#') {
                        cur.code.push('#');
                        hashes += 1;
                        j += 1;
                    }
                    match bytes.get(j) {
                        Some('"') => {
                            cur.code.push('"');
                            prev_code = '"';
                            i = j + 1;
                            if hashes == 0 && !raw_prefix(&bytes, i) {
                                // b"…" is an ordinary escaped string.
                                state = State::Str { escaped: false };
                            } else {
                                state = State::RawStr { hashes };
                            }
                        }
                        Some('\'') => {
                            cur.code.push('\'');
                            prev_code = '\'';
                            state = State::Char { escaped: false };
                            i = j + 1;
                        }
                        _ => {
                            // `r#ident` (raw identifier) or a bare `r`/`b`.
                            prev_code = bytes[j.saturating_sub(1)];
                            i = j;
                        }
                    }
                }
                '\'' => {
                    // Lifetime (`'a`, `'static`) vs char literal: a lifetime
                    // is `'` + ident-start not followed by a closing quote.
                    let is_lifetime = next.is_some_and(|n| n.is_alphabetic() || n == '_')
                        && bytes.get(i + 2) != Some(&'\'');
                    cur.code.push('\'');
                    prev_code = '\'';
                    i += 1;
                    if !is_lifetime {
                        state = State::Char { escaped: false };
                    }
                }
                _ => {
                    cur.code.push(c);
                    if !c.is_whitespace() {
                        prev_code = c;
                    }
                    i += 1;
                }
            },
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    cur.code.push(' ');
                    cur.code.push(' ');
                    i += 2;
                } else {
                    cur.comment.push(c);
                    cur.code.push(' ');
                    i += 1;
                }
            }
            State::Str { escaped } => {
                if escaped {
                    state = State::Str { escaped: false };
                } else if c == '\\' {
                    state = State::Str { escaped: true };
                } else if c == '"' {
                    cur.code.push('"');
                    state = State::Code;
                    i += 1;
                    continue;
                }
                cur.code.push(' ');
                i += 1;
            }
            State::RawStr { hashes } => {
                if c == '"' && raw_str_closes(&bytes, i, hashes) {
                    cur.code.push('"');
                    for _ in 0..hashes {
                        cur.code.push('#');
                    }
                    state = State::Code;
                    i += 1 + hashes as usize;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
            State::Char { escaped } => {
                if escaped {
                    state = State::Char { escaped: false };
                    cur.code.push(' ');
                } else if c == '\\' {
                    state = State::Char { escaped: true };
                    cur.code.push(' ');
                } else if c == '\'' {
                    cur.code.push('\'');
                    state = State::Code;
                } else {
                    cur.code.push(' ');
                }
                i += 1;
            }
        }
        let _ = prev_code;
    }
    lines.push(cur);
    lines
}

/// Whether position `i` (an `r` or `b`) starts a raw/byte literal prefix
/// rather than an ordinary identifier like `radius` or `bits`.
fn is_raw_or_byte_literal(bytes: &[char], i: usize) -> bool {
    // Not a literal prefix if glued to a preceding ident char (`hdr"x"` is
    // not valid Rust anyway, but `_b"…"` would misfire otherwise).
    if i > 0 {
        let p = bytes[i - 1];
        if p.is_alphanumeric() || p == '_' {
            return false;
        }
    }
    let mut j = i;
    let mut saw_r = false;
    while let Some(&c) = bytes.get(j) {
        match c {
            'r' => {
                if saw_r {
                    return false;
                }
                saw_r = true;
                j += 1;
            }
            'b' => {
                if j > i {
                    return false;
                }
                j += 1;
            }
            '#' => {
                // Hashes require a raw prefix and must end in a quote.
                if !saw_r {
                    return false;
                }
                while bytes.get(j) == Some(&'#') {
                    j += 1;
                }
                return bytes.get(j) == Some(&'"');
            }
            '"' => return true,
            '\'' => return j == i + 1 && bytes[i] == 'b', // b'x'
            _ => return false,
        }
    }
    false
}

/// Whether the prefix consumed just before position `i` contained an `r`
/// (needed to tell `b"…"` — escaped — from `rb"…"` / `br"…"` — raw).
fn raw_prefix(bytes: &[char], quote_plus_one: usize) -> bool {
    // Walk back over the quote and prefix letters.
    let mut j = quote_plus_one.saturating_sub(2); // before the quote
    loop {
        match bytes.get(j) {
            Some('r') => return true,
            Some('b') | Some('#') => {
                if j == 0 {
                    return false;
                }
                j -= 1;
            }
            _ => return false,
        }
    }
}

/// Whether the `"` at position `i` closes a raw string of `hashes` arity.
fn raw_str_closes(bytes: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| bytes.get(i + k) == Some(&'#'))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn line_comments_are_stripped_into_the_comment_view() {
        let lines = lex("let x = 1; // trailing note\n// full line\nlet y = 2;");
        assert_eq!(lines[0].code.trim_end(), "let x = 1;");
        assert_eq!(lines[0].comment.trim(), "trailing note");
        assert!(lines[1].is_comment_only());
        assert_eq!(lines[1].comment.trim(), "full line");
        assert_eq!(lines[2].code, "let y = 2;");
    }

    #[test]
    fn doc_comments_do_not_leak_code() {
        let lines = lex("/// let x = foo.unwrap();\nfn real() {}");
        assert!(lines[0].is_comment_only());
        assert!(lines[0].comment.contains("unwrap"));
        assert_eq!(lines[1].code, "fn real() {}");
    }

    #[test]
    fn string_interiors_are_blanked_but_quotes_survive() {
        let c = code("let s = \"call .unwrap() now\";");
        assert!(!c[0].contains("unwrap"));
        assert!(c[0].contains("let s = \""));
        assert!(c[0].ends_with("\";"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let c = code("let s = r#\"has \" quote and .unwrap()\"#; let t = 1;");
        assert!(!c[0].contains("unwrap"));
        assert!(c[0].contains("let t = 1;"));
    }

    #[test]
    fn nested_block_comments() {
        let c = code("a /* outer /* inner */ still */ b");
        assert_eq!(c[0].split_whitespace().collect::<Vec<_>>(), vec!["a", "b"]);
    }

    #[test]
    fn multiline_strings_and_comments_carry_state() {
        let src =
            "let s = \"line one\nstill string .unwrap()\";\n/* block\nstill block */ let x = 1;";
        let c = code(src);
        assert!(!c[1].contains("unwrap"));
        assert!(c[1].contains("\";"));
        assert!(!c[2].contains("block"));
        assert!(c[3].contains("let x = 1;"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let c = code("fn f<'a>(x: &'a str) -> &'a str { x } let c = 'x'; let esc = '\\'';");
        assert!(c[0].contains("fn f<'a>(x: &'a str)"));
        assert!(c[0].contains("let c = '"));
    }

    #[test]
    fn escaped_quotes_stay_inside_strings() {
        let c = code("let s = \"quote \\\" inside\"; let x = 2;");
        assert!(c[0].contains("let x = 2;"));
        assert!(!c[0].contains("inside"));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let c = code("let b = b\"bytes .unwrap()\"; let ch = b'x'; let ident = broadcast;");
        assert!(!c[0].contains("unwrap"));
        assert!(c[0].contains("let ident = broadcast;"));
    }

    #[test]
    fn line_count_is_preserved() {
        let src = "a\nb\n\nc";
        assert_eq!(lex(src).len(), 4);
    }
}
