//! CLI for the invariant lint engine.
//!
//! ```text
//! dlra-analyze check [--root <dir>]   run every rule; exit 1 on errors
//! dlra-analyze graph [--root <dir>]   print the lock-acquisition edges
//! dlra-analyze rules                  list rule ids and what they enforce
//! ```

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use dlra_analyze::{engine, RULES};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("check");
    let root = match root_arg(&args) {
        Ok(root) => root,
        Err(msg) => {
            eprintln!("dlra-analyze: {msg}");
            return ExitCode::from(2);
        }
    };

    match cmd {
        "check" => match engine::check_workspace(&root) {
            // An empty walk means the root is wrong, not that the code is
            // clean — a vacuous pass must not satisfy the CI gate.
            Ok(report) if report.files == 0 => {
                eprintln!(
                    "dlra-analyze: no Rust sources under {} — is this the workspace root?",
                    root.display()
                );
                ExitCode::from(2)
            }
            Ok(report) => {
                print!("{}", report.render());
                if report.errors() > 0 {
                    ExitCode::FAILURE
                } else {
                    ExitCode::SUCCESS
                }
            }
            Err(e) => {
                eprintln!(
                    "dlra-analyze: failed to read workspace at {}: {e}",
                    root.display()
                );
                ExitCode::from(2)
            }
        },
        "graph" => match engine::workspace_lock_edges(&root) {
            Ok(crates) => {
                for (crate_root, edges) in crates {
                    println!("{crate_root}:");
                    for e in edges {
                        println!("  {} -> {}  ({}:{})", e.from, e.to, e.path, e.line);
                    }
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!(
                    "dlra-analyze: failed to read workspace at {}: {e}",
                    root.display()
                );
                ExitCode::from(2)
            }
        },
        "rules" => {
            for r in RULES {
                println!("{:<20} [{}] {}", r.id, r.severity, normalize(r.summary));
            }
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("dlra-analyze: unknown command `{other}` (try: check, graph, rules)");
            ExitCode::from(2)
        }
    }
}

/// `--root <dir>` if given, else the nearest enclosing directory whose
/// `Cargo.toml` declares `[workspace]`.
fn root_arg(args: &[String]) -> Result<PathBuf, String> {
    if let Some(at) = args.iter().position(|a| a == "--root") {
        let dir = args
            .get(at + 1)
            .ok_or_else(|| "--root requires a directory argument".to_string())?;
        return Ok(PathBuf::from(dir));
    }
    let start = std::env::current_dir().map_err(|e| e.to_string())?;
    find_workspace_root(&start)
        .ok_or_else(|| format!("no [workspace] Cargo.toml above {}", start.display()))
}

fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// Collapses the multi-line summary literals into single-space prose.
fn normalize(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}
