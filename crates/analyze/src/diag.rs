//! Diagnostics: rustc-style rendering, severities, and the rule registry.

use std::fmt;

/// How a finding affects the exit status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Reported but never fails the gate (e.g. an unused suppression).
    Warning,
    /// Fails `dlra-analyze check`.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One rule of the invariant contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rule {
    /// Stable kebab-case id — what `dlra-allow(<id>)` names.
    pub id: &'static str,
    /// Default severity of the rule's findings.
    pub severity: Severity,
    /// One-line summary for `dlra-analyze rules`.
    pub summary: &'static str,
}

/// The rule registry. Order is presentation order in `dlra-analyze rules`.
pub const RULES: &[Rule] = &[
    Rule {
        id: "determinism",
        severity: Severity::Error,
        summary: "no wall-clock reads or unordered collections in ledger-deterministic modules \
                  (crates/core, crates/sampler, crates/comm, crates/linalg kernels)",
    },
    Rule {
        id: "env-determinism",
        severity: Severity::Error,
        summary: "no ambient `std::env` reads in ledger-deterministic modules or the transport \
                  crate — configuration must flow through typed parameters",
    },
    Rule {
        id: "panic-policy",
        severity: Severity::Error,
        summary: "no unwrap/expect/panic! in non-test crates/runtime, crates/comm, crates/obs, \
                  crates/net code — failures resolve to typed errors or recover from poisoning",
    },
    Rule {
        id: "unsafe-hygiene",
        severity: Severity::Error,
        summary: "`unsafe` confined to crates/linalg, every unsafe site carries a SAFETY \
                  comment, unsafe crates deny unsafe_op_in_unsafe_fn, unsafe-free crates \
                  forbid unsafe_code",
    },
    Rule {
        id: "atomic-ordering",
        severity: Severity::Error,
        summary: "every Ordering::SeqCst carries a justification comment naming SeqCst; \
                  plain counters use Relaxed",
    },
    Rule {
        id: "thread-discipline",
        severity: Severity::Error,
        summary: "no std::thread spawns outside the persistent kernel pool, ThreadedCluster, \
                  and the SocketCluster server nodes",
    },
    Rule {
        id: "lock-order",
        severity: Severity::Error,
        summary: "the acquisition graph over `// dlra-lock-order:`-annotated locks is acyclic",
    },
    Rule {
        id: "suppression-hygiene",
        severity: Severity::Error,
        summary: "every dlra-allow names a known rule and carries a non-empty reason",
    },
];

/// Looks a rule up by id.
pub fn rule(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// One finding, anchored to a source position.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub rule: &'static str,
    pub severity: Severity,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line; 0 for file- or crate-level findings.
    pub line: usize,
    /// 1-based column of the offending token; 0 when unknown.
    pub col: usize,
    /// The defect, stated in one sentence.
    pub message: String,
    /// Optional remediation hint (rendered as `= help:`).
    pub help: Option<String>,
    /// The raw source line, for the snippet gutter.
    pub snippet: Option<String>,
}

impl Diagnostic {
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{}[{}]: {}\n",
            self.severity, self.rule, self.message
        ));
        if self.line > 0 {
            out.push_str(&format!("  --> {}:{}", self.path, self.line));
            if self.col > 0 {
                out.push_str(&format!(":{}", self.col));
            }
            out.push('\n');
        } else {
            out.push_str(&format!("  --> {}\n", self.path));
        }
        if let Some(snippet) = &self.snippet {
            let gutter = format!("{}", self.line);
            let pad = " ".repeat(gutter.len());
            out.push_str(&format!("{pad} |\n"));
            out.push_str(&format!("{gutter} | {}\n", snippet.trim_end()));
            if self.col > 0 {
                let caret_pad: String = snippet
                    .chars()
                    .take(self.col - 1)
                    .map(|c| if c == '\t' { '\t' } else { ' ' })
                    .collect();
                out.push_str(&format!("{pad} | {caret_pad}^\n"));
            } else {
                out.push_str(&format!("{pad} |\n"));
            }
        }
        if let Some(help) = &self.help {
            out.push_str(&format!("  = help: {help}\n"));
        }
        out
    }
}

/// The outcome of one analysis run.
#[derive(Debug, Default)]
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
    /// Files analyzed (for the summary line).
    pub files: usize,
}

impl Report {
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    pub fn warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Findings of one rule (tests use this to pin rule ownership).
    pub fn of_rule<'a>(&'a self, rule: &'a str) -> impl Iterator<Item = &'a Diagnostic> + 'a {
        self.diagnostics.iter().filter(move |d| d.rule == rule)
    }

    /// Renders every diagnostic plus a summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "dlra-analyze: {} file{} checked, {} error{}, {} warning{}\n",
            self.files,
            if self.files == 1 { "" } else { "s" },
            self.errors(),
            if self.errors() == 1 { "" } else { "s" },
            self.warnings(),
            if self.warnings() == 1 { "" } else { "s" },
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_kebab_case() {
        for (i, r) in RULES.iter().enumerate() {
            assert!(r.id.chars().all(|c| c.is_ascii_lowercase() || c == '-'));
            assert!(RULES.iter().skip(i + 1).all(|o| o.id != r.id));
        }
        assert!(rule("determinism").is_some());
        assert!(rule("no-such-rule").is_none());
    }

    #[test]
    fn render_includes_position_snippet_and_help() {
        let d = Diagnostic {
            rule: "panic-policy",
            severity: Severity::Error,
            path: "crates/runtime/src/service.rs".into(),
            line: 42,
            col: 13,
            message: "`.unwrap()` in non-test runtime code".into(),
            help: Some("resolve to a ServiceError".into()),
            snippet: Some("    let x = y.unwrap();".into()),
        };
        let s = d.render();
        assert!(s.contains("error[panic-policy]"));
        assert!(s.contains("crates/runtime/src/service.rs:42:13"));
        assert!(s.contains("42 |     let x = y.unwrap();"));
        assert!(s.contains("= help: resolve to a ServiceError"));
    }

    #[test]
    fn report_counts_severities() {
        let mut r = Report {
            files: 3,
            ..Report::default()
        };
        r.diagnostics.push(Diagnostic {
            rule: "determinism",
            severity: Severity::Error,
            path: "x.rs".into(),
            line: 1,
            col: 0,
            message: "m".into(),
            help: None,
            snippet: None,
        });
        r.diagnostics.push(Diagnostic {
            rule: "suppression-hygiene",
            severity: Severity::Warning,
            path: "x.rs".into(),
            line: 2,
            col: 0,
            message: "m".into(),
            help: None,
            snippet: None,
        });
        assert_eq!(r.errors(), 1);
        assert_eq!(r.warnings(), 1);
        assert_eq!(r.of_rule("determinism").count(), 1);
        assert!(r.render().contains("3 files checked, 1 error, 1 warning"));
    }
}
