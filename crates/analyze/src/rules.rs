//! The pattern-driven rules: determinism, env-determinism, panic-policy,
//! unsafe-hygiene (per-file and per-crate halves), atomic-ordering, and
//! thread-discipline. Lock ordering lives in [`crate::lock_order`].

use crate::diag::{Diagnostic, Severity};
use crate::source::SourceFile;

/// Modules on the ledger-deterministic path: their outputs and per-query
/// communication ledgers must be bit-identical across substrates, thread
/// counts, and plan-cache settings, so nothing inside them may branch on
/// wall clock, ambient environment, or unordered iteration.
pub fn is_deterministic_module(path: &str) -> bool {
    path.starts_with("crates/core/src/")
        || path.starts_with("crates/sampler/src/")
        || path.starts_with("crates/comm/src/")
        || path == "crates/linalg/src/kernels.rs"
}

/// Crates under the no-panic serving contract: queries must resolve to
/// typed errors (`ServiceError::RuntimeUnavailable`, poison recovery), not
/// unwind the executor. The transport crate is in scope: a malformed or
/// truncated frame must come back as a typed `NetError`, never a panic a
/// remote peer can trigger.
pub fn in_panic_scope(path: &str) -> bool {
    path.starts_with("crates/runtime/src/")
        || path.starts_with("crates/comm/src/")
        || path.starts_with("crates/obs/src/")
        || path.starts_with("crates/net/src/")
}

/// Modules barred from reading the ambient environment: the
/// ledger-deterministic core plus the transport crate. `dlra-net` takes
/// all configuration through typed parameters and the bootstrap roster —
/// env knobs (`DLRA_SUBSTRATE`, thread counts) are parsed once in the
/// runtime layer and never inside protocol or transport code, so a
/// cluster's wire transcript is a pure function of its inputs.
pub fn in_env_scope(path: &str) -> bool {
    is_deterministic_module(path) || path.starts_with("crates/net/src/")
}

/// The only crate allowed to contain `unsafe` code.
pub fn unsafe_allowed(path: &str) -> bool {
    path.starts_with("crates/linalg/")
}

/// The sanctioned long-lived spawn sites: the persistent kernel worker
/// pool, the per-server workers of `ThreadedCluster`, and the per-server
/// node threads of `SocketCluster` (the loopback counterpart of the same
/// worker set). Everything else needs a `dlra-allow(thread-discipline)`
/// with a reason (the service executor pool carries one).
pub fn spawn_allowed(path: &str) -> bool {
    path == "crates/linalg/src/threads.rs"
        || path == "crates/runtime/src/threaded.rs"
        || path == "crates/net/src/cluster.rs"
}

fn diag(
    rule: &'static str,
    file: &SourceFile,
    line: usize,
    col: usize,
    message: String,
    help: String,
) -> Diagnostic {
    Diagnostic {
        rule,
        severity: Severity::Error,
        path: file.path.clone(),
        line,
        col,
        message,
        help: Some(help),
        snippet: file.snippet(line),
    }
}

/// Finds `needle` as a whole word (not embedded in a larger identifier).
fn word_matches(file: &SourceFile, needle: &str) -> Vec<(usize, usize)> {
    file.code_matches(needle)
        .into_iter()
        .filter(|&(line, col)| {
            let code = file.code(line);
            let bytes = code.as_bytes();
            let before_ok = col < 2
                || !bytes
                    .get(col - 2)
                    .is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_');
            let after = col - 1 + needle.len();
            let after_ok = !bytes
                .get(after)
                .is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_');
            before_ok && after_ok
        })
        .collect()
}

/// Whether the file contains any real (non-test) `unsafe` token — the
/// attribute spellings `unsafe_code` / `unsafe_op_in_unsafe_fn` don't
/// count because the word boundary check excludes them.
pub fn has_unsafe_code(file: &SourceFile) -> bool {
    !word_matches(file, "unsafe").is_empty()
}

/// Rule `determinism`: wall clocks and unordered collections are banned
/// from ledger-deterministic modules.
pub fn determinism(file: &SourceFile) -> Vec<Diagnostic> {
    if !is_deterministic_module(&file.path) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (pattern, what, why) in [
        (
            "Instant::now",
            "wall-clock read",
            "execution time varies across substrates and thread counts; deterministic code \
             must not branch on it",
        ),
        (
            "SystemTime",
            "wall-clock read",
            "system time varies across runs; deterministic code must not depend on it",
        ),
        (
            "HashMap",
            "unordered collection",
            "HashMap iteration order is randomized per process; use a Vec, BTreeMap, or \
             index-keyed layout",
        ),
        (
            "HashSet",
            "unordered collection",
            "HashSet iteration order is randomized per process; use a Vec, BTreeSet, or \
             sorted layout",
        ),
    ] {
        for (line, col) in word_matches(file, pattern) {
            out.push(diag(
                "determinism",
                file,
                line,
                col,
                format!("{what} `{pattern}` in ledger-deterministic module"),
                format!("{why}; or suppress with `// dlra-allow(determinism): <reason>`"),
            ));
        }
    }
    out
}

/// Rule `env-determinism`: deterministic modules and the transport crate
/// take configuration through typed parameters, never from ambient
/// process state.
pub fn env_determinism(file: &SourceFile) -> Vec<Diagnostic> {
    if !in_env_scope(&file.path) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for pattern in ["std::env", "env::var", "option_env!"] {
        for (line, col) in file.code_matches(pattern) {
            out.push(diag(
                "env-determinism",
                file,
                line,
                col,
                format!("ambient environment read `{pattern}` in env-isolated module"),
                "thread configuration through typed parameters so two runs with equal inputs \
                 are bit-identical; or suppress with `// dlra-allow(env-determinism): <reason>`"
                    .into(),
            ));
        }
    }
    out
}

/// Rule `panic-policy`: serving-path crates must not panic outside tests.
pub fn panic_policy(file: &SourceFile) -> Vec<Diagnostic> {
    if !in_panic_scope(&file.path) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (pattern, what) in [
        (".unwrap()", "`.unwrap()`"),
        (".expect(", "`.expect(..)`"),
        ("panic!(", "`panic!`"),
        ("unreachable!(", "`unreachable!`"),
        ("todo!(", "`todo!`"),
        ("unimplemented!(", "`unimplemented!`"),
    ] {
        for (line, col) in file.code_matches(pattern) {
            out.push(diag(
                "panic-policy",
                file,
                line,
                col,
                format!("{what} in non-test serving-path code"),
                "resolve to a typed error (`ServiceError`/`CoreError`), recover poisoned locks \
                 with `dlra_util::sync`, or suppress with `// dlra-allow(panic-policy): <reason>`"
                    .into(),
            ));
        }
    }
    out
}

/// Per-file half of rule `unsafe-hygiene`: `unsafe` only in
/// `crates/linalg`, and every unsafe site carries a SAFETY comment.
pub fn unsafe_hygiene_file(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (line, col) in word_matches(file, "unsafe") {
        if !unsafe_allowed(&file.path) {
            out.push(diag(
                "unsafe-hygiene",
                file,
                line,
                col,
                "`unsafe` outside crates/linalg".into(),
                "unsafe code is confined to the kernel crate where it is reviewed against the \
                 pool protocol; express this safely or move it behind a dlra-linalg API"
                    .into(),
            ));
            continue;
        }
        let attached = file.attached_comment(line);
        let justified = attached.to_ascii_lowercase().contains("safety");
        if !justified {
            out.push(diag(
                "unsafe-hygiene",
                file,
                line,
                col,
                "`unsafe` without a `// SAFETY:` comment".into(),
                "state the invariant that makes this sound in a `// SAFETY:` comment on or \
                 directly above the unsafe site"
                    .into(),
            ));
        }
    }
    out
}

/// Per-crate half of rule `unsafe-hygiene`, run by the engine once per
/// crate: an unsafe-using crate must deny `unsafe_op_in_unsafe_fn`; a
/// provably unsafe-free crate must `#![forbid(unsafe_code)]` so it stays
/// that way.
pub fn unsafe_hygiene_crate(
    crate_root: &str,
    root_file: Option<&SourceFile>,
    has_unsafe: bool,
) -> Vec<Diagnostic> {
    let Some(root_file) = root_file else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let has_attr = |needle: &str| root_file.lines.iter().any(|l| l.code.contains(needle));
    if has_unsafe {
        if !has_attr("unsafe_op_in_unsafe_fn") {
            out.push(Diagnostic {
                rule: "unsafe-hygiene",
                severity: Severity::Error,
                path: root_file.path.clone(),
                line: 0,
                col: 0,
                message: format!(
                    "crate `{crate_root}` contains unsafe code but does not deny \
                     `unsafe_op_in_unsafe_fn`"
                ),
                help: Some(
                    "add `#![deny(unsafe_op_in_unsafe_fn)]` to the crate root so every unsafe \
                     operation inside an unsafe fn is individually scoped and justified"
                        .into(),
                ),
                snippet: None,
            });
        }
    } else if !has_attr("#![forbid(unsafe_code)]") {
        out.push(Diagnostic {
            rule: "unsafe-hygiene",
            severity: Severity::Error,
            path: root_file.path.clone(),
            line: 0,
            col: 0,
            message: format!(
                "crate `{crate_root}` is unsafe-free but does not `#![forbid(unsafe_code)]`"
            ),
            help: Some(
                "add `#![forbid(unsafe_code)]` to the crate root; the analyzer proved the crate \
                 clean, the attribute keeps it that way"
                    .into(),
            ),
            snippet: None,
        });
    }
    out
}

/// Rule `atomic-ordering`: `SeqCst` is the strongest and slowest ordering;
/// each use must say why a weaker one does not suffice. Plain monotone
/// counters get a dedicated hint (they are always correct as `Relaxed`).
pub fn atomic_ordering(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (line, col) in word_matches(file, "SeqCst") {
        let attached = file.attached_comment(line);
        if attached.contains("SeqCst") {
            continue; // justified in place
        }
        let code = file.code(line);
        let counter = code.contains("fetch_add(1,") || code.contains("fetch_sub(1,");
        let (message, help) = if counter {
            (
                "`SeqCst` on a plain counter".to_string(),
                "a monotone counter needs no cross-variable ordering: use `Ordering::Relaxed`; \
                 if this really synchronizes other state, justify it in a comment naming SeqCst"
                    .to_string(),
            )
        } else {
            (
                "`Ordering::SeqCst` without a justification comment".to_string(),
                "downgrade to Relaxed/Acquire/Release if the total order is not load-bearing, \
                 or add a comment naming SeqCst that states which cross-thread invariant \
                 needs it"
                    .to_string(),
            )
        };
        out.push(diag("atomic-ordering", file, line, col, message, help));
    }
    out
}

/// Rule `thread-discipline`: every long-lived thread belongs to one of the
/// two sanctioned pools; ad-hoc spawns multiply the concurrent surface the
/// equivalence suites have to reason about.
pub fn thread_discipline(file: &SourceFile) -> Vec<Diagnostic> {
    if spawn_allowed(&file.path) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for pattern in ["thread::spawn", "thread::Builder"] {
        for (line, col) in file.code_matches(pattern) {
            out.push(diag(
                "thread-discipline",
                file,
                line,
                col,
                format!("`{pattern}` outside the sanctioned thread pools"),
                "route work through the persistent kernel pool (dlra-linalg), the \
                 ThreadedCluster server workers, or the service executor pool; or suppress \
                 with `// dlra-allow(thread-discipline): <reason>`"
                    .into(),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(path: &str, src: &str) -> SourceFile {
        SourceFile::parse(path, src)
    }

    #[test]
    fn determinism_scopes_by_module() {
        let bad = "fn f() { let t = Instant::now(); }";
        assert_eq!(determinism(&parse("crates/core/src/a.rs", bad)).len(), 1);
        assert_eq!(determinism(&parse("crates/obs/src/a.rs", bad)).len(), 0);
        assert_eq!(
            determinism(&parse("crates/linalg/src/kernels.rs", bad)).len(),
            1
        );
        assert_eq!(
            determinism(&parse("crates/linalg/src/threads.rs", bad)).len(),
            0
        );
    }

    #[test]
    fn determinism_flags_unordered_collections_not_substrings() {
        let f = parse(
            "crates/sampler/src/a.rs",
            "use std::collections::HashMap;\nstruct MyHashMapLike;\n",
        );
        let d = determinism(&f);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn panic_policy_skips_tests_and_comments() {
        let src = "\
fn live() { x.unwrap(); } // not ok
/// doc: y.unwrap() is fine in docs
#[cfg(test)]
mod tests { fn t() { z.unwrap(); } }
";
        let d = panic_policy(&parse("crates/runtime/src/a.rs", src));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 1);
        assert!(panic_policy(&parse("crates/linalg/src/a.rs", src)).is_empty());
    }

    #[test]
    fn transport_crate_is_in_panic_and_env_scope() {
        let panicking = "fn f() { x.unwrap(); }";
        assert_eq!(
            panic_policy(&parse("crates/net/src/frame.rs", panicking)).len(),
            1
        );
        let ambient = "fn f() { let _ = std::env::var(\"PORT\"); }";
        assert!(!env_determinism(&parse("crates/net/src/cluster.rs", ambient)).is_empty());
        // ...but not in the determinism scope: the transport may keep a
        // HashMap job table and read the clock for timeouts.
        let clocked = "fn f() { let _ = Instant::now(); }";
        assert!(determinism(&parse("crates/net/src/cluster.rs", clocked)).is_empty());
    }

    #[test]
    fn unsafe_outside_linalg_is_flagged() {
        let src = "fn f() { unsafe { std::hint::unreachable_unchecked() } }";
        assert_eq!(
            unsafe_hygiene_file(&parse("crates/comm/src/a.rs", src)).len(),
            1
        );
    }

    #[test]
    fn unsafe_in_linalg_needs_safety_comment() {
        let without = "fn f() { unsafe { go() } }";
        let with = "fn f() {\n    // SAFETY: bounds checked above\n    unsafe { go() }\n}";
        assert_eq!(
            unsafe_hygiene_file(&parse("crates/linalg/src/k.rs", without)).len(),
            1
        );
        assert!(unsafe_hygiene_file(&parse("crates/linalg/src/k.rs", with)).is_empty());
    }

    #[test]
    fn crate_level_attributes_are_required() {
        let clean_root = parse("crates/foo/src/lib.rs", "#![forbid(unsafe_code)]\n");
        assert!(unsafe_hygiene_crate("crates/foo", Some(&clean_root), false).is_empty());
        let bare_root = parse("crates/foo/src/lib.rs", "pub mod a;\n");
        assert_eq!(
            unsafe_hygiene_crate("crates/foo", Some(&bare_root), false).len(),
            1
        );
        assert_eq!(
            unsafe_hygiene_crate("crates/foo", Some(&bare_root), true).len(),
            1
        );
        let denying = parse(
            "crates/foo/src/lib.rs",
            "#![deny(unsafe_op_in_unsafe_fn)]\n",
        );
        assert!(unsafe_hygiene_crate("crates/foo", Some(&denying), true).is_empty());
    }

    #[test]
    fn seqcst_requires_a_comment_naming_it() {
        let bare = "fn f() { X.store(1, Ordering::SeqCst); }";
        assert_eq!(atomic_ordering(&parse("crates/a/src/a.rs", bare)).len(), 1);
        let justified = "\
fn f() {
    // SeqCst: pairs with the CAS in claim(); both sides need the total order.
    X.store(1, Ordering::SeqCst);
}
";
        assert!(atomic_ordering(&parse("crates/a/src/a.rs", justified)).is_empty());
        let counter = "fn f() { N.fetch_add(1, Ordering::SeqCst); }";
        let d = atomic_ordering(&parse("crates/a/src/a.rs", counter));
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("counter"));
    }

    #[test]
    fn spawns_flagged_outside_the_pools() {
        let src = "fn f() { std::thread::spawn(|| {}); }";
        assert_eq!(
            thread_discipline(&parse("crates/core/src/a.rs", src)).len(),
            1
        );
        assert!(thread_discipline(&parse("crates/linalg/src/threads.rs", src)).is_empty());
        assert!(thread_discipline(&parse("crates/runtime/src/threaded.rs", src)).is_empty());
        assert!(thread_discipline(&parse("crates/net/src/cluster.rs", src)).is_empty());
        assert_eq!(
            thread_discipline(&parse("crates/net/src/node.rs", src)).len(),
            1
        );
    }
}
