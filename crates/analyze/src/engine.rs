//! The analysis driver: walks the workspace, runs every rule, applies
//! `dlra-allow` suppressions, and enforces suppression hygiene.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use crate::diag::{rule, Diagnostic, Report, Severity};
use crate::lock_order::{self, EdgeWitness};
use crate::rules;
use crate::source::SourceFile;

/// Directories under a crate that hold test-only code; the walker skips
/// them entirely (the rules govern shipped code).
const SKIP_DIRS: &[&str] = &["tests", "benches", "examples", "fixtures", "target"];

/// Analyzes in-memory sources, keyed by workspace-relative virtual path.
/// This is the seam the fixture tests drive.
pub fn check_sources(sources: &[(String, String)]) -> Report {
    let files: Vec<SourceFile> = sources
        .iter()
        .map(|(p, s)| SourceFile::parse(p, s))
        .collect();
    analyze(files)
}

/// Walks the workspace rooted at `root` and analyzes every shipped
/// source file: `src/**` of the facade crate and of each `crates/*`
/// member except the vendored test shims.
pub fn check_workspace(root: &Path) -> std::io::Result<Report> {
    Ok(analyze(collect_files(root)?))
}

/// The lock-acquisition edges per crate (for `dlra-analyze graph`).
pub fn workspace_lock_edges(root: &Path) -> std::io::Result<Vec<(String, Vec<EdgeWitness>)>> {
    let report_files = collect_files(root)?;
    let mut out = Vec::new();
    for (crate_root, files) in by_crate(&report_files) {
        let (edges, _) = lock_order::build_edges(&files);
        if !edges.is_empty() {
            out.push((crate_root, edges));
        }
    }
    Ok(out)
}

fn collect_files(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    for (virtual_root, dir) in source_roots(root) {
        let mut stack = vec![dir];
        while let Some(d) = stack.pop() {
            let mut entries: Vec<PathBuf> = fs::read_dir(&d)?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .collect();
            entries.sort();
            for path in entries {
                let name = path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .unwrap_or_default()
                    .to_string();
                if path.is_dir() {
                    if !SKIP_DIRS.contains(&name.as_str()) {
                        stack.push(path);
                    }
                } else if name.ends_with(".rs") {
                    let rel = path
                        .strip_prefix(root)
                        .map(|p| p.to_string_lossy().replace('\\', "/"))
                        .unwrap_or_else(|_| format!("{virtual_root}/{name}"));
                    let src = fs::read_to_string(&path)?;
                    files.push(SourceFile::parse(&rel, &src));
                }
            }
        }
    }
    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(files)
}

/// The `src/` roots to walk: the facade crate plus every `crates/*`
/// member except the vendored shims (they impersonate external crates
/// and are exempt from repo policy).
fn source_roots(root: &Path) -> Vec<(String, PathBuf)> {
    let mut out = Vec::new();
    let facade = root.join("src");
    if facade.is_dir() {
        out.push(("src".to_string(), facade));
    }
    let crates = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates) {
        let mut dirs: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
        dirs.sort();
        for dir in dirs {
            let name = dir
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_string();
            if name == "shims" {
                continue;
            }
            let src = dir.join("src");
            if src.is_dir() {
                out.push((format!("crates/{name}/src"), src));
            }
        }
    }
    out
}

/// Groups files by crate root (`crates/<name>` or `src` for the facade).
fn by_crate(files: &[SourceFile]) -> BTreeMap<String, Vec<&SourceFile>> {
    let mut out: BTreeMap<String, Vec<&SourceFile>> = BTreeMap::new();
    for f in files {
        let key = crate_root(&f.path);
        out.entry(key).or_default().push(f);
    }
    out
}

fn crate_root(path: &str) -> String {
    let parts: Vec<&str> = path.split('/').collect();
    if parts.first() == Some(&"crates") && parts.len() >= 2 {
        format!("crates/{}", parts[1])
    } else {
        "src".to_string()
    }
}

fn analyze(files: Vec<SourceFile>) -> Report {
    let mut report = Report {
        files: files.len(),
        ..Report::default()
    };
    let mut candidates: Vec<Diagnostic> = Vec::new();

    // Per-file rules.
    for f in &files {
        candidates.extend(rules::determinism(f));
        candidates.extend(rules::env_determinism(f));
        candidates.extend(rules::panic_policy(f));
        candidates.extend(rules::unsafe_hygiene_file(f));
        candidates.extend(rules::atomic_ordering(f));
        candidates.extend(rules::thread_discipline(f));
    }

    // Per-crate rules: crate-level attributes and the lock graph.
    for (crate_root, members) in by_crate(&files) {
        let root_file = members.iter().find(|f| {
            f.path == format!("{crate_root}/src/lib.rs")
                || (crate_root == "src" && f.path == "src/lib.rs")
                || f.path == format!("{crate_root}/src/main.rs")
        });
        let has_unsafe = members.iter().any(|f| rules::has_unsafe_code(f));
        candidates.extend(rules::unsafe_hygiene_crate(
            &crate_root,
            root_file.copied(),
            has_unsafe,
        ));
        candidates.extend(lock_order::check_crate(&members));
    }

    // Apply suppressions. A suppression must name a known rule and carry
    // a reason to take effect; defective ones leave the finding standing
    // and add a hygiene error of their own.
    let by_path: BTreeMap<&str, &SourceFile> = files.iter().map(|f| (f.path.as_str(), f)).collect();
    let mut used: BTreeMap<(String, usize), bool> = BTreeMap::new();
    for f in &files {
        for s in &f.suppressions {
            used.insert((f.path.clone(), s.line), false);
        }
    }
    for d in candidates {
        let suppressed = by_path.get(d.path.as_str()).and_then(|f| {
            let idx = f.suppression_for(d.rule, d.line)?;
            let s = &f.suppressions[idx];
            (s.reason.is_some() && rule(&s.rule).is_some()).then(|| (f.path.clone(), s.line))
        });
        match suppressed {
            Some(key) => {
                used.insert(key, true);
            }
            None => report.diagnostics.push(d),
        }
    }

    // Suppression hygiene: unknown rules and missing reasons are errors;
    // a well-formed suppression that matched nothing is a warning.
    for f in &files {
        for s in &f.suppressions {
            if rule(&s.rule).is_none() {
                report.diagnostics.push(Diagnostic {
                    rule: "suppression-hygiene",
                    severity: Severity::Error,
                    path: f.path.clone(),
                    line: s.line,
                    col: 1,
                    message: format!("`dlra-allow({})` names an unknown rule", s.rule),
                    help: Some("run `dlra-analyze rules` for the list of rule ids".into()),
                    snippet: f.snippet(s.line),
                });
            } else if s.reason.is_none() {
                report.diagnostics.push(Diagnostic {
                    rule: "suppression-hygiene",
                    severity: Severity::Error,
                    path: f.path.clone(),
                    line: s.line,
                    col: 1,
                    message: format!("`dlra-allow({})` without a reason", s.rule),
                    help: Some(
                        "suppressions must justify themselves: write \
                         `// dlra-allow(rule): <why this is sound>`"
                            .into(),
                    ),
                    snippet: f.snippet(s.line),
                });
            } else if used.get(&(f.path.clone(), s.line)) == Some(&false) {
                report.diagnostics.push(Diagnostic {
                    rule: "suppression-hygiene",
                    severity: Severity::Warning,
                    path: f.path.clone(),
                    line: s.line,
                    col: 1,
                    message: format!("unused `dlra-allow({})`", s.rule),
                    help: Some(
                        "the rule no longer fires here; drop the suppression so it can't \
                         mask a future regression"
                            .into(),
                    ),
                    snippet: f.snippet(s.line),
                });
            }
        }
    }

    report
        .diagnostics
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(items: &[(&str, &str)]) -> Vec<(String, String)> {
        items
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect()
    }

    #[test]
    fn suppression_with_reason_silences_the_finding() {
        let r = check_sources(&src(&[(
            "crates/runtime/src/a.rs",
            "fn f() {\n    // dlra-allow(panic-policy): init cannot fail\n    x.unwrap();\n}\n",
        )]));
        assert_eq!(r.of_rule("panic-policy").count(), 0, "{}", r.render());
        assert_eq!(r.of_rule("suppression-hygiene").count(), 0);
    }

    #[test]
    fn suppression_without_reason_is_rejected_and_finding_stands() {
        let r = check_sources(&src(&[(
            "crates/runtime/src/a.rs",
            "fn f() {\n    // dlra-allow(panic-policy)\n    x.unwrap();\n}\n",
        )]));
        assert_eq!(r.of_rule("panic-policy").count(), 1, "{}", r.render());
        assert_eq!(r.of_rule("suppression-hygiene").count(), 1);
        assert!(r.errors() >= 2);
    }

    #[test]
    fn unknown_rule_suppression_is_an_error() {
        let r = check_sources(&src(&[(
            "crates/runtime/src/a.rs",
            "// dlra-allow(no-such-rule): because\nfn f() {}\n",
        )]));
        assert_eq!(r.of_rule("suppression-hygiene").count(), 1);
        assert_eq!(r.errors(), 1);
    }

    #[test]
    fn unused_suppression_is_a_warning_not_an_error() {
        let r = check_sources(&src(&[(
            "crates/runtime/src/a.rs",
            "// dlra-allow(panic-policy): nothing here panics\nfn f() {}\n",
        )]));
        assert_eq!(r.errors(), 0, "{}", r.render());
        assert_eq!(r.warnings(), 1);
    }

    #[test]
    fn crate_grouping_feeds_crate_level_checks() {
        // Unsafe-free crate without forbid(unsafe_code) on its root.
        let r = check_sources(&src(&[
            ("crates/foo/src/lib.rs", "pub mod a;\n"),
            ("crates/foo/src/a.rs", "pub fn ok() {}\n"),
        ]));
        assert_eq!(r.of_rule("unsafe-hygiene").count(), 1, "{}", r.render());
    }
}
