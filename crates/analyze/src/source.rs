//! The per-file source model: lexed lines, test-region map, and
//! `dlra-allow` suppressions.

use crate::lexer::{lex, Line};

/// A suppression comment: `// dlra-allow(rule): reason`.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// 1-based line the comment sits on.
    pub line: usize,
    /// The rule id inside the parentheses (not yet validated).
    pub rule: String,
    /// The reason after the colon, trimmed. `None` when the colon or the
    /// text after it is missing — which is itself a finding.
    pub reason: Option<String>,
}

/// One analyzed source file.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Raw source lines (for snippets).
    pub raw: Vec<String>,
    /// Lexed code/comment views, parallel to `raw`.
    pub lines: Vec<Line>,
    /// `in_test[i]` is `true` when 0-based line `i` belongs to a
    /// `#[cfg(test)]` item (or the whole file is a test/bench/example).
    pub in_test: Vec<bool>,
    /// Every `dlra-allow` comment in the file, in line order.
    pub suppressions: Vec<Suppression>,
}

impl SourceFile {
    pub fn parse(path: &str, src: &str) -> Self {
        let raw: Vec<String> = src.lines().map(str::to_string).collect();
        let mut lines = lex(src);
        // `str::lines` drops a trailing newline's empty tail; keep parallel.
        lines.truncate(raw.len().max(1));
        while lines.len() < raw.len() {
            lines.push(Line::default());
        }
        let in_test = test_regions(&lines);
        let suppressions = find_suppressions(&lines);
        SourceFile {
            path: path.to_string(),
            raw,
            lines,
            in_test,
            suppressions,
        }
    }

    /// The lexed code view of 1-based line `line` ("" when out of range).
    pub fn code(&self, line: usize) -> &str {
        self.lines
            .get(line.wrapping_sub(1))
            .map(|l| l.code.as_str())
            .unwrap_or("")
    }

    /// The raw text of 1-based line `line` (for snippets).
    pub fn snippet(&self, line: usize) -> Option<String> {
        self.raw.get(line.wrapping_sub(1)).cloned()
    }

    /// Whether 1-based line `line` is inside `#[cfg(test)]` code.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.in_test
            .get(line.wrapping_sub(1))
            .copied()
            .unwrap_or(false)
    }

    /// Every `(line, column)` occurrence of `needle` in the code view,
    /// skipping test regions. Both are 1-based.
    pub fn code_matches(&self, needle: &str) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (i, l) in self.lines.iter().enumerate() {
            if self.in_test[i] {
                continue;
            }
            let mut from = 0;
            while let Some(at) = l.code[from..].find(needle) {
                out.push((i + 1, from + at + 1));
                from += at + needle.len();
            }
        }
        out
    }

    /// The comment text "attached" to 1-based line `line`: the line's own
    /// comment plus any contiguous comment-only lines directly above
    /// (capped so a module header can't justify arbitrary code below it).
    pub fn attached_comment(&self, line: usize) -> String {
        let mut parts: Vec<&str> = Vec::new();
        let idx = line.wrapping_sub(1);
        if let Some(l) = self.lines.get(idx) {
            parts.push(&l.comment);
        }
        let mut up = idx;
        let mut budget = 12;
        while up > 0 && budget > 0 {
            up -= 1;
            budget -= 1;
            let l = &self.lines[up];
            // Attribute lines (e.g. `#[target_feature(..)]`) commonly sit
            // between an item and its comment block; skip through them.
            let code = l.code.trim();
            if l.is_comment_only() || (code.starts_with("#[") && l.comment.trim().is_empty()) {
                parts.push(&l.comment);
            } else if code.is_empty() && l.comment.trim().is_empty() {
                break; // blank line ends the attachment
            } else {
                break;
            }
        }
        parts.join("\n")
    }

    /// The suppression (if any) covering a finding of `rule` at 1-based
    /// `line`: a `dlra-allow(rule)` on the line itself or on contiguous
    /// comment-only lines directly above. Returns the suppression's index
    /// into [`SourceFile::suppressions`].
    pub fn suppression_for(&self, rule: &str, line: usize) -> Option<usize> {
        if line == 0 || line > self.lines.len() {
            return None; // file- or crate-level findings have no anchor line
        }
        let mut candidates: Vec<usize> = vec![line];
        let mut up = line - 1; // 0-based of `line`
        while up > 0 {
            let l = &self.lines[up - 1];
            let code = l.code.trim();
            if l.is_comment_only() || (code.starts_with("#[") && l.comment.trim().is_empty()) {
                candidates.push(up);
                up -= 1;
            } else {
                break;
            }
        }
        self.suppressions
            .iter()
            .position(|s| s.rule == rule && candidates.contains(&s.line))
    }
}

/// Marks lines covered by `#[cfg(test)]` items. The attribute guards the
/// *next item only* (commonly `mod tests { … }`, sometimes a single enum
/// variant or function), so the skip runs to that item's closing brace or
/// terminating semicolon — not to the end of the file.
fn test_regions(lines: &[Line]) -> Vec<bool> {
    let mut in_test = vec![false; lines.len()];
    let mut i = 0usize;
    while i < lines.len() {
        let code = &lines[i].code;
        if let Some(at) = code
            .find("#[cfg(test)]")
            .or_else(|| code.find("#[cfg(all(test"))
        {
            // Everything from the attribute to the end of the guarded
            // item: its matching close brace, a terminating `;`, or — for
            // enum variants — the `,` (or the enum's own `}`) that ends
            // the variant before any brace opened.
            let mut depth: i32 = 0;
            let mut parens: i32 = 0;
            let mut seen_open = false;
            let mut j = i;
            let mut col = at;
            'scan: while j < lines.len() {
                in_test[j] = true;
                let line_code = &lines[j].code;
                for c in line_code[col..].chars() {
                    match c {
                        '(' => parens += 1,
                        ')' => parens -= 1,
                        '{' => {
                            depth += 1;
                            seen_open = true;
                        }
                        '}' => {
                            if !seen_open {
                                break 'scan; // enclosing item closed first
                            }
                            depth -= 1;
                            if depth == 0 {
                                break 'scan;
                            }
                        }
                        ';' if !seen_open => break 'scan,
                        ',' if !seen_open && parens == 0 => break 'scan,
                        _ => {}
                    }
                }
                j += 1;
                col = 0;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    in_test
}

/// Extracts every `dlra-allow(rule)[: reason]` comment. A directive is
/// only recognized at the start of the comment text — mentions embedded
/// in prose (doc comments describing the syntax) don't count.
fn find_suppressions(lines: &[Line]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (i, l) in lines.iter().enumerate() {
        let comment = &l.comment;
        if !comment.trim_start().starts_with("dlra-allow(") {
            continue;
        }
        let mut from = 0;
        while let Some(at) = comment[from..].find("dlra-allow(") {
            let start = from + at + "dlra-allow(".len();
            let Some(close) = comment[start..].find(')') else {
                out.push(Suppression {
                    line: i + 1,
                    rule: String::new(),
                    reason: None,
                });
                break;
            };
            let rule = comment[start..start + close].trim().to_string();
            let rest = &comment[start + close + 1..];
            let reason = rest.strip_prefix(':').map(str::trim).and_then(|r| {
                if r.is_empty() {
                    None
                } else {
                    // A reason ends at the next suppression on the line.
                    let r = r.split("dlra-allow(").next().unwrap_or(r).trim();
                    (!r.is_empty()).then(|| r.to_string())
                }
            });
            out.push(Suppression {
                line: i + 1,
                rule,
                reason,
            });
            from = start + close + 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_guards_only_the_next_item() {
        let src = "\
fn live() {
    x.unwrap();
}
#[cfg(test)]
mod tests {
    fn t() { y.unwrap(); }
}
fn also_live() {
    z.unwrap();
}
";
        let f = SourceFile::parse("a.rs", src);
        assert!(!f.is_test_line(2));
        assert!(f.is_test_line(5));
        assert!(f.is_test_line(6));
        assert!(!f.is_test_line(9));
        let hits = f.code_matches(".unwrap()");
        assert_eq!(hits.iter().map(|h| h.0).collect::<Vec<_>>(), vec![2, 9]);
    }

    #[test]
    fn cfg_test_on_a_single_variant_is_bounded() {
        let src = "\
enum Task {
    Query,
    #[cfg(test)]
    Poison,
}
fn live() { a.unwrap(); }
";
        let f = SourceFile::parse("a.rs", src);
        assert!(f.is_test_line(4));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn suppressions_parse_rule_and_reason() {
        let src = "\
// dlra-allow(panic-policy): initialization cannot fail
let x = y.unwrap();
let z = w.unwrap(); // dlra-allow(panic-policy): checked above
// dlra-allow(determinism)
// dlra-allow(): empty
";
        let f = SourceFile::parse("a.rs", src);
        assert_eq!(f.suppressions.len(), 4);
        assert_eq!(f.suppressions[0].rule, "panic-policy");
        assert_eq!(
            f.suppressions[0].reason.as_deref(),
            Some("initialization cannot fail")
        );
        assert_eq!(f.suppressions[1].line, 3);
        assert!(f.suppressions[2].reason.is_none());
        assert_eq!(f.suppressions[3].rule, "");
    }

    #[test]
    fn suppression_attaches_same_line_and_above() {
        let src = "\
// dlra-allow(panic-policy): reason here
let x = y.unwrap();
let q = r.unwrap();
";
        let f = SourceFile::parse("a.rs", src);
        assert_eq!(f.suppression_for("panic-policy", 2), Some(0));
        assert_eq!(f.suppression_for("panic-policy", 3), None);
        assert_eq!(f.suppression_for("determinism", 2), None);
    }

    #[test]
    fn attached_comment_skips_attributes() {
        let src = "\
// SAFETY: verified by detect()
#[target_feature(enable = \"avx2\")]
unsafe fn go() {}
";
        let f = SourceFile::parse("a.rs", src);
        assert!(f.attached_comment(3).contains("SAFETY"));
    }
}
