//! Rule `lock-order`: build the cross-function lock-acquisition graph over
//! `// dlra-lock-order:`-annotated locks and fail on cycles.
//!
//! The model is deliberately syntactic but sound for this codebase's
//! idioms:
//!
//! - A lock is *named* by writing `// dlra-lock-order: <name>` directly
//!   above its field declaration (`queue: Mutex<…>`), a static
//!   (`static POOL: Mutex<…>`), or an accessor fn (`fn pool() -> &'static
//!   Mutex<…>`). Names are global (e.g. `service.queue`); the bound
//!   identifier is per-file, so two files may both have a `state` field
//!   mapped to different names.
//! - An acquisition is `.ident.lock(` / `.ident.read(` / `.ident.write(`
//!   on a named field, or `ident().lock(` on a named accessor.
//!   `let`-bound guards are held until the end of their enclosing block
//!   or an explicit `drop(guard)`; acquisitions used as statement
//!   temporaries are held to the end of the statement.
//! - While lock A is held, acquiring lock B records the edge A → B.
//!   Calling a function that (transitively) acquires B records the same
//!   edge. Transitive acquisition is a per-crate fixpoint over a call
//!   graph keyed by bare function name; ubiquitous method names (`len`,
//!   `clone`, …) are excluded so the approximation doesn't wire
//!   unrelated types together.
//! - A cycle in the resulting graph is reported with one witness site per
//!   edge.

use std::collections::{BTreeMap, BTreeSet};

use crate::diag::{Diagnostic, Severity};
use crate::source::SourceFile;

/// Method names too generic to treat as intra-crate calls: resolving
/// these by bare name would connect unrelated types and drown the graph
/// in false edges.
const CALL_DENYLIST: &[&str] = &[
    "as_deref",
    "as_mut",
    "as_ref",
    "clone",
    "cloned",
    "collect",
    "contains",
    "default",
    "drain",
    "drop",
    "entry",
    "eq",
    "expect",
    "extend",
    "fetch_add",
    "fetch_sub",
    "filter",
    "fmt",
    "from",
    "get",
    "get_mut",
    "hash",
    "insert",
    "into",
    "is_empty",
    "iter",
    "join",
    "len",
    "load",
    "lock",
    "lock_recover",
    "map",
    "max",
    "min",
    "ne",
    "new",
    "next",
    "notify_all",
    "notify_one",
    "ok",
    "or_default",
    "pop",
    "push",
    "read",
    "read_recover",
    "recv",
    "remove",
    "retain",
    "send",
    "spawn",
    "store",
    "swap",
    "take",
    "to_string",
    "to_vec",
    "try_recv",
    "try_send",
    "unwrap",
    "unwrap_or",
    "unwrap_or_else",
    "wait",
    "wait_timeout",
    "write",
    "write_recover",
];

/// A lock event inside a function body.
#[derive(Debug, Clone)]
struct Call {
    callee: String,
    held: Vec<String>,
    line: usize,
}

/// Per-function extraction result.
#[derive(Debug, Default)]
struct FnInfo {
    file: usize,
    /// Edges A → B observed directly (A held while B acquired).
    edges: Vec<(String, String, usize)>,
    /// Locks acquired anywhere in the body.
    acquires: BTreeSet<String>,
    /// Same-crate calls with the held-set at the call site.
    calls: Vec<Call>,
}

/// Runs the lock-order analysis over one crate's files.
pub fn check_crate(files: &[&SourceFile]) -> Vec<Diagnostic> {
    let (edges, mut out) = build_edges(files);
    let mut graph: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for e in &edges {
        graph.entry(&e.from).or_default().push(&e.to);
    }
    if let Some(cycle) = find_cycle(&graph) {
        let witness = |a: &str, b: &str| -> &EdgeWitness {
            edges
                .iter()
                .find(|e| e.from == a && e.to == b)
                .expect("cycle edges come from the edge list")
        };
        let witness_lines: Vec<String> = cycle
            .windows(2)
            .map(|w| {
                let e = witness(w[0], w[1]);
                format!("  {} -> {} at {}:{}", e.from, e.to, e.path, e.line)
            })
            .collect();
        let first = witness(cycle[0], cycle[1]);
        out.push(Diagnostic {
            rule: "lock-order",
            severity: Severity::Error,
            path: first.path.clone(),
            line: first.line,
            col: 1,
            message: format!("lock acquisition cycle: {}", cycle.join(" -> ")),
            help: Some(format!(
                "two call paths acquire these locks in conflicting orders, which can deadlock; \
                 witnesses:\n{}",
                witness_lines.join("\n")
            )),
            snippet: first.snippet.clone(),
        });
    }
    out
}

/// The deduplicated acquisition edges for one crate (for `dlra-analyze
/// graph`), plus any annotation-shape diagnostics.
pub fn build_edges(files: &[&SourceFile]) -> (Vec<EdgeWitness>, Vec<Diagnostic>) {
    let mut out = Vec::new();

    // 1. Collect lock annotations (and flag orphaned ones).
    let mut field_maps: Vec<BTreeMap<String, String>> = vec![BTreeMap::new(); files.len()];
    for (fi, file) in files.iter().enumerate() {
        for (li, l) in file.lines.iter().enumerate() {
            // Only recognized at the start of the comment text, so prose
            // that merely mentions the syntax doesn't declare a lock.
            if !l.comment.trim_start().starts_with("dlra-lock-order:") {
                continue;
            }
            let at = l.comment.find("dlra-lock-order:").unwrap_or(0);
            let name = l.comment[at + "dlra-lock-order:".len()..]
                .split_whitespace()
                .next()
                .unwrap_or("")
                .to_string();
            match (name.is_empty(), annotated_ident(file, li + 1)) {
                (false, Some(ident)) => {
                    field_maps[fi].insert(ident, name);
                }
                _ => out.push(Diagnostic {
                    rule: "lock-order",
                    severity: Severity::Error,
                    path: file.path.clone(),
                    line: li + 1,
                    col: 1,
                    message: "malformed `dlra-lock-order:` annotation".into(),
                    help: Some(
                        "write `// dlra-lock-order: <name>` directly above the lock field, \
                         static, or accessor fn it names"
                            .into(),
                    ),
                    snippet: file.snippet(li + 1),
                }),
            }
        }
    }
    if field_maps.iter().all(BTreeMap::is_empty) {
        return (Vec::new(), out);
    }

    // 2. Extract function bodies and their lock events.
    let mut fns: BTreeMap<String, FnInfo> = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        for (name, body_start, body_end) in functions(file) {
            let info = extract_fn(file, fi, &field_maps[fi], body_start, body_end);
            let merged = fns.entry(name).or_insert_with(|| FnInfo {
                file: fi,
                ..FnInfo::default()
            });
            merged.edges.extend(info.edges);
            merged.acquires.extend(info.acquires);
            merged.calls.extend(info.calls);
        }
    }

    // 3. Fixpoint: transitive acquisition sets over the call graph.
    let names: Vec<String> = fns.keys().cloned().collect();
    let mut trans: BTreeMap<String, BTreeSet<String>> = fns
        .iter()
        .map(|(n, f)| (n.clone(), f.acquires.clone()))
        .collect();
    loop {
        let mut changed = false;
        for name in &names {
            let callees: Vec<String> = fns[name].calls.iter().map(|c| c.callee.clone()).collect();
            let mut grown = trans[name].clone();
            for callee in callees {
                if let Some(set) = trans.get(&callee) {
                    for l in set.clone() {
                        grown.insert(l);
                    }
                }
            }
            if grown.len() != trans[name].len() {
                trans.insert(name.clone(), grown);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // 4. Assemble the edge set: direct edges plus call-through edges.
    let mut edges: BTreeMap<(String, String), (usize, usize)> = BTreeMap::new();
    for info in fns.values() {
        for (a, b, line) in &info.edges {
            edges
                .entry((a.clone(), b.clone()))
                .or_insert((info.file, *line));
        }
        for call in &info.calls {
            let Some(acquired) = trans.get(&call.callee) else {
                continue;
            };
            for held in &call.held {
                for b in acquired {
                    if held != b {
                        edges
                            .entry((held.clone(), b.clone()))
                            .or_insert((info.file, call.line));
                    }
                }
            }
        }
    }

    let list = edges
        .into_iter()
        .map(|((from, to), (fi, line))| EdgeWitness {
            from,
            to,
            path: files[fi].path.clone(),
            line,
            snippet: files[fi].snippet(line),
        })
        .collect();
    (list, out)
}

/// [`Edge`] plus the witness snippet for rendering.
#[derive(Debug, Clone)]
pub struct EdgeWitness {
    pub from: String,
    pub to: String,
    pub path: String,
    pub line: usize,
    pub snippet: Option<String>,
}

/// The identifier an annotation on 0-based line `line - 1` binds to: the
/// field/static name of `ident: Type` (optionally behind `pub`, `static`,
/// `mut`), or the fn name of `fn ident(`.
fn annotated_ident(file: &SourceFile, from: usize) -> Option<String> {
    for l in file.lines.iter().skip(from).take(3) {
        let code = l.code.trim();
        if code.is_empty() {
            continue;
        }
        let mut code = code;
        for prefix in ["pub(crate)", "pub(super)", "pub"] {
            code = code.strip_prefix(prefix).unwrap_or(code).trim_start();
        }
        if let Some(rest) = code.strip_prefix("fn ") {
            let ident: String = rest
                .trim_start()
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            return (!ident.is_empty()).then_some(ident);
        }
        for prefix in ["static", "mut"] {
            code = code.strip_prefix(prefix).unwrap_or(code).trim_start();
        }
        let ident: String = code
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        let rest = &code[ident.len()..];
        if !ident.is_empty() && rest.trim_start().starts_with(':') {
            return Some(ident);
        }
        return None;
    }
    None
}

/// Every `fn name` with its body span: `(name, body_start, body_end)` as
/// 0-based line indices of the `{` line and the matching `}` line. Test
/// regions are skipped.
fn functions(file: &SourceFile) -> Vec<(String, usize, usize)> {
    let mut out = Vec::new();
    for (i, l) in file.lines.iter().enumerate() {
        if file.in_test[i] {
            continue;
        }
        let code = &l.code;
        let mut from = 0;
        while let Some(at) = code[from..].find("fn ") {
            let abs = from + at;
            from = abs + 3;
            if abs > 0 {
                let prev = code.as_bytes()[abs - 1];
                if prev.is_ascii_alphanumeric() || prev == b'_' {
                    continue; // e.g. `often `
                }
            }
            let name: String = code[abs + 3..]
                .trim_start()
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if name.is_empty() {
                continue;
            }
            if let Some((start, end)) = body_span(file, i, abs + 3) {
                out.push((name, start, end));
            }
        }
    }
    out
}

/// The body span of a fn whose signature continues at `(line, col)`:
/// 0-based (line of `{`, line of matching `}`), or `None` for bodyless
/// declarations ending in `;`.
fn body_span(file: &SourceFile, line: usize, col: usize) -> Option<(usize, usize)> {
    let mut depth: i32 = 0;
    let mut started = false;
    let mut start_line = line;
    let mut j = line;
    let mut c0 = col;
    while j < file.lines.len() {
        let code = &file.lines[j].code;
        for ch in code[c0.min(code.len())..].chars() {
            match ch {
                '{' => {
                    if !started {
                        started = true;
                        start_line = j;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if started && depth == 0 {
                        return Some((start_line, j));
                    }
                }
                ';' if !started => return None,
                _ => {}
            }
        }
        j += 1;
        c0 = 0;
    }
    None
}

/// A guard currently held inside a function body.
#[derive(Debug)]
struct Held {
    lock: String,
    /// Brace depth at acquisition; released when depth drops below this.
    depth: i32,
    /// Binding name for `let` guards (releasable via `drop(name)`).
    var: Option<String>,
    /// Statement temporaries die at the first `;` at their depth.
    temp: bool,
}

/// Walks one function body, tracking held locks, direct edges, and calls.
fn extract_fn(
    file: &SourceFile,
    fi: usize,
    fields: &BTreeMap<String, String>,
    body_start: usize,
    body_end: usize,
) -> FnInfo {
    let mut info = FnInfo {
        file: fi,
        ..FnInfo::default()
    };
    let mut held: Vec<Held> = Vec::new();
    let mut depth: i32 = 0;
    // Current statement prefix per depth, to recognize `let` bindings.
    let mut stmt: Vec<String> = vec![String::new()];

    for j in body_start..=body_end.min(file.lines.len().saturating_sub(1)) {
        let code = file.lines[j].code.clone();
        let bytes = code.as_bytes();
        let mut k = 0usize;
        while k < bytes.len() {
            let ch = bytes[k] as char;

            match ch {
                '{' => {
                    depth += 1;
                    stmt.push(String::new());
                    k += 1;
                    continue;
                }
                '}' => {
                    depth -= 1;
                    if stmt.len() > 1 {
                        stmt.pop();
                    }
                    if let Some(s) = stmt.last_mut() {
                        s.clear();
                    }
                    held.retain(|h| h.depth <= depth);
                    k += 1;
                    continue;
                }
                ';' => {
                    held.retain(|h| !(h.temp && h.depth == depth));
                    if let Some(s) = stmt.last_mut() {
                        s.clear();
                    }
                    k += 1;
                    continue;
                }
                _ => {}
            }

            // Acquisition: `.field.lock(` | `.field.read(` | `.field.write(`
            // or `accessor().lock(`.
            let ident_start = (bytes[k].is_ascii_alphabetic() || ch == '_')
                && (k == 0
                    || !{
                        let p = bytes[k - 1];
                        p.is_ascii_alphanumeric() || p == b'_'
                    });
            if ch == '.' || ident_start {
                if let Some((ident, consumed)) = match_acquisition(&code[k..], ch == '.') {
                    if let Some(lock) = fields.get(&ident) {
                        for h in &held {
                            if h.lock != *lock {
                                info.edges.push((h.lock.clone(), lock.clone(), j + 1));
                            }
                        }
                        info.acquires.insert(lock.clone());
                        let prefix = stmt.last().map(String::as_str).unwrap_or("").trim_start();
                        let bound = prefix.starts_with("let ")
                            || prefix.starts_with("if let ")
                            || prefix.starts_with("while let ");
                        let var = prefix.strip_prefix("let ").map(|rest| {
                            rest.trim_start()
                                .trim_start_matches("mut ")
                                .chars()
                                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                                .collect::<String>()
                        });
                        held.push(Held {
                            lock: lock.clone(),
                            depth,
                            var: var.filter(|v| !v.is_empty()),
                            temp: !bound,
                        });
                        if let Some(s) = stmt.last_mut() {
                            s.push_str(&code[k..k + consumed]);
                        }
                        k += consumed;
                        continue;
                    }
                }
            }

            if ident_start {
                let name: String = code[k..]
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect();
                let after = k + name.len();
                // `drop(var)` releases the named guard.
                if name == "drop" && bytes.get(after) == Some(&b'(') {
                    let arg: String = code[after + 1..]
                        .chars()
                        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                        .collect();
                    held.retain(|h| h.var.as_deref() != Some(arg.as_str()));
                } else if bytes.get(after) == Some(&b'(') && !CALL_DENYLIST.contains(&name.as_str())
                {
                    // Recorded even with nothing held: the fixpoint needs
                    // the call graph to propagate transitive acquires.
                    info.calls.push(Call {
                        callee: name.clone(),
                        held: held.iter().map(|h| h.lock.clone()).collect(),
                        line: j + 1,
                    });
                }
                if let Some(s) = stmt.last_mut() {
                    s.push_str(&name);
                }
                k += name.len();
                continue;
            }

            if let Some(s) = stmt.last_mut() {
                s.push(ch);
            }
            k += 1;
        }
        // Keep multi-line statements flowing (`let\n  guard = …`).
        if let Some(s) = stmt.last_mut() {
            s.push(' ');
        }
    }
    info
}

/// Matches an acquisition at the start of `s`. With `dotted`, `s` starts
/// at the `.` of `.field.lock(`; otherwise at the ident of
/// `accessor().lock(`. Returns `(ident, bytes_consumed)`.
fn match_acquisition(s: &str, dotted: bool) -> Option<(String, usize)> {
    let rest = if dotted { &s[1..] } else { s };
    let ident: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if ident.is_empty() {
        return None;
    }
    let mut after = &rest[ident.len()..];
    let mut consumed = usize::from(dotted) + ident.len();
    if !dotted {
        // Accessor form requires `()` between the ident and the method.
        let stripped = after.strip_prefix("()")?;
        after = stripped;
        consumed += 2;
    }
    // The `_recover` variants are dlra-util's poison-recovering wrappers;
    // they acquire exactly like their std counterparts.
    for method in [
        ".lock_recover(",
        ".read_recover(",
        ".write_recover(",
        ".lock(",
        ".read(",
        ".write(",
    ] {
        if after.starts_with(method) {
            return Some((ident, consumed + method.len()));
        }
    }
    None
}

/// First cycle in `graph` (nodes visited in deterministic order), as a
/// node list whose first and last elements are equal.
fn find_cycle<'a>(graph: &BTreeMap<&'a str, Vec<&'a str>>) -> Option<Vec<&'a str>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let mut marks: BTreeMap<&str, Mark> = BTreeMap::new();
    for (a, succs) in graph {
        marks.entry(a).or_insert(Mark::White);
        for s in succs {
            marks.entry(s).or_insert(Mark::White);
        }
    }

    fn dfs<'a>(
        node: &'a str,
        graph: &BTreeMap<&'a str, Vec<&'a str>>,
        marks: &mut BTreeMap<&'a str, Mark>,
        stack: &mut Vec<&'a str>,
    ) -> Option<Vec<&'a str>> {
        marks.insert(node, Mark::Grey);
        stack.push(node);
        if let Some(succs) = graph.get(node) {
            for &next in succs {
                match marks.get(next).copied().unwrap_or(Mark::White) {
                    Mark::Grey => {
                        let from = stack.iter().position(|&n| n == next).unwrap_or(0);
                        let mut cycle: Vec<&str> = stack[from..].to_vec();
                        cycle.push(next);
                        return Some(cycle);
                    }
                    Mark::White => {
                        if let Some(c) = dfs(next, graph, marks, stack) {
                            return Some(c);
                        }
                    }
                    Mark::Black => {}
                }
            }
        }
        stack.pop();
        marks.insert(node, Mark::Black);
        None
    }

    let nodes: Vec<&str> = marks.keys().copied().collect();
    for node in nodes {
        if marks[node] == Mark::White {
            let mut stack = Vec::new();
            if let Some(c) = dfs(node, graph, &mut marks, &mut stack) {
                return Some(c);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(srcs: &[(&str, &str)]) -> Vec<Diagnostic> {
        let fs: Vec<SourceFile> = srcs.iter().map(|(p, s)| SourceFile::parse(p, s)).collect();
        let refs: Vec<&SourceFile> = fs.iter().collect();
        check_crate(&refs)
    }

    const TWO_LOCKS: &str = "\
struct S {
    // dlra-lock-order: lock.a
    a: Mutex<u32>,
    // dlra-lock-order: lock.b
    b: Mutex<u32>,
}
";

    #[test]
    fn reversed_acquisition_orders_are_a_cycle() {
        let src = format!(
            "{TWO_LOCKS}\
fn one(s: &S) {{
    let g = s.a.lock().unwrap();
    let h = s.b.lock().unwrap();
}}
fn two(s: &S) {{
    let g = s.b.lock().unwrap();
    let h = s.a.lock().unwrap();
}}
"
        );
        let out = check(&[("crates/x/src/a.rs", &src)]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("cycle"));
        assert!(out[0].message.contains("lock.a"));
        assert!(out[0].message.contains("lock.b"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = format!(
            "{TWO_LOCKS}\
fn one(s: &S) {{
    let g = s.a.lock().unwrap();
    let h = s.b.lock().unwrap();
}}
fn two(s: &S) {{
    let g = s.a.lock().unwrap();
    helper(s);
}}
fn helper(s: &S) {{
    let h = s.b.lock().unwrap();
}}
"
        );
        let out = check(&[("crates/x/src/a.rs", &src)]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn cross_function_cycle_through_calls_is_found() {
        let src = format!(
            "{TWO_LOCKS}\
fn one(s: &S) {{
    let g = s.a.lock().unwrap();
    takes_b(s);
}}
fn takes_b(s: &S) {{
    let h = s.b.lock().unwrap();
}}
fn two(s: &S) {{
    let g = s.b.lock().unwrap();
    takes_a(s);
}}
fn takes_a(s: &S) {{
    let h = s.a.lock().unwrap();
}}
"
        );
        let out = check(&[("crates/x/src/a.rs", &src)]);
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn transitive_acquires_flow_through_lockless_middlemen() {
        let src = format!(
            "{TWO_LOCKS}\
fn one(s: &S) {{
    let g = s.a.lock().unwrap();
    middle(s);
}}
fn middle(s: &S) {{
    takes_b(s);
}}
fn takes_b(s: &S) {{
    let h = s.b.lock().unwrap();
}}
fn two(s: &S) {{
    let g = s.b.lock().unwrap();
    let h = s.a.lock().unwrap();
}}
"
        );
        let out = check(&[("crates/x/src/a.rs", &src)]);
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn explicit_drop_releases_the_guard() {
        let src = format!(
            "{TWO_LOCKS}\
fn one(s: &S) {{
    let g = s.b.lock().unwrap();
    drop(g);
    let h = s.a.lock().unwrap();
}}
fn two(s: &S) {{
    let g = s.a.lock().unwrap();
    let h = s.b.lock().unwrap();
}}
"
        );
        let out = check(&[("crates/x/src/a.rs", &src)]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn statement_temporaries_release_at_semicolon() {
        let src = format!(
            "{TWO_LOCKS}\
fn one(s: &S) {{
    *s.b.lock().unwrap() = 3;
    let h = s.a.lock().unwrap();
}}
fn two(s: &S) {{
    let g = s.a.lock().unwrap();
    let h = s.b.lock().unwrap();
}}
"
        );
        let out = check(&[("crates/x/src/a.rs", &src)]);
        assert!(out.is_empty(), "temp b released before a: {out:?}");
    }

    #[test]
    fn block_scoped_guards_release_at_close_brace() {
        let src = format!(
            "{TWO_LOCKS}\
fn one(s: &S) {{
    {{
        let g = s.b.lock().unwrap();
    }}
    let h = s.a.lock().unwrap();
}}
fn two(s: &S) {{
    let g = s.a.lock().unwrap();
    let h = s.b.lock().unwrap();
}}
"
        );
        let out = check(&[("crates/x/src/a.rs", &src)]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn orphan_annotation_is_an_error() {
        let out = check(&[(
            "crates/x/src/a.rs",
            "// dlra-lock-order: lock.a\nstruct NotAField;\n",
        )]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("malformed"));
    }

    #[test]
    fn accessor_fn_statics_are_tracked() {
        let src = "\
static POOL: Mutex<Option<Pool>> = Mutex::new(None);
// dlra-lock-order: kernel.pool
fn pool() -> &'static Mutex<Option<Pool>> { &POOL }
struct W {
    // dlra-lock-order: kernel.inbox
    inbox: Mutex<u32>,
}
fn one(w: &W) {
    let g = pool().lock().unwrap();
    let h = w.inbox.lock().unwrap();
}
fn two(w: &W) {
    let g = w.inbox.lock().unwrap();
    let h = pool().lock().unwrap();
}
";
        let out = check(&[("crates/x/src/a.rs", src)]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("kernel.pool"));
    }

    #[test]
    fn same_field_name_in_two_files_stays_separate() {
        // Both files have a `state` field bound to different lock names;
        // orders are consistent within each file.
        let a = "\
struct P {
    // dlra-lock-order: plan.slot
    state: Mutex<u32>,
}
fn fa(p: &P) {
    let g = p.state.lock().unwrap();
}
";
        let b = "\
struct Q {
    // dlra-lock-order: server.state
    state: Mutex<u32>,
}
fn fb(q: &Q) {
    let g = q.state.lock().unwrap();
}
";
        let out = check(&[("crates/x/src/a.rs", a), ("crates/x/src/b.rs", b)]);
        assert!(out.is_empty(), "{out:?}");
    }
}
