//! dlra-analyze: the workspace-aware invariant lint engine.
//!
//! The distributed low-rank approximation runtime ships a contract the
//! type system can't state: bit-identical outputs and communication
//! ledgers across substrates and thread counts, a no-panic serving path,
//! unsafe code confined to the kernel crate, justified memory orderings,
//! two sanctioned thread pools, and a total order on lock acquisition.
//! This crate enforces that contract mechanically, with no dependencies
//! beyond std (the build environment is offline), via a comment- and
//! string-aware lexer rather than a full parser.
//!
//! Run `cargo run -p dlra-analyze -- check` at the workspace root; CI
//! gates on its exit status. Findings are suppressed inline with
//! `// dlra-allow(<rule>): <reason>` — the reason is mandatory.

#![forbid(unsafe_code)]

pub mod diag;
pub mod engine;
pub mod lexer;
pub mod lock_order;
pub mod rules;
pub mod source;

pub use diag::{Diagnostic, Report, Rule, Severity, RULES};
pub use engine::{check_sources, check_workspace};
