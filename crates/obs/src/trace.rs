//! Chrome trace-event recording for the query lifecycle.
//!
//! Spans are recorded into an in-process buffer and flushed to a JSON file
//! in the chrome://tracing / Perfetto *trace event* format: a JSON array of
//! objects with `ph: "X"` (complete span, `ts` + `dur` in microseconds) and
//! `ph: "i"` (instant event). Both viewers accept an unterminated array, so
//! the file is written incrementally by appending — every [`flush`] adds the
//! events recorded since the previous one and nothing has to be rewritten.
//!
//! Recording is **off by default** and the disabled hot path is one relaxed
//! atomic load — no allocation, no clock read, no lock. It turns on either
//! programmatically ([`enable`]) or through the `DLRA_TRACE=<path>`
//! environment variable, which is consulted once on first use.
//!
//! Span and category names are `&'static str` supplied by the
//! instrumentation sites and must be JSON-safe (no quotes or backslashes);
//! every name used by the workspace is a plain dotted identifier such as
//! `query.execute`. Numeric span arguments (query ids, word counts) ride
//! along in the `args` object, at most [`MAX_ARGS`] per event.
//!
//! The recorder never perturbs results: instrumented code takes no
//! different branches when tracing is on, it only reads clocks and pushes
//! into the buffer. A process-wide cap ([`EVENT_CAP`]) bounds memory and
//! file size for long runs; events beyond it are counted in [`dropped`]
//! rather than recorded.

use dlra_util::sync::MutexExt;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Maximum number of `(key, value)` arguments one event can carry.
pub const MAX_ARGS: usize = 2;

/// Process-wide cap on recorded events; excess events are dropped (and
/// counted) so a trace-enabled soak run cannot grow without bound.
pub const EVENT_CAP: u64 = 1 << 20;

/// Buffered events are flushed to disk automatically once the in-memory
/// buffer reaches this many entries (an explicit [`flush`] writes sooner).
const AUTO_FLUSH_LEN: usize = 1 << 14;

const STATE_UNRESOLVED: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

/// `STATE_UNRESOLVED` until the `DLRA_TRACE` environment variable has been
/// consulted (or `enable` / `disable` was called first).
static STATE: AtomicU8 = AtomicU8::new(STATE_UNRESOLVED);

/// Events recorded so far (admitted against [`EVENT_CAP`]).
static RECORDED: AtomicU64 = AtomicU64::new(0);

/// Events dropped because the cap was reached.
static DROPPED: AtomicU64 = AtomicU64::new(0);

/// Monotone thread-id allocator for the `tid` field.
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

#[derive(Debug, Clone, Copy)]
struct TraceEvent {
    name: &'static str,
    cat: &'static str,
    /// `'X'` (complete, with duration) or `'i'` (instant).
    ph: char,
    ts_micros: u64,
    dur_micros: u64,
    tid: u64,
    args: [Option<(&'static str, u64)>; MAX_ARGS],
}

#[derive(Debug, Default)]
struct Recorder {
    /// Flush target; `None` until `enable` ran.
    path: Option<PathBuf>,
    /// Whether the array header `[` has been written to `path`.
    header_written: bool,
    buffer: Vec<TraceEvent>,
}

// dlra-lock-order: trace.recorder
fn recorder() -> &'static Mutex<Recorder> {
    static RECORDER: OnceLock<Mutex<Recorder>> = OnceLock::new();
    RECORDER.get_or_init(|| Mutex::new(Recorder::default()))
}

/// All timestamps are microseconds since this process-wide origin.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn micros_since_epoch(t: Instant) -> u64 {
    // An Instant captured before the epoch was initialized (e.g. a ticket
    // submitted before tracing was enabled) clamps to 0.
    t.checked_duration_since(epoch())
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

/// Whether tracing is currently recording. The first call resolves the
/// `DLRA_TRACE` environment variable; later calls are a single atomic load.
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => resolve_from_env(),
    }
}

#[cold]
fn resolve_from_env() -> bool {
    match std::env::var_os("DLRA_TRACE") {
        Some(path) if !path.is_empty() => {
            enable(PathBuf::from(path));
            true
        }
        _ => {
            // Only claim OFF if nobody enabled concurrently.
            let _ = STATE.compare_exchange(
                STATE_UNRESOLVED,
                STATE_OFF,
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
            STATE.load(Ordering::Relaxed) == STATE_ON
        }
    }
}

/// Turns recording on, flushing to `path`. The file is truncated on the
/// first flush after enabling; re-enabling with a different path starts a
/// fresh file. Takes precedence over `DLRA_TRACE`.
pub fn enable(path: impl AsRef<Path>) {
    let mut rec = recorder().lock_recover();
    epoch(); // pin the time origin no later than the first enable
    rec.path = Some(path.as_ref().to_path_buf());
    rec.header_written = false;
    STATE.store(STATE_ON, Ordering::Relaxed);
}

/// Flushes buffered events and stops recording. `DLRA_TRACE` is **not**
/// re-consulted afterwards; call [`enable`] to resume.
pub fn disable() {
    flush();
    STATE.store(STATE_OFF, Ordering::Relaxed);
}

/// Number of events dropped after [`EVENT_CAP`] was reached.
pub fn dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Number of events admitted so far (buffered or already flushed).
pub fn recorded() -> u64 {
    RECORDED.load(Ordering::Relaxed)
}

fn record(event: TraceEvent) {
    if RECORDED.fetch_add(1, Ordering::Relaxed) >= EVENT_CAP {
        RECORDED.fetch_sub(1, Ordering::Relaxed);
        DROPPED.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let mut rec = recorder().lock_recover();
    rec.buffer.push(event);
    if rec.buffer.len() >= AUTO_FLUSH_LEN {
        flush_locked(&mut rec);
    }
}

/// Writes all buffered events to the trace file and clears the buffer.
/// Cheap when nothing is buffered. Called automatically when the buffer
/// fills and by `Service::shutdown`; call it manually before reading the
/// file in-process.
pub fn flush() {
    let mut rec = recorder().lock_recover();
    flush_locked(&mut rec);
}

fn flush_locked(rec: &mut Recorder) {
    if rec.buffer.is_empty() {
        return;
    }
    let Some(path) = rec.path.clone() else {
        // Enabled state without a sink cannot happen through the public
        // API; keep buffering until a path arrives.
        return;
    };
    let mut out = String::with_capacity(rec.buffer.len() * 96);
    if !rec.header_written {
        out.push_str("[\n");
    }
    for e in &rec.buffer {
        out.push_str("{\"name\":\"");
        out.push_str(e.name);
        out.push_str("\",\"cat\":\"");
        out.push_str(e.cat);
        out.push_str("\",\"ph\":\"");
        out.push(e.ph);
        out.push_str("\",\"pid\":1,\"tid\":");
        out.push_str(&e.tid.to_string());
        out.push_str(",\"ts\":");
        out.push_str(&e.ts_micros.to_string());
        if e.ph == 'X' {
            out.push_str(",\"dur\":");
            out.push_str(&e.dur_micros.to_string());
        } else {
            // Instant events need a scope; thread scope keeps them small.
            out.push_str(",\"s\":\"t\"");
        }
        out.push_str(",\"args\":{");
        let mut first = true;
        for (key, value) in e.args.iter().flatten() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('"');
            out.push_str(key);
            out.push_str("\":");
            out.push_str(&value.to_string());
        }
        out.push_str("}},\n");
    }
    let mut opts = std::fs::OpenOptions::new();
    if rec.header_written {
        opts.append(true);
    } else {
        // First flush for this sink: start a fresh file.
        opts.write(true).create(true).truncate(true);
    }
    let write = opts
        .open(&path)
        .and_then(|mut f| f.write_all(out.as_bytes()));
    if write.is_ok() {
        rec.header_written = true;
        rec.buffer.clear();
    }
    // On I/O failure the buffer is retained for a later flush attempt.
}

/// An in-flight span; records a `ph: "X"` complete event when dropped.
/// When tracing is disabled this is an inert zero-sized-ish guard: no clock
/// was read and drop does nothing.
#[derive(Debug)]
#[must_use = "a span records its duration when dropped"]
pub struct Span {
    start: Option<Instant>,
    name: &'static str,
    cat: &'static str,
    args: [Option<(&'static str, u64)>; MAX_ARGS],
}

impl Span {
    /// Attaches a numeric argument (first [`MAX_ARGS`] stick).
    pub fn arg(mut self, key: &'static str, value: u64) -> Self {
        if self.start.is_some() {
            if let Some(slot) = self.args.iter_mut().find(|a| a.is_none()) {
                *slot = Some((key, value));
            }
        }
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let dur = start.elapsed().as_micros() as u64;
            record(TraceEvent {
                name: self.name,
                cat: self.cat,
                ph: 'X',
                ts_micros: micros_since_epoch(start),
                dur_micros: dur,
                tid: TID.with(|t| *t),
                args: self.args,
            });
        }
    }
}

/// Opens a span; the complete event is recorded when the guard drops.
pub fn span(cat: &'static str, name: &'static str) -> Span {
    let start = if enabled() {
        Some(Instant::now())
    } else {
        None
    };
    Span {
        start,
        name,
        cat,
        args: [None; MAX_ARGS],
    }
}

fn copy_args(args: &[(&'static str, u64)]) -> [Option<(&'static str, u64)>; MAX_ARGS] {
    let mut out = [None; MAX_ARGS];
    for (slot, &kv) in out.iter_mut().zip(args.iter()) {
        *slot = Some(kv);
    }
    out
}

/// Records an instant (`ph: "i"`) event.
pub fn instant(cat: &'static str, name: &'static str, args: &[(&'static str, u64)]) {
    if !enabled() {
        return;
    }
    record(TraceEvent {
        name,
        cat,
        ph: 'i',
        ts_micros: micros_since_epoch(Instant::now()),
        dur_micros: 0,
        tid: TID.with(|t| *t),
        args: copy_args(args),
    });
}

/// Records a complete span whose start was measured externally (e.g. the
/// queue-wait span runs from a ticket's submission instant to now).
pub fn complete_since(
    cat: &'static str,
    name: &'static str,
    start: Instant,
    args: &[(&'static str, u64)],
) {
    if !enabled() {
        return;
    }
    let dur = start.elapsed().as_micros() as u64;
    record(TraceEvent {
        name,
        cat,
        ph: 'X',
        ts_micros: micros_since_epoch(start),
        dur_micros: dur,
        tid: TID.with(|t| *t),
        args: copy_args(args),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tracing state is process-global, so everything lives in one #[test].
    #[test]
    fn record_flush_disable_roundtrip() {
        let dir = std::env::temp_dir().join("dlra-obs-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("trace-{}.json", std::process::id()));

        // Disabled spans are inert.
        disable();
        let before = recorded();
        {
            let _s = span("test", "disabled.span").arg("k", 1);
            instant("test", "disabled.instant", &[("a", 2)]);
        }
        assert_eq!(recorded(), before);

        enable(&path);
        assert!(enabled());
        let t0 = Instant::now();
        {
            let _s = span("test", "enabled.span").arg("qid", 7).arg("ds", 3);
        }
        instant("test", "enabled.instant", &[("qid", 7)]);
        complete_since("test", "enabled.external", t0, &[]);
        assert_eq!(recorded(), before + 3);
        flush();
        disable();

        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("[\n"), "array header: {body:?}");
        assert!(body.contains("\"name\":\"enabled.span\""));
        assert!(body.contains("\"ph\":\"X\""));
        assert!(body.contains("\"ph\":\"i\""));
        assert!(body.contains("\"qid\":7"));
        assert!(body.contains("\"ds\":3"));
        // Valid when the unterminated array is closed.
        let closed = format!("{}]", body.trim_end().trim_end_matches(','));
        assert!(closed.ends_with("}]"));

        // Within one enable cycle events append across flushes; a fresh
        // enable starts a fresh file.
        enable(&path);
        instant("test", "second.cycle", &[]);
        flush();
        instant("test", "third.flush", &[]);
        flush();
        disable();
        let body2 = std::fs::read_to_string(&path).unwrap();
        assert!(!body2.contains("enabled.span"), "re-enable truncates");
        assert!(body2.contains("second.cycle") && body2.contains("third.flush"));
        std::fs::remove_file(&path).ok();
    }
}
