//! Lock-free metrics registry: counters, gauges, fixed-bucket latency
//! histograms, and ledger-derived communication counters, plus snapshot
//! types that export as JSON and Prometheus text exposition format.
//!
//! Every live object in this module is built from `AtomicU64`s — recording
//! a sample is a handful of relaxed atomic adds, with no allocation and no
//! locking, so the registry can sit on the service hot path. Snapshots are
//! plain-old-data copies taken with relaxed loads; a snapshot taken at a
//! quiescent point (no query in flight) is exact.
//!
//! ## Determinism
//!
//! The communication counters ([`CommCounters`]) accumulate word-exact
//! [`LedgerSnapshot`] deltas, so for a fixed workload the per-dataset
//! `comm` totals are **bit-identical** across repeated runs, kernel thread
//! counts, and plan-cache configurations (a planned query charges its
//! share of the preparation plus its execute delta — exactly the words an
//! unplanned run charges). The *latency* histograms are wall-clock derived
//! and naturally vary run to run; determinism claims never extend to them.
//!
//! ## Histogram buckets
//!
//! Latency histograms use the fixed power-of-two boundaries in
//! [`LATENCY_BUCKET_BOUNDS_MICROS`]: 1 µs, 2 µs, 4 µs, …, 2²⁴ µs (≈ 16.8 s),
//! plus an overflow bucket. Quantiles are reported as the upper bound of
//! the bucket containing the requested rank, which makes `p50`/`p99`
//! deterministic functions of the recorded counts (never interpolated).

use dlra_comm::LedgerSnapshot;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Upper bounds (inclusive, microseconds) of the latency histogram
/// buckets: `2^0 … 2^24`. Values above the last bound land in an overflow
/// bucket reported as `+Inf`. These boundaries are part of the public
/// contract — dashboards may hard-code them.
pub const LATENCY_BUCKET_BOUNDS_MICROS: [u64; 25] = [
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1_024, 2_048, 4_096, 8_192, 16_384, 32_768, 65_536,
    131_072, 262_144, 524_288, 1_048_576, 2_097_152, 4_194_304, 8_388_608, 16_777_216,
];

/// Bucket count including the overflow bucket.
pub const LATENCY_BUCKETS: usize = LATENCY_BUCKET_BOUNDS_MICROS.len() + 1;

/// A fixed-bucket latency histogram with power-of-two microsecond
/// boundaries. Recording is three relaxed atomic adds.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample in microseconds.
    pub fn record_micros(&self, micros: u64) {
        let idx = LATENCY_BUCKET_BOUNDS_MICROS.partition_point(|&bound| bound < micros);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: std::array::from_fn(|i| self.counts[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum_micros: self.sum_micros.load(Ordering::Relaxed),
        }
    }
}

/// Immutable copy of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts; index `i` counts samples `≤`
    /// `LATENCY_BUCKET_BOUNDS_MICROS[i]`, the last index is overflow.
    pub counts: [u64; LATENCY_BUCKETS],
    /// Total number of samples.
    pub count: u64,
    /// Sum of all samples in microseconds.
    pub sum_micros: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            counts: [0; LATENCY_BUCKETS],
            count: 0,
            sum_micros: 0,
        }
    }
}

impl HistogramSnapshot {
    /// The upper bound (µs) of the bucket containing quantile `q ∈ [0, 1]`,
    /// or `None` for an empty histogram. Overflow reports `u64::MAX`.
    /// Deterministic: a pure function of the counts, never interpolated.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(
                    LATENCY_BUCKET_BOUNDS_MICROS
                        .get(i)
                        .copied()
                        .unwrap_or(u64::MAX),
                );
            }
        }
        Some(u64::MAX)
    }

    /// Median upper bound in microseconds (`None` if empty).
    pub fn p50_micros(&self) -> Option<u64> {
        self.quantile_upper_bound(0.50)
    }

    /// 99th-percentile upper bound in microseconds (`None` if empty).
    pub fn p99_micros(&self) -> Option<u64> {
        self.quantile_upper_bound(0.99)
    }

    /// Arithmetic mean in microseconds (0 if empty).
    pub fn mean_micros(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_micros as f64 / self.count as f64
        }
    }
}

fn fmt_micros(f: &mut fmt::Formatter<'_>, v: Option<u64>) -> fmt::Result {
    match v {
        None => write!(f, "-"),
        Some(u64::MAX) => write!(f, ">16.8s"),
        Some(us) => write!(f, "{us}µs"),
    }
}

impl fmt::Display for HistogramSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n={} p50≤", self.count)?;
        fmt_micros(f, self.p50_micros())?;
        write!(f, " p99≤")?;
        fmt_micros(f, self.p99_micros())?;
        write!(f, " mean={:.1}µs", self.mean_micros())
    }
}

/// Lock-free accumulator of word-exact communication totals. Feed it
/// [`LedgerSnapshot`] deltas; read it back as a `LedgerSnapshot`.
#[derive(Debug, Default)]
pub struct CommCounters {
    upstream_words: AtomicU64,
    downstream_words: AtomicU64,
    messages: AtomicU64,
    rounds: AtomicU64,
    root_inbox_words: AtomicU64,
    root_inbox_messages: AtomicU64,
}

impl CommCounters {
    /// Adds one ledger delta (e.g. a query's charged communication).
    pub fn add(&self, delta: &LedgerSnapshot) {
        self.upstream_words
            .fetch_add(delta.upstream_words, Ordering::Relaxed);
        self.downstream_words
            .fetch_add(delta.downstream_words, Ordering::Relaxed);
        self.messages.fetch_add(delta.messages, Ordering::Relaxed);
        self.rounds.fetch_add(delta.rounds, Ordering::Relaxed);
        self.root_inbox_words
            .fetch_add(delta.root_inbox_words, Ordering::Relaxed);
        self.root_inbox_messages
            .fetch_add(delta.root_inbox_messages, Ordering::Relaxed);
    }

    /// Accumulated totals.
    pub fn snapshot(&self) -> LedgerSnapshot {
        LedgerSnapshot {
            upstream_words: self.upstream_words.load(Ordering::Relaxed),
            downstream_words: self.downstream_words.load(Ordering::Relaxed),
            messages: self.messages.load(Ordering::Relaxed),
            rounds: self.rounds.load(Ordering::Relaxed),
            root_inbox_words: self.root_inbox_words.load(Ordering::Relaxed),
            root_inbox_messages: self.root_inbox_messages.load(Ordering::Relaxed),
        }
    }
}

/// Plan-cache counters attached to a dataset snapshot (a copy of the
/// runtime's `PlanCacheStats`, kept dependency-free here).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheSnapshot {
    /// Queries served from an already-prepared plan.
    pub hits: u64,
    /// Queries that had to prepare (or wait on an in-flight preparation).
    pub misses: u64,
    /// Plans evicted by the LRU capacity bound.
    pub evictions: u64,
    /// Plans invalidated by dataset reloads (epoch changes).
    pub invalidations: u64,
}

impl PlanCacheSnapshot {
    /// `hits / (hits + misses)`, 0 if no lookups.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl fmt::Display for PlanCacheSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hits={} misses={} evictions={} invalidations={} hit_ratio={:.2}",
            self.hits,
            self.misses,
            self.evictions,
            self.invalidations,
            self.hit_ratio()
        )
    }
}

/// The live per-dataset registry: outcome counters, queue/in-flight
/// gauges, latency + phase histograms, and communication accumulators.
/// Every mutation is a relaxed atomic op.
#[derive(Debug, Default)]
pub struct DatasetMetrics {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    expired: AtomicU64,
    rejected: AtomicU64,
    rejected_overload: AtomicU64,
    queue_depth: AtomicU64,
    in_flight: AtomicU64,
    resident_bytes: AtomicU64,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
    latency: Histogram,
    prepare: Histogram,
    execute: Histogram,
    comm: CommCounters,
    prepare_comm: CommCounters,
    execute_comm: CommCounters,
}

impl DatasetMetrics {
    /// A fresh registry.
    pub fn new() -> Self {
        DatasetMetrics::default()
    }

    /// A query entered the executor queue.
    pub fn query_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    /// A queued query left the queue (whatever its fate).
    pub fn query_dequeued(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// A query was rejected before or instead of running (validation,
    /// eviction, shutdown).
    pub fn query_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// A query was shed by admission control (queue at capacity). Counts
    /// in both `rejected` (the umbrella for every pre-run rejection) and
    /// the dedicated `rejected_overload` counter.
    pub fn query_rejected_overload(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        self.rejected_overload.fetch_add(1, Ordering::Relaxed);
    }

    /// Sets the resident-payload gauge to the dataset's current byte size
    /// (recomputed by the service at load/reload; 0 after eviction).
    pub fn set_resident_bytes(&self, bytes: u64) {
        self.resident_bytes.store(bytes, Ordering::Relaxed);
    }

    /// An executor started running a query.
    pub fn query_started(&self) {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
    }

    /// The running query finished (success or failure).
    pub fn query_finished(&self) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
    }

    /// A query completed successfully: submit→resolve latency plus the
    /// communication charged to it (prepare share + execute delta).
    pub fn query_completed(&self, latency_micros: u64, comm: &LedgerSnapshot) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.latency.record_micros(latency_micros);
        self.comm.add(comm);
    }

    /// A query failed at execution time.
    pub fn query_failed(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    /// A query was cancelled before completing.
    pub fn query_cancelled(&self) {
        self.cancelled.fetch_add(1, Ordering::Relaxed);
    }

    /// A query's deadline expired before an executor started it.
    pub fn query_expired(&self) {
        self.expired.fetch_add(1, Ordering::Relaxed);
    }

    /// Records whether a planned query hit the plan cache.
    pub fn plan_outcome(&self, hit: bool) {
        if hit {
            self.plan_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.plan_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Prepare-phase profile of a planned query: wall time of the plan
    /// lookup (including any build or wait-on-inflight) and, for the query
    /// that physically built the plan, the words the preparation charged.
    pub fn record_prepare(&self, micros: u64, comm: Option<&LedgerSnapshot>) {
        self.prepare.record_micros(micros);
        if let Some(delta) = comm {
            self.prepare_comm.add(delta);
        }
    }

    /// Execute-phase profile of a planned query: draw/fetch wall time and
    /// the words charged past the shared preparation.
    pub fn record_execute(&self, micros: u64, comm: &LedgerSnapshot) {
        self.execute.record_micros(micros);
        self.execute_comm.add(comm);
    }

    /// A point-in-time copy. `name` and `plan_cache` start empty — the
    /// service attaches them (the registry itself has no dataset identity).
    pub fn snapshot(&self) -> DatasetMetricsSnapshot {
        DatasetMetricsSnapshot {
            name: String::new(),
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            rejected_overload: self.rejected_overload.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            resident_bytes: self.resident_bytes.load(Ordering::Relaxed),
            plan_hits: self.plan_hits.load(Ordering::Relaxed),
            plan_misses: self.plan_misses.load(Ordering::Relaxed),
            latency: self.latency.snapshot(),
            prepare: self.prepare.snapshot(),
            execute: self.execute.snapshot(),
            comm: self.comm.snapshot(),
            prepare_comm: self.prepare_comm.snapshot(),
            execute_comm: self.execute_comm.snapshot(),
            plan_cache: None,
        }
    }
}

/// Immutable copy of one dataset's metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetMetricsSnapshot {
    /// Dataset name (attached by the service).
    pub name: String,
    /// Queries accepted into the executor queue.
    pub submitted: u64,
    /// Queries that resolved successfully.
    pub completed: u64,
    /// Queries that failed at execution time.
    pub failed: u64,
    /// Queries cancelled before completion.
    pub cancelled: u64,
    /// Queries whose deadline expired unstarted.
    pub expired: u64,
    /// Queries rejected before running (validation / eviction / shutdown).
    pub rejected: u64,
    /// Queries shed by admission control (queue at capacity); a subset of
    /// `rejected`.
    pub rejected_overload: u64,
    /// Queries currently waiting in the executor queue.
    pub queue_depth: u64,
    /// Queries currently executing.
    pub in_flight: u64,
    /// Bytes of resident payload this dataset holds (0 after eviction).
    pub resident_bytes: u64,
    /// Planned queries served from a cached preparation.
    pub plan_hits: u64,
    /// Planned queries that prepared (or waited on a preparation).
    pub plan_misses: u64,
    /// Submit→resolve latency histogram.
    pub latency: HistogramSnapshot,
    /// Prepare-phase wall time (planned queries only).
    pub prepare: HistogramSnapshot,
    /// Execute-phase wall time (planned queries only).
    pub execute: HistogramSnapshot,
    /// Total communication charged to completed queries (word-exact,
    /// deterministic across runs / thread counts / plan-cache settings).
    pub comm: LedgerSnapshot,
    /// Words physically charged by plan preparations on this dataset.
    pub prepare_comm: LedgerSnapshot,
    /// Words charged by planned queries past their shared preparation.
    pub execute_comm: LedgerSnapshot,
    /// Plan-cache counters for this dataset (attached by the service).
    pub plan_cache: Option<PlanCacheSnapshot>,
}

impl DatasetMetricsSnapshot {
    /// Completed queries per second over `uptime_secs`.
    pub fn qps(&self, uptime_secs: f64) -> f64 {
        if uptime_secs <= 0.0 {
            0.0
        } else {
            self.completed as f64 / uptime_secs
        }
    }
}

impl fmt::Display for DatasetMetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: submitted={} completed={} failed={} cancelled={} expired={} rejected={} \
             shed={} queue={} in_flight={} resident_bytes={} latency[{}] comm[{}]",
            self.name,
            self.submitted,
            self.completed,
            self.failed,
            self.cancelled,
            self.expired,
            self.rejected,
            self.rejected_overload,
            self.queue_depth,
            self.in_flight,
            self.resident_bytes,
            self.latency,
            self.comm,
        )?;
        if let Some(pc) = &self.plan_cache {
            write!(f, " plan[{pc}]")?;
        }
        Ok(())
    }
}

/// Kernel-pool profile attached to a service-wide snapshot (filled from
/// `dlra_linalg`'s pool counters by the service).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelPoolSnapshot {
    /// Configured kernel thread count.
    pub threads: usize,
    /// High-water mark of concurrently active kernel workers.
    pub watermark: usize,
    /// Panel sections dispatched to the worker pool.
    pub parallel_sections: u64,
    /// Panel sections executed inline (below the parallel work floor).
    pub inline_sections: u64,
    /// Nanoseconds of worker busy time across all panel jobs.
    pub busy_nanos: u64,
    /// Nanoseconds of wall time across all profiled sections.
    pub wall_nanos: u64,
}

impl KernelPoolSnapshot {
    /// `busy / wall` — average number of cores effectively working during
    /// profiled kernel sections (0 when profiling was off or idle).
    pub fn effective_parallelism(&self) -> f64 {
        if self.wall_nanos == 0 {
            0.0
        } else {
            self.busy_nanos as f64 / self.wall_nanos as f64
        }
    }
}

impl fmt::Display for KernelPoolSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "threads={} watermark={} sections={}par/{}inline effective_parallelism={:.2}",
            self.threads,
            self.watermark,
            self.parallel_sections,
            self.inline_sections,
            self.effective_parallelism()
        )
    }
}

/// Live service-wide pressure state: the admission gauge that bounded
/// admission decides on, byte accounting for resident datasets, and the
/// overload/pressure-eviction counters. One per service, maintained even
/// when the per-dataset registry is disabled (admission and quota
/// decisions key off it), and deterministic in the sequence of operations
/// applied to it — no clock is ever consulted.
#[derive(Debug, Default)]
pub struct ServicePressure {
    admitted: AtomicU64,
    rejected_overload: AtomicU64,
    evicted_under_pressure: AtomicU64,
    resident_bytes: AtomicU64,
}

impl ServicePressure {
    /// A fresh pressure registry.
    pub fn new() -> Self {
        ServicePressure::default()
    }

    /// Admission check-and-increment: admits the query (incrementing the
    /// admitted-in-system gauge) unless `limit` is set and the gauge is
    /// already at it, in which case the shed is counted and the observed
    /// depth returned as the error. The bound check and the increment are
    /// one atomic RMW, so concurrent submitters can never overshoot the
    /// limit.
    pub fn try_admit(&self, limit: Option<u64>) -> Result<(), u64> {
        match limit {
            None => {
                self.admitted.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Some(limit) => {
                // Relaxed: the gauge is the only variable involved in the
                // decision; no other memory is published on its strength.
                let raced =
                    self.admitted
                        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |depth| {
                            if depth < limit {
                                Some(depth + 1)
                            } else {
                                None
                            }
                        });
                match raced {
                    Ok(_) => Ok(()),
                    Err(depth) => {
                        self.rejected_overload.fetch_add(1, Ordering::Relaxed);
                        Err(depth)
                    }
                }
            }
        }
    }

    /// An admitted query reached its terminal resolution (delivered,
    /// cancelled, expired, or dropped with the queue): release its
    /// admission slot.
    pub fn release(&self) {
        self.admitted.fetch_sub(1, Ordering::Relaxed);
    }

    /// Queries currently admitted and not yet resolved (queued + running).
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// A dataset became resident (or grew on reload) by `bytes`.
    pub fn add_resident_bytes(&self, bytes: u64) {
        self.resident_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// A dataset left residency (or shrank on reload) by `bytes`.
    pub fn sub_resident_bytes(&self, bytes: u64) {
        self.resident_bytes.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Total bytes of resident dataset payload across every tenant.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes.load(Ordering::Relaxed)
    }

    /// A dataset was evicted by the memory quota (not by an explicit
    /// `evict` call).
    pub fn record_pressure_eviction(&self) {
        self.evicted_under_pressure.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy, with the service's configured limits attached
    /// (the registry itself does not own them).
    pub fn snapshot(
        &self,
        max_queue_depth: Option<u64>,
        memory_budget: Option<u64>,
    ) -> PressureSnapshot {
        PressureSnapshot {
            admitted: self.admitted.load(Ordering::Relaxed),
            max_queue_depth,
            resident_bytes: self.resident_bytes.load(Ordering::Relaxed),
            memory_budget,
            rejected_overload: self.rejected_overload.load(Ordering::Relaxed),
            evicted_under_pressure: self.evicted_under_pressure.load(Ordering::Relaxed),
        }
    }
}

/// Immutable copy of a [`ServicePressure`], plus the configured limits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PressureSnapshot {
    /// Queries admitted and not yet resolved (queued + running).
    pub admitted: u64,
    /// The admission bound `admitted` is held under, or `None` for the
    /// legacy unbounded queue.
    pub max_queue_depth: Option<u64>,
    /// Total bytes of resident dataset payload across every tenant.
    pub resident_bytes: u64,
    /// The service-wide memory budget, or `None` when quotas are off.
    pub memory_budget: Option<u64>,
    /// Queries shed by admission control since the service started.
    pub rejected_overload: u64,
    /// Datasets evicted by the memory quota since the service started.
    pub evicted_under_pressure: u64,
}

impl fmt::Display for PressureSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "admitted={}{} resident_bytes={}{} shed={} pressure_evictions={}",
            self.admitted,
            match self.max_queue_depth {
                Some(limit) => format!("/{limit}"),
                None => String::new(),
            },
            self.resident_bytes,
            match self.memory_budget {
                Some(budget) => format!("/{budget}"),
                None => String::new(),
            },
            self.rejected_overload,
            self.evicted_under_pressure
        )
    }
}

/// A service-wide metrics snapshot: per-dataset registries plus process
/// facts, exportable as JSON ([`MetricsSnapshot::to_json`]), Prometheus
/// text ([`MetricsSnapshot::to_prometheus`]), or a human summary
/// (`Display`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Seconds since the service started.
    pub uptime_secs: f64,
    /// Executor threads serving the queue.
    pub executors: usize,
    /// Kernel-pool facts at snapshot time.
    pub kernel: KernelPoolSnapshot,
    /// Service-wide admission/quota pressure state.
    pub pressure: PressureSnapshot,
    /// One entry per resident dataset, in residency order.
    pub datasets: Vec<DatasetMetricsSnapshot>,
}

fn json_hist(out: &mut String, key: &str, h: &HistogramSnapshot) {
    out.push_str(&format!(
        "\"{key}\":{{\"count\":{},\"sum_micros\":{},\"p50_micros\":{},\"p99_micros\":{},\"counts\":[",
        h.count,
        h.sum_micros,
        h.p50_micros().unwrap_or(0),
        h.p99_micros().unwrap_or(0),
    ));
    for (i, c) in h.counts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&c.to_string());
    }
    out.push_str("]}");
}

fn json_comm(out: &mut String, key: &str, s: &LedgerSnapshot) {
    out.push_str(&format!(
        "\"{key}\":{{\"upstream_words\":{},\"downstream_words\":{},\"messages\":{},\"rounds\":{},\"coordinator_inbox_words\":{},\"gather_messages\":{}}}",
        s.upstream_words,
        s.downstream_words,
        s.messages,
        s.rounds,
        s.root_inbox_words,
        s.root_inbox_messages
    ));
}

impl MetricsSnapshot {
    /// Serializes the snapshot as a self-describing JSON object (hand
    /// rolled — the workspace has no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        let json_opt = |v: Option<u64>| match v {
            Some(v) => v.to_string(),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "{{\n  \"uptime_secs\": {:.6},\n  \"executors\": {},\n  \"kernel\": {{\"threads\": {}, \"watermark\": {}, \"parallel_sections\": {}, \"inline_sections\": {}, \"busy_nanos\": {}, \"wall_nanos\": {}, \"effective_parallelism\": {:.4}}},\n  \"pressure\": {{\"admitted\": {}, \"max_queue_depth\": {}, \"resident_bytes\": {}, \"memory_budget\": {}, \"rejected_overload\": {}, \"evicted_under_pressure\": {}}},\n  \"latency_bucket_bounds_micros\": {:?},\n  \"datasets\": [",
            self.uptime_secs,
            self.executors,
            self.kernel.threads,
            self.kernel.watermark,
            self.kernel.parallel_sections,
            self.kernel.inline_sections,
            self.kernel.busy_nanos,
            self.kernel.wall_nanos,
            self.kernel.effective_parallelism(),
            self.pressure.admitted,
            json_opt(self.pressure.max_queue_depth),
            self.pressure.resident_bytes,
            json_opt(self.pressure.memory_budget),
            self.pressure.rejected_overload,
            self.pressure.evicted_under_pressure,
            LATENCY_BUCKET_BOUNDS_MICROS,
        ));
        for (i, d) in self.datasets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!(
                "\"name\":\"{}\",\"qps\":{:.4},\"submitted\":{},\"completed\":{},\"failed\":{},\"cancelled\":{},\"expired\":{},\"rejected\":{},\"rejected_overload\":{},\"queue_depth\":{},\"in_flight\":{},\"resident_bytes\":{},\"plan_hits\":{},\"plan_misses\":{},",
                d.name,
                d.qps(self.uptime_secs),
                d.submitted,
                d.completed,
                d.failed,
                d.cancelled,
                d.expired,
                d.rejected,
                d.rejected_overload,
                d.queue_depth,
                d.in_flight,
                d.resident_bytes,
                d.plan_hits,
                d.plan_misses,
            ));
            json_hist(&mut out, "latency", &d.latency);
            out.push(',');
            json_hist(&mut out, "prepare", &d.prepare);
            out.push(',');
            json_hist(&mut out, "execute", &d.execute);
            out.push(',');
            json_comm(&mut out, "comm", &d.comm);
            out.push(',');
            json_comm(&mut out, "prepare_comm", &d.prepare_comm);
            out.push(',');
            json_comm(&mut out, "execute_comm", &d.execute_comm);
            if let Some(pc) = &d.plan_cache {
                out.push_str(&format!(
                    ",\"plan_cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"invalidations\":{},\"hit_ratio\":{:.4}}}",
                    pc.hits, pc.misses, pc.evictions, pc.invalidations, pc.hit_ratio()
                ));
            }
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Serializes the snapshot in the Prometheus text exposition format
    /// (metric names prefixed `dlra_`, one `dataset` label).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("# HELP dlra_uptime_seconds Seconds since the service started.\n# TYPE dlra_uptime_seconds gauge\n");
        out.push_str(&format!("dlra_uptime_seconds {:.6}\n", self.uptime_secs));
        out.push_str("# HELP dlra_executors Executor threads serving the queue.\n# TYPE dlra_executors gauge\n");
        out.push_str(&format!("dlra_executors {}\n", self.executors));
        out.push_str("# HELP dlra_kernel_parallelism_watermark High-water mark of active kernel workers.\n# TYPE dlra_kernel_parallelism_watermark gauge\n");
        out.push_str(&format!(
            "dlra_kernel_parallelism_watermark {}\n",
            self.kernel.watermark
        ));
        out.push_str("# HELP dlra_kernel_effective_parallelism Busy/wall ratio of profiled kernel sections.\n# TYPE dlra_kernel_effective_parallelism gauge\n");
        out.push_str(&format!(
            "dlra_kernel_effective_parallelism {:.4}\n",
            self.kernel.effective_parallelism()
        ));
        out.push_str("# HELP dlra_service_admitted Queries admitted and not yet resolved (queued + running).\n# TYPE dlra_service_admitted gauge\n");
        out.push_str(&format!(
            "dlra_service_admitted {}\n",
            self.pressure.admitted
        ));
        out.push_str("# HELP dlra_service_resident_bytes Bytes of resident dataset payload across every tenant.\n# TYPE dlra_service_resident_bytes gauge\n");
        out.push_str(&format!(
            "dlra_service_resident_bytes {}\n",
            self.pressure.resident_bytes
        ));
        out.push_str("# HELP dlra_service_rejected_overload_total Queries shed by admission control.\n# TYPE dlra_service_rejected_overload_total counter\n");
        out.push_str(&format!(
            "dlra_service_rejected_overload_total {}\n",
            self.pressure.rejected_overload
        ));
        out.push_str("# HELP dlra_service_evicted_under_pressure_total Datasets evicted by the memory quota.\n# TYPE dlra_service_evicted_under_pressure_total counter\n");
        out.push_str(&format!(
            "dlra_service_evicted_under_pressure_total {}\n",
            self.pressure.evicted_under_pressure
        ));
        if let Some(limit) = self.pressure.max_queue_depth {
            out.push_str("# HELP dlra_service_max_queue_depth Configured admission bound.\n# TYPE dlra_service_max_queue_depth gauge\n");
            out.push_str(&format!("dlra_service_max_queue_depth {limit}\n"));
        }
        if let Some(budget) = self.pressure.memory_budget {
            out.push_str("# HELP dlra_service_memory_budget_bytes Configured service-wide resident-byte budget.\n# TYPE dlra_service_memory_budget_bytes gauge\n");
            out.push_str(&format!("dlra_service_memory_budget_bytes {budget}\n"));
        }

        type Row = (
            &'static str,
            &'static str,
            fn(&DatasetMetricsSnapshot) -> u64,
        );
        let counters: [Row; 13] = [
            (
                "dlra_queries_submitted_total",
                "Queries accepted into the executor queue.",
                |d| d.submitted,
            ),
            (
                "dlra_queries_completed_total",
                "Queries resolved successfully.",
                |d| d.completed,
            ),
            (
                "dlra_queries_failed_total",
                "Queries failed at execution time.",
                |d| d.failed,
            ),
            (
                "dlra_queries_cancelled_total",
                "Queries cancelled before completion.",
                |d| d.cancelled,
            ),
            (
                "dlra_queries_expired_total",
                "Queries whose deadline expired unstarted.",
                |d| d.expired,
            ),
            (
                "dlra_queries_rejected_total",
                "Queries rejected before running.",
                |d| d.rejected,
            ),
            (
                "dlra_queries_rejected_overload_total",
                "Queries shed by admission control (subset of rejected).",
                |d| d.rejected_overload,
            ),
            (
                "dlra_plan_hits_total",
                "Planned queries served from a cached preparation.",
                |d| d.plan_hits,
            ),
            (
                "dlra_plan_misses_total",
                "Planned queries that prepared or waited.",
                |d| d.plan_misses,
            ),
            (
                "dlra_comm_words_total",
                "Words charged to completed queries.",
                |d| d.comm.total_words(),
            ),
            (
                "dlra_comm_rounds_total",
                "Communication rounds charged to completed queries.",
                |d| d.comm.rounds,
            ),
            (
                "dlra_coordinator_inbox_words_total",
                "Words that landed in the coordinator's inbox (root fan-in).",
                |d| d.comm.root_inbox_words,
            ),
            (
                "dlra_gather_messages_total",
                "Messages that landed in the coordinator's inbox.",
                |d| d.comm.root_inbox_messages,
            ),
        ];
        for (name, help, get) in counters {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
            for d in &self.datasets {
                out.push_str(&format!("{name}{{dataset=\"{}\"}} {}\n", d.name, get(d)));
            }
        }
        let gauges: [Row; 3] = [
            (
                "dlra_queue_depth",
                "Queries waiting in the executor queue.",
                |d| d.queue_depth,
            ),
            ("dlra_in_flight", "Queries currently executing.", |d| {
                d.in_flight
            }),
            (
                "dlra_resident_bytes",
                "Bytes of resident payload the dataset holds.",
                |d| d.resident_bytes,
            ),
        ];
        for (name, help, get) in gauges {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n"));
            for d in &self.datasets {
                out.push_str(&format!("{name}{{dataset=\"{}\"}} {}\n", d.name, get(d)));
            }
        }
        for (key, help, get) in [
            (
                "dlra_query_latency_micros",
                "Submit-to-resolve latency.",
                (|d| &d.latency) as fn(&DatasetMetricsSnapshot) -> &HistogramSnapshot,
            ),
            (
                "dlra_query_prepare_micros",
                "Plan prepare phase wall time.",
                |d| &d.prepare,
            ),
            (
                "dlra_query_execute_micros",
                "Planned execute phase wall time.",
                |d| &d.execute,
            ),
        ] {
            out.push_str(&format!("# HELP {key} {help}\n# TYPE {key} histogram\n"));
            for d in &self.datasets {
                let h = get(d);
                let mut cumulative = 0u64;
                for (i, bound) in LATENCY_BUCKET_BOUNDS_MICROS.iter().enumerate() {
                    cumulative += h.counts[i];
                    out.push_str(&format!(
                        "{key}_bucket{{dataset=\"{}\",le=\"{bound}\"}} {cumulative}\n",
                        d.name
                    ));
                }
                cumulative += h.counts[LATENCY_BUCKETS - 1];
                out.push_str(&format!(
                    "{key}_bucket{{dataset=\"{}\",le=\"+Inf\"}} {cumulative}\n",
                    d.name
                ));
                out.push_str(&format!(
                    "{key}_sum{{dataset=\"{}\"}} {}\n{key}_count{{dataset=\"{}\"}} {}\n",
                    d.name, h.sum_micros, d.name, h.count
                ));
            }
        }
        for d in &self.datasets {
            if let Some(pc) = &d.plan_cache {
                out.push_str(&format!(
                    "dlra_plan_cache_hit_ratio{{dataset=\"{}\"}} {:.4}\n",
                    d.name,
                    pc.hit_ratio()
                ));
            }
        }
        out
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "service: uptime={:.2}s executors={} kernel[{}] pressure[{}]",
            self.uptime_secs, self.executors, self.kernel, self.pressure
        )?;
        for d in &self.datasets {
            writeln!(f, "  {d} qps={:.2}", d.qps(self.uptime_secs))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_powers_of_two() {
        for (i, &b) in LATENCY_BUCKET_BOUNDS_MICROS.iter().enumerate() {
            assert_eq!(b, 1u64 << i);
        }
        assert_eq!(LATENCY_BUCKETS, 26);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().p50_micros(), None);
        h.record_micros(0); // ≤ 1 → bucket 0
        h.record_micros(1); // ≤ 1 → bucket 0
        h.record_micros(2); // bucket 1
        h.record_micros(3); // bucket 2 (≤ 4)
        h.record_micros(1_000_000); // bucket 20 (≤ 2^20)
        h.record_micros(u64::MAX); // overflow
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.counts[0], 2);
        assert_eq!(s.counts[1], 1);
        assert_eq!(s.counts[2], 1);
        assert_eq!(s.counts[20], 1);
        assert_eq!(s.counts[LATENCY_BUCKETS - 1], 1);
        assert_eq!(s.quantile_upper_bound(0.0), Some(1));
        assert_eq!(s.p50_micros(), Some(2));
        assert_eq!(s.quantile_upper_bound(1.0), Some(u64::MAX));
        // Display stays total.
        assert!(format!("{s}").contains("n=6"));
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record_micros(10); // bucket ≤ 16
        }
        h.record_micros(5_000); // bucket ≤ 8192
        let s = h.snapshot();
        assert_eq!(s.p50_micros(), Some(16));
        assert_eq!(s.p99_micros(), Some(16));
        assert_eq!(s.quantile_upper_bound(0.995), Some(8_192));
    }

    #[test]
    fn comm_counters_accumulate_exactly() {
        let c = CommCounters::default();
        let a = LedgerSnapshot {
            upstream_words: 10,
            downstream_words: 3,
            messages: 2,
            rounds: 1,
            root_inbox_words: 8,
            root_inbox_messages: 2,
        };
        c.add(&a);
        c.add(&a);
        let total = c.snapshot();
        assert_eq!(total.upstream_words, 20);
        assert_eq!(total.downstream_words, 6);
        assert_eq!(total.messages, 4);
        assert_eq!(total.rounds, 2);
        assert_eq!(total.root_inbox_words, 16);
        assert_eq!(total.root_inbox_messages, 4);
    }

    #[test]
    fn dataset_lifecycle_counters() {
        let m = DatasetMetrics::new();
        m.query_submitted();
        m.query_submitted();
        let s = m.snapshot();
        assert_eq!((s.submitted, s.queue_depth), (2, 2));
        m.query_dequeued();
        m.query_started();
        m.query_finished();
        m.query_completed(
            100,
            &LedgerSnapshot {
                upstream_words: 5,
                downstream_words: 1,
                messages: 1,
                rounds: 1,
                ..LedgerSnapshot::default()
            },
        );
        m.query_dequeued();
        m.query_rejected();
        m.plan_outcome(true);
        m.plan_outcome(false);
        let s = m.snapshot();
        assert_eq!(s.queue_depth, 0);
        assert_eq!(s.in_flight, 0);
        assert_eq!(s.completed, 1);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.plan_hits, 1);
        assert_eq!(s.plan_misses, 1);
        assert_eq!(s.comm.total_words(), 6);
        assert_eq!(s.latency.count, 1);
    }

    #[test]
    fn pressure_admission_is_bounded_and_exact() {
        let p = ServicePressure::new();
        // Unbounded: every admit succeeds and the gauge tracks.
        assert!(p.try_admit(None).is_ok());
        assert_eq!(p.admitted(), 1);
        p.release();
        assert_eq!(p.admitted(), 0);

        // Bounded: the limit is a hard ceiling, and the observed depth
        // comes back with the rejection.
        assert!(p.try_admit(Some(2)).is_ok());
        assert!(p.try_admit(Some(2)).is_ok());
        assert_eq!(p.try_admit(Some(2)), Err(2));
        assert_eq!(p.try_admit(Some(2)), Err(2));
        let snap = p.snapshot(Some(2), None);
        assert_eq!(snap.admitted, 2);
        assert_eq!(snap.rejected_overload, 2);
        // Releasing a slot re-opens admission.
        p.release();
        assert!(p.try_admit(Some(2)).is_ok());

        // Byte accounting round-trips to zero.
        p.add_resident_bytes(100);
        p.add_resident_bytes(50);
        p.sub_resident_bytes(150);
        assert_eq!(p.resident_bytes(), 0);
        assert!(format!("{}", p.snapshot(Some(2), Some(10))).contains("admitted=2/2"));
    }

    #[test]
    fn overload_rejections_count_in_both_counters() {
        let m = DatasetMetrics::new();
        m.query_rejected();
        m.query_rejected_overload();
        let s = m.snapshot();
        assert_eq!(s.rejected, 2, "overload shed is a rejection too");
        assert_eq!(s.rejected_overload, 1);
    }

    fn sample_snapshot() -> MetricsSnapshot {
        let m = DatasetMetrics::new();
        m.query_submitted();
        m.query_dequeued();
        m.query_completed(
            150,
            &LedgerSnapshot {
                upstream_words: 40,
                downstream_words: 2,
                messages: 3,
                rounds: 2,
                root_inbox_words: 40,
                root_inbox_messages: 3,
            },
        );
        m.query_rejected_overload();
        m.set_resident_bytes(4096);
        let mut d = m.snapshot();
        d.name = "tenant-a".into();
        d.plan_cache = Some(PlanCacheSnapshot {
            hits: 3,
            misses: 1,
            evictions: 0,
            invalidations: 0,
        });
        let pressure = ServicePressure::new();
        pressure.try_admit(Some(4)).unwrap();
        pressure.add_resident_bytes(4096);
        pressure.record_pressure_eviction();
        MetricsSnapshot {
            uptime_secs: 2.0,
            executors: 2,
            kernel: KernelPoolSnapshot {
                threads: 4,
                watermark: 4,
                parallel_sections: 10,
                inline_sections: 5,
                busy_nanos: 900,
                wall_nanos: 300,
            },
            pressure: pressure.snapshot(Some(4), Some(1 << 20)),
            datasets: vec![d],
        }
    }

    #[test]
    fn json_export_contains_everything() {
        let snap = sample_snapshot();
        let json = snap.to_json();
        for needle in [
            "\"uptime_secs\"",
            "\"kernel\"",
            "\"effective_parallelism\": 3.0000",
            "\"name\":\"tenant-a\"",
            "\"qps\":0.5000",
            "\"latency\"",
            "\"comm\"",
            "\"coordinator_inbox_words\":40",
            "\"gather_messages\":3",
            "\"plan_cache\"",
            "\"hit_ratio\":0.7500",
            "\"latency_bucket_bounds_micros\"",
            "\"rejected_overload\":1",
            "\"resident_bytes\":4096",
            "\"pressure\": {\"admitted\": 1, \"max_queue_depth\": 4, \"resident_bytes\": 4096, \"memory_budget\": 1048576, \"rejected_overload\": 0, \"evicted_under_pressure\": 1}",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn prometheus_export_is_well_formed() {
        let snap = sample_snapshot();
        let prom = snap.to_prometheus();
        for needle in [
            "# TYPE dlra_queries_submitted_total counter",
            "dlra_queries_submitted_total{dataset=\"tenant-a\"} 1",
            "dlra_queries_completed_total{dataset=\"tenant-a\"} 1",
            "dlra_comm_words_total{dataset=\"tenant-a\"} 42",
            "dlra_coordinator_inbox_words_total{dataset=\"tenant-a\"} 40",
            "dlra_gather_messages_total{dataset=\"tenant-a\"} 3",
            "# TYPE dlra_query_latency_micros histogram",
            "dlra_query_latency_micros_bucket{dataset=\"tenant-a\",le=\"+Inf\"} 1",
            "dlra_query_latency_micros_count{dataset=\"tenant-a\"} 1",
            "dlra_plan_cache_hit_ratio{dataset=\"tenant-a\"} 0.7500",
            "dlra_kernel_parallelism_watermark 4",
            "dlra_queries_rejected_overload_total{dataset=\"tenant-a\"} 1",
            "dlra_resident_bytes{dataset=\"tenant-a\"} 4096",
            "dlra_service_admitted 1",
            "dlra_service_resident_bytes 4096",
            "dlra_service_rejected_overload_total 0",
            "dlra_service_evicted_under_pressure_total 1",
            "dlra_service_max_queue_depth 4",
            "dlra_service_memory_budget_bytes 1048576",
        ] {
            assert!(prom.contains(needle), "missing {needle} in {prom}");
        }
        // Histogram buckets are cumulative and end at the count.
        let last_bucket = prom
            .lines()
            .rfind(|l| l.starts_with("dlra_query_latency_micros_bucket") && l.contains("+Inf"))
            .unwrap();
        assert!(last_bucket.ends_with(" 1"));
    }

    #[test]
    fn display_impls_are_loggable() {
        let snap = sample_snapshot();
        let text = format!("{snap}");
        assert!(text.contains("tenant-a"));
        assert!(text.contains("effective_parallelism=3.00"));
        assert!(format!("{}", snap.datasets[0]).contains("completed=1"));
    }
}
