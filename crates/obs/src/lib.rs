//! # dlra-obs — observability for the `dlra` workspace
//!
//! Two independent facilities, both built to vanish when unused:
//!
//! * [`trace`] — chrome://tracing span recording for the query lifecycle
//!   (`submit → queue → plan → execute → complete`), enabled by
//!   `DLRA_TRACE=<path>` or [`trace::enable`]. The disabled fast path is a
//!   single relaxed atomic load; no clocks, no allocation.
//! * [`metrics`] — a lock-free registry of counters, gauges, fixed-bucket
//!   latency histograms, and word-exact communication accumulators, with
//!   snapshots exportable as JSON and Prometheus text exposition format.
//!
//! Neither facility may perturb results: instrumentation only observes.
//! The service equivalence suites run bit- and ledger-identical with
//! tracing on and off, and the determinism tests assert that ledger-derived
//! communication metrics are identical across repeated runs, kernel thread
//! counts, and plan-cache configurations.

#![forbid(unsafe_code)]
pub mod metrics;
pub mod trace;

pub use metrics::{
    CommCounters, DatasetMetrics, DatasetMetricsSnapshot, Histogram, HistogramSnapshot,
    KernelPoolSnapshot, MetricsSnapshot, PlanCacheSnapshot, PressureSnapshot, ServicePressure,
    LATENCY_BUCKETS, LATENCY_BUCKET_BOUNDS_MICROS,
};
pub use trace::Span;
