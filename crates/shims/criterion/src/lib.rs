//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no registry access, so this workspace ships a
//! minimal, API-compatible subset of criterion sufficient for the benches
//! under `crates/bench/benches/`. Two execution modes:
//!
//! * **bench mode** (`cargo bench`, i.e. a `--bench` argument is present):
//!   each closure is warmed up and then timed over enough iterations to fill
//!   a small measurement window; median ns/iter is printed.
//! * **check mode** (any other invocation, e.g. a plain run of the
//!   harness-false executable): every benchmark body runs exactly once so
//!   the code stays exercised without the measurement cost.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (benches may import either
/// this or `std::hint::black_box`).
pub use std::hint::black_box;

/// Measurement settings and output sink — the shim keeps only what the
/// benches touch.
pub struct Criterion {
    bench_mode: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let bench_mode = std::env::args().any(|a| a == "--bench");
        Criterion {
            bench_mode,
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.bench_mode, self.sample_size, id, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Records the per-iteration throughput (accepted and ignored).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        let n = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(self.criterion.bench_mode, n, &full, &mut f);
        self
    }

    /// Runs one benchmark parameterized by an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        let n = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(self.criterion.bench_mode, n, &full, &mut |b| f(b, input));
        self
    }

    /// Ends the group (separator line in bench mode).
    pub fn finish(self) {
        if self.criterion.bench_mode {
            println!();
        }
    }
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id carrying a function name and a parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Throughput annotation (display only in real criterion; ignored here).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to each benchmark body; `iter` runs the measured closure.
pub struct Bencher {
    mode: BenchMode,
    /// Measured samples in nanoseconds per iteration.
    samples: Vec<f64>,
}

enum BenchMode {
    /// Run the body once, unmeasured.
    Check,
    /// Collect `samples` timed samples.
    Measure { samples: usize },
}

impl Bencher {
    /// Calls `routine` repeatedly and records its time per iteration.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        match self.mode {
            BenchMode::Check => {
                black_box(routine());
            }
            BenchMode::Measure { samples } => {
                // Warm-up: one call, which also sizes the batch so each
                // sample lasts ≳1 ms without overshooting the time budget.
                let t0 = Instant::now();
                black_box(routine());
                let once = t0.elapsed().max(Duration::from_nanos(50));
                let batch = (Duration::from_millis(1).as_nanos() / once.as_nanos()).max(1) as u64;
                let budget = Duration::from_millis(300);
                let started = Instant::now();
                for _ in 0..samples {
                    let t = Instant::now();
                    for _ in 0..batch {
                        black_box(routine());
                    }
                    let dt = t.elapsed();
                    self.samples.push(dt.as_nanos() as f64 / batch as f64);
                    if started.elapsed() > budget {
                        break;
                    }
                }
            }
        }
    }
}

fn run_one(bench_mode: bool, samples: usize, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        mode: if bench_mode {
            BenchMode::Measure { samples }
        } else {
            BenchMode::Check
        },
        samples: Vec::new(),
    };
    f(&mut b);
    if bench_mode {
        b.samples
            .sort_by(|a, c| a.partial_cmp(c).expect("finite timings"));
        let median = b
            .samples
            .get(b.samples.len() / 2)
            .copied()
            .unwrap_or(f64::NAN);
        println!(
            "bench {id:<50} {median:>14.0} ns/iter ({} samples)",
            b.samples.len()
        );
    }
}

/// Bundles benchmark functions into one group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` from group runners, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_mode_runs_body_once() {
        let mut calls = 0usize;
        let mut b = Bencher {
            mode: BenchMode::Check,
            samples: Vec::new(),
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert!(b.samples.is_empty());
    }

    #[test]
    fn measure_mode_collects_samples() {
        let mut b = Bencher {
            mode: BenchMode::Measure { samples: 5 },
            samples: Vec::new(),
        };
        b.iter(|| black_box(3u64.wrapping_mul(7)));
        assert!(!b.samples.is_empty());
        assert!(b.samples.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::from_parameter(64).0, "64");
        assert_eq!(BenchmarkId::new("svd", "128x64").0, "svd/128x64");
    }
}
