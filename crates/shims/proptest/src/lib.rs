//! Offline stand-in for the `proptest` property-testing framework.
//!
//! The build environment has no registry access, so this workspace ships a
//! minimal, API-compatible subset sufficient for the property tests under
//! `tests/`: the `proptest!` macro with a `proptest_config` inner
//! attribute, range strategies over `u64` / `usize` / `f64`, and the
//! `prop_assert!` / `prop_assert_eq!` assertion macros.
//!
//! Unlike real proptest there is no shrinking: inputs are drawn from a
//! deterministic per-test RNG (seeded from the test name), so a failure
//! reproduces exactly on re-run and the failing values appear in the
//! assertion message.

use std::ops::Range;

/// Per-test configuration; only the case count is honored.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A source of random test inputs (splitmix64: tiny, deterministic, and
/// statistically adequate for test-input generation).
pub struct TestRng(u64);

impl TestRng {
    /// Seeds deterministically from the test name (FNV-1a).
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(h | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Anything a `name in expr` binding can draw from.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<u64> {
    type Value = u64;

    fn sample(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_u64() % (self.end - self.start)
    }
}

impl Strategy for Range<usize> {
    type Value = usize;

    fn sample(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.next_u64() % (self.end - self.start) as u64) as usize
    }
}

impl Strategy for Range<i64> {
    type Value = i64;

    fn sample(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start
            .wrapping_add((rng.next_u64() % self.end.abs_diff(self.start)) as i64)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Defines property tests: each `fn` runs `cases` times over freshly drawn
/// inputs. Mirrors `proptest::proptest!` for the subset used here.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut proptest_rng = $crate::TestRng::from_name(stringify!($name));
                for proptest_case in 0..config.cases {
                    let _ = proptest_case;
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut proptest_rng);)*
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),*) $body
            )*
        }
    };
}

/// Asserts a condition inside a property (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+); };
}

/// Asserts equality inside a property (panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right); };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+); };
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_name("bounds");
        for _ in 0..1000 {
            let a = Strategy::sample(&(5u64..17), &mut rng);
            assert!((5..17).contains(&a));
            let b = Strategy::sample(&(3usize..4), &mut rng);
            assert_eq!(b, 3);
            let c = Strategy::sample(&(-2.5f64..1.5), &mut rng);
            assert!((-2.5..1.5).contains(&c));
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let mut c = TestRng::from_name("y");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_draws_and_asserts(x in 0u64..100, y in 0.0f64..1.0) {
            prop_assert!(x < 100);
            prop_assert!((0.0..1.0).contains(&y), "y out of range: {y}");
            prop_assert_eq!(x, x);
        }
    }
}
