//! Property tests for the wire layer the networked substrate rides on:
//! every payload codec in the workspace round-trips bit-exactly, and both
//! the value codec and the frame protocol reject malformed input —
//! truncation, oversized declared lengths, corrupt headers — with **typed
//! errors, never panics**. A hostile or garbled peer must not be able to
//! take the coordinator down.

use dlra_comm::wire::{decode_value, encode_value, WireDecode, WireEncode, WireError};
use dlra_comm::Payload;
use dlra_net::frame::{
    decode_error_frame, decode_hop_desc, encode_hop_desc, error_frame, HopRecord, Roster,
    HEADER_BYTES, MAX_BODY_BYTES,
};
use dlra_net::{Frame, MsgType, NetError, OverloadedFrame};
use dlra_sampler::{SketchBundle, ZSamplerParams};
use dlra_sketch::{AmsF2, CountMin, CountSketch, HeavyHittersSketch};
use proptest::prelude::*;
use proptest::TestRng;

/// Encodes, decodes, and checks the codec contract for one value: the
/// round-trip is bit-exact (the decoded value re-encodes to the identical
/// bytes — stronger than `==`, and the property the networked substrate's
/// decode → merge → re-encode path relies on), the body is exactly
/// `8 × words` (the wire-audit invariant), and every strict prefix of the
/// descriptor or body fails with a typed error rather than panicking.
fn assert_codec_contract<T>(value: &T)
where
    T: Payload + WireEncode + WireDecode,
{
    let (desc, body) = encode_value(value);
    assert_eq!(
        body.len() as u64,
        8 * value.words(),
        "body must be exactly 8 bytes per charged word"
    );
    let back: T = decode_value(&desc, &body).expect("roundtrip");
    let (desc2, body2) = encode_value(&back);
    assert_eq!(desc2, desc, "descriptor must re-encode bit-identically");
    assert_eq!(body2, body, "body must re-encode bit-identically");

    // Truncation at every cut point: typed error, no panic, no success.
    for cut in 0..desc.len() {
        assert!(
            decode_value::<T>(&desc[..cut], &body).is_err(),
            "desc truncated at {cut} of {} must fail",
            desc.len()
        );
    }
    for cut in 0..body.len() {
        assert!(
            decode_value::<T>(&desc, &body[..cut]).is_err(),
            "body truncated at {cut} of {} must fail",
            body.len()
        );
    }

    // Trailing garbage is rejected: buffers must be consumed exactly.
    let mut fat_body = body.clone();
    fat_body.extend_from_slice(&[0u8; 8]);
    assert!(matches!(
        decode_value::<T>(&desc, &fat_body),
        Err(WireError::Trailing { .. })
    ));
    let mut fat_desc = desc.clone();
    fat_desc.push(0);
    assert!(decode_value::<T>(&fat_desc, &body).is_err());
}

/// A finite, bit-diverse f64 from raw test entropy (exponent clamped so
/// the value is never NaN/Inf, mantissa and sign fully random).
fn finite_f64(bits: u64) -> f64 {
    let mantissa = bits & ((1 << 52) - 1);
    let exponent = 512 + (bits >> 52 & 0x3FF); // biased, well inside finite range
    let sign = bits >> 63;
    f64::from_bits(sign << 63 | exponent << 52 | mantissa)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn primitive_payloads_roundtrip(bits in 0u64..u64::MAX, n in 0u64..u64::MAX, len in 0usize..9) {
        assert_codec_contract(&finite_f64(bits));
        assert_codec_contract(&n);
        assert_codec_contract(&(n as i64));
        assert_codec_contract(&(n as usize));
        assert_codec_contract(&(n % 2 == 0));
        assert_codec_contract(&());
        assert_codec_contract(&(n % 3 == 0).then_some(finite_f64(bits)));
        let v: Vec<f64> = (0..len).map(|i| finite_f64(bits.wrapping_add(i as u64 * 0x9E37))).collect();
        assert_codec_contract(&v);
        assert_codec_contract(&(finite_f64(bits), n));
        assert_codec_contract(&(n, v.clone(), finite_f64(bits)));
        assert_codec_contract(&vec![(n, finite_f64(bits)); len.min(4)]);
    }

    #[test]
    fn matrix_payloads_roundtrip(rows in 1usize..7, cols in 1usize..7, seed in 0u64..1000) {
        let mut rng = dlra_util::Rng::new(seed);
        let m = dlra_linalg::Matrix::gaussian(rows, cols, &mut rng);
        assert_codec_contract(&m);
        assert_codec_contract(&dlra_linalg::Matrix::zeros(rows, cols));
        // Empty matrices are legal payloads too.
        assert_codec_contract(&dlra_linalg::Matrix::zeros(0, 0));
        assert_codec_contract(&vec![m]);
    }

    #[test]
    fn sketch_payloads_roundtrip(depth in 1usize..4, width in 2usize..17, seed in 0u64..1000, updates in 0usize..20) {
        let mut cs = CountSketch::new(depth, width, seed);
        let mut cm = CountMin::new(depth, width, seed);
        let mut ams = AmsF2::new(depth, width, seed);
        let mut hh = HeavyHittersSketch::with_dims(2.0, depth, width, seed);
        let mut rng = TestRng::from_name("sketch_payloads");
        for _ in 0..updates {
            let j = rng.next_u64() % 512;
            let x = rng.unit_f64() * 4.0 - 2.0;
            cs.update(j, x);
            cm.update(j, x.abs());
            ams.update(j, x);
            hh.update(j, x);
        }
        assert_codec_contract(&cs);
        assert_codec_contract(&cm);
        assert_codec_contract(&ams);
        assert_codec_contract(&hh);
    }

    #[test]
    fn sketch_bundle_roundtrips(seed in 0u64..500, updates in 0usize..24) {
        let params = ZSamplerParams::default();
        let mut bundle = SketchBundle::new(&params, seed, 1 << 12);
        let mut rng = TestRng::from_name("sketch_bundle");
        for _ in 0..updates {
            bundle.update(rng.next_u64() % (1 << 12), rng.unit_f64() - 0.5);
        }
        assert_codec_contract(&bundle);
    }

    #[test]
    fn frames_roundtrip_and_reject_every_truncation(
        msg in 0usize..5,
        seq in 0u64..u64::MAX,
        job in 0u64..u64::MAX,
        desc_len in 0usize..24,
        body_words in 0usize..9,
    ) {
        let msg_type = [MsgType::Broadcast, MsgType::Query, MsgType::QueryServer, MsgType::Reply, MsgType::HopBlock][msg];
        let desc: Vec<u8> = (0..desc_len).map(|i| (i as u8).wrapping_mul(37)).collect();
        let body: Vec<u8> = (0..body_words * 8).map(|i| (i as u8).wrapping_add(5)).collect();
        let frame = Frame::data(msg_type, seq as u32, job, desc, body);
        let bytes = frame.to_bytes();
        let back = Frame::from_bytes(&bytes).expect("frame roundtrip");
        prop_assert_eq!(back.msg_type, frame.msg_type);
        prop_assert_eq!(back.seq, frame.seq);
        prop_assert_eq!(back.job_id, frame.job_id);
        prop_assert_eq!(&back.desc, &frame.desc);
        prop_assert_eq!(&back.body, &frame.body);

        // Every strict prefix is a typed truncation error — both through
        // the buffer parser and through the stream reader.
        for cut in [0, 1, HEADER_BYTES as usize - 1, bytes.len().saturating_sub(1)] {
            let cut = cut.min(bytes.len().saturating_sub(1));
            match Frame::from_bytes(&bytes[..cut]) {
                Err(NetError::Truncated { .. }) => {}
                other => panic!("prefix {cut} must be Truncated, got {other:?}"),
            }
            let mut stream = std::io::Cursor::new(&bytes[..cut]);
            prop_assert!(Frame::read_from(&mut stream).is_err());
        }
    }

    #[test]
    fn corrupt_headers_are_typed_errors(byte in 0usize..24, value in 0u64..256) {
        // Flip one header byte of a valid frame to an arbitrary value: the
        // parser either still accepts a well-formed frame or fails typed —
        // never panics, never over-reads.
        let frame = Frame::data(MsgType::Reply, 3, 9, vec![1, 2], vec![0; 16]);
        let mut bytes = frame.to_bytes();
        bytes[byte] = value as u8;
        let _ = Frame::from_bytes(&bytes); // must not panic
        let mut stream = std::io::Cursor::new(bytes.clone());
        let _ = Frame::read_from(&mut stream); // must not panic either
    }

    #[test]
    fn hop_descriptors_roundtrip(hops in 0usize..9, tail in 0usize..6, seed in 0u64..1000) {
        let mut rng = TestRng::from_name("hop_desc");
        let _ = seed;
        let records: Vec<HopRecord> = (0..hops)
            .map(|_| HopRecord {
                round: (rng.next_u64() % 64) as u32,
                sender: (rng.next_u64() % 64) as u32,
                words: rng.next_u64() % (1 << 40),
            })
            .collect();
        let payload_desc: Vec<u8> = (0..tail).map(|i| i as u8).collect();
        let desc = encode_hop_desc(&records, &payload_desc);
        let (back_records, back_payload) = decode_hop_desc(&desc).expect("hop desc roundtrip");
        prop_assert_eq!(back_records, records);
        prop_assert_eq!(back_payload, &payload_desc[..]);
        for cut in 0..desc.len().min(32) {
            prop_assert!(decode_hop_desc(&desc[..cut]).is_err() || cut >= 4);
        }
    }
}

#[test]
fn oversized_declared_lengths_are_rejected_not_allocated() {
    // A descriptor claiming u32::MAX elements with no body: the codec must
    // reject the length before trusting it, not attempt the allocation.
    let huge_desc = u32::MAX.to_le_bytes().to_vec();
    match decode_value::<Vec<f64>>(&huge_desc, &[]) {
        Err(WireError::Oversized { .. }) => {}
        other => panic!("expected Oversized, got {other:?}"),
    }

    // Same at the frame layer: a header declaring a body beyond the hard
    // cap fails typed before any payload read.
    let valid = Frame::data(MsgType::Reply, 0, 1, vec![], vec![0; 8]).to_bytes();
    let mut bytes = valid.clone();
    bytes[8..12].copy_from_slice(&(u32::MAX).to_le_bytes());
    match Frame::from_bytes(&bytes) {
        Err(NetError::Oversized { len, max, .. }) => {
            assert!(len > max);
            assert_eq!(max, u64::from(MAX_BODY_BYTES));
        }
        other => panic!("expected Oversized, got {other:?}"),
    }
    let mut desc_bytes = valid;
    desc_bytes[4..8].copy_from_slice(&(u32::MAX).to_le_bytes());
    assert!(matches!(
        Frame::from_bytes(&desc_bytes),
        Err(NetError::Oversized { .. })
    ));
}

#[test]
fn control_frame_codecs_roundtrip_and_reject_truncation() {
    let roster = Roster {
        servers: 5,
        topology: dlra_comm::Topology::Tree { fanout: 3 },
        peer_ports: vec![0, 40001, 40002, 40003, 40004],
    };
    let frame = roster.to_frame();
    let back = Roster::from_frame(&frame).expect("roster roundtrip");
    assert_eq!(back.servers, roster.servers);
    assert_eq!(back.topology, roster.topology);
    assert_eq!(back.peer_ports, roster.peer_ports);
    for cut in 0..frame.desc.len() {
        let mut clipped = frame.clone();
        clipped.desc.truncate(cut);
        assert!(Roster::from_frame(&clipped).is_err(), "cut {cut}");
    }

    let overloaded = OverloadedFrame {
        queue_depth: 17,
        limit: 16,
        retry_after_micros: 12_345,
    };
    let frame = overloaded.to_frame();
    let back = OverloadedFrame::from_frame(&frame).expect("overloaded roundtrip");
    assert_eq!(back, overloaded);
    for cut in 0..frame.desc.len() {
        let mut clipped = frame.clone();
        clipped.desc.truncate(cut);
        assert!(OverloadedFrame::from_frame(&clipped).is_err(), "cut {cut}");
    }

    let err = error_frame(7, "server 3: disk on fire");
    match decode_error_frame(&err) {
        NetError::Remote { code, message } => {
            assert_eq!(code, 7);
            assert_eq!(message, "server 3: disk on fire");
        }
        other => panic!("expected Remote, got {other}"),
    }
}
