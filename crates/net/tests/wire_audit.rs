//! The bytes-on-the-wire audit: for a **full Algorithm 1 query** over real
//! sockets, every byte the cluster puts on the wire is explained by the
//! communication ledger — measured bytes are an affine function of charged
//! ledger words:
//!
//! ```text
//! data_body_bytes  == 8 * (total_words - FRAME_WORDS * messages)
//! data_frames      == messages
//! total_bytes      == data_header + data_desc + data_body + control_bytes
//! ```
//!
//! with zero unexplained bytes, under both the star and the combining-tree
//! topology. The same run is also checked bit-identical (projection, rows,
//! boosting score) and ledger-identical to the sequential simulator — the
//! paper's word counts are what actually crossed the sockets.

use dlra_comm::ledger::FRAME_WORDS;
use dlra_comm::{Cluster, Collectives, Topology};
use dlra_core::algorithm1::{run_algorithm1, Algorithm1Config, SamplerKind};
use dlra_core::functions::EntryFunction;
use dlra_core::model::PartitionModel;
use dlra_net::{SocketCluster, WireCounters};
use dlra_sampler::ZSamplerParams;
use dlra_util::Rng;
use std::sync::Arc;

fn shares(s: usize, n: usize, d: usize, seed: u64) -> Vec<dlra_linalg::Matrix> {
    let mut rng = Rng::new(seed);
    let global = dlra_data::noisy_low_rank(n, d, 3, 0.1, &mut rng);
    dlra_data::split_with_noise_shares(&global, s, 0.3, &mut rng)
}

/// Runs one full Algorithm 1 query on the socket substrate and audits
/// every byte against the ledger; returns nothing — panics on any
/// unexplained byte or any divergence from the sequential reference.
fn audit_one(s: usize, topology: Topology, cfg: &Algorithm1Config) {
    let parts = shares(s, 72, 10, cfg.seed);

    let mut sequential =
        PartitionModel::with_substrate(parts.clone(), EntryFunction::Identity, |locals| {
            Cluster::with_topology(locals, topology)
        })
        .unwrap();
    let want = run_algorithm1(&mut sequential, cfg).unwrap();

    let counters = WireCounters::shared();
    let shared = Arc::clone(&counters);
    let mut socket =
        PartitionModel::with_substrate(parts, EntryFunction::Identity, move |locals| {
            SocketCluster::with_options(locals, topology, shared)
        })
        .unwrap();

    // Bootstrap traffic (hellos, roster, peer wiring) is control-plane:
    // not ledger-charged, but still fully counted. Snapshot after
    // construction so the query delta isolates the protocol itself.
    let boot = counters.snapshot();
    assert_eq!(
        boot.data_frames, 0,
        "bootstrap must be pure control traffic"
    );
    let ledger_before = socket.cluster().comm();

    let got = run_algorithm1(&mut socket, cfg).unwrap();

    // Bit-identical outputs and identical ledgers vs the simulator.
    assert_eq!(
        got.projection.basis().as_slice(),
        want.projection.basis().as_slice(),
        "projection diverges at s = {s}, {topology:?}"
    );
    assert_eq!(got.rows, want.rows, "rows diverge at s = {s}, {topology:?}");
    assert_eq!(got.captured.to_bits(), want.captured.to_bits());
    assert_eq!(
        got.comm, want.comm,
        "ledgers diverge at s = {s}, {topology:?}"
    );
    assert_eq!(
        socket.cluster().comm().since(&ledger_before),
        want.comm,
        "whole-cluster ledger delta must equal the query's reported comm"
    );

    // The audit identity: bytes on the wire are an affine function of the
    // ledger words. One data frame per charged message; each data frame is
    // 24 header bytes + descriptor + exactly 8 bytes per payload word; the
    // ledger's FRAME_WORDS envelope word maps onto part of the header.
    let wire = counters.snapshot().since(&boot);
    let comm = got.comm;
    assert!(wire.data_frames > 0, "the query must move data frames");
    assert_eq!(
        wire.data_frames, comm.messages,
        "one wire frame per ledger message at s = {s}, {topology:?}"
    );
    assert_eq!(
        wire.data_body_bytes,
        8 * (comm.total_words() - FRAME_WORDS * comm.messages),
        "payload bytes must be exactly 8 × charged payload words at s = {s}, {topology:?}"
    );
    assert_eq!(
        wire.data_header_bytes,
        24 * comm.messages,
        "fixed per-frame header overhead"
    );
    // Zero unexplained bytes: the four counted components are the whole
    // measurement, and each is individually tied to the ledger (frames,
    // bodies) or to the protocol's fixed overhead (headers, descriptors,
    // control traffic).
    assert_eq!(
        wire.total_bytes(),
        wire.data_header_bytes + wire.data_desc_bytes + wire.data_body_bytes + wire.control_bytes,
        "unexplained bytes on the wire at s = {s}, {topology:?}"
    );
}

#[test]
fn algorithm1_wire_bytes_are_affine_in_ledger_words_star() {
    let cfg = Algorithm1Config {
        k: 3,
        r: 30,
        sampler: SamplerKind::Z(ZSamplerParams::default()),
        seed: 7,
        ..Default::default()
    };
    audit_one(4, Topology::Star, &cfg);
}

#[test]
fn algorithm1_wire_bytes_are_affine_in_ledger_words_tree() {
    // Non-power-of-two s: the tree has a ragged final round, the hardest
    // case for per-hop charging.
    let cfg = Algorithm1Config {
        k: 3,
        r: 24,
        sampler: SamplerKind::Z(ZSamplerParams::default()),
        seed: 11,
        ..Default::default()
    };
    audit_one(5, Topology::Tree { fanout: 2 }, &cfg);
}

#[test]
fn uniform_query_audits_clean_too() {
    // A second protocol shape (no sketch phase) through the same audit.
    let cfg = Algorithm1Config {
        k: 2,
        r: 25,
        sampler: SamplerKind::Uniform,
        seed: 3,
        ..Default::default()
    };
    audit_one(4, Topology::Star, &cfg);
    audit_one(3, Topology::Tree { fanout: 2 }, &cfg);
}
