//! The servers as **real operating-system processes**: spawns
//! `dlra-net-server` children, bootstraps them into a cluster over TCP,
//! runs every remote op — including a combining-tree reduction whose hops
//! are sockets between separate processes — and checks results against a
//! direct computation plus ledger parity against the sequential simulator
//! running the same logical protocol. Ends with a clean shutdown and
//! asserts every child exited successfully.

use dlra_comm::{Cluster, Collectives, Topology};
use dlra_net::remote::{demo_state, RemoteCoordinator};
use std::net::TcpListener;
use std::process::{Child, Command, Stdio};

const S: usize = 4;
const DIM: usize = 6;

fn spawn_servers(addr: &str) -> Vec<Child> {
    (1..S)
        .map(|t| {
            Command::new(env!("CARGO_BIN_EXE_dlra-net-server"))
                .arg(addr)
                .arg(t.to_string())
                .arg(DIM.to_string())
                .stderr(Stdio::inherit())
                .spawn()
                .expect("spawn dlra-net-server child")
        })
        .collect()
}

/// The sequential reference for the demo protocol: same ops, same payload
/// words, charged through the simulator's `Collectives` so whole-cluster
/// ledger totals are comparable.
fn reference_ledger(
    topology: Topology,
    factor: f64,
    query: (usize, usize),
) -> dlra_comm::LedgerSnapshot {
    let locals: Vec<Vec<f64>> = (0..S).map(|t| demo_state(t, DIM)).collect();
    let mut cluster = Cluster::with_topology(locals, topology);
    Collectives::broadcast(
        &mut cluster,
        &factor,
        "net.scale",
        |_t, local: &mut Vec<f64>, f: &f64| {
            for x in local.iter_mut() {
                *x *= f;
            }
        },
    );
    let _sums = Collectives::gather(
        &mut cluster,
        "net.gather_sum",
        |_t, local: &mut Vec<f64>| local.iter().sum::<f64>(),
    );
    let _total = Collectives::aggregate_topo(
        &mut cluster,
        "net.reduce_sum",
        |_t, local: &mut Vec<f64>| local.iter().sum::<f64>(),
        |acc: &mut f64, r: f64| *acc += r,
    );
    let (t, j) = query;
    let _x = Collectives::query_server(&mut cluster, t, &j, "net.point", |local, &jj: &usize| {
        local[jj]
    });
    cluster.comm()
}

#[test]
fn real_processes_match_reference_values_and_ledger() {
    let topology = Topology::Tree { fanout: 2 };
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind coordinator");
    let addr = listener.local_addr().expect("listener addr").to_string();

    let mut children = spawn_servers(&addr);
    let mut coord = RemoteCoordinator::accept(&listener, demo_state(0, DIM), S, topology)
        .expect("bootstrap remote cluster");

    // Broadcast: every process scales its state.
    let factor = 1.5f64;
    coord.broadcast_scale(factor).expect("broadcast");

    // Gather: per-server sums of the scaled states, computed in-process by
    // the children, must match a direct computation.
    let sums = coord.gather_sum().expect("gather");
    let want_sums: Vec<f64> = (0..S)
        .map(|t| demo_state(t, DIM).iter().sum::<f64>() * factor)
        .collect();
    assert_eq!(sums.len(), S);
    for (t, (got, want)) in sums.iter().zip(&want_sums).enumerate() {
        assert_eq!(got.to_bits(), want.to_bits(), "gather sum of server {t}");
    }

    // Tree reduction: interior hops are sockets between child processes.
    let total = coord.reduce_sum().expect("reduce");
    let want_total: f64 = {
        // Mirror the reference merge order (combining tree over the plan),
        // not a flat left-to-right sum — f64 addition is order-sensitive.
        let locals: Vec<Vec<f64>> = (0..S)
            .map(|t| demo_state(t, DIM).iter().map(|x| x * factor).collect())
            .collect();
        let mut cluster = Cluster::with_topology(locals, topology);
        Collectives::aggregate_topo(
            &mut cluster,
            "want_total",
            |_t, local: &mut Vec<f64>| local.iter().sum::<f64>(),
            |acc: &mut f64, r: f64| *acc += r,
        )
    };
    assert_eq!(total.to_bits(), want_total.to_bits(), "tree-reduced total");

    // Point query, remote and local.
    let q = (2usize, 3usize);
    let x = coord.query_point(q.0, q.1).expect("query");
    assert_eq!(x.to_bits(), (demo_state(q.0, DIM)[q.1] * factor).to_bits());
    let x0 = coord.query_point(0, 1).expect("local query");
    assert_eq!(x0.to_bits(), (demo_state(0, DIM)[1] * factor).to_bits());

    // Whole-cluster ledger parity with the sequential simulator running
    // the same logical ops (the local query at t = 0 is free in both).
    let want_ledger = reference_ledger(topology, factor, q);
    assert_eq!(
        coord.ledger().snapshot(),
        want_ledger,
        "process-cluster ledger diverges from the sequential reference"
    );

    // The coordinator's counters are send-side and per-process: across a
    // real process boundary they see only the coordinator's own frames
    // (the children count their replies and tree hops in their own address
    // spaces). Audit the downstream direction exactly: the coordinator
    // sent one data frame per broadcast recipient plus one per remote
    // point query, and their bodies are exactly the charged downstream
    // payload words. (The whole-cluster audit, both directions, runs in
    // the loopback tests where all threads share one counter set.)
    let wire = coord.counters().snapshot();
    let comm = coord.ledger().snapshot();
    let downstream_frames = (S as u64 - 1) + 1;
    assert_eq!(wire.data_frames, downstream_frames);
    assert_eq!(
        wire.data_body_bytes,
        8 * (comm.downstream_words - dlra_comm::ledger::FRAME_WORDS * downstream_frames)
    );

    // Clean shutdown: the coordinator observes EOF on every link, and
    // every child process exits with status 0.
    coord.shutdown().expect("clean shutdown");
    for (i, child) in children.iter_mut().enumerate() {
        let status = child.wait().expect("wait for child");
        assert!(status.success(), "server {} exited with {status}", i + 1);
    }
}

#[test]
fn oversized_server_id_is_rejected_at_bootstrap() {
    // A child claiming an out-of-range id must be rejected by the
    // coordinator's roster validation; the child then exits nonzero with a
    // diagnostic instead of hanging.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind coordinator");
    let addr = listener.local_addr().expect("listener addr").to_string();
    let mut bogus = Command::new(env!("CARGO_BIN_EXE_dlra-net-server"))
        .arg(&addr)
        .arg("7") // only ids 1..2 are valid in a 2-server cluster
        .arg(DIM.to_string())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn bogus child");
    let err = match RemoteCoordinator::accept(&listener, demo_state(0, DIM), 2, Topology::Star) {
        Err(e) => e,
        Ok(_) => panic!("bootstrap must reject an out-of-range server id"),
    };
    let msg = err.to_string();
    assert!(
        msg.contains("server id") || msg.contains("roster") || msg.contains("protocol"),
        "unhelpful bootstrap error: {msg}"
    );
    let status = bogus.wait().expect("wait for bogus child");
    assert!(!status.success(), "bogus child must exit nonzero");
}
