//! `dlra-net-server`: one of the paper's `s` servers as a standalone
//! process.
//!
//! ```text
//! dlra-net-server <coordinator_addr> <server_id> <dim>
//! ```
//!
//! Dials the coordinator, joins the cluster under `server_id`, builds the
//! deterministic demo state for `(server_id, dim)`, and serves the static
//! remote op table until the coordinator sends shutdown (exit 0) or the
//! link fails (exit 1 with a diagnostic on stderr).
//!
//! Configuration is argv-only — the process reads no environment
//! variables, keeping the workspace's determinism contract (env knobs
//! live in the runtime layer, never in protocol or transport code).

use dlra_net::counters::WireCounters;
use dlra_net::node::{run_node, NodeConfig};
use dlra_net::remote::{demo_state, RemoteResolver};
use std::sync::{Arc, Mutex};

fn main() {
    // dlra-allow(env-determinism): argv is explicit per-invocation
    // configuration handed to this entry point, not ambient process
    // state; the process reads no environment variables.
    let args: Vec<String> = std::env::args().collect();
    let usage = "usage: dlra-net-server <coordinator_addr> <server_id> <dim>";
    if args.len() != 4 {
        eprintln!("{usage}");
        std::process::exit(2);
    }
    let coordinator = args[1].clone();
    let server_id: usize = match args[2].parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("invalid server_id {:?}\n{usage}", args[2]);
            std::process::exit(2);
        }
    };
    let dim: usize = match args[3].parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("invalid dim {:?}\n{usage}", args[3]);
            std::process::exit(2);
        }
    };
    let cfg = NodeConfig {
        coordinator,
        server_id,
        state: Arc::new(Mutex::new(demo_state(server_id, dim))),
        resolver: Arc::new(RemoteResolver),
        counters: WireCounters::shared(),
    };
    if let Err(e) = run_node(cfg) {
        eprintln!("dlra-net-server {server_id}: {e}");
        std::process::exit(1);
    }
}
