//! The length-prefixed frame protocol: every message between the
//! coordinator and a server is one [`Frame`] — a fixed 24-byte header,
//! a descriptor (shape metadata and control fields), and a body (payload
//! words, 8 bytes each).
//!
//! ```text
//! [0]      magic   0xD7
//! [1]      version 1
//! [2]      msg_type
//! [3]      flags            (bit 0: reduce trigger carries a request)
//! [4..8]   desc_len  u32 LE
//! [8..12]  body_len  u32 LE
//! [12..16] seq       u32 LE  (server id / round index / op code / error code)
//! [16..24] job_id    u64 LE
//! ```
//!
//! The split matters for the audit: **data frames** are exactly the
//! messages the [`dlra_comm::Ledger`] charges, and their bodies are exactly
//! the charged payload words (8 bytes each, by the `dlra-comm` wire-codec
//! invariant); headers, descriptors, and **control frames** (bootstrap,
//! triggers, acks, shutdown) are protocol overhead the ledger never sees.
//! The integration tests reconcile the two down to zero unexplained bytes.
//!
//! Decoding malformed input returns a typed [`NetError`], never panics.

use dlra_comm::wire::WireError;
use dlra_comm::Topology;
use std::io::{Read, Write};

/// First header byte of every frame.
pub const MAGIC: u8 = 0xD7;
/// Protocol version.
pub const VERSION: u8 = 1;
/// Fixed header size in bytes.
pub const HEADER_BYTES: u64 = 24;
/// Maximum descriptor size accepted from a peer.
pub const MAX_DESC_BYTES: u32 = 1 << 20;
/// Maximum body size accepted from a peer.
pub const MAX_BODY_BYTES: u32 = 1 << 30;
/// Flag bit: a `RunReduce` frame that carries a request payload (the
/// `query_aggregate` down-sweep, a charged data message) rather than a bare
/// trigger (the `aggregate_topo` kick-off, free like shipping a job to an
/// in-process worker).
pub const FLAG_HAS_REQUEST: u8 = 1;

/// Every message kind of the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum MsgType {
    /// Node → coordinator: first frame after dialing in. `seq` is the
    /// advertised server id; the descriptor carries the node's peer port.
    Hello = 1,
    /// Coordinator → node: the assembled roster (server count, topology,
    /// peer addresses ordered by server id).
    Roster = 2,
    /// Node → node: first frame on a freshly dialed peer link; `seq` is the
    /// dialing server's id.
    PeerHello = 3,
    /// Node → coordinator: peer links are up, ready for collectives.
    Ready = 4,
    /// Node → coordinator: a collective step finished (broadcast ack).
    Ack = 5,
    /// Coordinator → node: drain and exit.
    Shutdown = 6,
    /// Either direction: a typed failure; `seq` is the error code, the
    /// descriptor a UTF-8 message.
    Error = 7,
    /// Service-level backpressure: the receiver should retry after the
    /// hinted delay. Descriptor: `queue_depth`, `limit`,
    /// `retry_after_micros` (u64 LE each).
    Overloaded = 8,
    /// Coordinator → node: compute a gather reply (bare trigger; free, like
    /// shipping a closure to an in-process worker).
    RunGather = 9,
    /// Coordinator → node: participate in a topology-routed reduction.
    /// With [`FLAG_HAS_REQUEST`], the payload is the broadcast request.
    RunReduce = 10,
    /// Coordinator → node: a broadcast message (charged data).
    Broadcast = 16,
    /// Coordinator → node: a `query_all` request (charged data).
    Query = 17,
    /// Coordinator → node: a single-server query request (charged data).
    QueryServer = 18,
    /// Node → coordinator: a computed reply (charged data).
    Reply = 19,
    /// Tree-reduction hop: a partial block moving to its parent, with the
    /// accumulated hop log in the descriptor. `seq` is the routing round.
    HopBlock = 20,
}

impl MsgType {
    /// Decodes a wire byte.
    pub fn from_u8(v: u8) -> Option<MsgType> {
        Some(match v {
            1 => MsgType::Hello,
            2 => MsgType::Roster,
            3 => MsgType::PeerHello,
            4 => MsgType::Ready,
            5 => MsgType::Ack,
            6 => MsgType::Shutdown,
            7 => MsgType::Error,
            8 => MsgType::Overloaded,
            9 => MsgType::RunGather,
            10 => MsgType::RunReduce,
            16 => MsgType::Broadcast,
            17 => MsgType::Query,
            18 => MsgType::QueryServer,
            19 => MsgType::Reply,
            20 => MsgType::HopBlock,
            _ => return None,
        })
    }
}

/// A typed protocol failure. Every malformed input path lands here —
/// nothing in this crate panics on bytes from a peer.
#[derive(Debug)]
pub enum NetError {
    /// A socket operation failed.
    Io(std::io::Error),
    /// The stream ended inside a frame.
    Truncated {
        /// What was being read.
        what: &'static str,
        /// Bytes the reader needed.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// A declared length exceeds the protocol cap.
    Oversized {
        /// Which field.
        what: &'static str,
        /// Declared length.
        len: u64,
        /// The cap.
        max: u64,
    },
    /// A frame field held an invalid value (magic, version, message type).
    BadFrame {
        /// Which field.
        what: &'static str,
        /// The offending value.
        value: u64,
    },
    /// A payload codec rejected the frame contents.
    Wire(WireError),
    /// The peer violated the protocol state machine.
    Protocol {
        /// What went wrong.
        what: &'static str,
        /// Context (expected/actual, server ids, …).
        detail: String,
    },
    /// The peer reported a typed error.
    Remote {
        /// Error code from the frame's `seq` field.
        code: u32,
        /// Human-readable message from the descriptor.
        message: String,
    },
    /// The peer shed this request under load; retry after the hint.
    Overloaded {
        /// Queue depth observed at the shedding service.
        queue_depth: u64,
        /// The configured admission limit.
        limit: u64,
        /// Suggested backoff before retrying, in microseconds.
        retry_after_micros: u64,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "socket error: {e}"),
            NetError::Truncated { what, needed, have } => {
                write!(f, "truncated {what}: needed {needed} bytes, have {have}")
            }
            NetError::Oversized { what, len, max } => {
                write!(f, "oversized {what}: declared {len}, cap {max}")
            }
            NetError::BadFrame { what, value } => write!(f, "bad frame {what}: {value:#x}"),
            NetError::Wire(e) => write!(f, "payload codec: {e}"),
            NetError::Protocol { what, detail } => {
                write!(f, "protocol violation: {what} ({detail})")
            }
            NetError::Remote { code, message } => write!(f, "remote error {code}: {message}"),
            NetError::Overloaded {
                queue_depth,
                limit,
                retry_after_micros,
            } => write!(
                f,
                "overloaded: queue {queue_depth}/{limit}, retry after {retry_after_micros} µs"
            ),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

/// One wire message: header fields plus the descriptor/body buffers.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Message kind.
    pub msg_type: MsgType,
    /// Flag bits ([`FLAG_HAS_REQUEST`]).
    pub flags: u8,
    /// Multi-purpose small field: server id (hellos), routing round
    /// (hop blocks), op code (remote-mode triggers), error code.
    pub seq: u32,
    /// Correlates a frame with the collective that produced it.
    pub job_id: u64,
    /// Shape metadata / control fields (frame overhead, never charged).
    pub desc: Vec<u8>,
    /// Payload words, 8 bytes each (the ledger-charged bytes).
    pub body: Vec<u8>,
}

impl Frame {
    /// A control frame with empty buffers.
    pub fn control(msg_type: MsgType, seq: u32, job_id: u64) -> Frame {
        Frame {
            msg_type,
            flags: 0,
            seq,
            job_id,
            desc: Vec::new(),
            body: Vec::new(),
        }
    }

    /// A data frame carrying an encoded payload.
    pub fn data(msg_type: MsgType, seq: u32, job_id: u64, desc: Vec<u8>, body: Vec<u8>) -> Frame {
        Frame {
            msg_type,
            flags: 0,
            seq,
            job_id,
            desc,
            body,
        }
    }

    /// Whether this frame is a ledger-charged data message (its body words
    /// appear in the ledger) or protocol overhead. The one subtlety is
    /// `RunReduce`: with a request payload it is the `query_aggregate`
    /// down-sweep (charged); bare, it is a free trigger, exactly as
    /// shipping a closure to an in-process worker costs no ledger words.
    pub fn is_data(&self) -> bool {
        match self.msg_type {
            MsgType::Broadcast
            | MsgType::Query
            | MsgType::QueryServer
            | MsgType::Reply
            | MsgType::HopBlock => true,
            MsgType::RunReduce => self.flags & FLAG_HAS_REQUEST != 0,
            _ => false,
        }
    }

    /// Total encoded size in bytes.
    pub fn wire_bytes(&self) -> u64 {
        HEADER_BYTES + self.desc.len() as u64 + self.body.len() as u64
    }

    /// Serializes the frame into one buffer (a single `write_all` keeps
    /// frames atomic on a shared link).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + self.desc.len() + self.body.len());
        out.push(MAGIC);
        out.push(VERSION);
        out.push(self.msg_type as u8);
        out.push(self.flags);
        out.extend_from_slice(&(self.desc.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.body.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.job_id.to_le_bytes());
        out.extend_from_slice(&self.desc);
        out.extend_from_slice(&self.body);
        out
    }

    /// Parses and validates a 24-byte header, returning
    /// `(frame-with-empty-buffers, desc_len, body_len)`.
    pub fn parse_header(h: &[u8; 24]) -> Result<(Frame, usize, usize), NetError> {
        if h[0] != MAGIC {
            return Err(NetError::BadFrame {
                what: "magic",
                value: u64::from(h[0]),
            });
        }
        if h[1] != VERSION {
            return Err(NetError::BadFrame {
                what: "version",
                value: u64::from(h[1]),
            });
        }
        let msg_type = MsgType::from_u8(h[2]).ok_or(NetError::BadFrame {
            what: "msg_type",
            value: u64::from(h[2]),
        })?;
        let desc_len = u32::from_le_bytes([h[4], h[5], h[6], h[7]]);
        let body_len = u32::from_le_bytes([h[8], h[9], h[10], h[11]]);
        if desc_len > MAX_DESC_BYTES {
            return Err(NetError::Oversized {
                what: "frame descriptor",
                len: u64::from(desc_len),
                max: u64::from(MAX_DESC_BYTES),
            });
        }
        if body_len > MAX_BODY_BYTES {
            return Err(NetError::Oversized {
                what: "frame body",
                len: u64::from(body_len),
                max: u64::from(MAX_BODY_BYTES),
            });
        }
        let seq = u32::from_le_bytes([h[12], h[13], h[14], h[15]]);
        let job_id = u64::from_le_bytes([h[16], h[17], h[18], h[19], h[20], h[21], h[22], h[23]]);
        Ok((
            Frame {
                msg_type,
                flags: h[3],
                seq,
                job_id,
                desc: Vec::new(),
                body: Vec::new(),
            },
            desc_len as usize,
            body_len as usize,
        ))
    }

    /// Writes the frame to a stream as one atomic write.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), NetError> {
        w.write_all(&self.to_bytes())?;
        Ok(())
    }

    /// Reads one frame from a stream. A stream that ends mid-frame yields
    /// [`NetError::Truncated`]; oversized declared lengths are rejected
    /// before any allocation.
    pub fn read_from(r: &mut impl Read) -> Result<Frame, NetError> {
        let mut header = [0u8; 24];
        read_exact_or_truncated(r, &mut header, "frame header")?;
        let (mut frame, desc_len, body_len) = Frame::parse_header(&header)?;
        frame.desc = vec![0u8; desc_len];
        read_exact_or_truncated(r, &mut frame.desc, "frame descriptor")?;
        frame.body = vec![0u8; body_len];
        read_exact_or_truncated(r, &mut frame.body, "frame body")?;
        Ok(frame)
    }

    /// Decodes one frame from a byte buffer, requiring exact consumption.
    pub fn from_bytes(bytes: &[u8]) -> Result<Frame, NetError> {
        let mut cursor = bytes;
        let frame = Frame::read_from(&mut cursor)?;
        if !cursor.is_empty() {
            return Err(NetError::Protocol {
                what: "trailing bytes after frame",
                detail: format!("{} bytes", cursor.len()),
            });
        }
        Ok(frame)
    }
}

/// `read_exact` with short reads mapped to the typed truncation error.
fn read_exact_or_truncated(
    r: &mut impl Read,
    buf: &mut [u8],
    what: &'static str,
) -> Result<(), NetError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(NetError::Truncated {
                    what,
                    needed: buf.len(),
                    have: filled,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(NetError::Io(e)),
        }
    }
    Ok(())
}

/// Encodes a [`Topology`] into two descriptor words.
pub fn encode_topology(desc: &mut Vec<u8>, topology: Topology) {
    match topology {
        Topology::Star => {
            desc.extend_from_slice(&0u32.to_le_bytes());
            desc.extend_from_slice(&0u32.to_le_bytes());
        }
        Topology::Tree { fanout } => {
            desc.extend_from_slice(&1u32.to_le_bytes());
            desc.extend_from_slice(&(fanout as u32).to_le_bytes());
        }
    }
}

/// Decodes a [`Topology`] from the descriptor cursor.
pub fn decode_topology(d: &[u8]) -> Result<(Topology, &[u8]), NetError> {
    if d.len() < 8 {
        return Err(NetError::Truncated {
            what: "topology",
            needed: 8,
            have: d.len(),
        });
    }
    let tag = u32::from_le_bytes([d[0], d[1], d[2], d[3]]);
    let fanout = u32::from_le_bytes([d[4], d[5], d[6], d[7]]);
    let topology = match tag {
        0 => Topology::Star,
        1 => Topology::Tree {
            fanout: fanout as usize,
        },
        v => {
            return Err(NetError::BadFrame {
                what: "topology tag",
                value: u64::from(v),
            })
        }
    };
    Ok((topology, &d[8..]))
}

/// The roster the coordinator distributes after every server dialed in:
/// cluster size, routing topology, and each server's peer port (index 0 is
/// the coordinator and has no peer listener).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Roster {
    /// Total server count including the coordinator.
    pub servers: u32,
    /// Reduction routing for the cluster's lifetime.
    pub topology: Topology,
    /// Peer (loopback) port per server id; `0` for the coordinator slot.
    pub peer_ports: Vec<u16>,
}

impl Roster {
    /// Encodes into a [`MsgType::Roster`] frame.
    pub fn to_frame(&self) -> Frame {
        let mut desc = Vec::with_capacity(16 + 2 * self.peer_ports.len());
        desc.extend_from_slice(&self.servers.to_le_bytes());
        encode_topology(&mut desc, self.topology);
        desc.extend_from_slice(&(self.peer_ports.len() as u32).to_le_bytes());
        for &p in &self.peer_ports {
            desc.extend_from_slice(&p.to_le_bytes());
        }
        Frame::data(MsgType::Roster, 0, 0, desc, Vec::new())
    }

    /// Decodes from a roster frame descriptor.
    pub fn from_frame(frame: &Frame) -> Result<Roster, NetError> {
        let d = &frame.desc;
        if d.len() < 4 {
            return Err(NetError::Truncated {
                what: "roster servers",
                needed: 4,
                have: d.len(),
            });
        }
        let servers = u32::from_le_bytes([d[0], d[1], d[2], d[3]]);
        let (topology, rest) = decode_topology(&d[4..])?;
        if rest.len() < 4 {
            return Err(NetError::Truncated {
                what: "roster port count",
                needed: 4,
                have: rest.len(),
            });
        }
        let n = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        if n != servers as usize {
            return Err(NetError::Protocol {
                what: "roster port count mismatch",
                detail: format!("{n} ports for {servers} servers"),
            });
        }
        let ports = &rest[4..];
        if ports.len() != 2 * n {
            return Err(NetError::Truncated {
                what: "roster ports",
                needed: 2 * n,
                have: ports.len(),
            });
        }
        let peer_ports = ports
            .chunks_exact(2)
            .map(|c| u16::from_le_bytes([c[0], c[1]]))
            .collect();
        Ok(Roster {
            servers,
            topology,
            peer_ports,
        })
    }
}

/// Service-level backpressure carried over the wire (the `dlra-runtime`
/// `ServiceError::Overloaded` plus the drain-rate retry hint).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverloadedFrame {
    /// Queue depth at shed time.
    pub queue_depth: u64,
    /// The admission limit that was hit.
    pub limit: u64,
    /// Suggested backoff before retrying, in microseconds, derived from
    /// the service's observed drain rate.
    pub retry_after_micros: u64,
}

impl OverloadedFrame {
    /// Encodes into a [`MsgType::Overloaded`] control frame.
    pub fn to_frame(&self) -> Frame {
        let mut desc = Vec::with_capacity(24);
        desc.extend_from_slice(&self.queue_depth.to_le_bytes());
        desc.extend_from_slice(&self.limit.to_le_bytes());
        desc.extend_from_slice(&self.retry_after_micros.to_le_bytes());
        Frame {
            msg_type: MsgType::Overloaded,
            flags: 0,
            seq: 0,
            job_id: 0,
            desc,
            body: Vec::new(),
        }
    }

    /// Decodes from an overloaded frame descriptor.
    pub fn from_frame(frame: &Frame) -> Result<OverloadedFrame, NetError> {
        let d = &frame.desc;
        if d.len() != 24 {
            return Err(NetError::Truncated {
                what: "overloaded descriptor",
                needed: 24,
                have: d.len(),
            });
        }
        let word = |i: usize| {
            let mut a = [0u8; 8];
            a.copy_from_slice(&d[i..i + 8]);
            u64::from_le_bytes(a)
        };
        Ok(OverloadedFrame {
            queue_depth: word(0),
            limit: word(8),
            retry_after_micros: word(16),
        })
    }
}

/// One hop-accounting record riding a [`MsgType::HopBlock`] descriptor:
/// the block size (in words) that left `sender` in routing round `round`.
/// The hop a frame *itself* performs is never in its own records — the
/// receiver derives it from the link, the `seq` round, and `body_len / 8` —
/// so the root ends up with exactly one record per plan edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopRecord {
    /// Routing round of the hop.
    pub round: u32,
    /// Forwarding server.
    pub sender: u32,
    /// Block words at send time.
    pub words: u64,
}

/// Builds a hop-block descriptor: record count, records, then the payload
/// descriptor of the block itself.
pub fn encode_hop_desc(records: &[HopRecord], payload_desc: &[u8]) -> Vec<u8> {
    let mut desc = Vec::with_capacity(4 + 16 * records.len() + payload_desc.len());
    desc.extend_from_slice(&(records.len() as u32).to_le_bytes());
    for r in records {
        desc.extend_from_slice(&r.round.to_le_bytes());
        desc.extend_from_slice(&r.sender.to_le_bytes());
        desc.extend_from_slice(&r.words.to_le_bytes());
    }
    desc.extend_from_slice(payload_desc);
    desc
}

/// Splits a hop-block descriptor into its records and the payload
/// descriptor that follows them.
pub fn decode_hop_desc(desc: &[u8]) -> Result<(Vec<HopRecord>, &[u8]), NetError> {
    if desc.len() < 4 {
        return Err(NetError::Truncated {
            what: "hop record count",
            needed: 4,
            have: desc.len(),
        });
    }
    let n = u32::from_le_bytes([desc[0], desc[1], desc[2], desc[3]]) as usize;
    let need = 4 + 16 * n;
    if desc.len() < need {
        return Err(NetError::Truncated {
            what: "hop records",
            needed: need,
            have: desc.len(),
        });
    }
    let mut records = Vec::with_capacity(n);
    for i in 0..n {
        let at = 4 + 16 * i;
        let round = u32::from_le_bytes([desc[at], desc[at + 1], desc[at + 2], desc[at + 3]]);
        let sender = u32::from_le_bytes([desc[at + 4], desc[at + 5], desc[at + 6], desc[at + 7]]);
        let mut w = [0u8; 8];
        w.copy_from_slice(&desc[at + 8..at + 16]);
        records.push(HopRecord {
            round,
            sender,
            words: u64::from_le_bytes(w),
        });
    }
    Ok((records, &desc[need..]))
}

/// Builds an error frame from a code and message.
pub fn error_frame(code: u32, message: &str) -> Frame {
    Frame {
        msg_type: MsgType::Error,
        flags: 0,
        seq: code,
        job_id: 0,
        desc: message.as_bytes().to_vec(),
        body: Vec::new(),
    }
}

/// Interprets an error frame.
pub fn decode_error_frame(frame: &Frame) -> NetError {
    NetError::Remote {
        code: frame.seq,
        message: String::from_utf8_lossy(&frame.desc).into_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrips_through_bytes() {
        let f = Frame {
            msg_type: MsgType::HopBlock,
            flags: FLAG_HAS_REQUEST,
            seq: 3,
            job_id: 0xDEAD_BEEF_0042,
            desc: vec![1, 2, 3],
            body: vec![9; 16],
        };
        let bytes = f.to_bytes();
        assert_eq!(bytes.len() as u64, f.wire_bytes());
        let back = Frame::from_bytes(&bytes).expect("decode");
        assert_eq!(back.msg_type, MsgType::HopBlock);
        assert_eq!(back.flags, FLAG_HAS_REQUEST);
        assert_eq!(back.seq, 3);
        assert_eq!(back.job_id, 0xDEAD_BEEF_0042);
        assert_eq!(back.desc, f.desc);
        assert_eq!(back.body, f.body);
    }

    #[test]
    fn truncated_frames_are_typed_errors() {
        let f = Frame::control(MsgType::Ack, 0, 7);
        let bytes = f.to_bytes();
        for cut in [0, 1, 12, 23] {
            let err = Frame::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, NetError::Truncated { .. }),
                "cut {cut}: {err:?}"
            );
        }
        let f = Frame::data(MsgType::Reply, 0, 1, vec![1, 2], vec![0; 8]);
        let bytes = f.to_bytes();
        let err = Frame::from_bytes(&bytes[..bytes.len() - 3]).unwrap_err();
        assert!(matches!(
            err,
            NetError::Truncated {
                what: "frame body",
                ..
            }
        ));
    }

    #[test]
    fn oversized_lengths_rejected_before_allocation() {
        let mut bytes = Frame::control(MsgType::Ack, 0, 0).to_bytes();
        bytes[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = Frame::from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, NetError::Oversized { .. }), "{err:?}");
        let mut bytes = Frame::control(MsgType::Ack, 0, 0).to_bytes();
        bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = Frame::from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, NetError::Oversized { .. }), "{err:?}");
    }

    #[test]
    fn bad_magic_version_and_type_rejected() {
        let good = Frame::control(MsgType::Ack, 0, 0).to_bytes();
        for (i, what) in [(0usize, "magic"), (1, "version"), (2, "msg_type")] {
            let mut bytes = good.clone();
            bytes[i] = 0xEE;
            let err = Frame::from_bytes(&bytes).unwrap_err();
            match err {
                NetError::BadFrame { what: w, .. } => assert_eq!(w, what),
                other => panic!("expected BadFrame({what}), got {other:?}"),
            }
        }
    }

    #[test]
    fn data_classification_matches_ledger_charging() {
        assert!(Frame::data(MsgType::Broadcast, 0, 0, vec![], vec![]).is_data());
        assert!(Frame::data(MsgType::Reply, 0, 0, vec![], vec![]).is_data());
        assert!(Frame::data(MsgType::HopBlock, 0, 0, vec![], vec![]).is_data());
        assert!(!Frame::control(MsgType::RunGather, 0, 0).is_data());
        assert!(!Frame::control(MsgType::Ack, 0, 0).is_data());
        let mut reduce = Frame::control(MsgType::RunReduce, 0, 0);
        assert!(!reduce.is_data());
        reduce.flags |= FLAG_HAS_REQUEST;
        assert!(reduce.is_data());
    }

    #[test]
    fn roster_roundtrips() {
        let r = Roster {
            servers: 5,
            topology: Topology::Tree { fanout: 4 },
            peer_ports: vec![0, 4001, 4002, 4003, 4004],
        };
        let back = Roster::from_frame(&r.to_frame()).expect("roster");
        assert_eq!(back, r);
        let star = Roster {
            servers: 2,
            topology: Topology::Star,
            peer_ports: vec![0, 9],
        };
        assert_eq!(Roster::from_frame(&star.to_frame()).unwrap(), star);
    }

    #[test]
    fn roster_rejects_count_mismatch() {
        let r = Roster {
            servers: 3,
            topology: Topology::Star,
            peer_ports: vec![0, 1],
        };
        let err = Roster::from_frame(&r.to_frame()).unwrap_err();
        assert!(matches!(err, NetError::Protocol { .. }), "{err:?}");
    }

    #[test]
    fn overloaded_roundtrips() {
        let o = OverloadedFrame {
            queue_depth: 130,
            limit: 128,
            retry_after_micros: 2_500,
        };
        let back = OverloadedFrame::from_frame(&o.to_frame()).expect("overloaded");
        assert_eq!(back, o);
    }

    #[test]
    fn hop_desc_roundtrips_with_payload_tail() {
        let records = vec![
            HopRecord {
                round: 0,
                sender: 3,
                words: 17,
            },
            HopRecord {
                round: 1,
                sender: 2,
                words: 34,
            },
        ];
        let desc = encode_hop_desc(&records, &[7, 7, 7]);
        let (back, tail) = decode_hop_desc(&desc).expect("hop desc");
        assert_eq!(back, records);
        assert_eq!(tail, &[7, 7, 7]);
        let err = decode_hop_desc(&desc[..10]).unwrap_err();
        assert!(matches!(err, NetError::Truncated { .. }), "{err:?}");
    }

    #[test]
    fn error_frame_roundtrips() {
        let f = error_frame(42, "boom");
        match decode_error_frame(&f) {
            NetError::Remote { code, message } => {
                assert_eq!(code, 42);
                assert_eq!(message, "boom");
            }
            other => panic!("{other:?}"),
        }
    }
}
