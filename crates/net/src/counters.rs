//! Byte accounting for the wire audit.
//!
//! Every frame leaving a socket is counted **once, at the send side**,
//! split by the same data/control classification the ledger uses. The
//! integration tests reconcile these counters against the whole-cluster
//! ledger: for a run with `W` total charged words and `F` data frames,
//!
//! ```text
//! data_body_bytes   == 8 * (W - FRAME_WORDS * F)   (payload words)
//! data_frames       == F                            (one frame per charge)
//! total wire bytes  == data_header + data_desc + data_body
//!                      + control_frames * 24 + control_desc
//! ```
//!
//! with zero unexplained bytes. (`FRAME_WORDS` is `dlra-comm`'s per-message
//! envelope constant; the wire identifies it with part of the frame header.)

use crate::frame::{Frame, NetError, HEADER_BYTES};
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared atomic counters, one set per cluster (all links, both roles).
#[derive(Debug, Default)]
pub struct WireCounters {
    /// Ledger-charged frames sent.
    pub data_frames: AtomicU64,
    /// Header bytes of data frames.
    pub data_header_bytes: AtomicU64,
    /// Descriptor bytes of data frames.
    pub data_desc_bytes: AtomicU64,
    /// Body bytes of data frames (exactly 8 × payload words).
    pub data_body_bytes: AtomicU64,
    /// Control frames sent (bootstrap, triggers, acks, shutdown).
    pub control_frames: AtomicU64,
    /// Total bytes of control frames, headers included.
    pub control_bytes: AtomicU64,
}

impl WireCounters {
    /// Fresh zeroed counters behind an [`Arc`] for sharing across links.
    pub fn shared() -> Arc<WireCounters> {
        Arc::new(WireCounters::default())
    }

    /// Records one sent frame.
    pub fn record(&self, frame: &Frame) {
        if frame.is_data() {
            self.data_frames.fetch_add(1, Ordering::Relaxed);
            self.data_header_bytes
                .fetch_add(HEADER_BYTES, Ordering::Relaxed);
            self.data_desc_bytes
                .fetch_add(frame.desc.len() as u64, Ordering::Relaxed);
            self.data_body_bytes
                .fetch_add(frame.body.len() as u64, Ordering::Relaxed);
        } else {
            self.control_frames.fetch_add(1, Ordering::Relaxed);
            self.control_bytes
                .fetch_add(frame.wire_bytes(), Ordering::Relaxed);
        }
    }

    /// A point-in-time snapshot for reporting and assertions.
    pub fn snapshot(&self) -> WireStats {
        WireStats {
            data_frames: self.data_frames.load(Ordering::Relaxed),
            data_header_bytes: self.data_header_bytes.load(Ordering::Relaxed),
            data_desc_bytes: self.data_desc_bytes.load(Ordering::Relaxed),
            data_body_bytes: self.data_body_bytes.load(Ordering::Relaxed),
            control_frames: self.control_frames.load(Ordering::Relaxed),
            control_bytes: self.control_bytes.load(Ordering::Relaxed),
        }
    }
}

/// A snapshot of [`WireCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireStats {
    /// Ledger-charged frames sent.
    pub data_frames: u64,
    /// Header bytes of data frames.
    pub data_header_bytes: u64,
    /// Descriptor bytes of data frames.
    pub data_desc_bytes: u64,
    /// Body bytes of data frames.
    pub data_body_bytes: u64,
    /// Control frames sent.
    pub control_frames: u64,
    /// Total control-frame bytes.
    pub control_bytes: u64,
}

impl WireStats {
    /// Every byte that crossed a socket.
    pub fn total_bytes(&self) -> u64 {
        self.data_header_bytes + self.data_desc_bytes + self.data_body_bytes + self.control_bytes
    }

    /// Body words of data frames (`data_body_bytes / 8`; bodies are always
    /// whole words by the codec invariant).
    pub fn data_body_words(&self) -> u64 {
        self.data_body_bytes / 8
    }

    /// Counter deltas between two snapshots (`self` taken after `earlier`).
    pub fn since(&self, earlier: &WireStats) -> WireStats {
        WireStats {
            data_frames: self.data_frames - earlier.data_frames,
            data_header_bytes: self.data_header_bytes - earlier.data_header_bytes,
            data_desc_bytes: self.data_desc_bytes - earlier.data_desc_bytes,
            data_body_bytes: self.data_body_bytes - earlier.data_body_bytes,
            control_frames: self.control_frames - earlier.control_frames,
            control_bytes: self.control_bytes - earlier.control_bytes,
        }
    }
}

/// Writes a frame to a stream and charges it to the counters. Every send
/// in the crate goes through here so each byte is counted exactly once.
/// The frame is recorded **before** the write: a receiver can then never
/// observe bytes whose counting is still pending on the sender's thread,
/// so a counter snapshot taken after a reply arrives is always complete.
/// (A failed write leaves the frame counted, but a failed write also kills
/// the whole protocol run — the audit never reads those counters.)
pub fn send_frame(
    w: &mut impl Write,
    counters: &WireCounters,
    frame: &Frame,
) -> Result<(), NetError> {
    counters.record(frame);
    frame.write_to(w)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::MsgType;

    #[test]
    fn counters_split_by_classification() {
        let c = WireCounters::default();
        let mut sink = Vec::new();
        let data = Frame::data(MsgType::Reply, 0, 1, vec![1, 2, 3, 4], vec![0; 24]);
        let ctrl = Frame::control(MsgType::Ack, 0, 1);
        send_frame(&mut sink, &c, &data).unwrap();
        send_frame(&mut sink, &c, &ctrl).unwrap();
        let s = c.snapshot();
        assert_eq!(s.data_frames, 1);
        assert_eq!(s.data_header_bytes, 24);
        assert_eq!(s.data_desc_bytes, 4);
        assert_eq!(s.data_body_bytes, 24);
        assert_eq!(s.data_body_words(), 3);
        assert_eq!(s.control_frames, 1);
        assert_eq!(s.control_bytes, 24);
        assert_eq!(s.total_bytes(), sink.len() as u64);
    }

    #[test]
    fn snapshot_deltas() {
        let c = WireCounters::default();
        let mut sink = Vec::new();
        send_frame(&mut sink, &c, &Frame::control(MsgType::Ready, 1, 0)).unwrap();
        let before = c.snapshot();
        send_frame(
            &mut sink,
            &c,
            &Frame::data(MsgType::Broadcast, 0, 2, vec![], vec![0; 8]),
        )
        .unwrap();
        let delta = c.snapshot().since(&before);
        assert_eq!(delta.control_frames, 0);
        assert_eq!(delta.data_frames, 1);
        assert_eq!(delta.data_body_words(), 1);
    }
}
