//! Type-erased collective jobs.
//!
//! A [`Collectives`](dlra_comm::Collectives) call site captures typed
//! closures (`compute`, `merge`, `on_receive`), but a server process only
//! sees frames of bytes. A [`NetJob`] erases the types at the byte
//! boundary: it decodes a frame's payload with the `dlra-comm` wire codec,
//! runs the typed closure, and re-encodes the result. Because the codec is
//! bit-exact (f64 words round-trip by bits), the decode → compute → encode
//! path produces byte-for-byte the same blocks a fully typed substrate
//! would, so results stay bit-identical to the sequential reference.
//!
//! Jobs are resolved per frame through a [`JobResolver`]:
//!
//! * in **loopback** mode every server thread shares the coordinator's
//!   [`JobRegistry`] and resolves by the frame's `job_id` — the closures
//!   themselves never cross the sockets, only payload bytes do, exactly as
//!   the threaded substrate ships closures to workers for free;
//! * in **remote** mode (separate processes) closures cannot cross at all,
//!   so the server binary resolves the frame's `seq` op code against a
//!   static table of pre-agreed jobs ([`crate::remote`]).

use crate::frame::NetError;
use dlra_comm::wire::{decode_value, encode_value, Wire};
use dlra_util::sync::MutexExt;
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Encoded payload: `(descriptor, body)` as produced by
/// [`dlra_comm::wire::encode_value`].
pub type Encoded = (Vec<u8>, Vec<u8>);

/// Invariance marker for a job's request/reply types: the job neither
/// stores nor produces a `Q`/`T`, but its wire behavior is fixed by them.
type Marker<Q, T> = PhantomData<fn(Q, T) -> (Q, T)>;

/// One collective's server-side behavior, erased to the byte level.
///
/// Methods the job does not participate in return a typed protocol error
/// by default, so a mis-routed frame can never call into the wrong closure.
pub trait NetJob<L>: Send + Sync {
    /// Applies a broadcast payload to one server's local state.
    fn deliver(&self, t: usize, local: &mut L, desc: &[u8], body: &[u8]) -> Result<(), NetError> {
        let _ = (t, local, desc, body);
        Err(NetError::Protocol {
            what: "job does not accept broadcasts",
            detail: String::new(),
        })
    }

    /// Computes this server's block (gather reply, query reply, or
    /// reduction leaf), optionally from an encoded request payload.
    fn make_block(
        &self,
        t: usize,
        local: &mut L,
        request: Option<(&[u8], &[u8])>,
    ) -> Result<Encoded, NetError> {
        let _ = (t, local, request);
        Err(NetError::Protocol {
            what: "job does not produce blocks",
            detail: String::new(),
        })
    }

    /// Merges an encoded source block into an encoded destination block
    /// (a combining-tree step). Decode → typed merge → re-encode; the
    /// bit-exact codec makes the result identical to a typed merge.
    fn merge_blocks(&self, dst: Encoded, src: (&[u8], &[u8])) -> Result<Encoded, NetError> {
        let _ = (dst, src);
        Err(NetError::Protocol {
            what: "job does not merge blocks",
            detail: String::new(),
        })
    }
}

/// Decodes an optional request payload.
fn decode_request<Q: Wire>(request: Option<(&[u8], &[u8])>) -> Result<Q, NetError> {
    let (desc, body) = request.ok_or(NetError::Protocol {
        what: "job requires a request payload",
        detail: String::new(),
    })?;
    Ok(decode_value::<Q>(desc, body)?)
}

/// Broadcast: decode the message, let the server observe it.
pub struct BroadcastJob<T, F> {
    on_receive: F,
    _t: PhantomData<fn(T) -> T>,
}

impl<T, F> BroadcastJob<T, F> {
    /// Wraps a broadcast `on_receive` closure.
    pub fn new(on_receive: F) -> Self {
        BroadcastJob {
            on_receive,
            _t: PhantomData,
        }
    }
}

impl<L, T, F> NetJob<L> for BroadcastJob<T, F>
where
    T: Wire + Send + 'static,
    F: Fn(usize, &mut L, &T) + Send + Sync + 'static,
{
    fn deliver(&self, t: usize, local: &mut L, desc: &[u8], body: &[u8]) -> Result<(), NetError> {
        let msg = decode_value::<T>(desc, body)?;
        (self.on_receive)(t, local, &msg);
        Ok(())
    }
}

/// Gather: compute a reply from local state alone.
pub struct GatherJob<T, F> {
    compute: F,
    _t: PhantomData<fn(T) -> T>,
}

impl<T, F> GatherJob<T, F> {
    /// Wraps a gather `compute` closure.
    pub fn new(compute: F) -> Self {
        GatherJob {
            compute,
            _t: PhantomData,
        }
    }
}

impl<L, T, F> NetJob<L> for GatherJob<T, F>
where
    T: Wire + Send + 'static,
    F: Fn(usize, &mut L) -> T + Send + Sync + 'static,
{
    fn make_block(
        &self,
        t: usize,
        local: &mut L,
        _request: Option<(&[u8], &[u8])>,
    ) -> Result<Encoded, NetError> {
        Ok(encode_value(&(self.compute)(t, local)))
    }
}

/// Query: decode the request, compute a reply.
pub struct QueryJob<Q, T, F> {
    compute: F,
    _q: Marker<Q, T>,
}

impl<Q, T, F> QueryJob<Q, T, F> {
    /// Wraps a `query_all` `compute` closure.
    pub fn new(compute: F) -> Self {
        QueryJob {
            compute,
            _q: PhantomData,
        }
    }
}

impl<L, Q, T, F> NetJob<L> for QueryJob<Q, T, F>
where
    Q: Wire + Send + 'static,
    T: Wire + Send + 'static,
    F: Fn(usize, &mut L, &Q) -> T + Send + Sync + 'static,
{
    fn make_block(
        &self,
        t: usize,
        local: &mut L,
        request: Option<(&[u8], &[u8])>,
    ) -> Result<Encoded, NetError> {
        let q = decode_request::<Q>(request)?;
        Ok(encode_value(&(self.compute)(t, local, &q)))
    }
}

/// Single-server query: the closure is `FnOnce`, consumed on first use.
pub struct QueryServerJob<Q, T, F> {
    compute: Mutex<Option<F>>,
    _q: Marker<Q, T>,
}

impl<Q, T, F> QueryServerJob<Q, T, F> {
    /// Wraps a `query_server` `compute` closure.
    pub fn new(compute: F) -> Self {
        QueryServerJob {
            compute: Mutex::new(Some(compute)),
            _q: PhantomData,
        }
    }
}

impl<L, Q, T, F> NetJob<L> for QueryServerJob<Q, T, F>
where
    Q: Wire + Send + 'static,
    T: Wire + Send + 'static,
    F: FnOnce(&mut L, &Q) -> T + Send + 'static,
{
    fn make_block(
        &self,
        _t: usize,
        local: &mut L,
        request: Option<(&[u8], &[u8])>,
    ) -> Result<Encoded, NetError> {
        let q = decode_request::<Q>(request)?;
        let compute = self
            .compute
            .lock_recover()
            .take()
            .ok_or(NetError::Protocol {
                what: "single-server query delivered twice",
                detail: String::new(),
            })?;
        Ok(encode_value(&compute(local, &q)))
    }
}

/// Topology-routed reduction: leaf blocks plus combining-tree merges.
pub struct ReduceJob<T, F, M> {
    compute: F,
    merge: M,
    _t: PhantomData<fn(T) -> T>,
}

impl<T, F, M> ReduceJob<T, F, M> {
    /// Wraps an `aggregate_topo` compute/merge pair.
    pub fn new(compute: F, merge: M) -> Self {
        ReduceJob {
            compute,
            merge,
            _t: PhantomData,
        }
    }
}

impl<L, T, F, M> NetJob<L> for ReduceJob<T, F, M>
where
    T: Wire + Send + 'static,
    F: Fn(usize, &mut L) -> T + Send + Sync + 'static,
    M: Fn(&mut T, T) + Send + Sync + 'static,
{
    fn make_block(
        &self,
        t: usize,
        local: &mut L,
        _request: Option<(&[u8], &[u8])>,
    ) -> Result<Encoded, NetError> {
        Ok(encode_value(&(self.compute)(t, local)))
    }

    fn merge_blocks(&self, dst: Encoded, src: (&[u8], &[u8])) -> Result<Encoded, NetError> {
        let mut d = decode_value::<T>(&dst.0, &dst.1)?;
        let s = decode_value::<T>(src.0, src.1)?;
        (self.merge)(&mut d, s);
        Ok(encode_value(&d))
    }
}

/// Request-driven reduction (`query_aggregate`): like [`ReduceJob`] but the
/// leaf compute also sees the broadcast request.
pub struct QueryReduceJob<Q, T, F, M> {
    compute: F,
    merge: M,
    _q: Marker<Q, T>,
}

impl<Q, T, F, M> QueryReduceJob<Q, T, F, M> {
    /// Wraps a `query_aggregate` compute/merge pair.
    pub fn new(compute: F, merge: M) -> Self {
        QueryReduceJob {
            compute,
            merge,
            _q: PhantomData,
        }
    }
}

impl<L, Q, T, F, M> NetJob<L> for QueryReduceJob<Q, T, F, M>
where
    Q: Wire + Send + 'static,
    T: Wire + Send + 'static,
    F: Fn(usize, &mut L, &Q) -> T + Send + Sync + 'static,
    M: Fn(&mut T, T) + Send + Sync + 'static,
{
    fn make_block(
        &self,
        t: usize,
        local: &mut L,
        request: Option<(&[u8], &[u8])>,
    ) -> Result<Encoded, NetError> {
        let q = decode_request::<Q>(request)?;
        Ok(encode_value(&(self.compute)(t, local, &q)))
    }

    fn merge_blocks(&self, dst: Encoded, src: (&[u8], &[u8])) -> Result<Encoded, NetError> {
        let mut d = decode_value::<T>(&dst.0, &dst.1)?;
        let s = decode_value::<T>(src.0, src.1)?;
        (self.merge)(&mut d, s);
        Ok(encode_value(&d))
    }
}

/// Maps an incoming frame to the job that handles it.
pub trait JobResolver<L>: Send + Sync {
    /// Resolves by the frame's `job_id` (loopback) or `seq` op code
    /// (remote); `None` is a protocol violation the node reports back.
    fn resolve(&self, job_id: u64, op: u32) -> Option<Arc<dyn NetJob<L>>>;
}

/// The coordinator's live-job table for loopback clusters: jobs register
/// before the first frame of their collective is sent and deregister after
/// the collective completes, so resolution never races.
pub struct JobRegistry<L> {
    jobs: Mutex<HashMap<u64, Arc<dyn NetJob<L>>>>,
    next_id: AtomicU64,
}

impl<L> Default for JobRegistry<L> {
    fn default() -> Self {
        JobRegistry {
            jobs: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
        }
    }
}

impl<L> JobRegistry<L> {
    /// An empty registry.
    pub fn new() -> Self {
        JobRegistry::default()
    }

    /// Registers a job and returns its fresh id.
    pub fn register(&self, job: Arc<dyn NetJob<L>>) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.jobs.lock_recover().insert(id, job);
        id
    }

    /// Drops a completed job.
    pub fn remove(&self, id: u64) {
        self.jobs.lock_recover().remove(&id);
    }
}

impl<L> JobResolver<L> for JobRegistry<L> {
    fn resolve(&self, job_id: u64, _op: u32) -> Option<Arc<dyn NetJob<L>>> {
        self.jobs.lock_recover().get(&job_id).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_job_roundtrips_message() {
        let job = BroadcastJob::new(|_t, local: &mut Vec<f64>, m: &f64| local.push(*m));
        let (desc, body) = encode_value(&2.5f64);
        let mut local = vec![1.0];
        NetJob::<Vec<f64>>::deliver(&job, 1, &mut local, &desc, &body).unwrap();
        assert_eq!(local, vec![1.0, 2.5]);
    }

    #[test]
    fn reduce_job_merges_byte_blocks_bit_exactly() {
        let job = ReduceJob::new(
            |t: usize, local: &mut Vec<f64>| local[0] + t as f64,
            |acc: &mut f64, r: f64| *acc += r,
        );
        let mut l0 = vec![0.1];
        let mut l1 = vec![0.2];
        let a = NetJob::<Vec<f64>>::make_block(&job, 0, &mut l0, None).unwrap();
        let b = NetJob::<Vec<f64>>::make_block(&job, 1, &mut l1, None).unwrap();
        let merged = NetJob::<Vec<f64>>::merge_blocks(&job, a, (&b.0, &b.1)).unwrap();
        let v = decode_value::<f64>(&merged.0, &merged.1).unwrap();
        assert_eq!(v.to_bits(), (0.1f64 + (0.2f64 + 1.0)).to_bits());
    }

    #[test]
    fn query_server_job_consumed_once() {
        let job = QueryServerJob::new(|local: &mut Vec<f64>, &j: &usize| local[j]);
        let (desc, body) = encode_value(&0usize);
        let mut local = vec![7.0];
        let first = NetJob::<Vec<f64>>::make_block(&job, 1, &mut local, Some((&desc, &body)));
        assert!(first.is_ok());
        let second = NetJob::<Vec<f64>>::make_block(&job, 1, &mut local, Some((&desc, &body)));
        assert!(matches!(second, Err(NetError::Protocol { .. })));
    }

    #[test]
    fn misrouted_frames_yield_typed_errors() {
        let job = GatherJob::new(|_t, local: &mut Vec<f64>| local[0]);
        let mut local = vec![0.0];
        let err = NetJob::<Vec<f64>>::deliver(&job, 0, &mut local, &[], &[]).unwrap_err();
        assert!(matches!(err, NetError::Protocol { .. }));
        let err = NetJob::<Vec<f64>>::merge_blocks(&job, (vec![], vec![]), (&[], &[])).unwrap_err();
        assert!(matches!(err, NetError::Protocol { .. }));
    }

    #[test]
    fn registry_registers_and_removes() {
        let reg = JobRegistry::<Vec<f64>>::new();
        let id = reg.register(Arc::new(GatherJob::new(|_t, l: &mut Vec<f64>| l[0])));
        assert!(reg.resolve(id, 0).is_some());
        reg.remove(id);
        assert!(reg.resolve(id, 0).is_none());
    }
}
