//! `dlra-net`: the networked collectives substrate — the paper's `s`
//! servers as real participants over TCP.
//!
//! The sequential [`dlra_comm::Cluster`] simulates the distributed model
//! in one thread; `dlra-runtime`'s `ThreadedCluster` runs it on worker
//! threads with typed channels. This crate completes the progression:
//! servers behind genuine sockets, every payload serialized through the
//! bit-exact `dlra-comm` wire codec, and combining-tree hops as real
//! server → server connections. Layers:
//!
//! * [`frame`] — the length-prefixed wire protocol: a 24-byte header,
//!   a descriptor (shape metadata, never ledger-charged), and a body of
//!   exactly 8 bytes per charged payload word. Malformed input yields
//!   typed [`frame::NetError`]s, never panics.
//! * [`counters`] — send-side byte accounting, split data vs control, so
//!   tests reconcile bytes-on-the-wire against the [`dlra_comm::Ledger`]
//!   with zero unexplained bytes.
//! * [`registry`] — type-erased collective jobs: decode → typed closure →
//!   re-encode, bit-identical by codec exactness.
//! * [`node`] — the server event loop (bootstrap handshake, collective
//!   frames, tree-hop exchanges), shared by loopback threads and the
//!   `dlra-net-server` binary.
//! * [`cluster`] — [`SocketCluster`], the coordinator: implements
//!   [`dlra_comm::Collectives`] with bit-identical results and exact
//!   ledger parity against the sequential and threaded substrates.
//! * [`remote`] — the static op table and coordinator for servers in
//!   separate processes, where closures cannot travel.
//! * [`nonblocking`] (feature `nonblocking`) — a poll-based reply fan-in
//!   that multiplexes all server links without external event libraries.
//!
//! This crate reads **no environment variables**: substrate selection
//! (`DLRA_SUBSTRATE`) lives in the runtime layer per the determinism
//! contract, and the server binary is configured by argv alone.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod counters;
pub mod frame;
pub mod node;
#[cfg(feature = "nonblocking")]
pub mod nonblocking;
pub mod registry;
pub mod remote;

pub use cluster::SocketCluster;
pub use counters::{WireCounters, WireStats};
pub use frame::{Frame, MsgType, NetError, OverloadedFrame};
pub use node::{run_node, NodeConfig};
pub use registry::{JobRegistry, JobResolver, NetJob};
