//! [`SocketCluster`]: the networked message-passing substrate.
//!
//! Each of the `s` servers runs the [`crate::node`] event loop behind a
//! real TCP socket; the coordinator (this struct, server `0`) drives every
//! collective by exchanging frames with them. In the default **loopback**
//! harness the server loops run on threads inside this process and share
//! the coordinator's [`JobRegistry`], so arbitrary typed closures work
//! exactly as on `dlra-runtime`'s `ThreadedCluster` — but every payload
//! crosses a genuine socket as encoded bytes.
//!
//! ## Determinism and ledger parity
//!
//! The coordinator places replies by server index before using them,
//! charges the [`Ledger`] in server-index order after each fan-in, and
//! reductions replay the canonical [`TopologyPlan`] merge schedule — the
//! same discipline as the threaded substrate, so protocol outputs are
//! **bit-identical** to the sequential [`dlra_comm::Cluster`] and ledger
//! transcripts match exactly. The wire codec is bit-exact, so the
//! decode → compute → encode round trips change nothing.
//!
//! ## Byte accounting
//!
//! Every frame leaving any socket is recorded in the cluster's shared
//! [`WireCounters`] at the send side. Data-frame bodies are exactly
//! 8 bytes per charged payload word, making total wire bytes an affine
//! function of ledger words — see `tests/wire_audit.rs`.

use crate::counters::{send_frame, WireCounters, WireStats};
use crate::frame::{
    decode_error_frame, decode_hop_desc, Frame, MsgType, NetError, Roster, FLAG_HAS_REQUEST,
};
use crate::node::{run_node, NodeConfig};
use crate::registry::{
    BroadcastJob, Encoded, GatherJob, JobRegistry, JobResolver, NetJob, QueryJob, QueryReduceJob,
    QueryServerJob, ReduceJob,
};
use dlra_comm::ledger::Direction;
use dlra_comm::wire::{decode_value, encode_value, Wire};
use dlra_comm::{Collectives, Ledger, Topology, TopologyPlan};
use dlra_util::sync::MutexExt;
use std::collections::BTreeMap;
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Per-edge word logs of one reduction, keyed by `(sender, receiver)` —
/// what [`charge_reduce`] reconciles against the plan's hop set.
type HopRecords = BTreeMap<(usize, usize), u64>;

/// A cluster of `s` servers reached over TCP, implementing
/// [`Collectives`]. Server `0` is the coordinator (this process/thread).
///
/// ```
/// use dlra_comm::Collectives;
/// use dlra_net::SocketCluster;
/// let mut c = SocketCluster::new(vec![vec![1.0f64, 2.0], vec![3.0, 4.0]]);
/// let sums = c.gather("demo", |_t, local: &mut Vec<f64>| local.iter().sum::<f64>());
/// assert_eq!(sums, vec![3.0, 7.0]);
/// // Same ledger transcript as the sequential and threaded substrates.
/// assert_eq!(c.comm().upstream_words, 2);
/// ```
pub struct SocketCluster<L> {
    /// Per-server local state; `[0]` is the coordinator's own.
    states: Vec<Arc<Mutex<L>>>,
    /// Coordinator ↔ server links, indexed `t - 1`.
    links: Vec<TcpStream>,
    registry: Arc<JobRegistry<L>>,
    counters: Arc<WireCounters>,
    ledger: Ledger,
    topology: Topology,
    handles: Vec<JoinHandle<Result<(), NetError>>>,
}

impl<L: Send + 'static> SocketCluster<L> {
    /// Boots a loopback cluster: one server thread per non-coordinator
    /// local state, each dialing back over `127.0.0.1`. Reductions route
    /// over the default [`Topology::Star`].
    pub fn new(locals: Vec<L>) -> Self {
        Self::with_topology(locals, Topology::Star)
    }

    /// Like [`SocketCluster::new`] but routing reduction collectives over
    /// `topology` — tree hops become real server → server socket sends.
    pub fn with_topology(locals: Vec<L>, topology: Topology) -> Self {
        Self::with_options(locals, topology, WireCounters::shared())
    }

    /// Full-control constructor: inject shared [`WireCounters`] so a test
    /// or bench can observe every byte the cluster puts on the wire.
    pub fn with_options(locals: Vec<L>, topology: Topology, counters: Arc<WireCounters>) -> Self {
        // Construction-time contract, identical to the sequential and
        // threaded substrates (`assert!` is outside the panic-policy
        // pattern set by design: contract checks are welcome).
        assert!(!locals.is_empty(), "cluster needs at least one server");
        let s = locals.len();
        let states: Vec<Arc<Mutex<L>>> = locals
            .into_iter()
            .map(|l| Arc::new(Mutex::new(l)))
            .collect();
        let registry = Arc::new(JobRegistry::new());
        let mut handles = Vec::new();
        let links = if s > 1 {
            let listener = TcpListener::bind("127.0.0.1:0")
                // dlra-allow(panic-policy): binding an ephemeral loopback
                // port fails only on resource exhaustion at construction,
                // before any query exists to resolve to a typed error.
                .expect("bind coordinator listener");
            let addr = listener
                .local_addr()
                // dlra-allow(panic-policy): a bound listener has an address.
                .expect("coordinator listener address");
            for (t, state) in states.iter().enumerate().skip(1) {
                let cfg = NodeConfig {
                    coordinator: addr.to_string(),
                    server_id: t,
                    state: Arc::clone(state),
                    resolver: Arc::clone(&registry) as Arc<dyn JobResolver<L>>,
                    counters: Arc::clone(&counters),
                };
                let handle = std::thread::Builder::new()
                    .name(format!("dlra-net-server-{t}"))
                    .spawn(move || run_node(cfg))
                    // dlra-allow(panic-policy): spawn fails only on OS
                    // thread exhaustion during construction.
                    .expect("spawn server node thread");
                handles.push(handle);
            }
            bootstrap_coordinator(&listener, s, topology, &counters)
                // dlra-allow(panic-policy): a failed bootstrap leaves no
                // cluster to return; construction cannot proceed.
                .expect("bootstrap socket cluster")
        } else {
            Vec::new()
        };
        SocketCluster {
            states,
            links,
            registry,
            counters,
            ledger: Ledger::new(),
            topology,
            handles,
        }
    }

    /// The shared byte counters (same set every server thread charges).
    pub fn counters(&self) -> &Arc<WireCounters> {
        &self.counters
    }

    /// Snapshot of bytes on the wire so far.
    pub fn wire_stats(&self) -> WireStats {
        self.counters.snapshot()
    }

    /// Kernel-thread share per server (same budget split as the threaded
    /// substrate; never changes results).
    fn share(&self) -> usize {
        (dlra_linalg::threads() / self.states.len()).max(1)
    }

    /// Runs a job step against the coordinator's own local state through
    /// the same byte-level path the servers use.
    fn run_own<R>(&self, f: impl FnOnce(&mut L) -> Result<R, NetError>) -> R {
        let share = self.share();
        dlra_linalg::with_threads(share, || {
            let mut local = self.states[0].lock_recover();
            f(&mut local)
        })
        // dlra-allow(panic-policy): the coordinator's own closures only
        // fail on codec bugs, which are unrecoverable mid-collective —
        // matching the threaded substrate's dead-worker semantics.
        .expect("coordinator-side job step")
    }

    /// Sends one frame to server `t`.
    fn send_to(&mut self, t: usize, frame: &Frame) {
        send_frame(&mut self.links[t - 1], &self.counters, frame)
            // dlra-allow(panic-policy): a dead server mid-protocol is
            // unrecoverable for this query; unwind like the threaded
            // substrate does when a worker thread dies.
            .expect("server link closed mid-collective");
    }

    /// Receives one frame from server `t` and validates it.
    fn recv_from(&mut self, t: usize, expected: MsgType, job_id: u64) -> Frame {
        let frame = Frame::read_from(&mut self.links[t - 1])
            // dlra-allow(panic-policy): see `send_to`.
            .expect("server link closed mid-collective");
        validate_reply(t, frame, expected, job_id)
    }

    /// One expected frame from every server `1..s`, returned in
    /// server-index order. With the `nonblocking` feature the links are
    /// polled concurrently; the blocking default reads them in index
    /// order. Either way replies land in index-ordered slots before any
    /// ledger charge, so the transcript is identical.
    fn collect_one_per_link(&mut self, expected: MsgType, job_id: u64) -> Vec<Frame> {
        #[cfg(feature = "nonblocking")]
        {
            let frames = crate::nonblocking::poll_one_frame_per_link(&mut self.links)
                // dlra-allow(panic-policy): see `send_to`.
                .expect("server link closed mid-collective");
            frames
                .into_iter()
                .enumerate()
                .map(|(i, f)| validate_reply(i + 1, f, expected, job_id))
                .collect()
        }
        #[cfg(not(feature = "nonblocking"))]
        {
            (1..self.states.len())
                .map(|t| self.recv_from(t, expected, job_id))
                .collect()
        }
    }

    /// Drives the root side of a topology-routed reduction and charges the
    /// canonical transcript.
    fn reduce_at_root<T: Wire>(
        &mut self,
        job: &dyn NetJob<L>,
        job_id: u64,
        own: Encoded,
        plan: &TopologyPlan,
        label: &'static str,
        first_round_started: bool,
    ) -> T {
        let (block, records) = root_reduce(job, job_id, own, plan, &mut self.links)
            // dlra-allow(panic-policy): see `send_to`.
            .expect("reduction failed mid-collective");
        charge_reduce(&self.ledger, plan, &records, label, first_round_started)
            // dlra-allow(panic-policy): a missing hop record means a server
            // died mid-reduction; the root read above would have failed
            // first unless the plan was violated, which is unrecoverable.
            .expect("hop record for every plan edge");
        decode_value(&block.0, &block.1)
            // dlra-allow(panic-policy): the root block was produced by this
            // job's own encoder; failure is a codec bug.
            .expect("decode reduction root block")
    }
}

impl<L: Send + 'static> Collectives<L> for SocketCluster<L> {
    fn num_servers(&self) -> usize {
        self.states.len()
    }

    fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    fn topology(&self) -> Topology {
        self.topology
    }

    fn with_local<R>(&self, t: usize, f: impl FnOnce(&L) -> R) -> R {
        let guard = self.states[t].lock_recover();
        f(&guard)
    }

    fn with_local_mut<R>(&mut self, t: usize, f: impl FnOnce(&mut L) -> R) -> R {
        let mut guard = self.states[t].lock_recover();
        f(&mut guard)
    }

    fn broadcast<T, F>(&mut self, msg: &T, label: &'static str, on_receive: F)
    where
        T: Wire + Clone + Send + 'static,
        F: Fn(usize, &mut L, &T) + Send + Sync + 'static,
    {
        let s = self.states.len();
        self.ledger.next_round();
        let words = msg.words();
        for t in 1..s {
            self.ledger.charge(t, Direction::Downstream, words, label);
        }
        let job: Arc<dyn NetJob<L>> = Arc::new(BroadcastJob::new(on_receive));
        let job_id = self.registry.register(Arc::clone(&job));
        let (desc, body) = encode_value(msg);
        for t in 1..s {
            let frame = Frame::data(MsgType::Broadcast, 0, job_id, desc.clone(), body.clone());
            self.send_to(t, &frame);
        }
        // The coordinator's own state observes the message through the
        // same decode path the servers use — bit-identical by the codec.
        self.run_own(|local| job.deliver(0, local, &desc, &body));
        self.collect_one_per_link(MsgType::Ack, job_id);
        self.registry.remove(job_id);
    }

    fn gather<T, F>(&mut self, label: &'static str, compute: F) -> Vec<T>
    where
        T: Wire + Send + 'static,
        F: Fn(usize, &mut L) -> T + Send + Sync + 'static,
    {
        let s = self.states.len();
        self.ledger.next_round();
        let job: Arc<dyn NetJob<L>> = Arc::new(GatherJob::new(compute));
        let job_id = self.registry.register(Arc::clone(&job));
        for t in 1..s {
            self.send_to(t, &Frame::control(MsgType::RunGather, 0, job_id));
        }
        let own = self.run_own(|local| job.make_block(0, local, None));
        let frames = self.collect_one_per_link(MsgType::Reply, job_id);
        self.registry.remove(job_id);
        let mut out: Vec<T> = Vec::with_capacity(s);
        out.push(decode_own(&own));
        for (t, f) in frames.iter().enumerate() {
            out.push(
                decode_value(&f.desc, &f.body)
                    // dlra-allow(panic-policy): a malformed reply means the
                    // server and coordinator disagree on the codec, which
                    // is unrecoverable mid-collective.
                    .unwrap_or_else(|e| panic!("decode reply from server {}: {e}", t + 1)),
            );
        }
        for (t, reply) in out.iter().enumerate().skip(1) {
            self.ledger
                .charge(t, Direction::Upstream, reply.words(), label);
        }
        out
    }

    fn query_all<Q, T, F>(&mut self, request: &Q, label: &'static str, compute: F) -> Vec<T>
    where
        Q: Wire + Clone + Send + 'static,
        T: Wire + Send + 'static,
        F: Fn(usize, &mut L, &Q) -> T + Send + Sync + 'static,
    {
        let s = self.states.len();
        self.ledger.next_round();
        let request_words = request.words();
        for t in 1..s {
            self.ledger
                .charge(t, Direction::Downstream, request_words, label);
        }
        let job: Arc<dyn NetJob<L>> = Arc::new(QueryJob::new(compute));
        let job_id = self.registry.register(Arc::clone(&job));
        let (desc, body) = encode_value(request);
        for t in 1..s {
            let frame = Frame::data(MsgType::Query, 0, job_id, desc.clone(), body.clone());
            self.send_to(t, &frame);
        }
        let own = self.run_own(|local| job.make_block(0, local, Some((&desc, &body))));
        let frames = self.collect_one_per_link(MsgType::Reply, job_id);
        self.registry.remove(job_id);
        let mut out: Vec<T> = Vec::with_capacity(s);
        out.push(decode_own(&own));
        for (t, f) in frames.iter().enumerate() {
            out.push(
                decode_value(&f.desc, &f.body)
                    // dlra-allow(panic-policy): codec disagreement is
                    // unrecoverable mid-collective.
                    .unwrap_or_else(|e| panic!("decode reply from server {}: {e}", t + 1)),
            );
        }
        for (t, reply) in out.iter().enumerate().skip(1) {
            self.ledger
                .charge(t, Direction::Upstream, reply.words(), label);
        }
        out
    }

    fn query_server<Q, T, F>(&mut self, t: usize, request: &Q, label: &'static str, compute: F) -> T
    where
        Q: Wire + Clone + Send + 'static,
        T: Wire + Send + 'static,
        F: FnOnce(&mut L, &Q) -> T + Send + 'static,
    {
        let job = QueryServerJob::new(compute);
        let (desc, body) = encode_value(request);
        if t == 0 {
            // Coordinator ↔ its own state: free, but still through the
            // byte path so results can't depend on the substrate.
            let own =
                self.run_own(|local| NetJob::<L>::make_block(&job, 0, local, Some((&desc, &body))));
            return decode_own(&own);
        }
        self.ledger
            .charge(t, Direction::Downstream, request.words(), label);
        let job: Arc<dyn NetJob<L>> = Arc::new(job);
        let job_id = self.registry.register(Arc::clone(&job));
        self.send_to(t, &Frame::data(MsgType::QueryServer, 0, job_id, desc, body));
        let frame = self.recv_from(t, MsgType::Reply, job_id);
        self.registry.remove(job_id);
        let reply: T = decode_value(&frame.desc, &frame.body)
            // dlra-allow(panic-policy): codec disagreement is
            // unrecoverable mid-collective.
            .unwrap_or_else(|e| panic!("decode reply from server {t}: {e}"));
        self.ledger
            .charge(t, Direction::Upstream, reply.words(), label);
        reply
    }

    fn aggregate_topo<T, F, M>(&mut self, label: &'static str, compute: F, merge: M) -> T
    where
        T: Wire + Send + 'static,
        F: Fn(usize, &mut L) -> T + Send + Sync + 'static,
        M: Fn(&mut T, T) + Send + Sync + 'static,
    {
        let s = self.states.len();
        let plan = TopologyPlan::new(self.topology, s);
        let job: Arc<dyn NetJob<L>> = Arc::new(ReduceJob::new(compute, merge));
        let job_id = self.registry.register(Arc::clone(&job));
        for t in 1..s {
            // Bare trigger: free, like shipping a closure to a worker.
            self.send_to(t, &Frame::control(MsgType::RunReduce, 0, job_id));
        }
        let own = self.run_own(|local| job.make_block(0, local, None));
        let result = self.reduce_at_root(job.as_ref(), job_id, own, &plan, label, false);
        self.registry.remove(job_id);
        result
    }

    fn query_aggregate<Q, T, F, M>(
        &mut self,
        request: &Q,
        label: &'static str,
        compute: F,
        merge: M,
    ) -> T
    where
        Q: Wire + Clone + Send + 'static,
        T: Wire + Send + 'static,
        F: Fn(usize, &mut L, &Q) -> T + Send + Sync + 'static,
        M: Fn(&mut T, T) + Send + Sync + 'static,
    {
        let s = self.states.len();
        let plan = TopologyPlan::new(self.topology, s);
        self.ledger.next_round();
        let request_words = request.words();
        for t in 1..s {
            self.ledger
                .charge(t, Direction::Downstream, request_words, label);
        }
        let job: Arc<dyn NetJob<L>> = Arc::new(QueryReduceJob::new(compute, merge));
        let job_id = self.registry.register(Arc::clone(&job));
        let (desc, body) = encode_value(request);
        for t in 1..s {
            // The down-sweep request rides the reduce trigger: one charged
            // data frame, exactly the message the ledger just recorded.
            let mut frame = Frame::data(MsgType::RunReduce, 0, job_id, desc.clone(), body.clone());
            frame.flags |= FLAG_HAS_REQUEST;
            self.send_to(t, &frame);
        }
        let own = self.run_own(|local| job.make_block(0, local, Some((&desc, &body))));
        let result = self.reduce_at_root(job.as_ref(), job_id, own, &plan, label, true);
        self.registry.remove(job_id);
        result
    }
}

impl<L> Drop for SocketCluster<L> {
    fn drop(&mut self) {
        for link in &mut self.links {
            // The server may already be gone; shutdown is best-effort and
            // Drop must not panic.
            let _ = Frame::control(MsgType::Shutdown, 0, 0).write_to(link);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Decodes a coordinator-side block produced by `run_own`.
fn decode_own<T: Wire>(own: &Encoded) -> T {
    decode_value(&own.0, &own.1)
        // dlra-allow(panic-policy): the block was produced by this job's
        // own encoder in this process; failure is a codec bug.
        .expect("decode coordinator-side block")
}

/// Validates a reply frame from server `t`, panicking with the server's
/// own diagnostics when it reported a typed error.
fn validate_reply(t: usize, frame: Frame, expected: MsgType, job_id: u64) -> Frame {
    if frame.msg_type == MsgType::Error {
        // dlra-allow(panic-policy): the server reported an unrecoverable
        // failure; unwind like the threaded substrate's dead worker.
        panic!("server {t} failed: {}", decode_error_frame(&frame));
    }
    // A mis-sequenced frame is a protocol bug, unrecoverable
    // mid-collective.
    assert!(
        frame.msg_type == expected && frame.job_id == job_id,
        "server {t} sent {:?} job {} (wanted {expected:?} job {job_id})",
        frame.msg_type,
        frame.job_id
    );
    frame
}

/// Accepts `s − 1` server dial-ins, assembles the roster **ordered by each
/// server's advertised id** (deterministic regardless of connection
/// order), distributes it, and waits for every server's Ready. Returns
/// the coordinator ↔ server links indexed `t − 1`.
pub(crate) fn bootstrap_coordinator(
    listener: &TcpListener,
    s: usize,
    topology: Topology,
    counters: &WireCounters,
) -> Result<Vec<TcpStream>, NetError> {
    let mut slots: Vec<Option<(TcpStream, u16)>> = (0..s).map(|_| None).collect();
    for _ in 1..s {
        let (mut stream, _) = listener.accept()?;
        stream.set_nodelay(true)?;
        let hello = Frame::read_from(&mut stream)?;
        if hello.msg_type != MsgType::Hello {
            return Err(NetError::Protocol {
                what: "expected hello",
                detail: format!("got {:?}", hello.msg_type),
            });
        }
        let id = hello.seq as usize;
        if id == 0 || id >= s {
            return Err(NetError::Protocol {
                what: "server id out of range",
                detail: format!("id {id}, s {s}"),
            });
        }
        if slots[id].is_some() {
            return Err(NetError::Protocol {
                what: "duplicate server id",
                detail: format!("id {id}"),
            });
        }
        if hello.desc.len() != 2 {
            return Err(NetError::Truncated {
                what: "hello peer port",
                needed: 2,
                have: hello.desc.len(),
            });
        }
        let port = u16::from_le_bytes([hello.desc[0], hello.desc[1]]);
        slots[id] = Some((stream, port));
    }
    let mut links = Vec::with_capacity(s - 1);
    let mut peer_ports = vec![0u16; s];
    for (id, slot) in slots.into_iter().enumerate().skip(1) {
        let (stream, port) = slot.ok_or(NetError::Protocol {
            what: "missing server",
            detail: format!("id {id} never dialed in"),
        })?;
        peer_ports[id] = port;
        links.push(stream);
    }
    let roster = Roster {
        servers: s as u32,
        topology,
        peer_ports,
    }
    .to_frame();
    for link in &mut links {
        send_frame(link, counters, &roster)?;
    }
    for (i, link) in links.iter_mut().enumerate() {
        let ready = Frame::read_from(link)?;
        if ready.msg_type == MsgType::Error {
            return Err(decode_error_frame(&ready));
        }
        if ready.msg_type != MsgType::Ready {
            return Err(NetError::Protocol {
                what: "expected ready",
                detail: format!("server {}: got {:?}", i + 1, ready.msg_type),
            });
        }
    }
    Ok(links)
}

/// The root's side of a topology-routed reduction, byte-level: absorb
/// [`MsgType::HopBlock`] frames round by round from the links of senders
/// whose receiver is `0`, replay the canonical merges restricted to held
/// blocks, and collect one hop record per plan edge (carried subtree logs
/// plus the root's own derivations from `body_len / 8`).
pub(crate) fn root_reduce<L>(
    job: &dyn NetJob<L>,
    job_id: u64,
    own: Encoded,
    plan: &TopologyPlan,
    links: &mut [TcpStream],
) -> Result<(Encoded, HopRecords), NetError> {
    let mut records = HopRecords::new();
    let mut block = own;
    for (h, round) in plan.rounds().iter().enumerate() {
        let senders: Vec<usize> = round
            .hops
            .iter()
            .filter(|hop| hop.receiver == 0)
            .map(|hop| hop.sender)
            .collect();
        if senders.is_empty() {
            continue;
        }
        let mut held: BTreeMap<usize, Encoded> = BTreeMap::new();
        held.insert(0, block);
        for q in senders {
            let frame = Frame::read_from(&mut links[q - 1])?;
            if frame.msg_type == MsgType::Error {
                return Err(decode_error_frame(&frame));
            }
            if frame.msg_type != MsgType::HopBlock
                || frame.seq as usize != h
                || frame.job_id != job_id
            {
                return Err(NetError::Protocol {
                    what: "unexpected frame on root link",
                    detail: format!(
                        "server {q}: {:?} seq {} job {} (wanted hop round {h} job {job_id})",
                        frame.msg_type, frame.seq, frame.job_id
                    ),
                });
            }
            let (child_log, payload_desc) = decode_hop_desc(&frame.desc)?;
            for rec in child_log {
                records.insert((rec.round as usize, rec.sender as usize), rec.words);
            }
            records.insert((h, q), (frame.body.len() / 8) as u64);
            held.insert(q, (payload_desc.to_vec(), frame.body));
        }
        for step in &round.merges {
            if held.contains_key(&step.dst) && held.contains_key(&step.src) {
                let src = held.remove(&step.src).ok_or(NetError::Protocol {
                    what: "merge source vanished",
                    detail: format!("src {}", step.src),
                })?;
                let dst = held.remove(&step.dst).ok_or(NetError::Protocol {
                    what: "merge destination vanished",
                    detail: format!("dst {}", step.dst),
                })?;
                held.insert(step.dst, job.merge_blocks(dst, (&src.0, &src.1))?);
            }
        }
        block = held.remove(&0).ok_or(NetError::Protocol {
            what: "root lost its block in merge replay",
            detail: format!("round {h}"),
        })?;
    }
    Ok((block, records))
}

/// Replays the reference charging loop over a completed reduction's hop
/// records: per round, `next_round` (unless the collective already opened
/// round 0), then every hop in canonical plan order — the exact transcript
/// of `dlra-comm`'s sequential `reduce_blocks`.
pub(crate) fn charge_reduce(
    ledger: &Ledger,
    plan: &TopologyPlan,
    records: &HopRecords,
    label: &'static str,
    first_round_started: bool,
) -> Result<(), NetError> {
    for (h, round) in plan.rounds().iter().enumerate() {
        if h > 0 || !first_round_started {
            ledger.next_round();
        }
        for hop in &round.hops {
            let words = *records.get(&(h, hop.sender)).ok_or(NetError::Protocol {
                what: "missing hop record",
                detail: format!("round {h}, sender {}", hop.sender),
            })?;
            ledger.charge_hop(hop.sender, hop.receiver, Direction::Upstream, words, label);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlra_comm::ledger::FRAME_WORDS;
    use dlra_comm::Cluster;

    fn locals(s: usize, len: usize) -> Vec<Vec<f64>> {
        (0..s).map(|t| vec![t as f64; len]).collect()
    }

    /// A protocol exercising every collective, written once against the
    /// trait and run on every substrate.
    fn protocol<C: Collectives<Vec<f64>>>(c: &mut C) -> Vec<f64> {
        c.broadcast(&1.5f64, "p.bcast", |_t, local, &m| {
            for x in local.iter_mut() {
                *x += m;
            }
        });
        let mut out = c.gather("p.gather", |t, local| local[0] * (t + 1) as f64);
        let total = c.aggregate(
            "p.agg",
            |_t, local| local.iter().sum::<f64>(),
            |acc, r| *acc += r,
        );
        out.push(total);
        let picked = c.query_all(&2usize, "p.qa", |t, local, &j| local[j] + t as f64);
        out.extend(picked);
        let target = 1 % c.num_servers();
        out.push(c.query_server(target, &0usize, "p.qs", |local, &j| local[j]));
        out.push(c.aggregate_topo(
            "p.at",
            |t, local| local[0] * (t as f64 + 0.25),
            |acc, r| *acc += r,
        ));
        out.push(c.query_aggregate(
            &1usize,
            "p.qat",
            |t, local, &j| local[j] + (t as f64).sqrt(),
            |acc, r| *acc += r,
        ));
        out
    }

    #[test]
    fn matches_sequential_cluster_bit_for_bit() {
        for s in [1usize, 2, 4, 8] {
            let mut seq = Cluster::new(locals(s, 4));
            let mut net = SocketCluster::new(locals(s, 4));
            let a = protocol(&mut seq);
            let b = protocol(&mut net);
            assert_eq!(a, b, "results diverge at s = {s}");
            assert_eq!(
                Collectives::comm(&seq),
                Collectives::comm(&net),
                "ledgers diverge at s = {s}"
            );
        }
    }

    #[test]
    fn tree_routing_matches_sequential_tree_bit_for_bit() {
        for s in [1usize, 2, 4, 8, 9, 13] {
            let topology = Topology::Tree { fanout: 2 };
            let mut seq = Cluster::with_topology(locals(s, 4), topology);
            let mut net = SocketCluster::with_topology(locals(s, 4), topology);
            let a = protocol(&mut seq);
            let b = protocol(&mut net);
            assert_eq!(a, b, "results diverge at s = {s}");
            assert_eq!(
                Collectives::comm(&seq),
                Collectives::comm(&net),
                "ledgers diverge at s = {s}"
            );
        }
    }

    #[test]
    fn gather_charges_like_reference() {
        let mut c = SocketCluster::new(locals(3, 1));
        let replies = c.gather("g", |t, local: &mut Vec<f64>| local[0] + t as f64);
        assert_eq!(replies, vec![0.0, 2.0, 4.0]);
        assert_eq!(c.comm().upstream_words, 2 * (1 + FRAME_WORDS));
        assert_eq!(c.comm().messages, 2);
        assert_eq!(c.comm().rounds, 1);
    }

    #[test]
    fn every_data_frame_is_a_ledger_message() {
        let mut c = SocketCluster::new(locals(4, 4));
        protocol(&mut c);
        let stats = c.wire_stats();
        let comm = c.comm();
        assert_eq!(stats.data_frames, comm.messages, "frames vs messages");
        assert_eq!(
            stats.data_body_words() + FRAME_WORDS * stats.data_frames,
            comm.total_words(),
            "body words vs ledger words"
        );
    }

    #[test]
    fn with_local_mut_is_free() {
        let mut c = SocketCluster::new(locals(2, 1));
        c.with_local_mut(1, |l| l[0] = 42.0);
        assert_eq!(c.with_local(1, |l| l[0]), 42.0);
        assert_eq!(c.comm().total_words(), 0);
    }

    #[test]
    fn drop_shuts_servers_down_cleanly() {
        let c = SocketCluster::new(locals(4, 1));
        drop(c); // must not hang or panic
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_cluster_rejected() {
        let _ = SocketCluster::<Vec<f64>>::new(vec![]);
    }
}
