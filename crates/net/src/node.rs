//! The server-side event loop: one of the paper's `s` servers as a real
//! network participant.
//!
//! A node dials the coordinator, completes the bootstrap handshake
//! (Hello → Roster → peer links → Ready), then serves collective frames
//! until shutdown. During a topology-routed reduction it exchanges
//! [`MsgType::HopBlock`] frames directly with its tree peers — server →
//! server traffic that never touches the coordinator, mirroring the plan's
//! edges one TCP hop per charged hop.
//!
//! The same loop backs both deployment shapes: the loopback harness spawns
//! `run_node` on threads inside the coordinator process (sharing its
//! [`JobRegistry`](crate::registry::JobRegistry)), and the
//! `dlra-net-server` binary runs it in a separate process with the static
//! remote op table. Configuration arrives exclusively through
//! [`NodeConfig`] (the binary builds one from argv) — this crate reads no
//! environment variables, keeping the determinism contract's env reads in
//! the runtime layer.

use crate::counters::{send_frame, WireCounters};
use crate::frame::{
    decode_hop_desc, encode_hop_desc, error_frame, Frame, HopRecord, MsgType, NetError, Roster,
    FLAG_HAS_REQUEST,
};
use crate::registry::{Encoded, JobResolver, NetJob};
use dlra_comm::TopologyPlan;
use dlra_util::sync::MutexExt;
use std::collections::BTreeMap;
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};

/// Everything a node needs to join a cluster. No defaults are read from
/// the environment; callers (the loopback harness, the server binary's
/// argv parser, tests) fill every field explicitly.
pub struct NodeConfig<L> {
    /// Coordinator address to dial, e.g. `127.0.0.1:4400`.
    pub coordinator: String,
    /// This server's id `t ∈ 1..s` (id 0 is the coordinator itself).
    pub server_id: usize,
    /// The server's local state (shared with the coordinator in loopback
    /// mode so `with_local` works; exclusively ours in remote mode).
    pub state: Arc<Mutex<L>>,
    /// Maps incoming frames to collective jobs.
    pub resolver: Arc<dyn JobResolver<L>>,
    /// Byte accounting for every frame this node sends.
    pub counters: Arc<WireCounters>,
}

/// This node's fixed role in the reduction plan.
struct ReduceRole {
    /// `(parent id, round of our single send)`.
    parent: (usize, usize),
    /// Child senders in `(round, plan-hop-order)` — the order we must
    /// receive their blocks in.
    children: Vec<(usize, usize)>,
}

/// Dials the coordinator, bootstraps, and serves collectives until a
/// shutdown frame (clean exit) or a failure (the error is also reported to
/// the coordinator over the still-open link when possible).
pub fn run_node<L>(cfg: NodeConfig<L>) -> Result<(), NetError> {
    let mut coord = TcpStream::connect(&cfg.coordinator)?;
    coord.set_nodelay(true)?;
    match serve(&cfg, &mut coord) {
        Ok(()) => Ok(()),
        Err(e) => {
            let report = error_frame(1, &format!("server {}: {e}", cfg.server_id));
            let _ = send_frame(&mut coord, &cfg.counters, &report);
            Err(e)
        }
    }
}

/// The bootstrap handshake plus the main frame loop.
fn serve<L>(cfg: &NodeConfig<L>, coord: &mut TcpStream) -> Result<(), NetError> {
    let id = cfg.server_id;

    // Bootstrap: bind our peer listener first so its port rides the Hello
    // and child dials can queue in the backlog before we ever accept.
    let peer_listener = TcpListener::bind("127.0.0.1:0")?;
    let peer_port = peer_listener.local_addr()?.port();
    let mut hello = Frame::control(MsgType::Hello, id as u32, 0);
    hello.desc = peer_port.to_le_bytes().to_vec();
    send_frame(coord, &cfg.counters, &hello)?;

    let roster_frame = Frame::read_from(coord)?;
    if roster_frame.msg_type != MsgType::Roster {
        return Err(NetError::Protocol {
            what: "expected roster",
            detail: format!("got {:?}", roster_frame.msg_type),
        });
    }
    let roster = Roster::from_frame(&roster_frame)?;
    let s = roster.servers as usize;
    if id == 0 || id >= s {
        return Err(NetError::Protocol {
            what: "server id out of roster range",
            detail: format!("id {id}, s {s}"),
        });
    }
    let plan = TopologyPlan::new(roster.topology, s);
    let role = reduce_role(&plan, id)?;

    // Dial our tree parent (unless it is the coordinator, which we already
    // hold a link to) before accepting children: every dial targets an
    // already-bound listener, so the graph wires up without deadlock.
    let (parent_id, _) = role.parent;
    let mut parent_link = if parent_id != 0 {
        let port = *roster.peer_ports.get(parent_id).ok_or(NetError::Protocol {
            what: "parent missing from roster",
            detail: format!("parent {parent_id}"),
        })?;
        let mut link = TcpStream::connect(("127.0.0.1", port))?;
        link.set_nodelay(true)?;
        send_frame(
            &mut link,
            &cfg.counters,
            &Frame::control(MsgType::PeerHello, id as u32, 0),
        )?;
        Some(link)
    } else {
        None
    };

    let mut child_links: BTreeMap<usize, TcpStream> = BTreeMap::new();
    for _ in 0..role.children.len() {
        let (mut link, _) = peer_listener.accept()?;
        link.set_nodelay(true)?;
        let hello = Frame::read_from(&mut link)?;
        if hello.msg_type != MsgType::PeerHello {
            return Err(NetError::Protocol {
                what: "expected peer hello",
                detail: format!("got {:?}", hello.msg_type),
            });
        }
        child_links.insert(hello.seq as usize, link);
    }
    for &(_, sender) in &role.children {
        if !child_links.contains_key(&sender) {
            return Err(NetError::Protocol {
                what: "tree child never dialed in",
                detail: format!("server {id} expected child {sender}"),
            });
        }
    }

    send_frame(
        coord,
        &cfg.counters,
        &Frame::control(MsgType::Ready, id as u32, 0),
    )?;

    // Server processes are themselves a parallelism layer: divide the
    // kernel thread budget across the s servers (floor, at least 1) so the
    // layers compose additively instead of multiplying. Never changes
    // results: kernels are bit-identical across thread counts.
    let share = (dlra_linalg::threads() / s).max(1);

    loop {
        let frame = Frame::read_from(coord)?;
        let resolve = |frame: &Frame| {
            cfg.resolver
                .resolve(frame.job_id, frame.seq)
                .ok_or(NetError::Protocol {
                    what: "no job for frame",
                    detail: format!("job {} op {}", frame.job_id, frame.seq),
                })
        };
        match frame.msg_type {
            MsgType::Shutdown => return Ok(()),
            MsgType::Broadcast => {
                let job = resolve(&frame)?;
                dlra_linalg::with_threads(share, || {
                    let mut local = cfg.state.lock_recover();
                    job.deliver(id, &mut local, &frame.desc, &frame.body)
                })?;
                send_frame(
                    coord,
                    &cfg.counters,
                    &Frame::control(MsgType::Ack, id as u32, frame.job_id),
                )?;
            }
            MsgType::RunGather | MsgType::Query | MsgType::QueryServer => {
                let job = resolve(&frame)?;
                let request = (frame.msg_type != MsgType::RunGather)
                    .then_some((frame.desc.as_slice(), frame.body.as_slice()));
                let (desc, body) = dlra_linalg::with_threads(share, || {
                    let mut local = cfg.state.lock_recover();
                    job.make_block(id, &mut local, request)
                })?;
                send_frame(
                    coord,
                    &cfg.counters,
                    &Frame::data(MsgType::Reply, id as u32, frame.job_id, desc, body),
                )?;
            }
            MsgType::RunReduce => {
                let job = resolve(&frame)?;
                let request = (frame.flags & FLAG_HAS_REQUEST != 0)
                    .then_some((frame.desc.as_slice(), frame.body.as_slice()));
                drive_reduce(
                    cfg,
                    job.as_ref(),
                    frame.job_id,
                    request,
                    &plan,
                    &role,
                    share,
                    &mut child_links,
                    parent_link.as_mut(),
                    coord,
                )?;
            }
            other => {
                return Err(NetError::Protocol {
                    what: "unexpected frame at server",
                    detail: format!("{other:?}"),
                })
            }
        }
    }
}

/// Extracts this node's parent hop and ordered child hops from the plan.
/// Every non-coordinator server sends exactly once, so a missing parent is
/// a protocol violation.
fn reduce_role(plan: &TopologyPlan, id: usize) -> Result<ReduceRole, NetError> {
    let mut parent = None;
    let mut children = Vec::new();
    for (h, round) in plan.rounds().iter().enumerate() {
        for hop in &round.hops {
            if hop.sender == id {
                parent = Some((hop.receiver, h));
            }
            if hop.receiver == id {
                children.push((h, hop.sender));
            }
        }
    }
    let parent = parent.ok_or(NetError::Protocol {
        what: "server has no send hop in plan",
        detail: format!("server {id}"),
    })?;
    Ok(ReduceRole { parent, children })
}

/// One reduction from this node's perspective: compute the leaf block,
/// absorb child blocks round by round (replaying the canonical merge
/// schedule restricted to held blocks, so association order — and thus
/// floating point — matches the sequential reference bit for bit), then
/// forward the accumulated block and hop log to the parent in our single
/// send round.
///
/// The descriptor of an outgoing hop frame carries only the *subtree's*
/// hop records; the frame's own hop is derived by the receiver from the
/// link identity, the round in `seq`, and `body_len / 8` — so the root
/// collects exactly one record per plan edge.
#[allow(clippy::too_many_arguments)]
fn drive_reduce<L>(
    cfg: &NodeConfig<L>,
    job: &dyn NetJob<L>,
    job_id: u64,
    request: Option<(&[u8], &[u8])>,
    plan: &TopologyPlan,
    role: &ReduceRole,
    share: usize,
    child_links: &mut BTreeMap<usize, TcpStream>,
    parent_link: Option<&mut TcpStream>,
    coord: &mut TcpStream,
) -> Result<(), NetError> {
    let id = cfg.server_id;
    let mut block: Encoded = dlra_linalg::with_threads(share, || {
        let mut local = cfg.state.lock_recover();
        job.make_block(id, &mut local, request)
    })?;
    let mut log: Vec<HopRecord> = Vec::new();
    let (_, send_round) = role.parent;
    for (h, round) in plan.rounds().iter().enumerate() {
        let senders: Vec<usize> = round
            .hops
            .iter()
            .filter(|hop| hop.receiver == id)
            .map(|hop| hop.sender)
            .collect();
        if !senders.is_empty() {
            let mut held: BTreeMap<usize, Encoded> = BTreeMap::new();
            held.insert(id, block);
            for q in senders {
                let link = child_links.get_mut(&q).ok_or(NetError::Protocol {
                    what: "no link to plan child",
                    detail: format!("server {id}, child {q}"),
                })?;
                let hop = Frame::read_from(link)?;
                if hop.msg_type != MsgType::HopBlock
                    || hop.seq as usize != h
                    || hop.job_id != job_id
                {
                    return Err(NetError::Protocol {
                        what: "unexpected frame on tree link",
                        detail: format!(
                            "{:?} seq {} job {} (wanted hop round {h} job {job_id})",
                            hop.msg_type, hop.seq, hop.job_id
                        ),
                    });
                }
                let (child_log, payload_desc) = decode_hop_desc(&hop.desc)?;
                log.extend(child_log);
                log.push(HopRecord {
                    round: h as u32,
                    sender: q as u32,
                    words: (hop.body.len() / 8) as u64,
                });
                held.insert(q, (payload_desc.to_vec(), hop.body));
            }
            for step in &round.merges {
                if held.contains_key(&step.dst) && held.contains_key(&step.src) {
                    let src = held.remove(&step.src).ok_or(NetError::Protocol {
                        what: "merge source vanished",
                        detail: format!("src {}", step.src),
                    })?;
                    let dst = held.remove(&step.dst).ok_or(NetError::Protocol {
                        what: "merge destination vanished",
                        detail: format!("dst {}", step.dst),
                    })?;
                    let merged = dlra_linalg::with_threads(share, || {
                        job.merge_blocks(dst, (&src.0, &src.1))
                    })?;
                    held.insert(step.dst, merged);
                }
            }
            block = held.remove(&id).ok_or(NetError::Protocol {
                what: "receiver lost its block in merge replay",
                detail: format!("server {id}, round {h}"),
            })?;
        }
        if send_round == h {
            let (payload_desc, body) = block;
            let frame = Frame::data(
                MsgType::HopBlock,
                h as u32,
                job_id,
                encode_hop_desc(&log, &payload_desc),
                body,
            );
            let out = match parent_link {
                Some(link) => link,
                None => coord,
            };
            send_frame(out, &cfg.counters, &frame)?;
            return Ok(());
        }
    }
    Err(NetError::Protocol {
        what: "reduction ended without a send",
        detail: format!("server {id}"),
    })
}
