//! Nonblocking reply fan-in (feature `nonblocking`, std only — no
//! external event libraries).
//!
//! The blocking driver reads server links one at a time in index order;
//! correct, but a slow early server head-of-line-blocks frames that later
//! servers already sent. This module instead switches every link to
//! nonblocking mode and services them all from one poll loop, draining
//! whichever sockets have bytes and assembling frames incrementally with
//! a [`FrameAccumulator`] per link.
//!
//! Determinism is unaffected: frames land in slots **by link index**, the
//! caller only sees the complete index-ordered vector, and all ledger
//! charges happen after the fan-in in index order — the same discipline
//! as the blocking driver, so results and ledger transcripts are
//! identical. Reductions stay blocking in both modes (their per-link
//! lock-step protocol has nothing to overlap).

use crate::frame::{Frame, NetError, HEADER_BYTES};
use std::io::Read;
use std::net::TcpStream;
use std::time::Duration;

/// Incremental frame parser: feed bytes as they arrive, take frames as
/// they complete. Rejects oversized or malformed headers as soon as the
/// header is complete, before buffering a payload.
#[derive(Debug, Default)]
pub struct FrameAccumulator {
    buf: Vec<u8>,
}

impl FrameAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        FrameAccumulator::default()
    }

    /// Appends newly received bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as a frame.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Returns the next complete frame, `Ok(None)` if more bytes are
    /// needed, or a typed error for an invalid header.
    pub fn try_frame(&mut self) -> Result<Option<Frame>, NetError> {
        if self.buf.len() < HEADER_BYTES as usize {
            return Ok(None);
        }
        let mut header = [0u8; 24];
        header.copy_from_slice(&self.buf[..24]);
        let (mut frame, desc_len, body_len) = Frame::parse_header(&header)?;
        let total = 24 + desc_len + body_len;
        if self.buf.len() < total {
            return Ok(None);
        }
        frame.desc = self.buf[24..24 + desc_len].to_vec();
        frame.body = self.buf[24 + desc_len..total].to_vec();
        self.buf.drain(..total);
        Ok(Some(frame))
    }
}

/// Reads exactly one frame from every link concurrently, returning them
/// indexed by link position. Links are restored to blocking mode before
/// returning (even on error), so the rest of the protocol — including
/// reductions — keeps its blocking lock-step semantics.
pub fn poll_one_frame_per_link(links: &mut [TcpStream]) -> Result<Vec<Frame>, NetError> {
    for link in links.iter() {
        link.set_nonblocking(true)?;
    }
    let result = poll_loop(links);
    for link in links.iter() {
        // Restore best-effort even when the poll failed; a second failure
        // here would mask the original error.
        let _ = link.set_nonblocking(false);
    }
    result
}

fn poll_loop(links: &mut [TcpStream]) -> Result<Vec<Frame>, NetError> {
    let n = links.len();
    let mut accumulators: Vec<FrameAccumulator> = (0..n).map(|_| FrameAccumulator::new()).collect();
    let mut frames: Vec<Option<Frame>> = (0..n).map(|_| None).collect();
    let mut remaining = n;
    let mut scratch = [0u8; 64 * 1024];
    while remaining > 0 {
        let mut progressed = false;
        for (i, link) in links.iter_mut().enumerate() {
            if frames[i].is_some() {
                continue;
            }
            match link.read(&mut scratch) {
                Ok(0) => {
                    return Err(NetError::Truncated {
                        what: "frame (link closed mid-poll)",
                        needed: HEADER_BYTES as usize,
                        have: accumulators[i].pending_bytes(),
                    })
                }
                Ok(got) => {
                    progressed = true;
                    accumulators[i].extend(&scratch[..got]);
                    if let Some(frame) = accumulators[i].try_frame()? {
                        frames[i] = Some(frame);
                        remaining -= 1;
                    }
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(NetError::Io(e)),
            }
        }
        if !progressed {
            // Nothing readable this sweep; yield briefly instead of
            // spinning. Sub-millisecond keeps fan-in latency negligible
            // against any real computation.
            std::thread::sleep(Duration::from_micros(50));
        }
    }
    Ok(frames
        .into_iter()
        .map(|f| {
            f.ok_or(NetError::Protocol {
                what: "poll loop ended with a missing frame",
                detail: String::new(),
            })
        })
        .collect::<Result<Vec<_>, _>>()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::MsgType;

    #[test]
    fn accumulator_assembles_split_frames() {
        let a = Frame::data(MsgType::Reply, 1, 7, vec![1, 2, 3], vec![0; 16]);
        let b = Frame::control(MsgType::Ack, 2, 7);
        let mut bytes = a.to_bytes();
        bytes.extend_from_slice(&b.to_bytes());
        let mut acc = FrameAccumulator::new();
        // Feed one byte at a time: frames must pop out exactly when their
        // last byte arrives.
        let mut got = Vec::new();
        for &byte in &bytes {
            acc.extend(&[byte]);
            while let Some(f) = acc.try_frame().expect("valid stream") {
                got.push(f);
            }
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].msg_type, MsgType::Reply);
        assert_eq!(got[0].desc, vec![1, 2, 3]);
        assert_eq!(got[0].body.len(), 16);
        assert_eq!(got[1].msg_type, MsgType::Ack);
        assert_eq!(acc.pending_bytes(), 0);
    }

    #[test]
    fn accumulator_rejects_bad_header_immediately() {
        let mut acc = FrameAccumulator::new();
        acc.extend(&[0u8; 24]);
        assert!(acc.try_frame().is_err());
    }
}
