//! Multi-process mode: pre-agreed operations for servers in **separate
//! processes** (the `dlra-net-server` binary).
//!
//! Closures cannot cross a process boundary, so remote servers resolve
//! each frame's `seq` field against this static op table instead of a
//! shared [`JobRegistry`](crate::registry::JobRegistry). The demo protocol
//! operates on `Vec<f64>` local state — enough to exercise every frame
//! kind (broadcast, gather, point query, and a topology-routed reduction
//! whose hops are real server → server sockets between processes) and to
//! check ledger parity against the sequential reference, which is what the
//! process-level integration test does. Full Algorithm 1 runs on the
//! loopback harness, where typed closures are available.

use crate::cluster::{bootstrap_coordinator, charge_reduce, root_reduce};
use crate::counters::{send_frame, WireCounters};
use crate::frame::{decode_error_frame, Frame, MsgType, NetError};
use crate::registry::{BroadcastJob, GatherJob, JobResolver, NetJob, QueryServerJob, ReduceJob};
use dlra_comm::ledger::Direction;
use dlra_comm::wire::{decode_value, encode_value};
use dlra_comm::{Ledger, Payload, Topology, TopologyPlan};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

/// Broadcast a factor; every server scales its vector by it.
pub const OP_BROADCAST_SCALE: u32 = 1;
/// Gather each server's vector sum.
pub const OP_GATHER_SUM: u32 = 2;
/// Topology-routed reduction of the vector sums.
pub const OP_REDUCE_SUM: u32 = 3;
/// Point query: one server returns one coordinate.
pub const OP_QUERY_POINT: u32 = 4;

/// The deterministic demo state for server `t`: both the server binary and
/// any reference computation build it from `(t, dim)` alone, so results
/// can be compared across processes without shipping data.
pub fn demo_state(server_id: usize, dim: usize) -> Vec<f64> {
    (0..dim)
        .map(|i| 1.0 + 0.5 * (server_id * dim + i) as f64)
        .collect()
}

/// Builds the job for one op code; `None` for unknown codes (the node
/// reports a typed protocol error back to the coordinator).
pub fn remote_job(op: u32) -> Option<Arc<dyn NetJob<Vec<f64>>>> {
    Some(match op {
        OP_BROADCAST_SCALE => Arc::new(BroadcastJob::new(
            |_t, local: &mut Vec<f64>, factor: &f64| {
                for x in local.iter_mut() {
                    *x *= factor;
                }
            },
        )),
        OP_GATHER_SUM => Arc::new(GatherJob::new(|_t, local: &mut Vec<f64>| {
            local.iter().sum::<f64>()
        })),
        OP_REDUCE_SUM => Arc::new(ReduceJob::new(
            |_t, local: &mut Vec<f64>| local.iter().sum::<f64>(),
            |acc: &mut f64, r: f64| *acc += r,
        )),
        OP_QUERY_POINT => Arc::new(QueryServerJob::new(|local: &mut Vec<f64>, &j: &usize| {
            local[j]
        })),
        _ => return None,
    })
}

/// The server binary's resolver: static table, keyed by op code.
pub struct RemoteResolver;

impl JobResolver<Vec<f64>> for RemoteResolver {
    fn resolve(&self, _job_id: u64, op: u32) -> Option<Arc<dyn NetJob<Vec<f64>>>> {
        remote_job(op)
    }
}

/// The coordinator side of the multi-process demo protocol. Every method
/// charges the [`Ledger`] exactly as the sequential reference would, so a
/// process-level test can assert whole-cluster ledger parity. All failure
/// paths return typed [`NetError`]s — nothing here panics on peer input.
pub struct RemoteCoordinator {
    links: Vec<TcpStream>,
    local: Vec<f64>,
    ledger: Ledger,
    topology: Topology,
    counters: Arc<WireCounters>,
    next_job: u64,
}

impl RemoteCoordinator {
    /// Accepts `servers − 1` dial-ins on `listener` and completes the
    /// bootstrap handshake. `local` is the coordinator's own state
    /// (server 0).
    pub fn accept(
        listener: &TcpListener,
        local: Vec<f64>,
        servers: usize,
        topology: Topology,
    ) -> Result<Self, NetError> {
        if servers < 2 {
            return Err(NetError::Protocol {
                what: "remote cluster needs at least two servers",
                detail: format!("got {servers}"),
            });
        }
        let counters = WireCounters::shared();
        let links = bootstrap_coordinator(listener, servers, topology, &counters)?;
        Ok(RemoteCoordinator {
            links,
            local,
            ledger: Ledger::new(),
            topology,
            counters,
            next_job: 1,
        })
    }

    /// The communication ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// The byte counters for frames this coordinator sent.
    pub fn counters(&self) -> &Arc<WireCounters> {
        &self.counters
    }

    fn servers(&self) -> usize {
        self.links.len() + 1
    }

    fn next_job_id(&mut self) -> u64 {
        let id = self.next_job;
        self.next_job += 1;
        id
    }

    fn recv_from(&mut self, t: usize, expected: MsgType, job_id: u64) -> Result<Frame, NetError> {
        let frame = Frame::read_from(&mut self.links[t - 1])?;
        if frame.msg_type == MsgType::Error {
            return Err(decode_error_frame(&frame));
        }
        if frame.msg_type != expected || frame.job_id != job_id {
            return Err(NetError::Protocol {
                what: "unexpected reply frame",
                detail: format!(
                    "server {t}: {:?} job {} (wanted {expected:?} job {job_id})",
                    frame.msg_type, frame.job_id
                ),
            });
        }
        Ok(frame)
    }

    /// [`OP_BROADCAST_SCALE`]: every server (and the coordinator's own
    /// state) multiplies its vector by `factor`.
    pub fn broadcast_scale(&mut self, factor: f64) -> Result<(), NetError> {
        let s = self.servers();
        self.ledger.next_round();
        for t in 1..s {
            self.ledger
                .charge(t, Direction::Downstream, factor.words(), "net.scale");
        }
        let job_id = self.next_job_id();
        let (desc, body) = encode_value(&factor);
        for t in 1..s {
            let frame = Frame::data(
                MsgType::Broadcast,
                OP_BROADCAST_SCALE,
                job_id,
                desc.clone(),
                body.clone(),
            );
            send_frame(&mut self.links[t - 1], &self.counters, &frame)?;
        }
        for x in self.local.iter_mut() {
            *x *= factor;
        }
        for t in 1..s {
            self.recv_from(t, MsgType::Ack, job_id)?;
        }
        Ok(())
    }

    /// [`OP_GATHER_SUM`]: per-server vector sums, indexed by server.
    pub fn gather_sum(&mut self) -> Result<Vec<f64>, NetError> {
        let s = self.servers();
        self.ledger.next_round();
        let job_id = self.next_job_id();
        for t in 1..s {
            let frame = Frame::control(MsgType::RunGather, OP_GATHER_SUM, job_id);
            send_frame(&mut self.links[t - 1], &self.counters, &frame)?;
        }
        let mut out = Vec::with_capacity(s);
        out.push(self.local.iter().sum::<f64>());
        for t in 1..s {
            let frame = self.recv_from(t, MsgType::Reply, job_id)?;
            out.push(decode_value::<f64>(&frame.desc, &frame.body)?);
        }
        for (t, reply) in out.iter().enumerate().skip(1) {
            self.ledger
                .charge(t, Direction::Upstream, reply.words(), "net.gather_sum");
        }
        Ok(out)
    }

    /// [`OP_REDUCE_SUM`]: the total sum, combined up the configured
    /// topology — tree hops are real sockets between server processes.
    pub fn reduce_sum(&mut self) -> Result<f64, NetError> {
        let s = self.servers();
        let plan = TopologyPlan::new(self.topology, s);
        let job = remote_job(OP_REDUCE_SUM).ok_or(NetError::Protocol {
            what: "missing op",
            detail: String::new(),
        })?;
        let job_id = self.next_job_id();
        for t in 1..s {
            let frame = Frame::control(MsgType::RunReduce, OP_REDUCE_SUM, job_id);
            send_frame(&mut self.links[t - 1], &self.counters, &frame)?;
        }
        let own = job.make_block(0, &mut self.local, None)?;
        let (block, records) = root_reduce(job.as_ref(), job_id, own, &plan, &mut self.links)?;
        charge_reduce(&self.ledger, &plan, &records, "net.reduce_sum", false)?;
        Ok(decode_value::<f64>(&block.0, &block.1)?)
    }

    /// [`OP_QUERY_POINT`]: coordinate `j` of server `t`'s vector.
    pub fn query_point(&mut self, t: usize, j: usize) -> Result<f64, NetError> {
        if t == 0 {
            return self.local.get(j).copied().ok_or(NetError::Protocol {
                what: "coordinate out of range",
                detail: format!("j {j}"),
            });
        }
        if t >= self.servers() {
            return Err(NetError::Protocol {
                what: "server out of range",
                detail: format!("t {t}"),
            });
        }
        self.ledger
            .charge(t, Direction::Downstream, j.words(), "net.point");
        let job_id = self.next_job_id();
        let (desc, body) = encode_value(&j);
        let frame = Frame::data(MsgType::QueryServer, OP_QUERY_POINT, job_id, desc, body);
        send_frame(&mut self.links[t - 1], &self.counters, &frame)?;
        let reply_frame = self.recv_from(t, MsgType::Reply, job_id)?;
        let reply = decode_value::<f64>(&reply_frame.desc, &reply_frame.body)?;
        self.ledger
            .charge(t, Direction::Upstream, reply.words(), "net.point");
        Ok(reply)
    }

    /// Sends every server a shutdown frame and waits for it to close its
    /// end, so callers can assert clean process exits.
    pub fn shutdown(mut self) -> Result<(), NetError> {
        for link in &mut self.links {
            send_frame_best_effort(link, &self.counters);
        }
        for link in &mut self.links {
            // EOF confirms the server's event loop returned cleanly.
            match Frame::read_from(link) {
                Err(NetError::Truncated { have: 0, .. }) => {}
                Err(NetError::Io(_)) => {}
                Ok(frame) => {
                    return Err(NetError::Protocol {
                        what: "frame after shutdown",
                        detail: format!("{:?}", frame.msg_type),
                    })
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

/// Shutdown send that must not propagate errors (the peer may already be
/// gone).
fn send_frame_best_effort(link: &mut TcpStream, counters: &WireCounters) {
    let _ = send_frame(link, counters, &Frame::control(MsgType::Shutdown, 0, 0));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_state_is_deterministic_and_distinct_per_server() {
        assert_eq!(demo_state(0, 3), vec![1.0, 1.5, 2.0]);
        assert_eq!(demo_state(1, 3), vec![2.5, 3.0, 3.5]);
        assert_eq!(demo_state(1, 3), demo_state(1, 3));
    }

    #[test]
    fn op_table_covers_every_op() {
        for op in [
            OP_BROADCAST_SCALE,
            OP_GATHER_SUM,
            OP_REDUCE_SUM,
            OP_QUERY_POINT,
        ] {
            assert!(remote_job(op).is_some(), "op {op}");
        }
        assert!(remote_job(0).is_none());
        assert!(remote_job(999).is_none());
    }
}
