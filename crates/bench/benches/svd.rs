//! Linear-algebra kernel benchmarks: the one-sided Jacobi SVD at the sizes
//! Algorithm 1 actually uses (`B ∈ ℝʳˣᵈ` with `r = Θ(k²/ε²)`), the
//! symmetric eigensolver, QR, and the dense matmul backbone.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlra_linalg::{best_rank_k, householder_qr, svd, Matrix};
use dlra_util::Rng;
use std::hint::black_box;

fn bench_svd(c: &mut Criterion) {
    let mut group = c.benchmark_group("svd");
    group.sample_size(10);
    for &(r, d) in &[(64usize, 32usize), (128, 64), (256, 128)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{r}x{d}")),
            &(r, d),
            |b, &(r, d)| {
                let mut rng = Rng::new(1);
                let a = Matrix::gaussian(r, d, &mut rng);
                b.iter(|| black_box(svd(&a).unwrap().s[0]));
            },
        );
    }
    group.finish();
}

fn bench_rank_k(c: &mut Criterion) {
    c.bench_function("best_rank_k_200x64_k10", |b| {
        let mut rng = Rng::new(2);
        let a = Matrix::gaussian(200, 64, &mut rng);
        b.iter(|| black_box(best_rank_k(&a, 10).unwrap().error_sq));
    });
}

fn bench_qr(c: &mut Criterion) {
    c.bench_function("householder_qr_256x64", |b| {
        let mut rng = Rng::new(3);
        let a = Matrix::gaussian(256, 64, &mut rng);
        b.iter(|| black_box(householder_qr(&a).unwrap().1.frobenius_norm()));
    });
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[64usize, 128, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut rng = Rng::new(4);
            let a = Matrix::gaussian(n, n, &mut rng);
            let m = Matrix::gaussian(n, n, &mut rng);
            b.iter(|| black_box(a.matmul(&m).unwrap().frobenius_norm()));
        });
    }
    group.finish();
}

fn bench_gram(c: &mut Criterion) {
    c.bench_function("gram_1000x128", |b| {
        let mut rng = Rng::new(5);
        let a = Matrix::gaussian(1000, 128, &mut rng);
        b.iter(|| black_box(a.gram().frobenius_norm()));
    });
}

criterion_group!(
    benches,
    bench_svd,
    bench_rank_k,
    bench_qr,
    bench_matmul,
    bench_gram
);
criterion_main!(benches);
