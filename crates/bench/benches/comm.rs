//! Benchmarks of the communication substrate: collective overheads and the
//! sequential vs crossbeam-threaded gather executors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlra_comm::Cluster;
use dlra_util::Rng;
use std::hint::black_box;

fn make_cluster(s: usize, len: usize) -> Cluster<Vec<f64>> {
    let mut rng = Rng::new(1);
    Cluster::new(
        (0..s)
            .map(|_| (0..len).map(|_| rng.gaussian()).collect())
            .collect(),
    )
}

fn bench_gather(c: &mut Criterion) {
    let mut group = c.benchmark_group("gather_sum_64k");
    for &s in &[4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(s), &s, |b, &s| {
            let mut cluster = make_cluster(s, 65_536);
            b.iter(|| {
                let sums = cluster.gather("bench", |_t, local| local.iter().sum::<f64>());
                black_box(sums.len())
            });
        });
    }
    group.finish();
}

fn bench_par_gather_vs_gather(c: &mut Criterion) {
    // Expensive per-server local work: the threaded executor should win.
    let mut group = c.benchmark_group("gather_executor");
    group.sample_size(10);
    let heavy = |local: &Vec<f64>| -> f64 {
        let mut acc = 0.0;
        for _ in 0..20 {
            for x in local {
                acc += (x * 1.000001).sin();
            }
        }
        acc
    };
    group.bench_function("sequential", |b| {
        let mut cluster = make_cluster(8, 32_768);
        b.iter(|| black_box(cluster.gather("seq", |_t, l| heavy(l)).len()));
    });
    group.bench_function("threaded", |b| {
        let mut cluster = make_cluster(8, 32_768);
        b.iter(|| black_box(cluster.par_gather("par", |_t, l| heavy(l)).len()));
    });
    group.finish();
}

fn bench_aggregate_vectors(c: &mut Criterion) {
    c.bench_function("aggregate_vec_16x8192", |b| {
        let mut cluster = make_cluster(16, 8192);
        b.iter(|| {
            let sum = cluster.aggregate(
                "agg",
                |_t, local| local.clone(),
                |acc, r| {
                    for (a, v) in acc.iter_mut().zip(r) {
                        *a += v;
                    }
                },
            );
            black_box(sum[0])
        });
    });
}

criterion_group!(
    benches,
    bench_gather,
    bench_par_gather_vs_gather,
    bench_aggregate_vectors
);
criterion_main!(benches);
