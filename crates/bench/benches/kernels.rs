//! Criterion bench for the blocked/threaded dense kernels: blocked vs the
//! retained naive reference, across thread counts, plus the factored
//! projector apply. For the machine-readable sweep that writes
//! `BENCH_kernels.json`, use the `kernels` binary instead:
//! `cargo run --release -p dlra-bench --bin kernels`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlra_linalg::kernels::reference;
use dlra_linalg::{orthonormalize_columns, set_threads, Matrix, Projector};
use dlra_util::Rng;
use std::hint::black_box;

fn bench_blocked_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    group.sample_size(10);
    for &n in &[256usize, 512] {
        let mut rng = Rng::new(7);
        let a = Matrix::gaussian(n, n, &mut rng);
        let b = Matrix::gaussian(n, n, &mut rng);
        group.bench_with_input(BenchmarkId::new("matmul_naive", n), &n, |bch, _| {
            bch.iter(|| black_box(reference::matmul(&a, &b).unwrap()[(0, 0)]));
        });
        group.bench_with_input(BenchmarkId::new("matmul_blocked", n), &n, |bch, _| {
            set_threads(1);
            bch.iter(|| black_box(a.matmul(&b).unwrap()[(0, 0)]));
        });
        group.bench_with_input(BenchmarkId::new("gram_blocked", n), &n, |bch, _| {
            set_threads(1);
            bch.iter(|| black_box(a.gram()[(0, 0)]));
        });
        group.bench_with_input(
            BenchmarkId::new("transpose_matmul_blocked", n),
            &n,
            |bch, _| {
                set_threads(1);
                bch.iter(|| black_box(a.transpose_matmul(&b).unwrap()[(0, 0)]));
            },
        );
    }
    group.finish();
}

fn bench_thread_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul_threads");
    group.sample_size(10);
    let n = 512usize;
    let mut rng = Rng::new(8);
    let a = Matrix::gaussian(n, n, &mut rng);
    let b = Matrix::gaussian(n, n, &mut rng);
    for &t in &[1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |bch, &t| {
            set_threads(t);
            bch.iter(|| black_box(a.matmul(&b).unwrap()[(0, 0)]));
        });
    }
    set_threads(1);
    group.finish();
}

fn bench_projector_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("projector");
    group.sample_size(10);
    let (n, d, k) = (2000usize, 256usize, 16usize);
    let mut rng = Rng::new(9);
    let a = Matrix::gaussian(n, d, &mut rng);
    let p = Projector::from_basis(orthonormalize_columns(&Matrix::gaussian(d, k, &mut rng)));
    group.bench_function("apply_factored_2000x256_k16", |bch| {
        bch.iter(|| black_box(p.apply(&a).unwrap()[(0, 0)]));
    });
    group.bench_function("apply_dense_2000x256_k16", |bch| {
        let dense = p.to_dense();
        bch.iter(|| black_box(a.matmul(&dense).unwrap()[(0, 0)]));
    });
    group.bench_function("residual_sq_factored_2000x256_k16", |bch| {
        bch.iter(|| black_box(p.residual_sq(&a).unwrap()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_blocked_vs_naive,
    bench_thread_scaling,
    bench_projector_apply
);
criterion_main!(benches);
