//! Design-choice ablations called out in DESIGN.md: theory-mode vs
//! practical sampler parameterization, and the adaptive multi-round
//! extension vs one-shot sampling at equal row budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlra_core::adaptive::{run_adaptive, AdaptiveConfig};
use dlra_core::prelude::*;
use dlra_data::{noisy_low_rank, split_with_noise_shares};
use dlra_linalg::Matrix;
use dlra_sampler::ZSamplerParams;
use dlra_util::Rng;
use std::hint::black_box;

fn parts(n: usize, d: usize, seed: u64) -> Vec<Matrix> {
    let mut rng = Rng::new(seed);
    let a = noisy_low_rank(n, d, 4, 0.2, &mut rng);
    split_with_noise_shares(&a, 4, 0.3, &mut rng)
}

fn bench_theory_vs_practical(c: &mut Criterion) {
    let mut group = c.benchmark_group("params_theory_vs_practical");
    group.sample_size(10);
    let (n, d) = (300usize, 16usize);
    let p = parts(n, d, 61);
    // Theory-mode params are capped further for benchability: the honest
    // uncapped constants would not fit in memory (see DESIGN.md §3).
    let mut theory = ZSamplerParams::theory((n * d) as u64, 0.5, 0.25);
    theory.groups = theory.groups.min(8);
    theory.hh_width = theory.hh_width.min(256);
    let configs: Vec<(&str, ZSamplerParams)> = vec![
        (
            "practical_2k",
            ZSamplerParams::practical((n * d) as u64, 2_000),
        ),
        (
            "practical_16k",
            ZSamplerParams::practical((n * d) as u64, 16_000),
        ),
        ("theory_capped", theory),
    ];
    for (name, params) in configs {
        group.bench_with_input(BenchmarkId::from_parameter(name), &params, |b, params| {
            let cfg = Algorithm1Config {
                k: 4,
                r: 40,
                sampler: SamplerKind::Z(params.clone()),
                seed: 67,
                ..Algorithm1Config::default()
            };
            b.iter(|| {
                let mut m = PartitionModel::new(p.clone(), EntryFunction::Identity).unwrap();
                black_box(run_algorithm1(&mut m, &cfg).unwrap().captured)
            });
        });
    }
    group.finish();
}

fn bench_adaptive_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("adaptive_rounds_equal_budget");
    group.sample_size(10);
    let (n, d) = (300usize, 16usize);
    let p = parts(n, d, 71);
    for &rounds in &[1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(rounds),
            &rounds,
            |b, &rounds| {
                let cfg = AdaptiveConfig {
                    k: 4,
                    rounds,
                    r_per_round: 48 / rounds,
                    params: ZSamplerParams::practical((n * d) as u64, 3_000),
                    seed: 73,
                };
                b.iter(|| {
                    let mut m = PartitionModel::new(p.clone(), EntryFunction::Identity).unwrap();
                    black_box(run_adaptive(&mut m, &cfg).unwrap().comm.total_words())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_theory_vs_practical, bench_adaptive_rounds);
criterion_main!(benches);
