//! Benchmarks of the threaded message-passing substrate vs the sequential
//! simulator: raw collective overheads (gather / aggregate) and end-to-end
//! Algorithm 1, at `s ∈ {2, 4, 8}` servers and `n = 4096` rows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlra_comm::{Cluster, Collectives};
use dlra_core::prelude::*;
use dlra_data::{noisy_low_rank, split_with_noise_shares};
use dlra_linalg::Matrix;
use dlra_runtime::{
    threaded_model, Query, QueryRequest, Runtime, RuntimeConfig, Service, ServiceConfig, Substrate,
    ThreadedCluster,
};
use dlra_sampler::ZSamplerParams;
use dlra_util::Rng;
use std::hint::black_box;

const N: usize = 4096;
const D: usize = 32;

fn vec_locals(s: usize, len: usize) -> Vec<Vec<f64>> {
    let mut rng = Rng::new(1);
    (0..s)
        .map(|_| (0..len).map(|_| rng.gaussian()).collect())
        .collect()
}

fn shares(s: usize) -> Vec<Matrix> {
    let mut rng = Rng::new(17);
    let a = noisy_low_rank(N, D, 5, 0.1, &mut rng);
    split_with_noise_shares(&a, s, 0.3, &mut rng)
}

/// An expensive per-server reduction (the regime where worker threads pay
/// off: heavy local compute, one word shipped).
fn heavy(local: &[f64]) -> f64 {
    let mut acc = 0.0;
    for _ in 0..8 {
        for x in local {
            acc += (x * 1.000001).sin();
        }
    }
    acc
}

fn bench_gather(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_gather_heavy_64k");
    group.sample_size(10);
    for &s in &[2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("sequential", s), &s, |b, &s| {
            let mut cluster = Cluster::new(vec_locals(s, 65_536));
            b.iter(|| black_box(Cluster::gather(&mut cluster, "seq", |_t, l| heavy(l)).len()));
        });
        group.bench_with_input(BenchmarkId::new("threaded", s), &s, |b, &s| {
            let mut cluster = ThreadedCluster::new(vec_locals(s, 65_536));
            b.iter(|| {
                black_box(
                    Collectives::gather(&mut cluster, "par", |_t, l: &mut Vec<f64>| heavy(l)).len(),
                )
            });
        });
    }
    group.finish();
}

fn bench_aggregate(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_aggregate_vec_16k");
    group.sample_size(10);
    for &s in &[2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("sequential", s), &s, |b, &s| {
            let mut cluster = Cluster::new(vec_locals(s, 16_384));
            b.iter(|| {
                let sum = Cluster::aggregate(
                    &mut cluster,
                    "agg",
                    |_t, local| local.clone(),
                    |acc, r| {
                        for (a, v) in acc.iter_mut().zip(r) {
                            *a += v;
                        }
                    },
                );
                black_box(sum[0])
            });
        });
        group.bench_with_input(BenchmarkId::new("threaded", s), &s, |b, &s| {
            let mut cluster = ThreadedCluster::new(vec_locals(s, 16_384));
            b.iter(|| {
                let sum = Collectives::aggregate(
                    &mut cluster,
                    "agg",
                    |_t, local: &mut Vec<f64>| local.clone(),
                    |acc, r| {
                        for (a, v) in acc.iter_mut().zip(r) {
                            *a += v;
                        }
                    },
                );
                black_box(sum[0])
            });
        });
    }
    group.finish();
}

fn bench_algorithm1_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_algorithm1_4096x32");
    group.sample_size(10);
    for &s in &[2usize, 4, 8] {
        let parts = shares(s);
        let cfg = Algorithm1Config {
            k: 5,
            r: 60,
            sampler: SamplerKind::Z(ZSamplerParams::practical((N * D) as u64, 4000)),
            seed: 23,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("sequential", s), &s, |b, _| {
            b.iter(|| {
                let mut m = PartitionModel::new(parts.clone(), EntryFunction::Identity).unwrap();
                black_box(run_algorithm1(&mut m, &cfg).unwrap().captured)
            });
        });
        group.bench_with_input(BenchmarkId::new("threaded", s), &s, |b, _| {
            b.iter(|| {
                let mut m = threaded_model(parts.clone(), EntryFunction::Identity).unwrap();
                black_box(run_algorithm1(&mut m, &cfg).unwrap().captured)
            });
        });
    }
    group.finish();
}

/// Query-dispatch latency across resident dataset sizes `n`.
///
/// Measures submit → result delivery for a degenerate query (`k = 0`):
/// the executor builds the full per-query model from the resident payload
/// and then rejects the config before any protocol work, isolating the
/// dispatch overhead. With copy-on-write residency the per-query model is
/// built from O(s) handle clones, so this is **flat in `n`**; before, it
/// deep-copied all `s·n·d` resident words per submit.
fn bench_dispatch_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_dispatch_latency");
    group.sample_size(10);
    let degenerate = Algorithm1Config {
        k: 0,
        r: 1,
        sampler: SamplerKind::Uniform,
        ..Default::default()
    };
    for &n in &[1024usize, 8192, 65536] {
        let mut rng = Rng::new(29);
        let a = noisy_low_rank(n, D, 5, 0.1, &mut rng);
        let parts = split_with_noise_shares(&a, 4, 0.3, &mut rng);
        for (name, substrate) in [
            ("sequential", Substrate::Sequential),
            ("threaded", Substrate::Threaded),
        ] {
            let runtime = Runtime::new(
                parts.clone(),
                RuntimeConfig {
                    executors: 1,
                    substrate,
                    ..Default::default()
                },
            )
            .unwrap();
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| {
                    let handle = runtime.submit(QueryRequest::identity(degenerate.clone()));
                    black_box(handle.wait().is_err())
                });
            });
        }
    }
    group.finish();
}

/// Front-door overhead of the multi-dataset service façade: submit → wait
/// for a minimal query (rank 1, one sampled row) on one dataset, while the
/// service hosts 1, 4, or 16 resident datasets. Dataset resolution is a
/// handle deref — hosting more tenants must not tax a tenant's dispatch.
fn bench_service_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_dispatch_latency");
    group.sample_size(10);
    let tiny = Query::rank(1)
        .samples(1)
        .sampler(SamplerKind::Uniform)
        .seed(3)
        .build()
        .expect("valid query");
    for &datasets in &[1usize, 4, 16] {
        let service = Service::new(ServiceConfig {
            executors: 1,
            substrate: Substrate::Threaded,
            ..Default::default()
        });
        let handles: Vec<_> = (0..datasets)
            .map(|i| {
                let mut rng = Rng::new(31 + i as u64);
                let a = noisy_low_rank(1024, D, 5, 0.1, &mut rng);
                let parts = split_with_noise_shares(&a, 4, 0.3, &mut rng);
                service.load(&format!("tenant-{i}"), parts).unwrap()
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::new("resident_datasets", datasets),
            &datasets,
            |b, _| {
                b.iter(|| {
                    let ticket = handles[0].submit(&tiny);
                    black_box(ticket.wait().is_ok())
                });
            },
        );
        // The registry saw every iteration above: report the end-to-end
        // submit → resolve distribution it measured alongside criterion's
        // per-iteration mean.
        if let Some(metrics) = service.metrics() {
            let snap = &metrics.datasets[0];
            eprintln!(
                "service_dispatch_latency/{datasets}: {} ({} queries)",
                snap.latency, snap.completed
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_gather,
    bench_aggregate,
    bench_algorithm1_end_to_end,
    bench_dispatch_latency,
    bench_service_dispatch
);
criterion_main!(benches);
