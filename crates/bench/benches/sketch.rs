//! Microbenchmarks for the sketching substrate: CountSketch / AMS update
//! throughput, merge (the per-server aggregation cost), point queries, and
//! heavy-hitter recovery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dlra_sketch::{AmsF2, CountSketch, HeavyHittersSketch};
use dlra_util::Rng;
use std::hint::black_box;

fn bench_countsketch_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("countsketch_update");
    for &width in &[64usize, 512, 4096] {
        let n = 10_000u64;
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, &w| {
            let mut cs = CountSketch::new(5, w, 42);
            let mut rng = Rng::new(7);
            let vals: Vec<(u64, f64)> = (0..n).map(|j| (j, rng.gaussian())).collect();
            b.iter(|| {
                for &(j, v) in &vals {
                    cs.update(j, v);
                }
                black_box(&cs);
            });
        });
    }
    group.finish();
}

fn bench_countsketch_estimate(c: &mut Criterion) {
    c.bench_function("countsketch_estimate_1k", |b| {
        let mut cs = CountSketch::new(7, 1024, 1);
        let mut rng = Rng::new(2);
        for j in 0..50_000u64 {
            cs.update(j, rng.gaussian());
        }
        b.iter(|| {
            let mut acc = 0.0;
            for j in 0..1000u64 {
                acc += cs.estimate(j);
            }
            black_box(acc)
        });
    });
}

fn bench_sketch_merge(c: &mut Criterion) {
    c.bench_function("countsketch_merge_5x1024", |b| {
        let mut a = CountSketch::new(5, 1024, 3);
        let mut other = CountSketch::new(5, 1024, 3);
        let mut rng = Rng::new(4);
        for j in 0..10_000u64 {
            a.update(j, rng.gaussian());
            other.update(j, rng.gaussian());
        }
        b.iter(|| {
            a.merge(black_box(&other));
        });
    });
}

fn bench_ams_estimate(c: &mut Criterion) {
    c.bench_function("ams_f2_estimate", |b| {
        let mut s = AmsF2::new(9, 64, 5);
        let mut rng = Rng::new(6);
        for j in 0..5_000u64 {
            s.update(j, rng.gaussian());
        }
        b.iter(|| black_box(s.estimate()));
    });
}

fn bench_heavy_hitter_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("heavy_hitter_recover");
    group.sample_size(20);
    for &l in &[10_000u64, 100_000] {
        group.throughput(Throughput::Elements(l));
        group.bench_with_input(BenchmarkId::from_parameter(l), &l, |b, &l| {
            let mut sk = HeavyHittersSketch::new(32.0, 0.01, 9);
            let mut rng = Rng::new(10);
            for j in 0..l {
                sk.update(j, rng.gaussian() * 0.1);
            }
            for h in 0..16 {
                sk.update(h * (l / 16), 25.0);
            }
            b.iter(|| black_box(sk.recover_range(l).len()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_countsketch_update,
    bench_countsketch_estimate,
    bench_sketch_merge,
    bench_ams_estimate,
    bench_heavy_hitter_recovery
);
criterion_main!(benches);
