//! Criterion benchmarks of the query planner: `Runtime::submit_batch`
//! with the plan cache on vs off, B ∈ {1, 4, 16} queries sharing one `f`
//! over a resident 1024×16 dataset. The batched path pays one
//! `ZSampler::prepare` per batch; the unbatched path pays B.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlra_core::prelude::*;
use dlra_data::{noisy_low_rank, split_with_noise_shares};
use dlra_linalg::Matrix;
use dlra_runtime::{QueryRequest, Runtime, RuntimeConfig, Substrate};
use dlra_sampler::ZSamplerParams;
use dlra_util::Rng;
use std::hint::black_box;

const N: usize = 1024;
const D: usize = 16;

fn shares(s: usize) -> Vec<Matrix> {
    let mut rng = Rng::new(19);
    let a = noisy_low_rank(N, D, 4, 0.1, &mut rng);
    split_with_noise_shares(&a, s, 0.3, &mut rng)
}

fn requests(b: usize) -> Vec<QueryRequest> {
    (0..b)
        .map(|i| {
            QueryRequest::identity(Algorithm1Config {
                k: 1 + i % 4,
                r: 40,
                sampler: SamplerKind::Z(ZSamplerParams::default()),
                seed: 71,
                ..Default::default()
            })
        })
        .collect()
}

fn bench_batch_submit(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner_batch_vs_unbatched_1024x16");
    group.sample_size(10);
    let parts = shares(4);
    for &b in &[1usize, 4, 16] {
        let batch = requests(b);
        group.bench_with_input(BenchmarkId::new("batched", b), &b, |bench, _| {
            bench.iter(|| {
                let runtime = Runtime::new(
                    parts.clone(),
                    RuntimeConfig {
                        executors: 4,
                        substrate: Substrate::Threaded,
                        plan_cache: 16,
                        metrics: true,
                        ..Default::default()
                    },
                )
                .unwrap();
                let handles = runtime.submit_batch(batch.clone());
                let captured: f64 = handles
                    .into_iter()
                    .map(|h| h.wait().unwrap().captured)
                    .sum();
                black_box(captured)
            });
        });
        group.bench_with_input(BenchmarkId::new("unbatched", b), &b, |bench, _| {
            bench.iter(|| {
                let runtime = Runtime::new(
                    parts.clone(),
                    RuntimeConfig {
                        executors: 4,
                        substrate: Substrate::Threaded,
                        plan_cache: 0,
                        metrics: true,
                        ..Default::default()
                    },
                )
                .unwrap();
                let handles: Vec<_> = batch.iter().map(|q| runtime.submit(q.clone())).collect();
                let captured: f64 = handles
                    .into_iter()
                    .map(|h| h.wait().unwrap().captured)
                    .sum();
                black_box(captured)
            });
        });
    }
    group.finish();
}

/// Steady-state planned submit: the plan is already cached, so this
/// measures the pure draw/fetch/SVD cost of serving one more query from a
/// warm planner.
fn bench_warm_cache_submit(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner_warm_submit_1024x16");
    group.sample_size(10);
    let parts = shares(4);
    let request = &requests(1)[0];
    let runtime = Runtime::new(
        parts,
        RuntimeConfig {
            executors: 1,
            substrate: Substrate::Threaded,
            plan_cache: 16,
            metrics: true,
            ..Default::default()
        },
    )
    .unwrap();
    // Warm the cache.
    runtime.submit(request.clone()).wait().unwrap();
    group.bench_function("warm", |bench| {
        bench.iter(|| black_box(runtime.submit(request.clone()).wait().unwrap().captured));
    });
    group.finish();
}

criterion_group!(benches, bench_batch_submit, bench_warm_cache_submit);
criterion_main!(benches);
