//! Benchmarks of the generalized Z-sampler: preparation cost (the two
//! estimator passes — sketching + recovery), draw throughput, and the
//! theory-vs-practical parameterization ablation called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlra_comm::Cluster;
use dlra_sampler::{DenseServerVec, Square, ZSampler, ZSamplerParams};
use dlra_util::Rng;
use std::hint::black_box;

fn make_cluster(l: usize, s: usize, seed: u64) -> Cluster<DenseServerVec> {
    let mut rng = Rng::new(seed);
    let parts: Vec<DenseServerVec> = (0..s)
        .map(|_| DenseServerVec::new((0..l).map(|_| rng.gaussian()).collect()))
        .collect();
    Cluster::new(parts)
}

fn bench_prepare(c: &mut Criterion) {
    let mut group = c.benchmark_group("zsampler_prepare");
    group.sample_size(10);
    for &l in &[1usize << 12, 1 << 14, 1 << 16] {
        group.bench_with_input(BenchmarkId::from_parameter(l), &l, |b, &l| {
            let params = ZSamplerParams::practical(l as u64, 4000);
            b.iter(|| {
                let mut cluster = make_cluster(l, 4, 9);
                let sampler = ZSampler::new(params.clone(), 17);
                let prep = sampler.prepare(&mut cluster, &Square);
                black_box(prep.z_hat())
            });
        });
    }
    group.finish();
}

fn bench_draws(c: &mut Criterion) {
    c.bench_function("zsampler_draw_1k", |b| {
        let mut cluster = make_cluster(1 << 14, 4, 11);
        let sampler = ZSampler::new(ZSamplerParams::default(), 13);
        let prep = sampler.prepare(&mut cluster, &Square);
        let mut rng = Rng::new(15);
        b.iter(|| black_box(prep.draw_many(1000, &mut rng).len()));
    });
}

/// Ablation: budget (sketch size) vs preparation cost.
fn bench_budget_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("zsampler_budget_ablation");
    group.sample_size(10);
    let l = 1usize << 14;
    for &budget in &[1_000u64, 8_000, 64_000] {
        group.bench_with_input(BenchmarkId::from_parameter(budget), &budget, |b, &w| {
            let params = ZSamplerParams::practical(l as u64, w);
            b.iter(|| {
                let mut cluster = make_cluster(l, 4, 21);
                let sampler = ZSampler::new(params.clone(), 23);
                black_box(sampler.prepare(&mut cluster, &Square).z_hat())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_prepare, bench_draws, bench_budget_ablation);
criterion_main!(benches);
