//! End-to-end Algorithm 1 benchmarks and the sampler ablation (exact
//! oracle vs uniform vs generalized Z-sampler) on a shared workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlra_core::prelude::*;
use dlra_data::{noisy_low_rank, split_with_noise_shares};
use dlra_linalg::Matrix;
use dlra_sampler::ZSamplerParams;
use dlra_util::Rng;
use std::hint::black_box;

fn model(s: usize, n: usize, d: usize, seed: u64) -> Vec<Matrix> {
    let mut rng = Rng::new(seed);
    let a = noisy_low_rank(n, d, 5, 0.1, &mut rng);
    split_with_noise_shares(&a, s, 0.3, &mut rng)
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm1_end_to_end");
    group.sample_size(10);
    for &(n, d) in &[(500usize, 32usize), (1500, 48)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{d}")),
            &(n, d),
            |b, &(n, d)| {
                let parts = model(6, n, d, 31);
                let cfg = Algorithm1Config {
                    k: 5,
                    r: 100,
                    sampler: SamplerKind::Z(ZSamplerParams::practical((n * d) as u64, 4000)),
                    seed: 37,
                    ..Algorithm1Config::default()
                };
                b.iter(|| {
                    let mut m =
                        PartitionModel::new(parts.clone(), EntryFunction::Identity).unwrap();
                    black_box(run_algorithm1(&mut m, &cfg).unwrap().captured)
                });
            },
        );
    }
    group.finish();
}

/// Ablation: which sampler, same data and r.
fn bench_sampler_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm1_sampler_ablation");
    group.sample_size(10);
    let parts = model(6, 800, 48, 41);
    for (name, sampler) in [
        ("exact_oracle", SamplerKind::ExactOracle),
        ("uniform", SamplerKind::Uniform),
        (
            "z_sampler",
            SamplerKind::Z(ZSamplerParams::practical((800 * 48) as u64, 4000)),
        ),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &sampler, |b, s| {
            let cfg = Algorithm1Config {
                k: 5,
                r: 100,
                sampler: s.clone(),
                seed: 43,
                ..Algorithm1Config::default()
            };
            b.iter(|| {
                let mut m = PartitionModel::new(parts.clone(), EntryFunction::Identity).unwrap();
                black_box(run_algorithm1(&mut m, &cfg).unwrap().captured)
            });
        });
    }
    group.finish();
}

/// Boosting ablation: repetitions vs captured energy cost.
fn bench_boosting(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm1_boosting");
    group.sample_size(10);
    let parts = model(4, 500, 32, 51);
    for &boost in &[1usize, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(boost), &boost, |b, &boost| {
            let cfg = Algorithm1Config {
                k: 4,
                r: 60,
                boost,
                sampler: SamplerKind::ExactOracle,
                seed: 53,
            };
            b.iter(|| {
                let mut m = PartitionModel::new(parts.clone(), EntryFunction::Identity).unwrap();
                black_box(run_algorithm1(&mut m, &cfg).unwrap().captured)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_end_to_end,
    bench_sampler_ablation,
    bench_boosting
);
criterion_main!(benches);
