//! Regenerates **Table I** of the paper — the ψ-functions of the
//! M-estimators — and demonstrates numerically what each does to benign
//! entries vs outliers (the property the robust-PCA application relies on).
//!
//! Usage: cargo run --release -p dlra-bench --bin table1

use dlra_core::EntryFunction;

fn main() {
    println!("TABLE I — ψ-FUNCTIONS OF SEVERAL M-ESTIMATORS\n");
    println!("  Huber:  ψ(x) = k·sgn(x) if |x| > k, else x        (here k = 2)");
    println!("  L1−L2:  ψ(x) = x / (1 + x²/2)^½                   (saturates at √2)");
    println!("  Fair:   ψ(x) = x / (1 + |x|/c)                    (here c = 2)\n");

    let huber = EntryFunction::Huber { k: 2.0 };
    let l1l2 = EntryFunction::L1L2;
    let fair = EntryFunction::Fair { c: 2.0 };

    println!("{:>12} {:>12} {:>12} {:>12}", "x", "Huber", "L1-L2", "Fair");
    for &x in &[0.0, 0.5, 1.0, 2.0, 5.0, 100.0, 1e6, -3.0, -1e6] {
        println!(
            "{:>12.3e} {:>12.4} {:>12.4} {:>12.4}",
            x,
            huber.apply(x),
            l1l2.apply(x),
            fair.apply(x)
        );
    }

    println!("\nAll three cap outliers at a constant while preserving the sign and");
    println!("(near the origin) the magnitude of benign entries — robust PCA applies");
    println!("them entrywise to the aggregated matrix (paper §VI-C).");

    // The sampling-side counterpart: every ψ² satisfies property P.
    use dlra_sampler::{check_property_p, FairSq, HuberSq, L1L2Sq, ZFn};
    let grid: Vec<f64> = (0..4000).map(|i| i as f64 * 0.05).collect();
    let zs: Vec<Box<dyn ZFn>> = vec![
        Box::new(HuberSq { k: 2.0 }),
        Box::new(L1L2Sq),
        Box::new(FairSq { c: 2.0 }),
    ];
    println!("\nproperty-P check (x²/ψ² and ψ² nondecreasing, ψ(0)=0):");
    for z in &zs {
        println!(
            "  {:<10} {}",
            z.name(),
            if check_property_p(z.as_ref(), &grid) {
                "PASS"
            } else {
                "FAIL"
            }
        );
    }
}
