//! Empirically exercises the §VII lower-bound reductions (Theorems 4, 6,
//! 8): generates promise-problem instances, runs each reduction against an
//! exact PCA oracle, and reports accuracy plus oracle-call counts.
//!
//! Usage: cargo run --release -p dlra-bench --bin lowerbounds

use dlra_lowerbounds::thm4::{exact_oracle as oracle4, solve_linfty_via_pca};
use dlra_lowerbounds::thm6::{exact_rowspace_oracle, solve_disj_via_pca, DisjVariant};
use dlra_lowerbounds::thm8::{exact_oracle as oracle8, solve_ghd_via_pca};
use dlra_lowerbounds::{GapHammingInstance, LinftyInstance, TwoDisjInstance};
use dlra_util::Rng;

fn main() {
    let trials = 30u64;

    println!("Theorem 4 — L∞ → relative-error PCA for f(x)=|x|^p (p=2, m=4096, d=16)");
    let mut ok = 0;
    let mut calls = 0;
    for t in 0..trials {
        let mut rng = Rng::new(t);
        let planted = t % 2 == 0;
        let inst = LinftyInstance::generate(4096, 8, planted, &mut rng);
        let (far, stats) = solve_linfty_via_pca(&inst, 16, 2, 2.0, &mut oracle4);
        ok += (far == planted) as u64;
        calls += stats.oracle_calls;
    }
    println!(
        "  accuracy {ok}/{trials}, avg oracle calls {:.1} (≈ log_d m = 3)\n",
        calls as f64 / trials as f64
    );

    println!("Theorem 6 — 2-DISJ → relative-error PCA for f = max and Huber ψ (m=2048, d=16)");
    for variant in [DisjVariant::Max, DisjVariant::Huber] {
        let mut ok = 0;
        let mut calls = 0;
        for t in 0..trials {
            let mut rng = Rng::new(1000 + t);
            let hit = t % 2 == 0;
            let inst = TwoDisjInstance::generate(2048, hit, &mut rng);
            let (got, stats) =
                solve_disj_via_pca(&inst, 16, 3, variant, &mut exact_rowspace_oracle);
            ok += (got == hit) as u64;
            calls += stats.oracle_calls;
        }
        println!(
            "  {variant:?}: accuracy {ok}/{trials}, avg oracle calls {:.1}",
            calls as f64 / trials as f64
        );
    }
    println!();

    println!("Theorem 8 — Gap-Hamming → relative-error PCA for f(x)=x (m=1/ε²)");
    for &m in &[64usize, 256, 1024] {
        let mut ok = 0;
        for t in 0..trials {
            let mut rng = Rng::new(2000 + t + m as u64);
            let pos = t % 2 == 0;
            let inst = GapHammingInstance::generate(m, pos, 1.0, &mut rng);
            let (got, _) = solve_ghd_via_pca(&inst, 2, &mut oracle8);
            ok += (got == pos) as u64;
        }
        println!(
            "  m = {m:5} (ε = {:.4}): accuracy {ok}/{trials}",
            1.0 / (m as f64).sqrt()
        );
    }

    println!("\nEach reduction decides its promise problem with few oracle calls and");
    println!("negligible side communication — so a cheap relative-error protocol would");
    println!("violate the problems' Ω(m) / Ω(nd) / Ω(1/ε²) communication lower bounds.");
    println!("This motivates the paper's additive-error guarantee (§VII).");
}
