//! Query-planner sweep (batched vs unbatched submission) →
//! `BENCH_planner.json`.
//!
//! ```text
//! cargo run --release -p dlra-bench --bin planner -- [--quick] \
//!     [--batches 1,4,16] [--n 2048] [--d 24] [--r 60] [--reps 3] [--out PATH]
//! ```
//!
//! Without `--out` the JSON document goes to stdout; a human-readable
//! table always goes to stderr.

use dlra_bench::planner::{run, PlannerBenchSpec};

fn main() {
    let mut spec = PlannerBenchSpec::default();
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
                .parse::<usize>()
                .unwrap_or_else(|_| panic!("{name} needs an integer"))
        };
        match arg.as_str() {
            "--quick" => {
                let q = PlannerBenchSpec::quick();
                spec.n = q.n;
                spec.d = q.d;
                spec.r = q.r;
                spec.reps = q.reps;
            }
            "--batches" => {
                spec.batches = args
                    .next()
                    .expect("--batches needs a value")
                    .split(',')
                    .map(|x| x.parse().expect("integer batch size"))
                    .collect()
            }
            "--n" => spec.n = num("--n"),
            "--d" => spec.d = num("--d"),
            "--r" => spec.r = num("--r"),
            "--servers" => spec.servers = num("--servers"),
            "--executors" => spec.executors = num("--executors"),
            "--reps" => spec.reps = num("--reps"),
            "--seed" => {
                spec.seed = args
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("integer seed")
            }
            "--out" => out_path = Some(args.next().expect("--out needs a path")),
            other => panic!(
                "unknown argument {other}; try --quick --batches --n --d --r --servers --executors --reps --seed --out"
            ),
        }
    }

    let report = run(&spec);
    eprintln!(
        "{:>6} {:>10} {:>12} {:>8} {:>14} {:>14} {:>12}",
        "batch", "mode", "wall_s", "preps", "prepare_words", "execute_words", "total_words"
    );
    for m in &report.results {
        eprintln!(
            "{:>6} {:>10} {:>12.6} {:>8} {:>14} {:>14} {:>12}",
            m.batch,
            m.mode,
            m.wall_s,
            m.preparations,
            m.prepare_words,
            m.execute_words,
            m.total_words()
        );
    }
    let bmax = spec.batches.iter().copied().max().unwrap_or(1);
    if let (Some(red), Some(speed)) = (report.prepare_reduction(bmax), report.wall_speedup(bmax)) {
        eprintln!(
            "B = {bmax}: batching cut preparation words {red:.2}x, wall {speed:.2}x \
             (outputs identical: {})",
            report.outputs_identical
        );
    }
    assert!(
        report.outputs_identical,
        "planner changed output bits — investigate before publishing numbers"
    );

    let json = report.to_json();
    match out_path {
        Some(path) => {
            std::fs::write(&path, json).expect("write BENCH json");
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }
}
